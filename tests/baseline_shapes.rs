//! Cross-system shape tests: the orderings and crossovers the paper's
//! figures hinge on, checked across every modelled system at once.

use baselines::model::StorageModel;
use baselines::{
    jump_consistent_hash, CrailModel, Ext4Model, GlusterFsModel, LustreModel, OrangeFsModel,
    Scenario, SpdkRawModel, XfsModel,
};
use workloads::NvmeCrModel;

fn all_cluster_systems() -> Vec<Box<dyn StorageModel>> {
    vec![
        Box::new(NvmeCrModel::full()),
        Box::new(GlusterFsModel::new()),
        Box::new(OrangeFsModel::new()),
    ]
}

#[test]
fn figure1_bandwidth_ordering_holds_at_every_scale() {
    for procs in [56u32, 112, 224, 448] {
        let s = Scenario::weak_scaling(procs);
        let effs: Vec<(String, f64)> = all_cluster_systems()
            .iter()
            .map(|m| (m.name().to_string(), m.checkpoint_efficiency(&s)))
            .collect();
        // NVMe-CR > GlusterFS > OrangeFS, at every concurrency.
        assert!(effs[0].1 > effs[1].1, "{procs} procs: {effs:?}");
        assert!(effs[1].1 > effs[2].1, "{procs} procs: {effs:?}");
    }
}

#[test]
fn figure7b_cov_ordering() {
    for procs in [28u32, 112, 448] {
        let s = Scenario::weak_scaling(procs);
        let nvmecr = NvmeCrModel::full().load_cov(&s);
        let orange = OrangeFsModel::new().load_cov(&s);
        let gluster = GlusterFsModel::new().load_cov(&s);
        assert_eq!(nvmecr, 0.0, "round-robin over allocated SSDs is exact");
        assert!(
            orange <= gluster,
            "striping beats hashing: {orange} vs {gluster}"
        );
    }
    // GlusterFS imbalance falls with concurrency (reference [17]).
    let g = GlusterFsModel::new();
    assert!(g.load_cov(&Scenario::weak_scaling(448)) < g.load_cov(&Scenario::weak_scaling(28)));
}

#[test]
fn figure7c_single_node_ordering() {
    let s = Scenario::single_node(512 << 20);
    let nvmecr = NvmeCrModel::local().checkpoint_makespan(&s).as_secs();
    let spdk = SpdkRawModel::new().checkpoint_makespan(&s).as_secs();
    let xfs = XfsModel::new().checkpoint_makespan(&s).as_secs();
    let ext4 = Ext4Model::new().checkpoint_makespan(&s).as_secs();
    // NVMe-CR ~= SPDK < XFS < ext4.
    assert!(
        (nvmecr / spdk - 1.0).abs() < 0.05,
        "NVMe-CR {nvmecr} vs SPDK {spdk}"
    );
    assert!(
        xfs > nvmecr * 1.10,
        "XFS should trail by ~19%: {xfs} vs {nvmecr}"
    );
    assert!(xfs < nvmecr * 1.45, "XFS gap too large: {xfs} vs {nvmecr}");
    assert!(
        ext4 > nvmecr * 1.5,
        "ext4 should trail by ~83%+: {ext4} vs {nvmecr}"
    );
    assert!(ext4 > xfs);
}

#[test]
fn figure8a_remote_overhead_small_and_size_independent() {
    let overhead_at = |mb: u64| {
        let s = Scenario::single_node(mb << 20);
        let local = NvmeCrModel::local().checkpoint_makespan(&s).as_secs();
        let remote = NvmeCrModel::full().checkpoint_makespan(&s).as_secs();
        remote / local - 1.0
    };
    let small = overhead_at(64);
    let big = overhead_at(512);
    assert!(
        small < 0.035 && big < 0.035,
        "NVMf overhead {small} / {big}"
    );
    assert!(
        (small - big).abs() < 0.03,
        "overhead should be size-independent"
    );
}

#[test]
fn crail_sits_between_nvmecr_and_kernel_fses() {
    let s = Scenario::single_node(512 << 20);
    let nvmecr = NvmeCrModel::full().checkpoint_makespan(&s).as_secs();
    let crail = CrailModel::new().checkpoint_makespan(&s).as_secs();
    let ext4 = Ext4Model::new().checkpoint_makespan(&s).as_secs();
    assert!(
        crail > nvmecr * 1.02,
        "Crail trails NVMe-CR: {crail} vs {nvmecr}"
    );
    assert!(
        crail < nvmecr * 1.25,
        "...but only by 5-10%-ish: {crail} vs {nvmecr}"
    );
    assert!(crail < ext4);
}

#[test]
fn lustre_is_the_slow_reliable_tier() {
    let s = Scenario::strong_scaling(448);
    let lustre = LustreModel::new().checkpoint_makespan(&s).as_secs();
    let fast = NvmeCrModel::full().checkpoint_makespan(&s).as_secs();
    assert!(
        lustre > fast * 10.0,
        "Lustre {lustre}s vs NVMe tier {fast}s"
    );
}

#[test]
fn jump_hash_bucket_growth_only_moves_keys_forward() {
    // The consistency property GlusterFS's elastic hashing relies on when
    // bricks are added.
    let mut moved_between_old = 0;
    for key in 0..10_000u64 {
        let before = jump_consistent_hash(key, 8);
        let after = jump_consistent_hash(key, 9);
        if after != before && after != 8 {
            moved_between_old += 1;
        }
    }
    assert_eq!(moved_between_old, 0);
}

#[test]
fn create_rates_rank_like_figure_8b_at_every_scale() {
    for procs in [56u32, 224, 448] {
        let s = Scenario::weak_scaling(procs);
        let ours = NvmeCrModel::full().create_rate(&s, 5);
        let gluster = GlusterFsModel::new().create_rate(&s, 5);
        let orange = OrangeFsModel::new().create_rate(&s, 5);
        assert!(
            ours > gluster && gluster > orange,
            "{procs}: {ours} {gluster} {orange}"
        );
    }
}

#[test]
fn metadata_overhead_table_shape() {
    let s = Scenario::weak_scaling(448);
    let orange = OrangeFsModel::new().metadata_overhead(&s).per_server_bytes;
    let gluster = GlusterFsModel::new().metadata_overhead(&s).per_server_bytes;
    let nvmecr = NvmeCrModel::full().metadata_overhead(&s).per_runtime_bytes;
    // Table I shape: OrangeFS per-server huge; GlusterFS tiny; NVMe-CR
    // pays per-runtime, in between.
    assert!(orange > 100 * gluster);
    assert!(nvmecr > gluster);
    assert!(nvmecr < orange);
}
