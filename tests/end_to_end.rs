//! End-to-end integration: scheduler → storage balancer → NVMf → SSDs →
//! per-rank microfs, driving CoMD-style N-N checkpoints with real bytes.

use cluster::{JobRequest, Scheduler, Topology};
use microfs::OpenFlags;
use nvmecr::intercept::PosixLayer;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use ssd::SsdConfig;
use workloads::driver::run_functional_checkpoints;
use workloads::{CheckpointPattern, CoMD};

fn testbed(procs: u32) -> (StorageRack, Topology, cluster::JobAllocation, RuntimeConfig) {
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        },
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        ..RuntimeConfig::default()
    };
    (rack, topo, alloc, config)
}

#[test]
fn full_stack_checkpoint_restart_with_verification() {
    let report = run_functional_checkpoints(56, 3, 512 << 10, &[0, 11, 55]).unwrap();
    assert_eq!(report.procs, 56);
    assert_eq!(report.ckpts, 3);
    assert_eq!(report.bytes_verified, 56 * (512 << 10));
    assert_eq!(report.recovered_ranks, 3);
    assert!(
        report.replayed_records > 0,
        "recovery must replay the op log"
    );
}

#[test]
fn nn_pattern_through_runtime_keeps_files_private() {
    let (rack, topo, alloc, config) = testbed(56);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    // Every rank writes the same *path* — private namespaces mean no
    // conflict and no coordination.
    let plan = CheckpointPattern::NN.plan(56, 128 << 10, 64 << 10, 0);
    for op in &plan {
        let fs = rt.rank_fs(op.rank).unwrap();
        if op.offset == 0 {
            fs.mkdir("/comd", 0o755).ok();
            fs.mkdir("/comd/ckpt_000", 0o755).ok();
            fs.create(&op.path, 0o644).unwrap();
        }
        let fd = fs.open(&op.path, OpenFlags::RDWR, 0).unwrap();
        fs.pwrite(fd, op.offset, &vec![op.rank as u8; op.len as usize])
            .unwrap();
        fs.close(fd).unwrap();
    }
    for rank in 0..56u32 {
        let fs = rt.rank_fs(rank).unwrap();
        let path = CoMD::checkpoint_path(rank, 0);
        let st = fs.stat(&path).unwrap();
        assert_eq!(st.size, 128 << 10);
        let fd = fs.open(&path, OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; 4096];
        fs.read(fd, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == rank as u8),
            "rank {rank} bytes aliased"
        );
        fs.close(fd).unwrap();
    }
    rt.finalize().unwrap();
}

#[test]
fn intercept_layer_drives_the_runtime_fs() {
    let (rack, topo, alloc, config) = testbed(56);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    // Pull one rank's fs out via the public API and interpose on it the
    // way LD_PRELOAD does: unmodified "application" code below only uses
    // POSIX-style calls against /nvmecr paths.
    rt.crash_rank(0).unwrap(); // free the slot...
    rt.recover_rank(0).unwrap(); // ...and remount it, proving mid-job rebind
    let (rack2, topo2, alloc2, config2) = testbed(56);
    let _ = (rack2, topo2, alloc2, config2);
    // Build a standalone layer over an in-memory device for the pure
    // interception semantics.
    let fs = microfs::MicroFs::format(
        microfs::MemDevice::new(64 << 20),
        microfs::FsConfig::default(),
    )
    .unwrap();
    let mut posix = PosixLayer::new(fs, "/nvmecr");
    posix.mkdir("/nvmecr/app", 0o755).unwrap();
    let fd = posix.creat("/nvmecr/app/state.dat", 0o644).unwrap();
    posix.write(fd, b"application state").unwrap();
    posix.fsync(fd).unwrap();
    posix.close(fd).unwrap();
    // Paths outside the mount fall through ("kernel").
    assert!(posix.creat("/scratch/other.dat", 0o644).is_err());
    let stats = posix.stats();
    assert!(stats.runtime_calls >= 5);
    assert_eq!(stats.passthrough_calls, 1);
}

#[test]
fn two_jobs_share_the_rack_with_namespace_isolation() {
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build(
        &topo,
        &SsdConfig {
            capacity: 16 << 30,
            ..SsdConfig::default()
        },
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        ..RuntimeConfig::default()
    };
    // Job A on half the cluster, job B on the other half; their storage
    // grants may share SSDs but never namespaces.
    let alloc_a = sched
        .submit(&JobRequest {
            procs: 112,
            procs_per_node: 28,
            storage_devices: 2,
        })
        .unwrap();
    let alloc_b = sched
        .submit(&JobRequest {
            procs: 112,
            procs_per_node: 28,
            storage_devices: 2,
        })
        .unwrap();
    let mut rt_a = NvmeCrRuntime::init(&rack, &topo, &alloc_a, config.clone()).unwrap();
    let mut rt_b = NvmeCrRuntime::init(&rack, &topo, &alloc_b, config).unwrap();
    for rank in 0..112u32 {
        let fs = rt_a.rank_fs(rank).unwrap();
        let fd = fs.create("/job.dat", 0o644).unwrap();
        fs.write(fd, &[0xAA; 4096]).unwrap();
        fs.close(fd).unwrap();
    }
    for rank in 0..112u32 {
        let fs = rt_b.rank_fs(rank).unwrap();
        let fd = fs.create("/job.dat", 0o644).unwrap();
        fs.write(fd, &[0xBB; 4096]).unwrap();
        fs.close(fd).unwrap();
    }
    // Job A still sees its own bytes after B wrote everywhere.
    for rank in (0..112u32).step_by(17) {
        let fs = rt_a.rank_fs(rank).unwrap();
        let fd = fs.open("/job.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = [0u8; 4096];
        fs.read(fd, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0xAA),
            "job B leaked into job A (rank {rank})"
        );
        fs.close(fd).unwrap();
    }
    rt_a.finalize().unwrap();
    rt_b.finalize().unwrap();
}

#[test]
fn runtime_is_ephemeral_resources_return_after_finalize() {
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        },
    );
    let mut sched = Scheduler::new(topo.clone(), 4);
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        ..RuntimeConfig::default()
    };
    for round in 0..3 {
        let alloc = sched.submit(&JobRequest::full_subscription(112)).unwrap();
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config.clone()).unwrap();
        let fs = rt.rank_fs(0).unwrap();
        let fd = fs.create(&format!("/round{round}.dat"), 0o644).unwrap();
        fs.write(fd, &[round as u8; 1024]).unwrap();
        fs.close(fd).unwrap();
        rt.finalize().unwrap();
        sched.release(alloc.id).unwrap();
    }
    // Three full job lifecycles fit in the same namespaces/gres budget.
    assert_eq!(sched.free_compute_nodes(), 16);
}

#[test]
fn churn_stress_many_checkpoints_with_log_wraps_and_fsck() {
    // Long-run churn at moderate scale: repeated small checkpoints force
    // log fill-ups, background snapshots, and block recycling; every
    // rank's partition must stay fsck-clean throughout.
    let (rack, topo, alloc, config) = testbed(56);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    for round in 0..20u32 {
        for rank in (0..56u32).step_by(7) {
            let fs = rt.rank_fs(rank).unwrap();
            let path = format!("/churn_{}.dat", round % 3); // recycle names
            if fs.stat(&path).is_ok() {
                fs.unlink(&path).unwrap();
            }
            let fd = fs.create(&path, 0o644).unwrap();
            fs.write(fd, &vec![(round % 251) as u8; 96 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
    }
    // Snapshot counters prove the background cleaner ran somewhere or the
    // log still has room; either way, crash + fsck must be clean.
    for rank in (0..56u32).step_by(7) {
        rt.crash_rank(rank).unwrap();
        let report = rt.fsck_rank(rank).unwrap();
        assert!(report.is_clean(), "rank {rank}: {:?}", report.issues);
        rt.recover_rank(rank).unwrap();
        let fs = rt.rank_fs(rank).unwrap();
        // The newest generation of each recycled name is intact.
        for name in 0..3u32 {
            if let Ok(st) = fs.stat(&format!("/churn_{name}.dat")) {
                assert_eq!(st.size, 96 << 10);
            }
        }
    }
    rt.finalize().unwrap();
}

#[test]
fn trace_replay_through_the_full_stack() {
    // Record the canonical N-N stream, replay it over NVMf-backed ranks.
    use workloads::IoTrace;
    let (rack, topo, alloc, config) = testbed(56);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let trace = IoTrace::nn_checkpoint("/comd/ckpt.dat", 2 << 20, 256 << 10);
    let text = trace.to_text();
    for rank in [0u32, 13, 55] {
        let parsed = IoTrace::from_text(&text).unwrap();
        let fs = rt.rank_fs(rank).unwrap();
        parsed.replay(fs).unwrap();
        assert_eq!(fs.stat("/comd/ckpt.dat").unwrap().size, 2 << 20);
    }
    rt.finalize().unwrap();
}

#[test]
fn full_scale_448_ranks_functional() {
    // The paper's headline scale, functionally: every one of 448 ranks
    // writes and verifies a (small) checkpoint through the whole stack,
    // with a handful of crash-recoveries sprinkled in.
    let report = run_functional_checkpoints(448, 1, 64 << 10, &[0, 111, 223, 447]).unwrap();
    assert_eq!(report.procs, 448);
    assert_eq!(report.bytes_verified, 448 * (64 << 10));
    assert_eq!(report.recovered_ranks, 4);
}
