//! Reactor execution-model guarantees: determinism, chaos parity with the
//! thread-per-rank drive, and QoS isolation between tenants.
//!
//! The shard-per-core refactor is only safe if it is *unobservable* from
//! the storage layer down: same bytes, same recovery, same flight-recorder
//! story. These tests pin that down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chaos::{ChaosHandle, FaultAction, FaultPlan, FaultSite};
use cluster::{JobRequest, Scheduler, Topology};
use microfs::OpenFlags;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::{
    MachineStep, QosConfig, RankMachine, RankTask, ReactorConfig, ReactorMode, ReactorPool,
    RuntimeConfig,
};
use ssd::SsdConfig;
use telemetry::Telemetry;
use workloads::driver::{run_functional_checkpoints_tuned, DriveMode, FunctionalTuning};

fn testbed(
    procs: u32,
    chaos: ChaosHandle,
) -> (
    StorageRack,
    Topology,
    cluster::JobAllocation,
    RuntimeConfig,
    Telemetry,
) {
    let telemetry = Telemetry::new();
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        telemetry: telemetry.clone(),
        chaos,
        ..RuntimeConfig::default()
    };
    (rack, topo, alloc, config, telemetry)
}

fn pattern(rank: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(rank * 7) % 251) as u8)
        .collect()
}

/// (kind code, rank, epoch, cid, gen, a, b) — a flight event with the
/// timestamp dropped and the `Complete` latency field masked.
type EventTuple = (u64, u64, u64, u64, u64, u64, u64);

/// One deterministic reactor drive: init with the recorder muted (rayon
/// init interleaving is not deterministic), then checkpoint every rank
/// through the single-threaded lockstep reactor with the recorder live.
/// Returns the recorder's event tuples (timestamps excluded) and the
/// telemetry counters the drive published.
fn recorded_reactor_run(procs: u32, payload: usize) -> (Vec<EventTuple>, u64) {
    let (rack, topo, alloc, config, telemetry) = testbed(procs, ChaosHandle::default());
    let recorder = telemetry.recorder();
    recorder.set_enabled(false);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    recorder.set_enabled(true);
    let reactor = ReactorConfig {
        reactors: 1,
        mode: ReactorMode::Deterministic,
        ..ReactorConfig::default()
    };
    rt.map_ranks_reactor(&reactor, move |rank, fs| {
        let fd = fs.create("/det.dat", 0o644)?;
        fs.write(fd, &pattern(rank, payload))?;
        fs.fsync(fd)?;
        fs.close(fd)?;
        Ok(())
    })
    .unwrap();
    recorder.set_enabled(false);
    let events = recorder
        .events()
        .into_iter()
        .map(|e| {
            // `Complete` stamps its measured latency into `a` — wall-clock
            // telemetry, not event-order state. Everything else (kinds,
            // ranks, cids, retry generations, byte counts, offsets) must
            // replay exactly.
            let a = if e.kind == telemetry::FlightKind::Complete {
                0
            } else {
                e.a
            };
            (e.kind.code(), e.rank, e.epoch, e.cid, e.gen, a, e.b)
        })
        .collect();
    (events, telemetry.counter("reactor.events").get())
}

#[test]
fn deterministic_reactor_replays_the_same_flight_recording() {
    let (events_a, reactor_events_a) = recorded_reactor_run(8, 96 << 10);
    let (events_b, reactor_events_b) = recorded_reactor_run(8, 96 << 10);
    assert!(
        !events_a.is_empty(),
        "the drive must leave a flight recording"
    );
    assert_eq!(
        events_a, events_b,
        "same seed + same rank count must replay the exact event sequence"
    );
    assert_eq!(reactor_events_a, reactor_events_b);
}

#[test]
fn reactor_functional_reports_hash_identically_across_runs() {
    let tuning = FunctionalTuning {
        reactors: 2,
        ..FunctionalTuning::default()
    };
    let a =
        run_functional_checkpoints_tuned(DriveMode::Reactor, 8, 2, 128 << 10, &[3], tuning.clone())
            .unwrap();
    let b = run_functional_checkpoints_tuned(DriveMode::Reactor, 8, 2, 128 << 10, &[3], tuning)
        .unwrap();
    assert_eq!(a.state_hash(), b.state_hash());
    assert_eq!(a.bytes_verified, b.bytes_verified);
}

/// Chaos parity: under the same corruption + reset plan, the reactor drive
/// must recover exactly the bytes the thread-per-rank drive recovers. Runs
/// the identical workload through both drives against separately-seeded
/// but identically-planned fault injectors, crashes ranks, recovers, and
/// compares every recovered payload byte-for-byte.
#[test]
fn reactor_recovers_byte_identically_to_parallel_under_chaos() {
    let plan = || {
        FaultPlan::new(42)
            .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.01)
            .with_rate(FaultSite::CapsuleRx, FaultAction::CorruptPayload, 0.01)
            .with_rate(FaultSite::ConnReset, FaultAction::ResetConnection, 0.02)
    };
    let procs = 16u32;
    let payload = 128usize << 10;
    let crash: Vec<u32> = vec![2, 9, 13];

    let run = |reactor: bool| -> Vec<Vec<u8>> {
        let chaos = ChaosHandle::new();
        let (rack, topo, alloc, config, telemetry) = testbed(procs, chaos.clone());
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        chaos.arm(plan(), &telemetry);
        let write = move |rank: u32,
                          fs: &mut microfs::MicroFs<nvmecr::NvmfBlockDevice>|
              -> Result<(), nvmecr::runtime::RuntimeError> {
            let fd = fs.create("/chaos.dat", 0o644)?;
            fs.write(fd, &pattern(rank, payload))?;
            fs.fsync(fd)?;
            fs.close(fd)?;
            Ok(())
        };
        if reactor {
            let cfg = ReactorConfig {
                reactors: 2,
                ..ReactorConfig::default()
            };
            rt.map_ranks_reactor(&cfg, move |rank, fs| write(rank, fs))
                .unwrap();
        } else {
            rt.for_each_rank_par(write).unwrap();
        }
        chaos.disarm();
        for &r in &crash {
            rt.crash_rank(r).unwrap();
        }
        rt.recover_ranks(&crash).unwrap();
        (0..procs)
            .map(|rank| {
                let fs = rt.rank_fs(rank).unwrap();
                let fd = fs.open("/chaos.dat", OpenFlags::RDONLY, 0).unwrap();
                let mut buf = vec![0u8; payload];
                let mut got = 0;
                while got < payload {
                    let n = fs.read(fd, &mut buf[got..]).unwrap();
                    assert!(n > 0, "short read on rank {rank}");
                    got += n;
                }
                fs.close(fd).unwrap();
                buf
            })
            .collect()
    };

    let parallel = run(false);
    let reactor = run(true);
    for rank in 0..procs as usize {
        let expect = pattern(rank as u32, payload);
        assert_eq!(
            parallel[rank], expect,
            "parallel drive lost rank {rank} under chaos"
        );
        assert_eq!(
            reactor[rank], expect,
            "reactor drive lost rank {rank} under chaos"
        );
    }
    assert_eq!(parallel, reactor);
}

/// A synthetic rank machine: `steps` QoS-costed units, counting every
/// executed step into a shared event clock and stamping its completion
/// time off that clock. Event-time on one deterministic reactor is a
/// makespan measure with no wall-clock noise.
struct Metered {
    steps: u32,
    cost: u64,
    clock: Arc<AtomicU64>,
}

impl RankMachine<()> for Metered {
    type Out = u64;

    fn step(
        &mut self,
        _rank: u32,
        _fs: &mut (),
    ) -> Result<MachineStep<u64>, nvmecr::runtime::RuntimeError> {
        let now = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        self.steps -= 1;
        if self.steps == 0 {
            Ok(MachineStep::Done(now))
        } else {
            Ok(MachineStep::Yield)
        }
    }

    fn next_cost(&self) -> u64 {
        self.cost
    }
}

/// Acceptance gate: a tenant issuing 10x its quota may degrade a
/// well-behaved tenant's makespan by at most 10%. Also proves the gate is
/// the QoS layer itself: with admission off, the same noisy tenant blows
/// far past the budget.
#[test]
fn qos_caps_noisy_tenant_interference_at_ten_percent() {
    let telemetry = Telemetry::new();
    // Victim: tenant 0, one rank, 64 unit-cost steps. Neighbor: tenant 1.
    // Well-behaved neighbor: one rank consuming exactly the per-round
    // quota. Noisy neighbor: ten ranks each trying to consume the full
    // quota every round — 10x the tenant's budget.
    let drive = |noisy_ranks: u32, qos: Option<QosConfig>| -> (u64, u64) {
        let clock = Arc::new(AtomicU64::new(0));
        let pool = ReactorPool::new(
            &ReactorConfig {
                reactors: 1,
                mode: ReactorMode::Deterministic,
                qos,
            },
            &telemetry,
        );
        let mut tasks: Vec<RankTask<(), u64>> = vec![RankTask {
            rank: 0,
            tenant: 0,
            fs: (),
            machine: Box::new(Metered {
                steps: 64,
                cost: 1,
                clock: Arc::clone(&clock),
            }),
        }];
        for r in 0..noisy_ranks {
            tasks.push(RankTask {
                rank: 1 + r,
                tenant: 1,
                fs: (),
                machine: Box::new(Metered {
                    steps: 64,
                    cost: 8,
                    clock: Arc::clone(&clock),
                }),
            });
        }
        let outcome = pool.drive(tasks);
        assert!(outcome.error.is_none());
        let victim_done = outcome
            .results
            .iter()
            .find(|r| r.rank == 0)
            .and_then(|r| r.result)
            .expect("victim completes");
        (victim_done, outcome.stats.throttled)
    };

    let qos = || {
        Some(QosConfig {
            quota_per_round: 8,
            burst: 16,
            overrides: Vec::new(),
        })
    };
    let (quiet, _) = drive(1, qos());
    let (noisy, throttled) = drive(10, qos());
    assert!(
        throttled > 0,
        "the noisy tenant must actually hit admission"
    );
    assert!(
        (noisy as f64) <= (quiet as f64) * 1.10,
        "noisy tenant degraded the victim {quiet} -> {noisy} (> 10%)"
    );

    // Contrast: with admission off the same noisy tenant inflates the
    // victim's event-time makespan far beyond the 10% budget.
    let (unprotected, _) = drive(10, None);
    assert!(
        (unprotected as f64) > (quiet as f64) * 1.10,
        "without QoS the noisy tenant should interfere ({quiet} -> {unprotected})"
    );
}
