//! Threaded stress over one shared storage node: many ranks on real OS
//! threads hammer the same [`Ssd`] through its NVMf target concurrently
//! (one namespace shard per rank), the node power-fails mid-run with
//! files never closed, every rank recovers by remounting, and every byte
//! is verified against the generator.
//!
//! This is the integration-level proof of the sharded data plane: no
//! whole-device lock means the threads really interleave on the target,
//! and per-shard FIFOs + the capacitor flush keep each rank's bytes
//! intact through the crash.

use std::sync::Arc;

use bytes::Bytes;
use fabric::{Initiator, NvmfTarget};
use microfs::{FsConfig, MicroFs, OpenFlags};
use nvmecr::dataplane::NvmfBlockDevice;
use ssd::{Ssd, SsdConfig};
use telemetry::Telemetry;
use workloads::CoMD;

const RANKS: u32 = 12;
const SEGMENT: u64 = 64 << 20;
const PAYLOAD: usize = 3 << 20;

fn rank_device(
    target: &Arc<NvmfTarget>,
    ns: ssd::NsId,
    rank: u32,
    t: &Telemetry,
) -> NvmfBlockDevice {
    let conn = Initiator::with_telemetry(format!("nqn.2026-08.io.nvmecr:rank{rank}"), t.clone())
        .connect(Arc::clone(target), ns);
    NvmfBlockDevice::new(conn, 0, SEGMENT)
}

#[test]
fn concurrent_ranks_survive_node_crash_byte_for_byte() {
    let comd = CoMD::weak_scaling();
    // Private registry: exact counter assertions below must not see
    // traffic from other tests in this process.
    let telemetry = Telemetry::new();
    let ssd = Arc::new(Ssd::with_telemetry(
        SsdConfig {
            capacity: 4 << 30,
            // Keep plenty of writes volatile in device RAM at crash time so
            // recovery actually depends on the capacitor flush.
            device_ram: 1 << 30,
            capacitor: true,
            ..SsdConfig::default()
        },
        telemetry.clone(),
    ));
    let target = Arc::new(NvmfTarget::new(Arc::clone(&ssd)));
    let namespaces: Vec<ssd::NsId> = (0..RANKS)
        .map(|_| ssd.create_namespace(SEGMENT).unwrap())
        .collect();

    // Phase 1: every rank on its own thread — format, write a checkpoint
    // through the zero-copy path, fsync, then "crash" (drop without
    // close/unmount).
    std::thread::scope(|s| {
        for rank in 0..RANKS {
            let target = &target;
            let ns = namespaces[rank as usize];
            let comd = &comd;
            let telemetry = &telemetry;
            s.spawn(move || {
                let dev = rank_device(target, ns, rank, telemetry);
                let mut fs = MicroFs::format(dev, FsConfig::default()).unwrap();
                fs.mkdir("/comd", 0o755).unwrap();
                fs.mkdir("/comd/ckpt_000", 0o755).unwrap();
                let payload = comd.checkpoint_payload(rank, 0, PAYLOAD);
                let fd = fs.create(&CoMD::checkpoint_path(rank, 0), 0o644).unwrap();
                for chunk in payload.chunks(1 << 20) {
                    fs.write(fd, chunk).unwrap();
                }
                fs.fsync(fd).unwrap();
                // No close, no unmount: the rank dies here.
            });
        }
    });

    // Every rank moved real bytes through a distinct shard of the one
    // device; the only data-path copies are initiator staging and the
    // device's drain-to-media pass.
    assert!(telemetry.snapshot().counter("ssd.bytes_copied") > RANKS as u64 * PAYLOAD as u64);
    for &ns in &namespaces {
        let (writes, _, bytes_written, _) = ssd.ns_io_counters(ns);
        assert!(writes > 0);
        assert!(bytes_written >= PAYLOAD as u64);
    }

    // The storage node loses power: capacitor-backed RAM drains to media.
    let pf = ssd.power_failure();
    assert_eq!(pf.lost_bytes, 0, "capacitor must flush every volatile byte");

    // Phase 2: recovery, again fully threaded — remount (replaying each
    // rank's WAL) and verify the checkpoint byte-for-byte.
    std::thread::scope(|s| {
        for rank in 0..RANKS {
            let target = &target;
            let ns = namespaces[rank as usize];
            let comd = &comd;
            let telemetry = &telemetry;
            s.spawn(move || {
                let dev = rank_device(target, ns, rank, telemetry);
                let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
                let expect = comd.checkpoint_payload(rank, 0, PAYLOAD);
                let fd = fs
                    .open(&CoMD::checkpoint_path(rank, 0), OpenFlags::RDONLY, 0)
                    .unwrap();
                let mut buf = vec![0u8; PAYLOAD];
                let mut got = 0;
                while got < PAYLOAD {
                    let n = fs.read(fd, &mut buf[got..]).unwrap();
                    assert!(n > 0, "rank {rank}: short read at {got}");
                    got += n;
                }
                fs.close(fd).unwrap();
                assert_eq!(buf, expect, "rank {rank}: payload corrupted by crash");
            });
        }
    });
}

#[test]
fn concurrent_bytes_writes_share_one_device_without_staging_copies() {
    // The raw zero-copy path under thread pressure: Bytes payloads from
    // many threads into per-rank shards of one device, no fs in between.
    let telemetry = Telemetry::new();
    let ssd = Arc::new(Ssd::with_telemetry(
        SsdConfig {
            capacity: 2 << 30,
            ..SsdConfig::default()
        },
        telemetry.clone(),
    ));
    let target = Arc::new(NvmfTarget::new(Arc::clone(&ssd)));
    let namespaces: Vec<ssd::NsId> = (0..8)
        .map(|_| ssd.create_namespace(16 << 20).unwrap())
        .collect();
    let chunk = 256 * 1024;
    std::thread::scope(|s| {
        for (rank, &ns) in namespaces.iter().enumerate() {
            let target = &target;
            let telemetry = &telemetry;
            s.spawn(move || {
                let mut conn =
                    Initiator::with_telemetry(format!("nqn.zero{rank}"), telemetry.clone())
                        .connect(Arc::clone(target), ns);
                for i in 0..8u64 {
                    let payload = Bytes::from(vec![rank as u8 ^ i as u8; chunk]);
                    conn.write_bytes(i * chunk as u64, payload).unwrap();
                }
                conn.flush().unwrap();
                for i in 0..8u64 {
                    let got = conn.read_bytes(i * chunk as u64, chunk).unwrap();
                    assert_eq!(&got[..], &vec![rank as u8 ^ i as u8; chunk][..]);
                }
            });
        }
    });
    // Neither the Bytes write path nor read_bytes may stage a copy on the
    // initiator: exactly one copy per written byte, the drain to media.
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter("fabric.bytes_copied"),
        0,
        "Bytes paths must not stage"
    );
    let written = 8 * 8 * chunk as u64;
    assert_eq!(snap.counter("ssd.bytes_copied"), written);
}
