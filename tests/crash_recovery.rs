//! Crash/recovery integration over the full functional stack: real bytes
//! through NVMf into SSD-backed microfs partitions, process crashes, node
//! power failures, and cascading-failure policy decisions.

use cluster::{FaultInjector, FaultKind, JobRequest, Scheduler, Topology};
use microfs::OpenFlags;
use nvmecr::multilevel::{CheckpointLevel, MultiLevelPolicy};
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use simkit::SimTime;
use ssd::SsdConfig;
use workloads::CoMD;

fn testbed(
    procs: u32,
    capacitor: bool,
) -> (StorageRack, Topology, cluster::JobAllocation, RuntimeConfig) {
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            capacitor,
            ..SsdConfig::default()
        },
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        ..RuntimeConfig::default()
    };
    (rack, topo, alloc, config)
}

fn dump(rt: &mut NvmeCrRuntime, rank: u32, ckpt: u32, data: &[u8]) {
    let fs = rt.rank_fs(rank).unwrap();
    fs.mkdir("/comd", 0o755).ok();
    fs.mkdir(&format!("/comd/ckpt_{ckpt:03}"), 0o755).unwrap();
    let fd = fs
        .create(&CoMD::checkpoint_path(rank, ckpt), 0o644)
        .unwrap();
    fs.write(fd, data).unwrap();
    fs.close(fd).unwrap();
}

fn read_back(rt: &mut NvmeCrRuntime, rank: u32, ckpt: u32, len: usize) -> Vec<u8> {
    let fs = rt.rank_fs(rank).unwrap();
    let fd = fs
        .open(&CoMD::checkpoint_path(rank, ckpt), OpenFlags::RDONLY, 0)
        .unwrap();
    let mut buf = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = fs.read(fd, &mut buf[got..]).unwrap();
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd).unwrap();
    assert_eq!(got, len, "short read for rank {rank}");
    buf
}

#[test]
fn every_rank_crash_recovers_with_exact_bytes() {
    let (rack, topo, alloc, config) = testbed(56, true);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let comd = CoMD::weak_scaling();
    let len = 300_000usize;
    for rank in 0..56 {
        dump(&mut rt, rank, 0, &comd.checkpoint_payload(rank, 0, len));
    }
    // Crash *every* rank (job-wide failure), then recover all.
    for rank in 0..56 {
        rt.crash_rank(rank).unwrap();
    }
    for rank in 0..56 {
        rt.recover_rank(rank).unwrap();
    }
    for rank in 0..56 {
        assert_eq!(
            read_back(&mut rt, rank, 0, len),
            comd.checkpoint_payload(rank, 0, len),
            "rank {rank} corrupted"
        );
    }
}

#[test]
fn recovered_rank_continues_checkpointing() {
    let (rack, topo, alloc, config) = testbed(56, true);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let comd = CoMD::weak_scaling();
    let len = 100_000usize;
    dump(&mut rt, 5, 0, &comd.checkpoint_payload(5, 0, len));
    rt.crash_rank(5).unwrap();
    rt.recover_rank(5).unwrap();
    // The recovered instance keeps working: next checkpoint, overwrite,
    // unlink of the old one.
    dump(&mut rt, 5, 1, &comd.checkpoint_payload(5, 1, len));
    assert_eq!(
        read_back(&mut rt, 5, 1, len),
        comd.checkpoint_payload(5, 1, len)
    );
    let fs = rt.rank_fs(5).unwrap();
    fs.unlink(&CoMD::checkpoint_path(5, 0)).unwrap();
    assert!(fs.stat(&CoMD::checkpoint_path(5, 0)).is_err());
    // Crash again after the unlink: the unlink must survive replay too.
    rt.crash_rank(5).unwrap();
    rt.recover_rank(5).unwrap();
    let fs = rt.rank_fs(5).unwrap();
    assert!(fs.stat(&CoMD::checkpoint_path(5, 0)).is_err());
    assert!(fs.stat(&CoMD::checkpoint_path(5, 1)).is_ok());
}

#[test]
fn capacitor_backed_power_failure_loses_nothing() {
    let (rack, topo, alloc, config) = testbed(56, true);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let comd = CoMD::weak_scaling();
    let len = 200_000usize;
    for rank in 0..56 {
        dump(&mut rt, rank, 0, &comd.checkpoint_payload(rank, 0, len));
    }
    // Power-fail every storage node (enhanced power-loss protection on).
    let lost = rack.power_fail_nodes(&topo.storage_nodes());
    assert_eq!(lost, 0, "capacitors must flush volatile data");
    // Processes also die; recover and verify.
    for rank in 0..56 {
        rt.crash_rank(rank).unwrap();
        rt.recover_rank(rank).unwrap();
    }
    for rank in (0..56).step_by(7) {
        assert_eq!(
            read_back(&mut rt, rank, 0, len),
            comd.checkpoint_payload(rank, 0, len)
        );
    }
}

#[test]
fn unprotected_device_loses_volatile_data_on_power_failure() {
    let (rack, topo, alloc, config) = testbed(56, false);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    // Write enough that some bytes are still in device RAM.
    let fs = rt.rank_fs(0).unwrap();
    let fd = fs.create("/v.dat", 0o644).unwrap();
    fs.write(fd, &[7u8; 64 << 10]).unwrap();
    fs.close(fd).unwrap();
    let lost = rack.power_fail_nodes(&topo.storage_nodes());
    assert!(lost > 0, "without capacitors volatile bytes must be lost");
}

#[test]
fn cascading_failure_policy_selects_parallel_tier() {
    // Fault injection says a whole domain died; the multi-level policy
    // must fall back to the Lustre checkpoint.
    let topo = Topology::paper_testbed();
    let mut inj = FaultInjector::new(&topo, 42, SimTime::secs(3_000.0), 1.0);
    let events = inj.schedule(&topo, SimTime::secs(30_000.0));
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .all(|e| matches!(e.kind, FaultKind::Domain(_))));
    let policy = MultiLevelPolicy::new(10);
    // 17 checkpoints taken; domain failure hits the fast tier.
    assert_eq!(policy.recovery_point(17, false), Some(10));
    assert_eq!(policy.level_for(10), CheckpointLevel::Parallel);
    assert_eq!(policy.lost_intervals(17, false), 7);
    // Same failure with the fast tier intact (failure hit a non-partner
    // domain): no rollback at all.
    assert_eq!(policy.lost_intervals(17, true), 0);
}

#[test]
fn torn_final_write_never_corrupts_completed_checkpoints() {
    // §III-E: "a completely written checkpoint file will never hold
    // corrupted data". Write ckpt 0 fully, then half of ckpt 1 and crash
    // WITHOUT closing: ckpt 0 must verify; ckpt 1's logged prefix must be
    // intact too (stronger-than-POSIX durability).
    let (rack, topo, alloc, config) = testbed(56, true);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let comd = CoMD::weak_scaling();
    let len = 128_000usize;
    dump(&mut rt, 3, 0, &comd.checkpoint_payload(3, 0, len));
    let half = comd.checkpoint_payload(3, 1, len / 2);
    {
        let fs = rt.rank_fs(3).unwrap();
        fs.mkdir("/comd/ckpt_001", 0o755).unwrap();
        let fd = fs.create(&CoMD::checkpoint_path(3, 1), 0o644).unwrap();
        fs.write(fd, &half).unwrap();
        // No close, no fsync — crash now.
    }
    rt.crash_rank(3).unwrap();
    rt.recover_rank(3).unwrap();
    assert_eq!(
        read_back(&mut rt, 3, 0, len),
        comd.checkpoint_payload(3, 0, len)
    );
    let fs = rt.rank_fs(3).unwrap();
    let st = fs.stat(&CoMD::checkpoint_path(3, 1)).unwrap();
    assert_eq!(st.size, (len / 2) as u64, "logged prefix must be replayed");
    assert_eq!(read_back(&mut rt, 3, 1, len / 2), half);
}
