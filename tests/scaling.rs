//! Scaling-behaviour integration tests: the paper's headline quantitative
//! claims, checked against the models end-to-end.

use baselines::model::StorageModel;
use baselines::{GlusterFsModel, OrangeFsModel, Scenario};
use nvmecr::metrics;
use nvmecr::multilevel::MultiLevelPolicy;
use workloads::{multilevel_eval, scaling_sweep, CoMD, NvmeCrModel};

#[test]
fn headline_claim_efficiency_above_096_at_448() {
    // Abstract: "near perfect (> 0.96) efficiency at 448 processes".
    let m = NvmeCrModel::full();
    let s = Scenario::weak_scaling(448);
    assert!(m.checkpoint_efficiency(&s) > 0.96);
    assert!(m.recovery_efficiency(&s) > 0.96);
}

#[test]
fn headline_claim_2x_checkpoint_overhead_reduction() {
    // Abstract: "reduce checkpoint overhead by as much as 2x compared to
    // state-of-the-art storage systems".
    let s = Scenario::weak_scaling(448);
    let ours = NvmeCrModel::full().checkpoint_makespan(&s).as_secs();
    let orange = OrangeFsModel::new().checkpoint_makespan(&s).as_secs();
    assert!(orange > ours * 2.0, "OrangeFS {orange}s vs NVMe-CR {ours}s");
}

#[test]
fn headline_claim_2x_tco_reduction() {
    // §I-B: higher efficiency halves the hardware bandwidth needed.
    let s = Scenario::weak_scaling(448);
    let ours = NvmeCrModel::full().checkpoint_efficiency(&s);
    let orange = OrangeFsModel::new().checkpoint_efficiency(&s);
    assert!(metrics::required_bandwidth_factor(ours, orange).unwrap() >= 2.0);
}

#[test]
fn weak_scaling_sweep_is_monotone_for_nvmecr() {
    let scenarios: Vec<Scenario> = [56u32, 112, 224, 448]
        .iter()
        .map(|&p| Scenario::weak_scaling(p))
        .collect();
    let pts = scaling_sweep(&NvmeCrModel::full(), &scenarios);
    // NVMe-CR efficiency never degrades with scale (coordination-free).
    for w in pts.windows(2) {
        assert!(
            w[1].ckpt_efficiency >= w[0].ckpt_efficiency - 0.02,
            "NVMe-CR should not degrade: {:?}",
            pts.iter().map(|p| p.ckpt_efficiency).collect::<Vec<_>>()
        );
    }
    // Weak scaling: time grows roughly linearly with procs (fixed per-proc
    // bytes on fixed hardware).
    let t56 = pts[0].ckpt_time.as_secs();
    let t448 = pts[3].ckpt_time.as_secs();
    let ratio = t448 / t56;
    assert!(
        (6.0..10.0).contains(&ratio),
        "8x data -> ~8x time, got {ratio}"
    );
}

#[test]
fn strong_scaling_keeps_total_work_constant() {
    let m = NvmeCrModel::full();
    let t112 = m
        .checkpoint_makespan(&Scenario::strong_scaling(112))
        .as_secs();
    let t448 = m
        .checkpoint_makespan(&Scenario::strong_scaling(448))
        .as_secs();
    // Same total bytes; more writers shouldn't slow it down much.
    assert!((t448 / t112 - 1.0).abs() < 0.25, "{t112} vs {t448}");
}

#[test]
fn baselines_degrade_where_the_paper_says() {
    let mid = Scenario::weak_scaling(112);
    let big = Scenario::weak_scaling(448);
    // OrangeFS: metadata burden collapse at 448 (§IV-H).
    let o = OrangeFsModel::new();
    assert!(o.checkpoint_efficiency(&big) < o.checkpoint_efficiency(&mid) * 0.6);
    // GlusterFS: recovery dip at 448 (§IV-H).
    let g = GlusterFsModel::new();
    assert!(g.recovery_efficiency(&big) < g.recovery_efficiency(&mid));
    // But GlusterFS checkpointing keeps improving with concurrency.
    assert!(g.checkpoint_efficiency(&big) >= g.checkpoint_efficiency(&mid));
}

#[test]
fn progress_rate_improvement_over_baselines() {
    // Conclusion: "increasing job progress rates by as much as 1.6x".
    let s = Scenario::strong_scaling(448);
    let policy = MultiLevelPolicy::new(10);
    let compute = CoMD::strong_scaling(448).compute_interval();
    let ours = multilevel_eval(&NvmeCrModel::full(), &s, policy, 10, compute);
    let orange = multilevel_eval(&OrangeFsModel::new(), &s, policy, 10, compute);
    let gain = ours.progress_rate / orange.progress_rate;
    assert!(gain > 1.15, "progress gain over OrangeFS {gain}");
}

#[test]
fn process_ssd_ratio_rule_of_thumb() {
    // §III-F: the paper recommends 56-112 processes per SSD because that
    // saturates the device. Check the knee: one SSD's efficiency at 56
    // procs is close to its efficiency at 112 (saturated), while 8 procs
    // leave bandwidth unused at the same per-proc size only if the per-proc
    // stream can't saturate... with hugeblocks a few procs already
    // saturate, so verify the recommended band is safely saturated.
    let m = NvmeCrModel::full();
    for procs in [56u32, 112] {
        let s = Scenario {
            servers: 1,
            ..Scenario::new(procs, 64 << 20)
        };
        let eff = m.checkpoint_efficiency(&s);
        assert!(eff > 0.9, "{procs} procs on one SSD should saturate: {eff}");
    }
}

#[test]
fn efficiency_definition_matches_metrics_helper() {
    let m = NvmeCrModel::full();
    let s = Scenario::weak_scaling(112);
    let t = m.checkpoint_makespan(&s);
    let via_trait = m.checkpoint_efficiency(&s);
    let via_metrics = metrics::efficiency(s.total_bytes(), t, s.hw_peak_write());
    assert!((via_trait - via_metrics).abs() < 1e-12);
}
