//! Checkpointing under injected data-path faults: every scenario drives
//! real bytes through the full stack (microfs → NVMf capsules → SSD
//! shards) with a deterministic fault plan armed, and asserts that each
//! checkpoint either completes byte-identically (the reliability layer
//! absorbed the fault) or rolls back along the multi-level policy (the
//! fault was by design unabsorbable at the fast tier).

use chaos::{ChaosHandle, FaultAction, FaultPlan, FaultSite};
use cluster::{JobRequest, Scheduler, Topology};
use microfs::{FsConfig, FsError, MemDevice, MicroFs, OpenFlags};
use nvmecr::multilevel::MultiLevelPolicy;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::{RecoveryPolicy, RecoverySupervisor, RuntimeConfig};
use ssd::{Ssd, SsdConfig};
use telemetry::Telemetry;

/// A paper-testbed runtime whose initiators and filesystems report into a
/// private registry and consult `chaos` on every data-path operation.
fn chaos_testbed(
    procs: u32,
) -> (
    StorageRack,
    Topology,
    cluster::JobAllocation,
    RuntimeConfig,
    ChaosHandle,
    Telemetry,
) {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        telemetry: telemetry.clone(),
        chaos: chaos.clone(),
        ..RuntimeConfig::default()
    };
    (rack, topo, alloc, config, chaos, telemetry)
}

fn pattern(rank: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(rank * 7) % 251) as u8)
        .collect()
}

fn checkpoint(rt: &mut NvmeCrRuntime, rank: u32, name: &str, data: &[u8]) {
    let fs = rt.rank_fs(rank).unwrap();
    let fd = fs.create(name, 0o644).unwrap();
    fs.write(fd, data).unwrap();
    fs.close(fd).unwrap();
}

fn read_back(rt: &mut NvmeCrRuntime, rank: u32, name: &str, len: usize) -> Vec<u8> {
    let fs = rt.rank_fs(rank).unwrap();
    let fd = fs.open(name, OpenFlags::RDONLY, 0).unwrap();
    let mut buf = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = fs.read(fd, &mut buf[got..]).unwrap();
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd).unwrap();
    assert_eq!(got, len);
    buf
}

#[test]
fn checkpoints_survive_one_percent_capsule_corruption() {
    let (rack, topo, alloc, config, chaos, telemetry) = chaos_testbed(56);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    // 1% of command capsules and 1% of response capsules arrive corrupted.
    chaos.arm(
        FaultPlan::new(42)
            .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.01)
            .with_rate(FaultSite::CapsuleRx, FaultAction::CorruptPayload, 0.01),
        &telemetry,
    );
    let len = 256 << 10;
    for rank in 0..8u32 {
        checkpoint(&mut rt, rank, "/ckpt.dat", &pattern(rank, len));
    }
    for rank in 0..8u32 {
        assert_eq!(
            read_back(&mut rt, rank, "/ckpt.dat", len),
            pattern(rank, len),
            "rank {rank} checkpoint must be byte-identical under corruption"
        );
    }
    chaos.disarm();
    let snap = telemetry.snapshot();
    assert!(snap.counter("chaos.injected") > 0, "plan must have fired");
    assert!(
        snap.counter("fabric.crc_errors") > 0,
        "wire CRC must have caught corrupted capsules"
    );
    assert!(
        snap.counter("fabric.retries") > 0,
        "corrupted commands must have been retried"
    );
}

#[test]
fn checkpoints_survive_connection_resets() {
    let (rack, topo, alloc, config, chaos, telemetry) = chaos_testbed(56);
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    // 2% of commands observe their connection torn down mid-flight.
    chaos.arm(
        FaultPlan::new(7).with_rate(FaultSite::ConnReset, FaultAction::ResetConnection, 0.02),
        &telemetry,
    );
    let len = 128 << 10;
    for rank in 0..6u32 {
        checkpoint(&mut rt, rank, "/resets.dat", &pattern(rank, len));
    }
    for rank in 0..6u32 {
        assert_eq!(
            read_back(&mut rt, rank, "/resets.dat", len),
            pattern(rank, len)
        );
    }
    chaos.disarm();
    let snap = telemetry.snapshot();
    assert!(
        snap.counter("fabric.reconnects") > 0,
        "resets must reconnect"
    );
    let h = snap.histogram("fabric.reconnect_ns").unwrap();
    assert_eq!(
        h.count,
        snap.counter("fabric.reconnects"),
        "every reconnect is timed"
    );
}

/// One faulted checkpoint round at window depth `queue_depth`: 4 KiB
/// blocks (so a 256 KiB checkpoint crosses the fabric as 64+ commands per
/// submission window), 1% capsule corruption in both directions, 2%
/// connection resets, and one duplicated command capsule. After the
/// initial checkpoint, each rank overwrites the first half of its file —
/// the overwrite and the original land through the same pipelined window,
/// so the read-back also proves submission-order retirement. Returns every
/// rank's recovered bytes plus the run's telemetry.
fn faulted_deep_window_round(
    queue_depth: usize,
    seed: u64,
) -> (Vec<Vec<u8>>, telemetry::MetricsSnapshot) {
    let (rack, topo, alloc, mut config, chaos, telemetry) = chaos_testbed(56);
    config.fabric.queue_depth = queue_depth;
    config.block_size = 4 << 10;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    chaos.arm(
        FaultPlan::new(seed)
            .at_op(FaultSite::CapsuleTx, FaultAction::DuplicateCapsule, 10)
            .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.01)
            .with_rate(FaultSite::CapsuleRx, FaultAction::CorruptPayload, 0.01)
            .with_rate(FaultSite::ConnReset, FaultAction::ResetConnection, 0.02),
        &telemetry,
    );
    let len = 256 << 10;
    for rank in 0..6u32 {
        checkpoint(&mut rt, rank, "/deep.dat", &pattern(rank, len));
        // Overwrite the first half through the same window: if completions
        // retired out of submission order, stale first-write extents could
        // surface in the read-back below.
        let fs = rt.rank_fs(rank).unwrap();
        let fd = fs.open("/deep.dat", OpenFlags::RDWR, 0).unwrap();
        fs.write(fd, &vec![0xEE; len / 2]).unwrap();
        fs.close(fd).unwrap();
    }
    let recovered: Vec<Vec<u8>> = (0..6u32)
        .map(|rank| read_back(&mut rt, rank, "/deep.dat", len))
        .collect();
    chaos.disarm();
    (recovered, telemetry.snapshot())
}

#[test]
fn deep_window_recovers_byte_identically_to_lockstep() {
    let expect: Vec<Vec<u8>> = (0..6u32)
        .map(|rank| {
            let len = 256 << 10;
            let mut v = pattern(rank, len);
            v[..len / 2].fill(0xEE);
            v
        })
        .collect();

    let (deep, deep_snap) = faulted_deep_window_round(32, 11);
    assert_eq!(deep, expect, "QD=32 recovery must be byte-identical");
    assert!(deep_snap.counter("chaos.injected") > 0, "plan must fire");
    assert!(
        deep_snap.counter("fabric.crc_errors") > 0 && deep_snap.counter("fabric.retries") > 0,
        "corruption must be caught and retried at depth"
    );
    assert!(
        deep_snap.counter("fabric.reconnects") > 0,
        "resets must reconnect at depth"
    );
    assert!(
        deep_snap.counter("fabric.duplicates_suppressed") >= 1,
        "the duplicated capsule must execute once (replay cache)"
    );

    // Same seed at QD=1 (the lock-step exchange the window replaced): the
    // recovered bytes must be identical — depth changes scheduling, never
    // contents.
    let (lockstep, lock_snap) = faulted_deep_window_round(1, 11);
    assert_eq!(lockstep, expect, "QD=1 recovery must be byte-identical too");
    assert_eq!(
        deep, lockstep,
        "window depth must not change recovered bytes"
    );
    assert!(lock_snap.counter("chaos.injected") > 0);
}

#[test]
fn power_cut_mid_drain_loses_tail_and_rolls_back_multilevel() {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let ssd = Ssd::with_telemetry(
        SsdConfig {
            capacity: 1 << 30,
            capacitor: true,
            chaos: chaos.clone(),
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let ns = ssd.create_namespace(64 << 20).unwrap();
    for i in 0..4u64 {
        ssd.write(ns, i * 4096, &[i as u8; 4096]).unwrap();
    }
    // The capacitor drain is interrupted after two staged writes.
    chaos.arm(
        FaultPlan::new(3).at_op(
            FaultSite::CapacitorFlush,
            FaultAction::PowerCut { drain_writes: 2 },
            0,
        ),
        &telemetry,
    );
    let pf = ssd.power_failure();
    chaos.disarm();
    assert!(pf.flushed_bytes > 0, "the drain made partial progress");
    assert!(
        pf.lost_bytes > 0,
        "an interrupted drain loses the staged tail even with a capacitor"
    );
    // The fast tier is gone: the multi-level policy rolls the job back to
    // the last PFS-level checkpoint instead of the latest local one.
    let policy = MultiLevelPolicy::new(10);
    assert_eq!(policy.recovery_point(17, true), Some(17));
    assert_eq!(
        policy.recovery_point(17, false),
        Some(10),
        "with the fast tier lost, recovery rolls back to checkpoint 10"
    );
}

#[test]
fn torn_wal_append_recovers_prefix_exactly() {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let config = FsConfig {
        telemetry: telemetry.clone(),
        chaos: chaos.clone(),
        ..FsConfig::default()
    };
    let mut fs = MicroFs::format(MemDevice::new(64 << 20), config).unwrap();
    let data = pattern(0, 100_000);
    let fd = fs.create("/durable.dat", 0o644).unwrap();
    fs.write(fd, &data).unwrap();
    fs.close(fd).unwrap();
    // Power fails mid-append of the next operation's log record: only 6
    // bytes of the frame reach the device.
    chaos.arm(
        FaultPlan::new(9).at_op(
            FaultSite::WalAppend,
            FaultAction::TornWrite { keep_bytes: 6 },
            0,
        ),
        &telemetry,
    );
    let torn = fs.create("/torn.dat", 0o644);
    assert!(
        matches!(torn, Err(FsError::Io(_))),
        "the torn append must surface as an IO error, got {torn:?}"
    );
    chaos.disarm();
    assert!(telemetry.snapshot().counter("chaos.injected") >= 1);
    // CRASH: drop all volatile state, keep the device; recovery replays the
    // log and must see the durable prefix exactly — and no trace of the
    // torn operation.
    let dev = fs.into_device();
    let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
    assert!(fs.stat("/torn.dat").is_err(), "torn create never happened");
    assert_eq!(fs.stat("/durable.dat").unwrap().size, data.len() as u64);
    let fd = fs.open("/durable.dat", OpenFlags::RDONLY, 0).unwrap();
    let mut buf = vec![0u8; data.len()];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..]).unwrap();
        if n == 0 {
            break;
        }
        got += n;
    }
    assert_eq!(buf, data, "recovered bytes must be identical");
}

#[test]
fn shard_death_fails_over_and_recheckpoints() {
    // The shard-kill plan arms the *devices'* chaos handle (SsdConfig), not
    // the runtime's: the fault strikes below the fabric.
    let telemetry = Telemetry::new();
    let ssd_chaos = ChaosHandle::new();
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            chaos: ssd_chaos.clone(),
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(56)).unwrap();
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        telemetry: telemetry.clone(),
        ..RuntimeConfig::default()
    };
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let len = 64 << 10;
    checkpoint(&mut rt, 5, "/before.dat", &pattern(5, len));

    // The next shard IO kills its shard permanently.
    ssd_chaos.arm(
        FaultPlan::new(1).at_op(FaultSite::ShardIo, FaultAction::KillShard, 0),
        &telemetry,
    );
    let old_node = rt.rank_storage_node(5).unwrap();
    // The kill fires on the very first shard IO — the create's WAL append —
    // so any step of the doomed checkpoint may be the one that errors.
    let dead = {
        let fs = rt.rank_fs(5).unwrap();
        match fs.create("/doomed.dat", 0o644) {
            Err(_) => true,
            Ok(fd) => fs.write(fd, &pattern(5, len)).is_err() || fs.close(fd).is_err(),
        }
    };
    ssd_chaos.disarm();
    assert!(dead, "IO against a dead shard must fail, not hang or lie");

    // Runtime failover: a replacement namespace on a partner node, formatted
    // fresh; the re-issued checkpoint lands byte-identically.
    rt.fail_over_rank(5, &rack, &topo).unwrap();
    assert_ne!(rt.rank_storage_node(5).unwrap(), old_node);
    checkpoint(&mut rt, 5, "/after.dat", &pattern(5, len));
    assert_eq!(read_back(&mut rt, 5, "/after.dat", len), pattern(5, len));
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("driver.failovers"), 1);
    assert!(snap.counter("chaos.injected") >= 1);
}

/// A replicated (rep=2) paper testbed with two fault planes: device-level
/// faults (shard kills, media bit rot) arm `ssd_chaos` below the fabric,
/// wire-level faults arm the runtime handle carried in the config.
fn replicated_chaos_testbed() -> (
    StorageRack,
    Topology,
    cluster::JobAllocation,
    RuntimeConfig,
    ChaosHandle,
    ChaosHandle,
    Telemetry,
) {
    let telemetry = Telemetry::new();
    let ssd_chaos = ChaosHandle::new();
    let chaos = ChaosHandle::new();
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            chaos: ssd_chaos.clone(),
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 4);
    let alloc = sched.submit(&JobRequest::full_subscription(8)).unwrap();
    let config = RuntimeConfig {
        // Eight ranks share the single grant namespace: 32 MiB segments
        // keep the restore and scrub CRC walks cheap.
        namespace_bytes: 256 << 20,
        replication_factor: 2,
        telemetry: telemetry.clone(),
        chaos: chaos.clone(),
        ..RuntimeConfig::default()
    };
    (rack, topo, alloc, config, ssd_chaos, chaos, telemetry)
}

#[test]
fn replicated_restore_rolls_back_to_last_complete_epoch_under_chaos() {
    let (rack, topo, alloc, mut config, ssd_chaos, chaos, telemetry) = replicated_chaos_testbed();
    // Small blocks so the replica restore crosses the fabric as many
    // capsules — enough ops for the wire-fault plan below to fire.
    config.block_size = 64 << 10;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let len = 96 << 10;
    checkpoint(&mut rt, 3, "/sealed.dat", &pattern(3, len));
    rt.commit_epochs().unwrap();
    // Post-commit write: part of no complete epoch, so a manifest-driven
    // restore must roll it back rather than restore a torn half-epoch.
    checkpoint(&mut rt, 3, "/uncommitted.dat", &pattern(3, 32 << 10));
    // The rank crashes (its live extent map is gone), then the shared
    // grant shard dies permanently under a rank-0 write.
    rt.crash_rank(3).unwrap();
    ssd_chaos.arm(
        FaultPlan::new(5).at_op(FaultSite::ShardIo, FaultAction::KillShard, 0),
        &telemetry,
    );
    let dead = {
        let fs = rt.rank_fs(0).unwrap();
        match fs.create("/doomed.dat", 0o644) {
            Err(_) => true,
            Ok(fd) => fs.write(fd, &[0u8; 4096]).is_err() || fs.close(fd).is_err(),
        }
    };
    ssd_chaos.disarm();
    assert!(dead, "IO against the killed shard must fail");
    // Failover and replica restore run under an active wire-fault plan:
    // corrupted capsules in both directions while the surviving copy is
    // streamed back and byte-verified against the manifest.
    let old_node = rt.rank_storage_node(3).unwrap();
    chaos.arm(
        FaultPlan::new(17)
            .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.05)
            .with_rate(FaultSite::CapsuleRx, FaultAction::CorruptPayload, 0.05),
        &telemetry,
    );
    rt.fail_over_rank(3, &rack, &topo).unwrap();
    chaos.disarm();
    assert_ne!(rt.rank_storage_node(3).unwrap(), old_node);
    assert_eq!(
        read_back(&mut rt, 3, "/sealed.dat", len),
        pattern(3, len),
        "the sealed epoch must restore byte-identically"
    );
    {
        let fs = rt.rank_fs(3).unwrap();
        assert!(
            fs.stat("/uncommitted.dat").is_err(),
            "post-commit writes roll back with the incomplete epoch"
        );
    }
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("driver.failovers"), 1);
    assert_eq!(
        snap.counter("replication.degraded_restores"),
        1,
        "a crashed rank has no live map — the restore is degraded"
    );
    assert!(snap.counter("chaos.injected") > 0, "both plans must fire");
    assert!(
        snap.counter("fabric.crc_errors") > 0,
        "the restore stream must have absorbed wire corruption"
    );
    // The rank is healthy again: both copies scrub clean and it seals a
    // fresh epoch on the replacement namespace.
    let report = rt.scrub_rank(3).unwrap().unwrap();
    assert_eq!(report.unrecoverable, 0);
    assert_eq!(report.repaired, 0);
    assert_eq!(rt.commit_epoch_rank(3).unwrap(), Some(2));
}

#[test]
fn scrub_repairs_bit_rot_and_reports_double_corruption() {
    let (rack, topo, alloc, config, ssd_chaos, _chaos, telemetry) = replicated_chaos_testbed();
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let len = 128 << 10;
    checkpoint(&mut rt, 2, "/scrubbed.dat", &pattern(2, len));
    rt.commit_epochs().unwrap();
    // Latent media corruption on the next shard read: the scrub's first
    // primary-extent read flips one stored bit, the CRC walk catches it,
    // and read-repair heals it from the intact replica.
    ssd_chaos.arm(
        FaultPlan::new(23).at_op(FaultSite::ReplicaBitRot, FaultAction::CorruptPayload, 0),
        &telemetry,
    );
    let report = rt.scrub_rank(2).unwrap().unwrap();
    ssd_chaos.disarm();
    assert!(
        report.repaired >= 1,
        "bit rot must be repaired, got {report:?}"
    );
    assert_eq!(report.unrecoverable, 0);
    // The flip landed in the backing store; a clean re-scrub proves the
    // repair was written back, not merely observed.
    let report = rt.scrub_rank(2).unwrap().unwrap();
    assert_eq!(report.repaired, 0);
    assert_eq!(report.unrecoverable, 0);
    assert_eq!(read_back(&mut rt, 2, "/scrubbed.dat", len), pattern(2, len));
    // Seal another epoch: the commit flushes both copies, draining the
    // repair's bytes from device RAM to media — rot only bites durable
    // bytes (the volatile overlay masks flips in the backing store).
    assert_eq!(rt.commit_epoch_rank(2).unwrap(), Some(2));
    // Rot on every read strikes both copies of every extent: nothing
    // trustworthy is left to repair from, and the scrub must say so
    // rather than "heal" one corruption with another.
    ssd_chaos.arm(
        FaultPlan::new(29).with_rate(FaultSite::ReplicaBitRot, FaultAction::CorruptPayload, 1.0),
        &telemetry,
    );
    let report = rt.scrub_rank(2).unwrap().unwrap();
    ssd_chaos.disarm();
    assert!(
        report.unrecoverable >= 1,
        "double corruption must be reported, got {report:?}"
    );
    assert_eq!(report.repaired, 0, "no copy is trustworthy to repair from");
    let snap = telemetry.snapshot();
    assert!(snap.counter("replication.repairs") >= 1);
    assert!(snap.counter("chaos.injected") >= 3);
}

/// A fast-failing supervisor policy for tests: tiny backoff, generous
/// deadline, quarantine threshold as given.
fn test_policy(max_attempts: u32, quarantine_after: u32) -> RecoveryPolicy {
    RecoveryPolicy {
        max_attempts,
        base_backoff_ns: 1_000,
        deadline_ns: 30_000_000_000,
        quarantine_after,
    }
}

#[test]
fn supervisor_absorbs_nested_recovery_crash_on_second_attempt() {
    let (rack, topo, alloc, config, _ssd_chaos, chaos, telemetry) = replicated_chaos_testbed();
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let len = 64 << 10;
    for rank in 0..2u32 {
        checkpoint(&mut rt, rank, "/sup.dat", &pattern(rank, len));
    }
    rt.commit_epochs().unwrap();
    let handle = rt.crash_job();

    // The nested crash plane kills recovery op 2 of the first attempt —
    // with one attempt allowed, the attach must surface that kill.
    chaos.crash_in_recovery(2, &telemetry);
    let strict = RecoverySupervisor::new(test_policy(1, 0));
    assert!(
        strict.attach(handle.clone()).is_err(),
        "a single-attempt policy must fail when recovery is killed"
    );
    chaos.disarm_recovery();

    // Same kill, default budget: the second attempt replays the same log
    // from the top and must land byte-identically.
    chaos.crash_in_recovery(2, &telemetry);
    let supervised = RecoverySupervisor::new(test_policy(2, 0))
        .attach(handle)
        .expect("the second recovery attempt must absorb the nested crash");
    chaos.disarm_recovery();
    assert_eq!(supervised.outcome().restarts, 1);
    assert!(supervised.quarantined().is_empty());
    let mut rt = supervised.into_runtime();
    for rank in 0..2u32 {
        assert_eq!(
            read_back(&mut rt, rank, "/sup.dat", len),
            pattern(rank, len),
            "rank {rank} must recover byte-identically on the re-attempt"
        );
    }
    let snap = telemetry.snapshot();
    assert!(snap.counter("recovery.attempts") >= 3, "two attaches");
    assert!(snap.counter("recovery.restarts") >= 1);
    assert!(
        snap.counter("recovery.replay_reentries") >= 1,
        "the restart happened under an armed nested plane"
    );
    assert_eq!(snap.counter("recovery.quarantined"), 0);
}

#[test]
fn quarantine_serves_degraded_reads_until_rejoin() {
    let (rack, topo, alloc, config, _ssd_chaos, _chaos, telemetry) = replicated_chaos_testbed();
    let ranks = 8u32;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let len = 96 << 10;
    checkpoint(&mut rt, 1, "/sealed.dat", &pattern(1, len));
    rt.commit_epochs().unwrap();
    // Acknowledged but uncommitted: part of no complete epoch, so the
    // degraded image (last complete epoch only) must not contain it.
    checkpoint(&mut rt, 1, "/tail.dat", &pattern(2, 16 << 10));
    // The shared grant shard dies: every rank's primary is unreachable,
    // and every recovery attempt must fail the same way.
    rt.kill_primary_shard(1).unwrap();
    let handle = rt.crash_job();

    // Quarantine disabled: the attach fails outright — this is the
    // pre-supervisor behavior the quarantine path exists to replace.
    let strict = RecoverySupervisor::new(test_policy(2, 0));
    assert!(
        strict.attach(handle.clone()).is_err(),
        "with quarantine disabled a dead shard must fail the attach"
    );

    // Quarantine enabled: the attach succeeds, every rank behind the dead
    // shard is parked (co-located ranks share the grant namespace and its
    // blast radius), and the sealed epoch is readable from the replicas.
    let mut supervised = RecoverySupervisor::new(test_policy(2, 2))
        .attach(handle)
        .expect("quarantine must absorb the dead shard");
    let parked = supervised.quarantined().to_vec();
    assert!(parked.contains(&1), "rank 1 sat on the dead shard");
    assert_eq!(
        supervised.outcome().degraded_serves,
        parked.len() as u64,
        "every quarantined rank has a live replica to serve from"
    );
    for rank in 0..ranks {
        assert_eq!(
            supervised.runtime().is_mounted(rank),
            !parked.contains(&rank)
        );
    }
    {
        let degraded = supervised
            .degraded_mut(1)
            .expect("rank 1 must serve degraded");
        assert!(degraded.epoch() >= 1);
        assert_eq!(
            degraded.read_file("/sealed.dat").expect("degraded read"),
            pattern(1, len),
            "the last complete epoch must be readable while quarantined"
        );
        assert!(
            degraded.stat("/tail.dat").is_err(),
            "uncommitted tail writes are not part of the degraded image"
        );
    }
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("recovery.quarantined"), parked.len() as u64);
    assert_eq!(
        snap.counter("recovery.degraded_serves"),
        parked.len() as u64
    );
    assert_eq!(
        snap.counter("recovery.replay_reentries"),
        0,
        "no nested plane was armed — these restarts are not replay re-entries"
    );

    // Rejoin rank 1 through the failover path: replacement namespace on a
    // partner domain, restored from the replica, read-write again.
    supervised.rejoin(1, &rack, &topo).expect("rejoin");
    assert!(!supervised.quarantined().contains(&1));
    assert!(supervised.degraded_mut(1).is_none());
    let rt = supervised.runtime_mut();
    assert!(rt.is_mounted(1));
    assert_eq!(read_back(rt, 1, "/sealed.dat", len), pattern(1, len));
    checkpoint(rt, 1, "/after_rejoin.dat", &pattern(3, len));
    assert_eq!(read_back(rt, 1, "/after_rejoin.dat", len), pattern(3, len));
    assert_eq!(rt.commit_epoch_rank(1).unwrap(), Some(2));
    // Rejoining a healthy rank is a caller error, not a silent failover.
    assert!(supervised.rejoin(1, &rack, &topo).is_err());
}

#[test]
fn failover_restore_reattempts_after_nested_kill() {
    // The nested crash plane can also kill a failover's replica restore
    // (chain materialization / extent copy); a second attempt over the
    // same replica must succeed — the restore is idempotent.
    let (rack, topo, alloc, mut config, ssd_chaos, chaos, telemetry) = replicated_chaos_testbed();
    config.delta_chain_max = 4;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let len = 96 << 10;
    checkpoint(&mut rt, 3, "/base.dat", &pattern(3, len));
    rt.commit_epochs().unwrap();
    checkpoint(&mut rt, 3, "/delta.dat", &pattern(4, 16 << 10));
    rt.commit_epochs().unwrap();
    rt.crash_rank(3).unwrap();
    ssd_chaos.arm(
        FaultPlan::new(13).at_op(FaultSite::ShardIo, FaultAction::KillShard, 0),
        &telemetry,
    );
    let dead = {
        let fs = rt.rank_fs(0).unwrap();
        match fs.create("/doomed.dat", 0o644) {
            Err(_) => true,
            Ok(fd) => fs.write(fd, &[0u8; 4096]).is_err() || fs.close(fd).is_err(),
        }
    };
    ssd_chaos.disarm();
    assert!(dead, "IO against the killed shard must fail");
    // Recovery op 0 of the failover is the first chain-materialize link.
    chaos.crash_in_recovery(0, &telemetry);
    assert!(
        rt.fail_over_rank(3, &rack, &topo).is_err(),
        "the nested kill must surface from the restore"
    );
    chaos.begin_recovery_attempt();
    rt.fail_over_rank(3, &rack, &topo)
        .expect("the second restore attempt over the same replica must succeed");
    chaos.disarm_recovery();
    assert_eq!(read_back(&mut rt, 3, "/base.dat", len), pattern(3, len));
    assert_eq!(
        read_back(&mut rt, 3, "/delta.dat", 16 << 10),
        pattern(4, 16 << 10)
    );
    let report = rt.scrub_rank(3).unwrap().unwrap();
    assert_eq!(report.unrecoverable, 0);
}

#[test]
fn delta_chain_failover_restores_newest_complete_epoch() {
    // Same shard-kill scenario as the rollback test above, but with
    // copy-on-write delta epochs on: four sealed epochs form a
    // full + 3-delta lineage, a fifth is mid-flight when the rank and
    // then its shard die, and the failover restore must materialize the
    // chain newest-complete-backward — every sealed file byte-identical,
    // the unsealed one rolled back.
    let (rack, topo, alloc, mut config, ssd_chaos, _chaos, telemetry) = replicated_chaos_testbed();
    config.delta_chain_max = 4;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
    let len = 96 << 10;
    checkpoint(&mut rt, 3, "/base.dat", &pattern(3, len));
    rt.commit_epochs().unwrap(); // epoch 1: full anchor
    for d in 0..3u32 {
        checkpoint(
            &mut rt,
            3,
            &format!("/delta_{d}.dat"),
            &pattern(3 + d, 16 << 10),
        );
        rt.commit_epochs().unwrap(); // epochs 2..4: sparse deltas
    }
    // Mid-delta-commit crash shape: epoch 5's writes land on both copies
    // but its delta manifest is never sealed.
    checkpoint(&mut rt, 3, "/unsealed.dat", &pattern(9, 16 << 10));
    rt.crash_rank(3).unwrap();
    ssd_chaos.arm(
        FaultPlan::new(11).at_op(FaultSite::ShardIo, FaultAction::KillShard, 0),
        &telemetry,
    );
    let dead = {
        let fs = rt.rank_fs(0).unwrap();
        match fs.create("/doomed.dat", 0o644) {
            Err(_) => true,
            Ok(fd) => fs.write(fd, &[0u8; 4096]).is_err() || fs.close(fd).is_err(),
        }
    };
    ssd_chaos.disarm();
    assert!(dead, "IO against the killed shard must fail");
    rt.fail_over_rank(3, &rack, &topo).unwrap();
    assert_eq!(
        read_back(&mut rt, 3, "/base.dat", len),
        pattern(3, len),
        "the chain's full anchor must restore byte-identically"
    );
    for d in 0..3u32 {
        assert_eq!(
            read_back(&mut rt, 3, &format!("/delta_{d}.dat"), 16 << 10),
            pattern(3 + d, 16 << 10),
            "delta epoch {d} must restore byte-identically through the chain"
        );
    }
    {
        let fs = rt.rank_fs(3).unwrap();
        assert!(
            fs.stat("/unsealed.dat").is_err(),
            "the unsealed epoch rolls back with the restore"
        );
    }
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("replication.degraded_restores"), 1);
    assert!(snap.counter("cow.delta_extents") > 0, "deltas were sealed");
    assert!(
        snap.gauge("cow.chain_len").peak >= 4,
        "the restore walked a full + 3-delta lineage (peak {})",
        snap.gauge("cow.chain_len").peak
    );
    // The rank is healthy on its replacement namespace: the next commit
    // re-anchors the chain with a forced full manifest.
    assert_eq!(rt.commit_epoch_rank(3).unwrap(), Some(5));
    let report = rt.scrub_rank(3).unwrap().unwrap();
    assert_eq!(report.unrecoverable, 0);
}
