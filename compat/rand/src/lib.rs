//! Offline stand-in for `rand`: seeded deterministic generators with the
//! `SeedableRng` / `RngExt` surface this workspace uses. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality enough for
//! simulation draws and property tests, and fully reproducible.

use std::ops::Range;

/// Core of every generator: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values samplable uniformly from all bit patterns (the `random()` call).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Half-open ranges samplable uniformly (the `random_range(a..b)` call).
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Multiply-shift bounded draw (Lemire); bias < 2^-64.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range");
        let u: f64 = Standard::sample(rng);
        let v = lo + u * (hi - lo);
        // Guard against rounding up to the excluded bound.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Convenience methods on any generator.
pub trait RngExt: RngCore {
    /// Uniform draw over every bit pattern of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Biased coin flip with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small fast generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    /// The default "strong" generator — same engine in this stand-in.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
