//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API this workspace uses, implemented over `std::sync`. A panicked
//! holder does not poison the lock — matching parking_lot semantics, which
//! the crash-injection tests rely on.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
