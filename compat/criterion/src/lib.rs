//! Offline stand-in for `criterion`: the `Criterion` / group / `Bencher`
//! API this workspace's benches use, backed by a deliberately small
//! timing loop (short warmup, a handful of timed batches, report the
//! fastest). Numbers are indicative, not statistically rigorous — the
//! goal is that `cargo bench` runs offline and prints per-iteration
//! times, and `cargo test` compiles the benches.
//!
//! When invoked with `--test` (as `cargo test` does for
//! `harness = false` benches), each benchmark body runs exactly once as
//! a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Runs one benchmark's timing loop.
pub struct Bencher {
    mode: Mode,
    /// Best observed per-iteration time, filled by [`Bencher::iter`].
    best_ns: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Measure,
    SmokeTest,
}

impl Bencher {
    /// Time `f`, keeping the fastest batch's per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.mode == Mode::SmokeTest {
            std::hint::black_box(f());
            return;
        }
        // Warmup + batch sizing: grow until one batch takes >= 5ms.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.best_ns = best;
    }
}

/// Identifier for one case within a benchmark group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke {
                Mode::SmokeTest
            } else {
                Mode::Measure
            },
        }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mode: self.mode,
            best_ns: f64::NAN,
        };
        f(&mut b);
        report(name, b.best_ns, None, self.mode);
        self
    }

    /// Open a named group of related cases.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A set of related benchmark cases sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the loop sizes itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one case in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            mode: self.criterion.mode,
            best_ns: f64::NAN,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.best_ns,
            self.throughput,
            self.criterion.mode,
        );
        self
    }

    /// Run one case with an input handed through to the closure.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mode: self.criterion.mode,
            best_ns: f64::NAN,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.best_ns,
            self.throughput,
            self.criterion.mode,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn report(name: &str, best_ns: f64, throughput: Option<Throughput>, mode: Mode) {
    if mode == Mode::SmokeTest {
        println!("bench {name}: ok (smoke test)");
        return;
    }
    let time = if best_ns < 1_000.0 {
        format!("{best_ns:.1} ns")
    } else if best_ns < 1_000_000.0 {
        format!("{:.2} µs", best_ns / 1_000.0)
    } else {
        format!("{:.3} ms", best_ns / 1_000_000.0)
    };
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let gibps = n as f64 / best_ns; // bytes/ns == GB/s
            println!("bench {name}: {time}/iter, {gibps:.3} GB/s");
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / best_ns * 1_000.0; // elem/ns -> Melem/s
            println!("bench {name}: {time}/iter, {meps:.2} Melem/s");
        }
        None => println!("bench {name}: {time}/iter"),
    }
}

/// Group benchmark functions under one registry entry.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("sum", |b| b.iter(|| (0u64..32).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut count = 0u32;
        let mut b = Bencher {
            mode: Mode::SmokeTest,
            best_ns: f64::NAN,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }
}
