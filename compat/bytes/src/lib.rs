//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it uses: a cheaply cloneable, reference-
//! counted immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the little-endian cursor traits ([`Buf`], [`BufMut`]).
//! Clones and sub-slices of `Bytes` never copy payload bytes — the property
//! the NVMf zero-copy data plane is built on.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Internally an `Arc<[u8]>` plus a window; `clone` and `slice` are
/// reference-count operations and never copy the payload.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// A buffer holding `data` (copies once, at construction).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// A buffer over a static slice. (The real crate is zero-alloc here;
    /// this stand-in copies once at construction, which is equivalent for
    /// every use in this workspace.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice [{lo}, {hi}) out of range for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them. Zero-copy.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Advance the view by `cnt` bytes.
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} past end ({})", self.len());
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { buf: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Read cursor over a byte buffer (little-endian accessors used by the
/// capsule codec). Every getter advances the cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The unread window.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        Bytes::advance(self, cnt);
    }
}

/// Write cursor (little-endian appenders used by the capsule codec).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(c, b);
        assert!(Arc::ptr_eq(&b.data, &s.data), "slice must not copy");
    }

    #[test]
    fn cursor_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u8(7);
        m.put_u16_le(513);
        m.put_u64_le(u64::MAX - 1);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 513);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![9u8; 10]);
        let head = b.split_to(4);
        assert_eq!(head.len(), 4);
        assert_eq!(b.len(), 6);
    }
}
