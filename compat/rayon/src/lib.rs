//! Offline stand-in for `rayon`: genuinely parallel data iteration over
//! `std::thread::scope`, covering the combinator surface this workspace
//! uses. Unlike a sequential shim, work really fans out across cores — the
//! parallel rank-driving benchmarks depend on that.
//!
//! The model is eager: a "parallel iterator" owns its items in a `Vec`,
//! and each combinator that runs user code (`map`, `for_each`, ...)
//! performs one parallel pass. Items are distributed to
//! `available_parallelism()` workers in contiguous chunks, preserving
//! output order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads a parallel pass uses.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every item on a scoped thread pool, preserving order.
/// Items are claimed one at a time from a shared cursor, so skewed
/// per-item cost still balances across workers.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let out: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    {
        let (f, slots, out, cursor) = (&f, &slots, &out, &cursor);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("each slot claimed once");
                    let r = f(item);
                    *out[i].lock().unwrap() = Some(r);
                });
            }
        });
    }
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// An eager parallel iterator: owns its items, runs combinators in
/// parallel passes.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Run `f` on every item in parallel, discarding results.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    /// Parallel map keeping only `Some` results (order preserved).
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Parallel filter (order preserved).
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        ParIter {
            items: parallel_map(self.items, |t| if f(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Gather results into a collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Parallel fold-equivalent: map then sequential reduce.
    pub fn reduce<F: Fn(T, T) -> T + Sync>(self, identity: impl Fn() -> T, op: F) -> T {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par!(u32, u64, usize, i32);

/// Borrowing conversions (`par_iter`, `par_iter_mut`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send + 'a;
    /// Parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

/// Mutable borrowing conversion (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (an exclusive reference).
    type Item: Send + 'a;
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// The glob-importable trait/adapter surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        (0..256usize).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::yield_now();
        });
        if super::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1, "work must actually fan out");
        }
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1u32; 64];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn filter_map_and_sum() {
        let s: u64 = (0u64..100)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(x))
            .sum();
        assert_eq!(s, (0..100).filter(|x| x % 2 == 0).sum::<u64>());
    }
}
