//! Offline stand-in for `proptest`: the strategy/macro surface this
//! workspace uses, implemented as deterministic random *sampling*. Each
//! `proptest!` test draws `ProptestConfig::cases` inputs from its
//! strategies (seeded by the test name, so runs are reproducible) and
//! fails with the first counterexample found. There is no shrinking —
//! a failing case is reported as drawn.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test tunables. Only the fields this workspace sets exist.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to draw per test.
        pub cases: u32,
        /// Accepted for compatibility; sampling never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; this runner never forks.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                fork: false,
            }
        }
    }

    impl ProptestConfig {
        /// A config overriding just the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator used to draw strategy samples.
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seed from a test name and case index (FNV-1a over the name, so
        /// the stream is stable across runs and independent of std's
        /// randomized hashers).
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngExt, SampleUniform};
    use std::fmt::Debug;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-process generated values with `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<T: SampleUniform + Copy + Debug> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.start..self.end)
        }
    }

    /// Full-domain generation (the `any::<T>()` strategies).
    pub trait ArbitraryValue: Debug + Sized {
        /// Draw from every representable value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Strategy over the whole domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Uniform draw over all values of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// One `prop_oneof!` arm: a weight and a type-erased sampler.
    pub type UnionArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

    /// Weighted choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Build from `(weight, sampler)` arms. Panics if empty or all-zero.
        pub fn new(arms: Vec<UnionArm<T>>) -> Self {
            let total: u32 = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    /// One `prop_oneof!` arm: erase the strategy type behind a sampler
    /// closure so heterogeneous arms unify on their value type.
    pub fn union_arm<S: Strategy + 'static>(weight: u32, strategy: S) -> UnionArm<S::Value> {
        (weight, Box::new(move |rng| strategy.sample(rng)))
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.random_range(0u32..self.total);
            for (w, f) in &self.arms {
                if pick < *w {
                    return f(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    /// String generation from a tiny regex subset: sequences of literal
    /// characters and `[class]` atoms, each optionally quantified with
    /// `{n}` or `{m,n}`. Covers the patterns used in this workspace
    /// (e.g. `"[a-z0-9_.]{1,40}"`).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0;
            while i < chars.len() {
                // One atom: a char class or a literal.
                let alphabet: Vec<char> = if chars[i] == '[' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed [class] in strategy regex")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                } else {
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                // Optional {n} / {m,n} quantifier.
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed {quantifier} in strategy regex")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                        None => {
                            let n: usize = body.parse().unwrap();
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                let count = if lo == hi {
                    lo
                } else {
                    rng.random_range(lo..hi + 1)
                };
                for _ in 0..count {
                    out.push(alphabet[rng.random_range(0..alphabet.len())]);
                }
            }
            out
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy yielding `None` a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// Generate `Option`s of `inner` values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {:?} == {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests: each `fn` is expanded into a `#[test]` that
/// draws `cases` random inputs and runs the body per draw.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $p = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed at case {}/{}: {}", case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0u8..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            let _ = b;
        }

        #[test]
        fn vec_and_map(mut v in crate::collection::vec(any::<u8>(), 1..20)) {
            v.sort_unstable();
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn regex_strings(name in "[a-z0-9_.]{1,40}") {
            prop_assert!(!name.is_empty() && name.len() <= 40);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit() || c == '_' || c == '.'));
        }

        #[test]
        fn oneof_weights(v in prop_oneof![3 => Just(1u8), 1 => 10u8..20]) {
            prop_assert!(v == 1 || (10..20).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{any, Strategy};
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(any::<u64>().sample(&mut a), any::<u64>().sample(&mut b));
    }
}
