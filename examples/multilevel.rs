//! Multi-level checkpointing (§III-F / §IV-I): most checkpoints on the fast
//! NVMe-CR tier, every tenth on replicated Lustre, and what each choice
//! costs in checkpoint time and application progress rate.
//!
//! Run with: `cargo run --release --example multilevel`

use baselines::model::StorageModel;
use baselines::{GlusterFsModel, LustreModel, OrangeFsModel, Scenario};
use nvmecr::multilevel::{CheckpointLevel, MultiLevelPolicy};
use workloads::{multilevel_eval, CoMD, NvmeCrModel};

fn main() {
    let s = Scenario::strong_scaling(448);
    let policy = MultiLevelPolicy::new(10);
    let comd = CoMD::strong_scaling(448);
    let compute = comd.compute_interval();

    println!("Table II setting: 448 procs, 10 checkpoints, 1-in-10 to Lustre");
    println!(
        "per-checkpoint volume: {:.2} GB; compute interval: {:.1}s\n",
        s.total_bytes() as f64 / 1e9,
        compute.as_secs()
    );

    // The schedule itself.
    let schedule: Vec<&str> = (1..=10)
        .map(|i| match policy.level_for(i) {
            CheckpointLevel::Fast => "NVMe",
            CheckpointLevel::Parallel => "Lustre",
        })
        .collect();
    println!("schedule: {}", schedule.join(" -> "));
    let lustre = LustreModel::new();
    println!(
        "tier checkpoint times: NVMe-CR {:.2}s, Lustre {:.1}s\n",
        NvmeCrModel::full().checkpoint_makespan(&s).as_secs(),
        lustre.checkpoint_makespan(&s).as_secs()
    );

    println!(
        "{:<26} {:>14} {:>13} {:>14}",
        "tier-1 system", "ckpt total (s)", "recovery (s)", "progress rate"
    );
    let systems: Vec<Box<dyn StorageModel>> = vec![
        Box::new(OrangeFsModel::new()),
        Box::new(GlusterFsModel::new()),
        Box::new(NvmeCrModel::full()),
        Box::new(NvmeCrModel::without_coalescing()),
    ];
    let labels = [
        "OrangeFS",
        "GlusterFS",
        "NVMe-CR",
        "NVMe-CR (no coalescing)",
    ];
    for (label, m) in labels.iter().zip(&systems) {
        let r = multilevel_eval(m.as_ref(), &s, policy, 10, compute);
        println!(
            "{:<26} {:>14.2} {:>13.3} {:>14.3}",
            label,
            r.checkpoint_time.as_secs(),
            r.recovery_time.as_secs(),
            r.progress_rate
        );
    }

    // The fault-tolerance argument: what a cascading failure costs under
    // each recovery point.
    println!("\ncascading-failure rollback after 17 checkpoints:");
    for (intact, label) in [(true, "fast tier intact"), (false, "fast tier lost")] {
        println!(
            "  {label}: restart from checkpoint {:?}, {} interval(s) of work lost",
            policy.recovery_point(17, intact),
            policy.lost_intervals(17, intact)
        );
    }
    println!("\n(paper Table II: ckpt 85.9 / 44.5 / 39.5 s; progress 0.252 / 0.402 / 0.423)");
}
