//! CoMD checkpoint campaign: the paper's §IV-H workload in miniature.
//!
//! Runs a CoMD-like application (compute phases + periodic N-N dumps)
//! functionally over the full stack, then evaluates the same workload at
//! paper scale (448 processes) with the timing models, printing the
//! efficiency numbers of Figure 9.
//!
//! Run with: `cargo run --release --example comd_checkpoint`

use baselines::model::StorageModel;
use baselines::{GlusterFsModel, OrangeFsModel, Scenario};
use workloads::driver::run_functional_checkpoints;
use workloads::{CoMD, NvmeCrModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional pass: real bytes, 56 ranks, 3 checkpoints, 2 rank crashes.
    println!("functional CoMD campaign (56 ranks, 3 checkpoints, 1 MiB/rank):");
    let report = run_functional_checkpoints(56, 3, 1 << 20, &[3, 42])?;
    println!(
        "  verified {} MiB across {} ranks; {} ranks crash-recovered ({} records replayed)",
        report.bytes_verified >> 20,
        report.procs,
        report.recovered_ranks,
        report.replayed_records
    );
    println!(
        "  metadata: {} KiB on device, {} KiB DRAM across the job",
        report.metadata_bytes >> 10,
        report.dram_bytes >> 10
    );

    // Model pass: paper-scale weak scaling (Figure 9c/9d).
    let comd = CoMD::weak_scaling();
    println!(
        "\nCoMD weak-scaling model: {} atoms/rank, {} MiB/ckpt/rank, {:.1}s compute/interval",
        comd.atoms_per_rank,
        comd.checkpoint_bytes() >> 20,
        comd.compute_interval().as_secs()
    );
    println!(
        "\n{:>8} {:>12} {:>12} {:>12}",
        "procs", "NVMe-CR", "GlusterFS", "OrangeFS"
    );
    let systems: Vec<Box<dyn StorageModel>> = vec![
        Box::new(NvmeCrModel::full()),
        Box::new(GlusterFsModel::new()),
        Box::new(OrangeFsModel::new()),
    ];
    for procs in [56u32, 112, 224, 448] {
        let s = Scenario::weak_scaling(procs);
        let effs: Vec<f64> = systems
            .iter()
            .map(|m| m.checkpoint_efficiency(&s))
            .collect();
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3}",
            procs, effs[0], effs[1], effs[2]
        );
    }
    println!("(checkpoint efficiency; paper: NVMe-CR reaches 0.96 at 448 procs)");
    Ok(())
}
