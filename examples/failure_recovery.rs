//! Failure drill: MTBF-driven fault injection against a running checkpoint
//! campaign, demonstrating every recovery path the runtime has —
//! process-crash replay, capacitor-backed power loss, and the cascading
//! failure that forces the multi-level policy onto the parallel filesystem.
//!
//! Run with: `cargo run --example failure_recovery`

use cluster::{FaultInjector, FaultKind, JobRequest, Scheduler, Topology};
use nvmecr::multilevel::MultiLevelPolicy;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use simkit::SimTime;
use ssd::SsdConfig;
use workloads::CoMD;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        },
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(56))?;
    let mut rt = NvmeCrRuntime::init(
        &rack,
        &topo,
        &alloc,
        RuntimeConfig {
            namespace_bytes: 4 << 30,
            ..RuntimeConfig::default()
        },
    )?;
    let comd = CoMD::weak_scaling();
    let len = 512 << 10;

    // Draw a fault schedule: node MTBF of ~an hour on a 24-node cluster,
    // 15% of failures cascade to the whole domain.
    let mut injector = FaultInjector::new(&topo, 2026, SimTime::secs(3600.0), 0.15);
    println!("system MTBF: {:.0}s", injector.system_mtbf().as_secs());
    let faults = injector.schedule(&topo, SimTime::secs(3600.0));
    println!("drawn {} fault(s) in a 1-hour window:", faults.len());

    // Take a checkpoint, then apply each fault and recover.
    let policy = MultiLevelPolicy::new(10);
    let mut ckpts_taken = 0u32;
    for (i, fault) in faults.iter().enumerate() {
        // One checkpoint round before the fault strikes.
        ckpts_taken += 1;
        for rank in 0..rt.rank_count() {
            let fs = rt.rank_fs(rank)?;
            fs.mkdir("/comd", 0o755).ok();
            fs.mkdir(&format!("/comd/ckpt_{ckpts_taken:03}"), 0o755)?;
            let fd = fs.create(&CoMD::checkpoint_path(rank, ckpts_taken), 0o644)?;
            fs.write(fd, &comd.checkpoint_payload(rank, ckpts_taken, len))?;
            fs.close(fd)?;
        }
        match fault.kind {
            FaultKind::Node(node) => {
                println!("fault {i}: node {:?} at t={}", node, fault.at);
                // Compute-node loss kills its ranks; recover them all.
                let victims: Vec<u32> = alloc
                    .rank_nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n == node)
                    .map(|(r, _)| r as u32)
                    .collect();
                if victims.is_empty() {
                    match topo.kind_of(node) {
                        cluster::NodeKind::Storage { .. } => {
                            // Power-fail its SSDs (capacitors on).
                            let lost = rack.power_fail_nodes(&[node]);
                            println!(
                                "  storage node power failure: {lost} bytes lost (capacitor flush)"
                            );
                        }
                        cluster::NodeKind::Compute { .. } => {
                            println!("  idle compute node, job unaffected");
                        }
                    }
                } else {
                    for &r in &victims {
                        rt.crash_rank(r)?;
                        rt.recover_rank(r)?;
                    }
                    println!("  {} rank(s) crash-recovered via log replay", victims.len());
                }
            }
            FaultKind::Domain(d) => {
                let intact = false; // the domain held someone's fast tier
                let point = policy.recovery_point(ckpts_taken, intact);
                println!(
                    "fault {i}: cascading failure of domain {:?} at t={} -> restart from checkpoint {:?} ({} interval(s) lost)",
                    d,
                    fault.at,
                    point,
                    policy.lost_intervals(ckpts_taken, intact)
                );
            }
        }
    }

    // Verify the newest checkpoint everywhere.
    let mut verified = 0u64;
    for rank in 0..rt.rank_count() {
        let expect = comd.checkpoint_payload(rank, ckpts_taken, len);
        let fs = rt.rank_fs(rank)?;
        let fd = fs.open(
            &CoMD::checkpoint_path(rank, ckpts_taken),
            microfs::OpenFlags::RDONLY,
            0,
        )?;
        let mut buf = vec![0u8; len];
        let mut got = 0;
        while got < len {
            let n = fs.read(fd, &mut buf[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        fs.close(fd)?;
        assert_eq!(buf, expect, "rank {rank}");
        verified += len as u64;
    }
    println!(
        "survived the drill: newest checkpoint verified ({} MiB)",
        verified >> 20
    );
    rt.finalize()?;
    Ok(())
}
