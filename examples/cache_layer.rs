//! The paper's future work, live: "we plan to study the impact of a cache
//! layer over NVMe-CR" (§V).
//!
//! Runs microfs over a [`nvmecr::CachedBlockDevice`] in both write policies
//! and shows (a) the read cache absorbing restart re-reads and (b) the
//! §III-D hazard — write-back buffering losing a checkpoint to a crash —
//! which is why the shipped design writes through.
//!
//! Run with: `cargo run --example cache_layer`

use microfs::block::BlockDevice;
use microfs::{FsConfig, MemDevice, MicroFs, OpenFlags};
use nvmecr::{CachedBlockDevice, WritePolicy};

fn read_twice(fs: &mut MicroFs<CachedBlockDevice<MemDevice>>, path: &str, len: usize) {
    for _ in 0..2 {
        let fd = fs.open(path, OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; len];
        let mut got = 0;
        while got < len {
            let n = fs.read(fd, &mut buf[got..]).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
        fs.close(fd).unwrap();
    }
}

fn main() {
    // --- Read caching under write-through (safe) ---
    let dev = CachedBlockDevice::new(
        MemDevice::new(64 << 20),
        4096,
        8 << 20,
        WritePolicy::WriteThrough,
    );
    let mut fs = MicroFs::format(dev, FsConfig::default()).unwrap();
    let fd = fs.create("/ckpt.dat", 0o644).unwrap();
    fs.write(fd, &vec![7u8; 4 << 20]).unwrap();
    fs.close(fd).unwrap();
    read_twice(&mut fs, "/ckpt.dat", 4 << 20);
    let stats = fs.device().stats();
    let dev_reads = fs.device().counters().reads;
    println!("write-through + read cache:");
    println!(
        "  restart read twice: {} cache hits, {} misses, {} device reads total",
        stats.read_hits, stats.read_misses, dev_reads
    );
    // Crash through the cache: write-through loses nothing.
    let inner = fs.into_device().into_inner_discarding();
    let fs2 = MicroFs::mount(inner, FsConfig::default()).unwrap();
    println!(
        "  after crash: checkpoint intact ({} bytes)\n",
        fs2.stat("/ckpt.dat").unwrap().size
    );

    // --- The §III-D hazard: write-back loses undrained checkpoints ---
    let dev = CachedBlockDevice::new(
        MemDevice::new(64 << 20),
        4096,
        32 << 20,
        WritePolicy::WriteBack,
    );
    let mut fs = MicroFs::format(dev, FsConfig::default()).unwrap();
    let fd = fs.create("/ckpt.dat", 0o644).unwrap();
    fs.write(fd, &vec![9u8; 4 << 20]).unwrap();
    // Deliberately no fsync: the "checkpoint" sits in the write-back
    // buffer only.
    let dirty = fs.device().dirty_bytes();
    println!("write-back, crash before drain:");
    println!("  {} KiB still volatile at crash time", dirty >> 10);
    let inner = fs.into_device().into_inner_discarding(); // crash
    match MicroFs::mount(inner, FsConfig::default()) {
        Ok(fs) => match fs.stat("/ckpt.dat") {
            Ok(st) => println!(
                "  mounted; /ckpt.dat shows {} bytes — contents NOT trustworthy",
                st.size
            ),
            Err(_) => println!("  mounted; /ckpt.dat is gone"),
        },
        Err(e) => println!("  partition did not even mount: {e}"),
    }
    println!("  => this is why NVMe-CR writes through (SIII-D)");
}
