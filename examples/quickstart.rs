//! Quickstart: the smallest end-to-end NVMe-CR session.
//!
//! Builds the paper's testbed (16 compute nodes x 28 cores, 8 storage nodes
//! with one NVMe SSD each), schedules a 56-rank job, checkpoints from every
//! rank through NVMe-over-Fabrics into per-rank private microfs namespaces,
//! crashes one rank, recovers it by replaying the operation log, and reads
//! the checkpoint back.
//!
//! Run with: `cargo run --example quickstart`

use cluster::{JobRequest, Scheduler, Topology};
use microfs::OpenFlags;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use ssd::SsdConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The cluster: topology, devices, NVMf target daemons.
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        },
    );
    println!(
        "cluster: {} compute cores, {} SSDs",
        topo.total_cores(),
        rack.ssd_count()
    );

    // 2. Schedule a job. Storage is granted at NVMe-namespace granularity
    //    on partner failure domains.
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(56))?;
    println!(
        "job: {} ranks on {} nodes, {} storage grant(s)",
        alloc.rank_nodes.len(),
        alloc.compute_nodes().len(),
        alloc.storage.len()
    );

    // 3. Initialize the runtime (the MPI_Init wrapper's work): the storage
    //    balancer partitions each granted SSD among the ranks sharing it.
    let config = RuntimeConfig {
        namespace_bytes: 4 << 30,
        ..RuntimeConfig::default()
    };
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let p = rt.placement().per_rank[0];
    println!(
        "rank 0: SSD grant {}, local rank {}/{}, segment {} MiB @ {} MiB",
        p.grant,
        p.local_rank,
        p.comm_size,
        p.segment_size >> 20,
        p.segment_offset >> 20
    );

    // 4. Every rank dumps an N-N checkpoint — same path, private namespace,
    //    zero coordination.
    for rank in 0..rt.rank_count() {
        let fs = rt.rank_fs(rank)?;
        let fd = fs.create("/ckpt_000.dat", 0o644)?;
        let payload = vec![rank as u8; 1 << 20];
        fs.write(fd, &payload)?;
        fs.close(fd)?;
    }
    println!("checkpoint: 56 ranks x 1 MiB written (durable on return)");

    // 5. Crash a rank and recover it: mount loads the newest internal
    //    snapshot and replays the compact operation log.
    rt.crash_rank(7)?;
    rt.recover_rank(7)?;
    let replayed = rt.rank_fs(7)?.stats().replayed_records;
    println!("rank 7 recovered, {replayed} log records replayed");

    // 6. Restart: read the checkpoint back and verify.
    let fs = rt.rank_fs(7)?;
    let fd = fs.open("/ckpt_000.dat", OpenFlags::RDONLY, 0)?;
    let mut buf = vec![0u8; 1 << 20];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    assert!(buf.iter().all(|&b| b == 7));
    println!("restart: checkpoint verified byte-for-byte");

    // 7. Finalize (the MPI_Finalize wrapper): snapshot state, release
    //    namespaces back to the devices.
    let stats = rt.finalize()?;
    let meta: u64 = stats.iter().map(|s| s.metadata_device_bytes()).sum();
    println!(
        "finalize: {} rank runtimes, {} KiB total device metadata",
        stats.len(),
        meta >> 10
    );
    Ok(())
}
