//! The storage balancer — load-aware, failure-domain-aware placement
//! (§III-F, Figure 6).
//!
//! Inputs: a scheduler allocation (ranks on compute nodes, storage grants
//! on partner-domain SSDs). Outputs: a [`Placement`] mapping every rank to
//! a grant (round-robin, "processes within a job are assigned to the
//! allocated SSDs in a round robin manner to achieve load balancing"), the
//! per-SSD `MPI_COMM_CR` communicators, and each rank's contiguous segment
//! of its SSD's namespace ("each process gets a contiguous segment of the
//! SSD based on its rank and the communicator size").
//!
//! The balancer *verifies* — not just assumes — that every rank's
//! checkpoint data lands in a different failure domain than the rank
//! itself; a violating allocation is rejected.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use cluster::{Comm, CommWorld, DomainId, FailureDomains, JobAllocation, NodeId, Topology};
use simkit::stats::coefficient_of_variation;

/// Placement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalanceError {
    /// A rank would share a failure domain with its checkpoint storage.
    DomainViolation {
        /// The offending rank.
        rank: u32,
    },
    /// A rank's namespace segment would be too small to hold a microfs
    /// partition.
    SegmentTooSmall {
        /// Bytes each rank would receive.
        segment: u64,
    },
    /// The allocation carries no storage grants.
    NoStorage,
    /// No surviving storage node satisfies the failure-domain constraints
    /// for a failover re-placement.
    NoFailoverTarget {
        /// The rank whose storage could not be re-placed.
        rank: u32,
    },
    /// A storage grant names an SSD the rack does not know about.
    UnknownSsd {
        /// The node the grant points at.
        node: NodeId,
        /// The SSD index on that node.
        ssd: u32,
    },
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceError::DomainViolation { rank } => {
                write!(
                    f,
                    "rank {rank} shares a failure domain with its assigned SSD"
                )
            }
            BalanceError::SegmentTooSmall { segment } => {
                write!(f, "per-rank segment of {segment} bytes is too small")
            }
            BalanceError::NoStorage => write!(f, "allocation has no storage grants"),
            BalanceError::NoFailoverTarget { rank } => {
                write!(f, "no domain-separated failover target for rank {rank}")
            }
            BalanceError::UnknownSsd { node, ssd } => {
                write!(f, "storage grant names unknown SSD {ssd} on node {node:?}")
            }
        }
    }
}

impl std::error::Error for BalanceError {}

/// One rank's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankPlacement {
    /// Global rank.
    pub rank: u32,
    /// Index into the allocation's storage grants.
    pub grant: usize,
    /// Rank within `MPI_COMM_CR` (the communicator of ranks sharing the
    /// SSD).
    pub local_rank: u32,
    /// Size of `MPI_COMM_CR`.
    pub comm_size: u32,
    /// Byte offset of this rank's segment within the job's namespace on
    /// that SSD.
    pub segment_offset: u64,
    /// Segment size in bytes.
    pub segment_size: u64,
}

/// A complete, verified placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Per-rank placements, indexed by rank.
    pub per_rank: Vec<RankPlacement>,
    /// One `MPI_COMM_CR` per grant, in grant order.
    pub comms: Vec<Comm>,
}

impl Placement {
    /// Bytes landing on each grant if rank `r` writes `bytes_of(r)` bytes —
    /// the load distribution whose coefficient of variation Figure 7b
    /// reports.
    pub fn load_per_grant(&self, bytes_of: impl Fn(u32) -> u64, n_grants: usize) -> Vec<u64> {
        let mut load = vec![0u64; n_grants];
        for p in &self.per_rank {
            load[p.grant] += bytes_of(p.rank);
        }
        load
    }

    /// Coefficient of variation of the load distribution.
    pub fn load_cov(&self, bytes_of: impl Fn(u32) -> u64, n_grants: usize) -> f64 {
        let load: Vec<f64> = self
            .load_per_grant(bytes_of, n_grants)
            .into_iter()
            .map(|b| b as f64)
            .collect();
        coefficient_of_variation(&load)
    }
}

/// The balancer.
pub struct StorageBalancer<'a> {
    topo: &'a Topology,
    domains: &'a FailureDomains,
}

impl<'a> StorageBalancer<'a> {
    /// A balancer over the given topology and failure-domain map.
    pub fn new(topo: &'a Topology, domains: &'a FailureDomains) -> Self {
        StorageBalancer { topo, domains }
    }

    /// Compute and verify the placement for `alloc`, partitioning each
    /// job namespace of `namespace_bytes` among the ranks that share it.
    pub fn place(
        &self,
        alloc: &JobAllocation,
        namespace_bytes: u64,
        min_segment: u64,
    ) -> Result<Placement, BalanceError> {
        let n_grants = alloc.storage.len();
        if n_grants == 0 {
            return Err(BalanceError::NoStorage);
        }
        let n_ranks = alloc.rank_nodes.len() as u32;
        if n_grants as u32 > n_ranks {
            // The paper sizes jobs at 56-112 processes per SSD; fewer
            // ranks than SSDs would leave grants unused.
            return Err(BalanceError::NoStorage);
        }
        // Round-robin rank -> grant.
        let grant_of = |rank: u32| (rank as usize) % n_grants;
        // Fault-tolerance check: never colocate a rank with its data.
        for rank in 0..n_ranks {
            let rank_node = alloc.rank_nodes[rank as usize];
            let ssd_node = alloc.storage[grant_of(rank)].node;
            if !self.domains.separated(rank_node, ssd_node) {
                return Err(BalanceError::DomainViolation { rank });
            }
        }
        // MPI_COMM_CR per grant via MPI_Comm_split (color = grant).
        let world = CommWorld::new(alloc.rank_nodes.clone());
        let split = world.comm_world().split(|r| grant_of(r) as u64, u64::from);
        let mut comms: Vec<Comm> = Vec::with_capacity(n_grants);
        for g in 0..n_grants {
            let comm = split
                .iter()
                .find(|(color, _)| *color == g as u64)
                .map(|(_, c)| c.clone())
                .expect("every grant has at least one rank (checked above)");
            comms.push(comm);
        }
        // Contiguous per-rank segments.
        let mut per_rank = Vec::with_capacity(n_ranks as usize);
        for rank in 0..n_ranks {
            let g = grant_of(rank);
            let comm = &comms[g];
            let local_rank = comm
                .local_rank(rank)
                .expect("rank belongs to its grant communicator");
            let comm_size = comm.size();
            let segment_size = namespace_bytes / u64::from(comm_size);
            if segment_size < min_segment {
                return Err(BalanceError::SegmentTooSmall {
                    segment: segment_size,
                });
            }
            per_rank.push(RankPlacement {
                rank,
                grant: g,
                local_rank,
                comm_size,
                segment_offset: u64::from(local_rank) * segment_size,
                segment_size,
            });
        }
        let _ = self.topo; // reserved for hop-aware refinements
        Ok(Placement { per_rank, comms })
    }
}

/// Candidate storage nodes grouped by failure domain.
///
/// Placement and failover used to scan the whole candidate list linearly
/// for every rank — O(ranks × namespaces) once the rack holds thousands of
/// namespaces. The index buckets candidates by domain once
/// (O(candidates)), after which a lookup probes O(domains) buckets — a
/// handful of racks — no matter how many namespaces each domain holds.
/// Domain separation is a property of the *domain*, not the node
/// ([`FailureDomains::separated`] compares `domain_of` only), so an entire
/// bucket qualifies or is skipped with a single probe.
#[derive(Debug)]
pub struct DomainIndex {
    /// `(position in the candidate list, node)` per domain, indexed by
    /// `DomainId.0`. Buckets keep candidate order, so "first valid
    /// candidate" agrees exactly with the linear scan this replaces.
    buckets: Vec<Vec<(usize, NodeId)>>,
    candidates: usize,
    /// Buckets and entries touched by lookups — the observable the O(1)
    /// complexity test asserts on.
    probes: AtomicU64,
}

impl DomainIndex {
    /// Index `candidates` by failure domain.
    pub fn build(domains: &FailureDomains, candidates: &[NodeId]) -> Self {
        let mut buckets = vec![Vec::new(); domains.domain_count()];
        for (i, &n) in candidates.iter().enumerate() {
            buckets[domains.domain_of(n).0 as usize].push((i, n));
        }
        DomainIndex {
            buckets,
            candidates: candidates.len(),
            probes: AtomicU64::new(0),
        }
    }

    /// Number of indexed candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates
    }

    /// Buckets + entries touched by lookups since the index was built.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    fn probe(&self, n: u64) {
        self.probes.fetch_add(n, Ordering::Relaxed);
    }

    /// [`failover_grant`]-equivalent lookup through the index: identical
    /// result for identical inputs, but O(domains) probes instead of
    /// O(candidates).
    pub fn failover_grant(
        &self,
        domains: &FailureDomains,
        rank: u32,
        rank_node: NodeId,
        failed_node: NodeId,
    ) -> Result<usize, BalanceError> {
        let rank_dom = domains.domain_of(rank_node);
        let failed_dom = domains.domain_of(failed_node);
        // Preferred pass: domains foreign to both the rank and the failed
        // node. The failed node lives in `failed_dom`, so every bucket
        // entry here is valid — the linear scan's first match is the
        // minimum candidate position across qualifying buckets.
        let preferred = self
            .domain_heads(|d| d != rank_dom && d != failed_dom)
            .min();
        if let Some(i) = preferred {
            return Ok(i);
        }
        // Fallback (single-storage-rack topologies): rack-mates of the
        // failed node are allowed, but never the failed node itself.
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(d, _)| DomainId(d as u32) != rank_dom)
            .filter_map(|(d, bucket)| {
                if DomainId(d as u32) != failed_dom {
                    self.probe(1);
                    bucket.first().map(|&(i, _)| i)
                } else {
                    // Skip entries equal to the failed node; duplicates of
                    // it are the only reason this walks past the head.
                    bucket
                        .iter()
                        .find(|&&(_, n)| {
                            self.probe(1);
                            n != failed_node
                        })
                        .map(|&(i, _)| i)
                }
            })
            .min()
            .ok_or(BalanceError::NoFailoverTarget { rank })
    }

    /// First candidate position of every bucket whose domain passes
    /// `keep` — one probe per domain.
    fn domain_heads<'s>(
        &'s self,
        keep: impl Fn(DomainId) -> bool + 's,
    ) -> impl Iterator<Item = usize> + 's {
        self.buckets
            .iter()
            .enumerate()
            .filter(move |&(d, _)| keep(DomainId(d as u32)))
            .filter_map(|(_, bucket)| {
                self.probe(1);
                bucket.first().map(|&(i, _)| i)
            })
    }

    /// Candidate positions in cyclic scan order starting at
    /// `start % candidate_count()`, restricted to domains accepted by
    /// `keep` — the rotated-scan shape replica placement uses, touching
    /// only nodes in valid domains.
    pub fn cyclic_candidates(
        &self,
        start: usize,
        keep: impl Fn(DomainId) -> bool,
    ) -> Vec<(usize, NodeId)> {
        let mut hits: Vec<(usize, NodeId)> = Vec::new();
        for (d, bucket) in self.buckets.iter().enumerate() {
            self.probe(1);
            if keep(DomainId(d as u32)) {
                self.probe(bucket.len() as u64);
                hits.extend_from_slice(bucket);
            }
        }
        hits.sort_unstable_by_key(|&(i, _)| i);
        if self.candidates > 0 {
            let pivot = hits.partition_point(|&(i, _)| i < start % self.candidates);
            hits.rotate_left(pivot);
        }
        hits
    }
}

/// Pick a replacement storage node for `rank` after the node holding its
/// checkpoint data (`failed_node`) died.
///
/// The replacement must honor the invariant the balancer verified at
/// placement time — the rank's data lives in a different failure domain
/// than the rank itself — and must not be the failed node. Among valid
/// candidates, nodes outside the *failed* node's domain are preferred
/// (a PDU/rack loss takes every node in the domain); same-domain survivors
/// are a fallback for topologies with a single storage rack, like the
/// paper's testbed. Returns the index of the chosen candidate.
///
/// One-shot convenience over [`DomainIndex::failover_grant`]; callers
/// performing repeated lookups should [`DomainIndex::build`] once.
pub fn failover_grant(
    domains: &FailureDomains,
    rank: u32,
    rank_node: NodeId,
    failed_node: NodeId,
    candidates: &[NodeId],
) -> Result<usize, BalanceError> {
    DomainIndex::build(domains, candidates).failover_grant(domains, rank, rank_node, failed_node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{JobRequest, Scheduler};

    fn placed(procs: u32) -> (Placement, JobAllocation) {
        let topo = Topology::paper_testbed();
        let mut sched = Scheduler::new(topo.clone(), 4);
        let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
        let domains = FailureDomains::derive(&topo);
        let balancer = StorageBalancer::new(&topo, &domains);
        let p = balancer.place(&alloc, 8 << 30, 16 << 20).unwrap();
        (p, alloc)
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let (p, alloc) = placed(448);
        let n = alloc.storage.len();
        let load = p.load_per_grant(|_| 512 << 20, n);
        assert!(
            load.windows(2).all(|w| w[0] == w[1]),
            "equal-size files must balance exactly"
        );
        assert_eq!(p.load_cov(|_| 512 << 20, n), 0.0);
    }

    #[test]
    fn segments_tile_each_namespace_without_overlap() {
        let (p, alloc) = placed(448);
        for g in 0..alloc.storage.len() {
            let mut segs: Vec<(u64, u64)> = p
                .per_rank
                .iter()
                .filter(|r| r.grant == g)
                .map(|r| (r.segment_offset, r.segment_size))
                .collect();
            segs.sort_unstable();
            let mut cursor = 0;
            for (off, size) in segs {
                assert_eq!(off, cursor, "segment gap/overlap at grant {g}");
                cursor = off + size;
            }
            assert!(cursor <= 8 << 30);
        }
    }

    #[test]
    fn comm_cr_sizes_match_paper_ratio() {
        let (p, _) = placed(448);
        // 448 ranks over 4 SSDs -> MPI_COMM_CR of 112 (the paper's upper
        // recommended process:SSD ratio).
        assert!(p.per_rank.iter().all(|r| r.comm_size == 112));
        assert_eq!(p.comms.len(), 4);
    }

    #[test]
    fn uneven_rank_count_still_covered() {
        let (p, alloc) = placed(100); // 100 ranks, 1 SSD (100/112 -> 1)
        assert_eq!(alloc.storage.len(), 1);
        assert_eq!(p.per_rank.len(), 100);
        assert!(p.per_rank.iter().all(|r| r.comm_size == 100));
    }

    #[test]
    fn domain_violations_are_rejected() {
        // Build a pathological "allocation" where storage shares the
        // compute rack.
        let topo = Topology::paper_testbed();
        let domains = FailureDomains::derive(&topo);
        let compute = topo.compute_nodes();
        let alloc = JobAllocation {
            id: cluster::JobId(0),
            rank_nodes: vec![compute[0]; 28],
            storage: vec![cluster::StorageGrant {
                node: compute[1],
                ssd: 0,
                slot: 0,
            }],
        };
        let balancer = StorageBalancer::new(&topo, &domains);
        assert!(matches!(
            balancer.place(&alloc, 1 << 30, 1 << 20),
            Err(BalanceError::DomainViolation { .. })
        ));
    }

    #[test]
    fn tiny_segments_rejected() {
        let topo = Topology::paper_testbed();
        let mut sched = Scheduler::new(topo.clone(), 4);
        let alloc = sched.submit(&JobRequest::full_subscription(448)).unwrap();
        let domains = FailureDomains::derive(&topo);
        let balancer = StorageBalancer::new(&topo, &domains);
        // 1 MiB namespace split 112 ways is absurd.
        assert!(matches!(
            balancer.place(&alloc, 1 << 20, 16 << 20),
            Err(BalanceError::SegmentTooSmall { .. })
        ));
    }

    #[test]
    fn failover_grant_prefers_foreign_domains_and_falls_back() {
        // Two storage racks: the failed node's rack-mates are valid but a
        // node in the *other* storage rack must win.
        let topo = Topology::synthetic(1, 2, 4, 28);
        let domains = FailureDomains::derive(&topo);
        let rank_node = topo.compute_nodes()[0];
        let storage = topo.storage_nodes();
        let failed = storage[0];
        let idx = failover_grant(&domains, 3, rank_node, failed, &storage).unwrap();
        let chosen = storage[idx];
        assert_ne!(chosen, failed);
        assert!(domains.separated(rank_node, chosen));
        assert!(
            domains.separated(failed, chosen),
            "foreign storage rack must be preferred over the failed node's rack-mates"
        );

        // Single storage rack (the paper's testbed): rack-mates of the
        // failed node are the only survivors, and the fallback accepts one.
        let topo = Topology::paper_testbed();
        let domains = FailureDomains::derive(&topo);
        let rank_node = topo.compute_nodes()[0];
        let storage = topo.storage_nodes();
        let failed = storage[0];
        let idx = failover_grant(&domains, 3, rank_node, failed, &storage).unwrap();
        let chosen = storage[idx];
        assert_ne!(chosen, failed);
        assert!(domains.separated(rank_node, chosen));

        // No candidates at all -> typed error carrying the rank.
        assert_eq!(
            failover_grant(&domains, 3, rank_node, failed, &[]),
            Err(BalanceError::NoFailoverTarget { rank: 3 })
        );
    }

    #[test]
    fn domain_index_matches_linear_failover_scan() {
        // The index must be a pure acceleration: identical choice to the
        // linear scan for every (rank node, failed node) pair, on both a
        // multi-rack and the single-storage-rack paper topology.
        for topo in [Topology::synthetic(2, 3, 4, 28), Topology::paper_testbed()] {
            let domains = FailureDomains::derive(&topo);
            let storage = topo.storage_nodes();
            let index = DomainIndex::build(&domains, &storage);
            let linear = |rank, rank_node, failed: NodeId| {
                let valid = |n: NodeId| n != failed && domains.separated(rank_node, n);
                storage
                    .iter()
                    .position(|&n| valid(n) && domains.separated(failed, n))
                    .or_else(|| storage.iter().position(|&n| valid(n)))
                    .ok_or(BalanceError::NoFailoverTarget { rank })
            };
            for &rank_node in topo.compute_nodes().iter().take(4) {
                for &failed in &storage {
                    assert_eq!(
                        index.failover_grant(&domains, 7, rank_node, failed),
                        linear(7, rank_node, failed),
                        "index diverges from linear scan for failed={failed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn domain_index_lookups_are_constant_in_namespace_count() {
        // 10k storage nodes across 4 storage racks: a failover lookup must
        // probe O(domains) buckets, independent of the namespace count.
        let topo = Topology::synthetic(1, 4, 2500, 1);
        let domains = FailureDomains::derive(&topo);
        let storage = topo.storage_nodes();
        assert_eq!(storage.len(), 10_000);
        let index = DomainIndex::build(&domains, &storage);
        assert_eq!(index.candidate_count(), 10_000);
        let rank_node = topo.compute_nodes()[0];

        let before = index.probes();
        let idx = index
            .failover_grant(&domains, 0, rank_node, storage[0])
            .unwrap();
        let per_lookup = index.probes() - before;
        assert!(domains.separated(rank_node, storage[idx]));
        assert!(domains.separated(storage[0], storage[idx]));
        let bound = 2 * domains.domain_count() as u64 + 4;
        assert!(
            per_lookup <= bound,
            "lookup touched {per_lookup} entries over 10k namespaces \
             (bound: {bound} — O(domains), not O(namespaces))"
        );

        // 1k lookups stay linear in lookups, not in namespaces.
        let before = index.probes();
        for r in 0..1000u32 {
            let failed = storage[r as usize % storage.len()];
            index
                .failover_grant(&domains, r, rank_node, failed)
                .unwrap();
        }
        let probes = index.probes() - before;
        assert!(
            probes <= 1000 * bound,
            "amortized lookup cost scales with namespaces: {probes}"
        );
    }

    #[test]
    fn unequal_loads_have_nonzero_cov() {
        let (p, alloc) = placed(448);
        let n = alloc.storage.len();
        let cov = p.load_cov(|r| if r == 0 { 10 << 30 } else { 1 << 20 }, n);
        assert!(cov > 0.0);
    }

    proptest::proptest! {
        /// For arbitrary job sizes, segments always tile each namespace
        /// without gaps or overlap and every rank lands on a partner
        /// domain.
        #[test]
        fn prop_segments_tile_and_domains_separate(procs in 4u32..448) {
            let topo = Topology::paper_testbed();
            let mut sched = cluster::Scheduler::new(topo.clone(), 8);
            let Ok(alloc) = sched.submit(&cluster::JobRequest::full_subscription(procs)) else {
                return Ok(());
            };
            let domains = FailureDomains::derive(&topo);
            let balancer = StorageBalancer::new(&topo, &domains);
            let Ok(p) = balancer.place(&alloc, 8 << 30, 1 << 20) else {
                return Ok(());
            };
            for g in 0..alloc.storage.len() {
                let mut segs: Vec<(u64, u64)> = p
                    .per_rank
                    .iter()
                    .filter(|r| r.grant == g)
                    .map(|r| (r.segment_offset, r.segment_size))
                    .collect();
                segs.sort_unstable();
                let mut cursor = 0;
                for (off, size) in segs {
                    proptest::prop_assert_eq!(off, cursor);
                    proptest::prop_assert!(size >= 1 << 20);
                    cursor = off + size;
                }
                proptest::prop_assert!(cursor <= 8 << 30);
            }
            for r in &p.per_rank {
                let rank_node = alloc.rank_nodes[r.rank as usize];
                let ssd_node = alloc.storage[r.grant].node;
                proptest::prop_assert!(domains.separated(rank_node, ssd_node));
            }
        }
    }
}
