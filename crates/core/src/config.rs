//! Runtime configuration and the drilldown ablation ladder.

use chaos::ChaosHandle;
use fabric::FabricConfig;
use microfs::FsConfig;
use telemetry::Telemetry;

/// Configuration of one NVMe-CR job runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Hugeblock size (the paper selects 32 KiB, §IV-B).
    pub block_size: u64,
    /// Log record coalescing (§III-E).
    pub coalescing: bool,
    /// Bytes of namespace each job requests per granted SSD.
    pub namespace_bytes: u64,
    /// Acting uid for permission checks.
    pub uid: u32,
    /// Multi-level checkpointing period: every `k`-th checkpoint goes to
    /// the parallel filesystem (§III-F; the paper evaluates k = 10).
    pub multilevel_period: u32,
    /// Where the job's components (initiators, per-rank filesystems)
    /// report their metrics.
    pub telemetry: Telemetry,
    /// Fault-injection hook threaded into every initiator and per-rank
    /// filesystem. Disarmed (the default) it is a no-op.
    pub chaos: ChaosHandle,
    /// Data-plane tuning for the rank initiators: submission-window depth
    /// (QD), CQ poll batches, and per-command reliability parameters.
    pub fabric: FabricConfig,
    /// Synchronous copies of each rank's checkpoint data. `1` (the
    /// default) is unreplicated — bit-for-bit today's behavior. `2`
    /// mirrors every rank write onto a namespace in the rank's partner
    /// failure domain and commits per-epoch manifests, so a permanently
    /// dead shard is recovered from the surviving copy instead of rolling
    /// back to the parallel filesystem.
    pub replication_factor: u32,
    /// Copy-on-write delta epochs (replicated ranks only): `0` (the
    /// default) keeps today's full-manifest path bit-for-bit; `n > 0`
    /// seals sparse delta manifests linked by `parent_epoch` and compacts
    /// to a full manifest after at most `n` deltas (clamped to the ring's
    /// [`microfs::manifest::MAX_DELTA_CHAIN`]).
    pub delta_chain_max: u32,
    /// Reactors for the shard-per-core drive
    /// ([`NvmeCrRuntime::drive_reactor`]): `0` (the default) sizes the
    /// pool to the available cores. Rank count is independent of this —
    /// each reactor multiplexes many rank state machines.
    ///
    /// [`NvmeCrRuntime::drive_reactor`]: crate::runtime::NvmeCrRuntime::drive_reactor
    pub reactors: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            block_size: 32 << 10,
            coalescing: true,
            namespace_bytes: 8 << 30,
            uid: 1000,
            multilevel_period: 10,
            telemetry: Telemetry::default(),
            chaos: ChaosHandle::default(),
            fabric: FabricConfig::default(),
            replication_factor: 1,
            delta_chain_max: 0,
            reactors: 0,
        }
    }
}

impl RuntimeConfig {
    /// The microfs configuration for each rank's instance.
    pub fn fs_config(&self) -> FsConfig {
        FsConfig {
            block_size: self.block_size,
            uid: self.uid,
            coalescing: self.coalescing,
            telemetry: self.telemetry.clone(),
            chaos: self.chaos.clone(),
            cow_epochs: self.delta_chain_max > 0 && self.replication_factor > 1,
            ..FsConfig::default()
        }
    }
}

/// The drilldown ladder of Figure 7(d): a cumulative sequence of the
/// paper's optimizations over a kernel-filesystem-like base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DrilldownLevel {
    /// Kernel IO path, global (shared) namespace, physical metadata
    /// journaling, 4 KiB blocks — "a base design resembling a traditional
    /// kernel filesystem".
    Baseline,
    /// + userspace direct access and private per-process namespaces.
    UserspacePrivateNs,
    /// + metadata provenance (compact operation logging).
    MetadataProvenance,
    /// + 32 KiB hugeblocks.
    Hugeblocks,
}

impl DrilldownLevel {
    /// All levels in cumulative order.
    pub fn ladder() -> [DrilldownLevel; 4] {
        [
            DrilldownLevel::Baseline,
            DrilldownLevel::UserspacePrivateNs,
            DrilldownLevel::MetadataProvenance,
            DrilldownLevel::Hugeblocks,
        ]
    }

    /// Whether this level bypasses the kernel and uses private namespaces.
    pub fn userspace_private(self) -> bool {
        self >= DrilldownLevel::UserspacePrivateNs
    }

    /// Whether this level logs compact operation records instead of
    /// physical metadata images.
    pub fn provenance(self) -> bool {
        self >= DrilldownLevel::MetadataProvenance
    }

    /// Block size at this level.
    pub fn block_size(self) -> u64 {
        if self >= DrilldownLevel::Hugeblocks {
            32 << 10
        } else {
            4 << 10
        }
    }

    /// Display label matching the figure legend.
    pub fn label(self) -> &'static str {
        match self {
            DrilldownLevel::Baseline => "base",
            DrilldownLevel::UserspacePrivateNs => "+userspace&private-ns",
            DrilldownLevel::MetadataProvenance => "+metadata-provenance",
            DrilldownLevel::Hugeblocks => "+hugeblocks",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = RuntimeConfig::default();
        assert_eq!(c.block_size, 32 << 10);
        assert!(c.coalescing);
        assert_eq!(c.multilevel_period, 10);
        assert_eq!(c.fs_config().block_size, 32 << 10);
        assert_eq!(
            c.fabric.queue_depth, 32,
            "windows default to the device's hardware queue count"
        );
    }

    #[test]
    fn ladder_is_cumulative() {
        let l = DrilldownLevel::ladder();
        assert!(!l[0].userspace_private() && !l[0].provenance());
        assert_eq!(l[0].block_size(), 4 << 10);
        assert!(l[1].userspace_private() && !l[1].provenance());
        assert!(l[2].provenance());
        assert_eq!(l[2].block_size(), 4 << 10);
        assert_eq!(l[3].block_size(), 32 << 10);
        assert!(l[3].userspace_private() && l[3].provenance());
    }
}
