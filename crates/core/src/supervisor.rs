//! Bounded-retry recovery supervision with quarantine and degraded
//! read-only serving.
//!
//! The typestate chain in [`crate::recovery`] makes one recovery attempt
//! correct; this module makes recovery *survivable when the attempt
//! itself dies*. A crash inside replay — modeled exactly by the nested
//! crash plane ([`chaos::ChaosHandle::crash_in_recovery`]) — leaves the
//! rank exactly where it started: durable bytes intact, volatile state
//! gone. The supervisor's job is to restart the chain from the top with
//! a bounded budget, and to refuse to wedge the whole job when one rank
//! cannot come back:
//!
//! * **Bounded retries** — each rank gets [`RecoveryPolicy::max_attempts`]
//!   runs through the typestate chain, with exponential backoff between
//!   attempts and a per-rank wall-clock deadline. Every re-attempt calls
//!   [`chaos::ChaosHandle::begin_recovery_attempt`], which is what makes
//!   the nested crash plane's "second attempt runs clean" contract hold.
//! * **Quarantine** — a rank that exhausts its budget with at least
//!   [`RecoveryPolicy::quarantine_after`] failures is quarantined instead
//!   of failing the attach: the supervisor records a
//!   [`FlightKind::RecoveryQuarantine`] trip and moves on to the next
//!   rank. Quarantine is per-namespace damage containment — one dead
//!   shard must not turn a 10k-rank restart into a cluster-wide outage.
//! * **Degraded serving** — a quarantined rank's last *complete* epoch is
//!   materialized from its replica into an in-memory image and mounted
//!   read-only ([`DegradedRank`]). Restarts can read the newest sealed
//!   checkpoint while the live head stays quarantined.
//! * **Rejoin** — [`Supervised::rejoin`] runs the normal failover path
//!   ([`crate::runtime::NvmeCrRuntime::fail_over_rank`]): a replacement
//!   namespace on a partner failure domain, restored from the replica,
//!   after which the rank serves read-write again.
//!
//! Ranks are recovered **sequentially, in rank order** — deliberately,
//! not as a simplification: the nested crash plane indexes recovery
//! operations by a single global counter, and only a deterministic op
//! order makes `crash_in_recovery(j)` name the same operation in every
//! universe. [`NvmeCrRuntime::attach`] keeps its parallel mount for the
//! chaos-free fast path.
//!
//! Progress is reported via `recovery.*` counters: `recovery.attempts`,
//! `recovery.restarts`, `recovery.quarantined`, `recovery.degraded_serves`,
//! and `recovery.replay_reentries` (restarts taken while the nested crash
//! plane was armed — i.e. replay re-entries proven idempotent by chaos).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chaos::ChaosHandle;
use cluster::Topology;
use fabric::{Initiator, NvmfConnection};
use microfs::crc::crc32_update;
use microfs::fs::FileStat;
use microfs::manifest::ManifestLayout;
use microfs::{FsError, MemDevice, MicroFs, OpenFlags};
use telemetry::FlightKind;

use crate::replication::{self, ReplicationError};
use crate::runtime::{JobHandle, NvmeCrRuntime, RuntimeError, StorageRack};

/// How hard the supervisor tries before giving a rank up for quarantined.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Runs through the typestate chain each rank may consume (≥ 1).
    pub max_attempts: u32,
    /// Backoff before re-attempt `n` is `base_backoff_ns << (n - 1)`.
    pub base_backoff_ns: u64,
    /// Per-rank wall-clock budget across all attempts and backoffs.
    pub deadline_ns: u64,
    /// Quarantine a rank after this many failed attempts instead of
    /// failing the whole attach; `0` disables quarantine (any exhausted
    /// rank fails the attach — the pre-supervisor behavior).
    pub quarantine_after: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 2,
            base_backoff_ns: 100_000,
            deadline_ns: 30_000_000_000,
            quarantine_after: 2,
        }
    }
}

/// What supervised recovery did, per attach.
#[derive(Debug, Default, Clone)]
pub struct RecoveryOutcome {
    /// Typestate-chain runs started (first attempts + restarts).
    pub attempts: u64,
    /// Re-attempts after a failed run.
    pub restarts: u64,
    /// Ranks that exhausted their budget and were quarantined.
    pub quarantined: Vec<u32>,
    /// Quarantined ranks successfully brought up read-only.
    pub degraded_serves: u64,
}

/// Recovery supervisor: wraps [`NvmeCrRuntime::recover_ranks`] —
/// and through it the `Crashed → Replaying → Verified` typestate chain —
/// in deadlines, bounded re-attempts, quarantine, and degraded serving.
#[derive(Debug, Default, Clone)]
pub struct RecoverySupervisor {
    policy: RecoveryPolicy,
}

impl RecoverySupervisor {
    /// A supervisor with the given policy.
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoverySupervisor { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Supervised attach: recover every rank of `handle` sequentially,
    /// re-attempting failures within the policy's budget and quarantining
    /// ranks that exhaust it. Returns the runtime plus the degraded
    /// read-only instances of any quarantined ranks.
    ///
    /// With quarantine disabled (`quarantine_after == 0`) the first
    /// exhausted rank fails the attach with its last error, like
    /// [`NvmeCrRuntime::attach`] — ranks recovered before it stay mounted
    /// in no observable place, exactly as a failed plain attach leaves
    /// no runtime behind.
    pub fn attach(&self, handle: JobHandle) -> Result<Supervised, RuntimeError> {
        let mut rt = handle.into_empty_runtime();
        let telemetry = rt.telemetry().clone();
        let chaos = rt.runtime_config().chaos.clone();
        let attempts_c = telemetry.counter("recovery.attempts");
        let restarts_c = telemetry.counter("recovery.restarts");
        let quarantined_c = telemetry.counter("recovery.quarantined");
        let degraded_c = telemetry.counter("recovery.degraded_serves");
        let reentries_c = telemetry.counter("recovery.replay_reentries");
        let flight = telemetry.recorder();
        let mut outcome = RecoveryOutcome::default();
        let mut degraded = BTreeMap::new();
        for rank in 0..rt.rank_count() {
            let started = Instant::now();
            let mut failures = 0u32;
            let mut last_err: Option<RuntimeError> = None;
            while failures < self.policy.max_attempts.max(1) {
                if failures > 0 {
                    let shift = (failures - 1).min(20);
                    let backoff = self.policy.base_backoff_ns.saturating_mul(1 << shift);
                    let left = self
                        .policy
                        .deadline_ns
                        .saturating_sub(started.elapsed().as_nanos() as u64);
                    if left == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_nanos(backoff.min(left)));
                    // The restart contract: recovery begins again from the
                    // top, and the nested crash plane moves past the index
                    // it already killed.
                    chaos.begin_recovery_attempt();
                    restarts_c.inc();
                    outcome.restarts += 1;
                    if chaos.is_recovery_armed() {
                        reentries_c.inc();
                    }
                }
                attempts_c.inc();
                outcome.attempts += 1;
                match rt.recover_ranks(&[rank]) {
                    Ok(()) => {
                        last_err = None;
                        break;
                    }
                    Err(e) => {
                        failures += 1;
                        last_err = Some(e);
                    }
                }
            }
            let Some(err) = last_err else { continue };
            if self.policy.quarantine_after == 0 || failures < self.policy.quarantine_after {
                return Err(err);
            }
            quarantined_c.inc();
            flight.record(
                FlightKind::RecoveryQuarantine,
                0,
                0,
                rank as u64,
                failures as u64,
            );
            flight.trip(FlightKind::RecoveryQuarantine, rank as u64);
            outcome.quarantined.push(rank);
            // Best effort: a rank whose replica is also unreachable stays
            // quarantined without a degraded instance — the attach still
            // succeeds for everyone else.
            if let Ok(d) = degraded_serve(&rt, rank) {
                degraded_c.inc();
                flight.record(FlightKind::DegradedServe, 0, 0, rank as u64, d.epoch());
                outcome.degraded_serves += 1;
                degraded.insert(rank, d);
            }
        }
        Ok(Supervised {
            runtime: rt,
            degraded,
            outcome,
        })
    }
}

/// A runtime produced by supervised recovery: the healthy ranks mounted
/// read-write, plus a read-only [`DegradedRank`] for each quarantined one.
pub struct Supervised {
    runtime: NvmeCrRuntime,
    degraded: BTreeMap<u32, DegradedRank>,
    outcome: RecoveryOutcome,
}

impl Supervised {
    /// What recovery took: attempts, restarts, quarantines, serves.
    pub fn outcome(&self) -> &RecoveryOutcome {
        &self.outcome
    }

    /// The underlying runtime (quarantined ranks are unmounted in it).
    pub fn runtime(&self) -> &NvmeCrRuntime {
        &self.runtime
    }

    /// Mutable access to the underlying runtime.
    pub fn runtime_mut(&mut self) -> &mut NvmeCrRuntime {
        &mut self.runtime
    }

    /// Give up the supervision wrapper, dropping any degraded instances.
    pub fn into_runtime(self) -> NvmeCrRuntime {
        self.runtime
    }

    /// Ranks currently quarantined.
    pub fn quarantined(&self) -> &[u32] {
        &self.outcome.quarantined
    }

    /// The degraded read-only instance of a quarantined rank, if its
    /// replica could serve one.
    pub fn degraded_mut(&mut self, rank: u32) -> Option<&mut DegradedRank> {
        self.degraded.get_mut(&rank)
    }

    /// Bring a quarantined rank back to full read-write service via the
    /// failover path: a replacement namespace on a partner failure
    /// domain, restored from the replica. On success the rank leaves
    /// quarantine and its degraded instance is dropped.
    pub fn rejoin(
        &mut self,
        rank: u32,
        rack: &StorageRack,
        topo: &Topology,
    ) -> Result<(), RuntimeError> {
        if !self.outcome.quarantined.contains(&rank) {
            return Err(RuntimeError::BadRank(rank));
        }
        self.runtime.fail_over_rank(rank, rack, topo)?;
        self.degraded.remove(&rank);
        self.outcome.quarantined.retain(|&r| r != rank);
        Ok(())
    }
}

/// A quarantined rank's newest complete checkpoint epoch, reconstructed
/// from its replica into memory and mounted read-only. The primary
/// namespace is never touched — this is what restarts read while the
/// live head is quarantined.
pub struct DegradedRank {
    rank: u32,
    epoch: u64,
    fs: MicroFs<MemDevice>,
}

impl DegradedRank {
    /// The rank served.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The complete epoch the image corresponds to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stat a path in the degraded image.
    pub fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        self.fs.stat(path)
    }

    /// Read a whole file out of the degraded image.
    pub fn read_file(&mut self, path: &str) -> Result<Vec<u8>, FsError> {
        let len = self.fs.stat(path)?.size as usize;
        let fd = self.fs.open(path, OpenFlags::RDONLY, 0)?;
        let mut buf = vec![0u8; len];
        let mut got = 0;
        while got < len {
            let n = self.fs.read(fd, &mut buf[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        self.fs.close(fd)?;
        if got != len {
            return Err(FsError::Io(format!(
                "degraded read of {path} truncated at {got}/{len} bytes"
            )));
        }
        Ok(buf)
    }
}

/// Materialize `rank`'s newest complete epoch from its replica into an
/// in-memory image and mount it read-only. Every extent is streamed with
/// CRC verification against its manifest entry — a degraded serve must
/// never hand out silently-rotten bytes.
fn degraded_serve(rt: &NvmeCrRuntime, rank: u32) -> Result<DegradedRank, RuntimeError> {
    let route = rt.route(rank).ok_or(RuntimeError::BadRank(rank))?;
    let rr = route
        .replica
        .as_ref()
        .ok_or(RuntimeError::Replication(ReplicationError::NoCompleteEpoch))?;
    let config = rt.runtime_config();
    let fs_size = route.fs_size();
    let initiator = Initiator::with_config(
        format!("nqn.2026-07.io.nvmecr:rank{rank}-degraded"),
        config.telemetry.clone(),
        config.chaos.clone(),
        config.fabric.clone(),
    );
    let mut conn = initiator.connect(Arc::clone(&rr.target), rr.ns);
    let (extents, epoch) = if config.delta_chain_max > 0 {
        replication::materialize_chain(&mut conn, fs_size, ManifestLayout::chained())?
            .ok_or(RuntimeError::Replication(ReplicationError::NoCompleteEpoch))?
    } else {
        let m = replication::read_latest_manifest(&mut conn, fs_size)
            .map_err(|e| RuntimeError::Replication(e.into()))?
            .ok_or(RuntimeError::Replication(ReplicationError::NoCompleteEpoch))?;
        (m.extents, m.epoch)
    };
    let mut image = vec![0u8; fs_size as usize];
    for e in &extents {
        copy_extent_verified(&mut conn, e, &mut image)?;
    }
    // The degraded mount is a volatile reconstruction, not the supervised
    // recovery path: it runs on a disarmed chaos handle so nested crash
    // points aim only at real recovery.
    let mut fs_config = config.fs_config();
    fs_config.chaos = ChaosHandle::default();
    let fs = MicroFs::mount(MemDevice::from_raw(image), fs_config).map_err(RuntimeError::Fs)?;
    Ok(DegradedRank { rank, epoch, fs })
}

/// Stream one manifest extent from the replica into `image`, verifying
/// the streaming CRC against the manifest entry.
fn copy_extent_verified(
    conn: &mut NvmfConnection,
    e: &microfs::ManifestExtent,
    image: &mut [u8],
) -> Result<(), RuntimeError> {
    const CHUNK: usize = 4 << 20;
    let mut state = 0xFFFF_FFFFu32;
    let mut done = 0u64;
    while done < e.len {
        let chunk = CHUNK.min((e.len - done) as usize);
        let data = conn
            .read_bytes(e.offset + done, chunk)
            .map_err(|err| RuntimeError::Replication(err.into()))?;
        state = crc32_update(state, &data);
        let at = (e.offset + done) as usize;
        image[at..at + chunk].copy_from_slice(&data);
        done += chunk as u64;
    }
    if state ^ 0xFFFF_FFFF != e.crc {
        return Err(RuntimeError::Replication(ReplicationError::Unrecoverable {
            offset: e.offset,
            len: e.len,
        }));
    }
    Ok(())
}
