//! Shard-per-core reactor runtime: run-to-completion event loops that
//! multiplex many rank state machines onto a fixed set of cores.
//!
//! The rayon drive model (`for_each_rank_par`) pins one OS thread per
//! in-flight rank, which caps every sweep at the node's core count. The
//! reactor model decouples the two (ROADMAP item 2): N reactors — one per
//! core — each own a **disjoint** set of ranks (their NVMf connections,
//! QD>1 submission windows, and SSD shard queues travel with the rank's
//! `MicroFs`), and each rank is a [`RankMachine`] advanced by bounded
//! steps instead of a blocked thread. Cross-shard work moves through
//! single-producer/single-consumer message rings ([`SpscRing`]) — task
//! hand-off in, retired results out, work-stealing migration between —
//! never through shared locks.
//!
//! Two execution modes ([`ReactorMode`]):
//!
//! * **Deterministic** — every reactor is advanced in lockstep rounds on
//!   the calling thread. Same tasks + same config ⇒ identical step order,
//!   identical flight-recorder event sequence, identical QoS and steal
//!   decisions. This is the mode the driver, the determinism tests, and
//!   the 1k–10k virtual-rank sweeps use.
//! * **Threaded** — one OS thread per reactor (`std::thread::scope`),
//!   each running its shard to completion independently. This is the
//!   28-rank real-thread configuration; ranks still never share a lock
//!   because ownership is disjoint by construction.
//!
//! Admission control runs at reactor ingress: each reactor holds a
//! per-tenant token-bucket shard ([`QosConfig`]) sized to `quota / N`,
//! so admitting a step is one branch on core-local state — a noisy
//! tenant exhausts its own bucket and is deferred, never a lock that a
//! well-behaved tenant contends on.
//!
//! Telemetry: `reactor.{loops,events,steal_ns,idle_ns}` and
//! `qos.{throttled,admitted}` (see METRICS.md).

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use telemetry::Telemetry;

use crate::runtime::RuntimeError;

// ---------------------------------------------------------------------------
// SPSC message rings
// ---------------------------------------------------------------------------

/// A bounded single-producer/single-consumer ring: the only channel over
/// which work crosses a reactor boundary. One side pushes, the other pops;
/// head and tail are independent atomics, so neither side ever takes a
/// lock or waits on the other.
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot the consumer will read.
    head: AtomicUsize,
    /// Next slot the producer will write.
    tail: AtomicUsize,
}

// Safety: the producer half writes only slots in [head, tail) exclusively
// via &mut RingProducer, the consumer reads them exclusively via
// &mut RingConsumer, and the release/acquire pair on `tail`/`head`
// publishes slot contents before the index move.
unsafe impl<T: Send> Sync for SpscRing<T> {}
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    fn with_capacity(cap: usize) -> Arc<Self> {
        let cap = cap.max(1);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(SpscRing {
            slots,
            cap,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        })
    }

    /// Items currently queued.
    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            unsafe { (*self.slots[i % self.cap].get()).assume_init_drop() };
        }
    }
}

/// The producer half of an [`SpscRing`].
pub struct RingProducer<T> {
    ring: Arc<SpscRing<T>>,
}

/// The consumer half of an [`SpscRing`].
pub struct RingConsumer<T> {
    ring: Arc<SpscRing<T>>,
}

/// A connected SPSC ring of `cap` slots, split into its two halves.
pub fn spsc_ring<T: Send>(cap: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let ring = SpscRing::with_capacity(cap);
    (
        RingProducer {
            ring: Arc::clone(&ring),
        },
        RingConsumer { ring },
    )
}

impl<T: Send> RingProducer<T> {
    /// Enqueue `item`; returns it back if the ring is full (the caller
    /// owns backpressure — nothing blocks).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let head = self.ring.head.load(Ordering::Acquire);
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) == self.ring.cap {
            return Err(item);
        }
        unsafe { (*self.ring.slots[tail % self.ring.cap].get()).write(item) };
        self.ring
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> RingConsumer<T> {
    /// Dequeue the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let tail = self.ring.tail.load(Ordering::Acquire);
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == tail {
            return None;
        }
        let item = unsafe { (*self.ring.slots[head % self.ring.cap].get()).assume_init_read() };
        self.ring
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Rank state machines
// ---------------------------------------------------------------------------

/// Outcome of one [`RankMachine::step`].
pub enum MachineStep<R> {
    /// More work remains; the reactor reschedules the rank after the rest
    /// of its shard gets a turn.
    Yield,
    /// The rank retired with its result.
    Done(R),
}

/// One rank's work, expressed as a resumable state machine over its
/// resource `F` (in the runtime, the rank's `MicroFs` — which owns the
/// rank's NVMf connection and submission window, so the whole per-rank
/// stack migrates with the task). A step is a *bounded* unit of work
/// (e.g. one checkpoint chunk): the reactor interleaves steps from many
/// ranks on one thread, so a machine must never block or spin.
pub trait RankMachine<F>: Send {
    /// The machine's result type.
    type Out: Send;

    /// Advance the rank by one bounded unit of work.
    fn step(&mut self, rank: u32, fs: &mut F) -> Result<MachineStep<Self::Out>, RuntimeError>;

    /// Service units (bytes) the next step will consume — the QoS
    /// admission cost. Defaults to 1 unit for non-IO steps.
    fn next_cost(&self) -> u64 {
        1
    }
}

/// One-shot adapter: runs a closure to completion in a single step — the
/// reactor-mode analogue of the closure `map_ranks_par` takes. Multiplexed
/// drives should implement [`RankMachine`] with real per-chunk steps
/// instead.
pub struct FnMachine<G>(Option<G>);

impl<G> FnMachine<G> {
    /// Wrap `g` as a single-step machine.
    pub fn new(g: G) -> Self {
        FnMachine(Some(g))
    }
}

impl<F, G, R> RankMachine<F> for FnMachine<G>
where
    G: FnOnce(u32, &mut F) -> Result<R, RuntimeError> + Send,
    R: Send,
{
    type Out = R;

    fn step(&mut self, rank: u32, fs: &mut F) -> Result<MachineStep<R>, RuntimeError> {
        let g = self.0.take().expect("one-shot machine stepped twice");
        g(rank, fs).map(MachineStep::Done)
    }
}

/// A rank queued for a reactor drive: the rank id, its QoS tenant, the
/// owned resource (connection + window + filesystem travel as one unit),
/// and the machine that advances it.
pub struct RankTask<F, R> {
    /// Global rank.
    pub rank: u32,
    /// QoS tenant the rank bills against.
    pub tenant: u32,
    /// The rank's owned resource.
    pub fs: F,
    /// The state machine driving the rank.
    pub machine: Box<dyn RankMachine<F, Out = R>>,
}

// ---------------------------------------------------------------------------
// QoS token buckets
// ---------------------------------------------------------------------------

/// Per-tenant admission quotas, enforced as token buckets sharded per
/// reactor (each reactor holds `quota / N` so admission is one branch on
/// core-local state).
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Service units (bytes) granted to each tenant per scheduling round.
    pub quota_per_round: u64,
    /// Bucket capacity — the burst a tenant may accumulate while idle.
    pub burst: u64,
    /// Per-tenant quota overrides `(tenant, quota_per_round)`.
    pub overrides: Vec<(u32, u64)>,
}

impl QosConfig {
    fn quota_of(&self, tenant: u32) -> u64 {
        self.overrides
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(self.quota_per_round, |(_, q)| *q)
    }
}

/// One reactor's bucket shard for one tenant.
#[derive(Debug)]
struct TokenBucket {
    tokens: u64,
    refill: u64,
    burst: u64,
}

impl TokenBucket {
    fn sharded(quota: u64, burst: u64, reactors: usize) -> Self {
        let refill = (quota / reactors as u64).max(1);
        let burst = (burst / reactors as u64).max(refill);
        TokenBucket {
            tokens: burst,
            refill,
            burst,
        }
    }

    fn refill(&mut self) {
        self.tokens = (self.tokens + self.refill).min(self.burst);
    }

    /// Admit a step costing `cost` units. A full bucket always admits, so
    /// one oversized step (cost > burst) defers but can never starve.
    fn admit(&mut self, cost: u64) -> bool {
        if self.tokens >= cost || self.tokens >= self.burst {
            self.tokens = self.tokens.saturating_sub(cost);
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor pool
// ---------------------------------------------------------------------------

/// How the pool executes its reactors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorMode {
    /// All reactors advanced in lockstep rounds on the calling thread:
    /// fully deterministic step order, QoS, and stealing. Rank count is
    /// bounded by memory, not threads.
    #[default]
    Deterministic,
    /// One OS thread per reactor; shards run independently to completion.
    Threaded,
}

/// Reactor pool configuration.
#[derive(Debug, Clone, Default)]
pub struct ReactorConfig {
    /// Number of reactors. `0` sizes the pool to the available cores.
    pub reactors: usize,
    /// Execution mode.
    pub mode: ReactorMode,
    /// Optional per-tenant admission control.
    pub qos: Option<QosConfig>,
}

/// Counters from one drive, also published to the pool's telemetry as
/// `reactor.*` / `qos.*`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriveStats {
    /// Scheduling rounds executed, summed over reactors.
    pub loops: u64,
    /// Machine steps executed (completion events processed).
    pub events: u64,
    /// Wall time spent migrating tasks between shards.
    pub steal_ns: u64,
    /// Wall time reactors spent with work pending but nothing admissible.
    pub idle_ns: u64,
    /// Tasks migrated to an idle reactor.
    pub steals: u64,
    /// Steps deferred by a tenant's exhausted bucket.
    pub throttled: u64,
    /// Steps admitted through the QoS gate.
    pub admitted: u64,
}

/// One retired task.
pub struct TaskResult<F, R> {
    /// Global rank.
    pub rank: u32,
    /// The rank's tenant.
    pub tenant: u32,
    /// The rank's resource, returned to the caller.
    pub fs: F,
    /// The machine's result; `None` when its step failed (the first
    /// failure is in [`DriveOutcome::error`]).
    pub result: Option<R>,
    /// Scheduling round in which the task retired — a deterministic
    /// completion time in [`ReactorMode::Deterministic`].
    pub done_round: u64,
}

/// Everything a drive hands back: every task's resource (success or not),
/// the first error, and the counters.
pub struct DriveOutcome<F, R> {
    /// Retired tasks, sorted by rank.
    pub results: Vec<TaskResult<F, R>>,
    /// The first machine error, if any step failed.
    pub error: Option<RuntimeError>,
    /// Drive counters.
    pub stats: DriveStats,
}

/// A fixed-size pool of run-to-completion reactors.
pub struct ReactorPool {
    n: usize,
    mode: ReactorMode,
    qos: Option<QosConfig>,
    telemetry: Telemetry,
}

/// One rank resident on a reactor.
struct Active<F, R> {
    rank: u32,
    tenant: u32,
    fs: F,
    machine: Box<dyn RankMachine<F, Out = R>>,
}

/// One reactor's core-local state. Everything here is owned: the only
/// shared structures a shard touches are its two ring endpoints.
struct Shard<F, R> {
    inbox: RingConsumer<RankTask<F, R>>,
    outbox: RingProducer<TaskResult<F, R>>,
    active: VecDeque<Active<F, R>>,
    /// Tenant bucket shards, created on first sight of a tenant.
    buckets: Vec<(u32, TokenBucket)>,
    stats: DriveStats,
    error: Option<RuntimeError>,
}

impl<F: Send, R: Send> Shard<F, R> {
    fn drain_inbox(&mut self) {
        while let Some(t) = self.inbox.pop() {
            self.active.push_back(Active {
                rank: t.rank,
                tenant: t.tenant,
                fs: t.fs,
                machine: t.machine,
            });
        }
    }

    fn admit(&mut self, tenant: u32, cost: u64, qos: &QosConfig, reactors: usize) -> bool {
        let bucket = match self.buckets.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, b)) => b,
            None => {
                self.buckets.push((
                    tenant,
                    TokenBucket::sharded(qos.quota_of(tenant), qos.burst, reactors),
                ));
                &mut self.buckets.last_mut().expect("just pushed").1
            }
        };
        bucket.admit(cost)
    }

    fn retire(&mut self, a: Active<F, R>, result: Option<R>, round: u64) {
        let done = TaskResult {
            rank: a.rank,
            tenant: a.tenant,
            fs: a.fs,
            result,
            done_round: round,
        };
        if self.outbox.push(done).is_err() {
            // The outbox is sized to hold every task in the drive.
            unreachable!("reactor outbox ring overflow");
        }
    }

    /// One scheduling round: refill this shard's bucket shards, then give
    /// every resident rank one admission check and (if admitted) one step.
    /// Returns whether any step ran.
    fn run_round(&mut self, qos: Option<&QosConfig>, reactors: usize, round: u64) -> bool {
        self.stats.loops += 1;
        for (_, b) in &mut self.buckets {
            b.refill();
        }
        let mut progressed = false;
        let mut i = 0;
        while i < self.active.len() {
            let (tenant, cost) = {
                let a = &self.active[i];
                (a.tenant, a.machine.next_cost())
            };
            if let Some(q) = qos {
                if !self.admit(tenant, cost, q, reactors) {
                    self.stats.throttled += 1;
                    i += 1;
                    continue;
                }
            }
            self.stats.admitted += 1;
            self.stats.events += 1;
            progressed = true;
            let a = &mut self.active[i];
            // Rank trace context: flight-recorder events below this frame
            // are stamped with the rank being stepped, exactly as in the
            // rayon drive.
            let step = {
                let _rank = telemetry::context::with_rank(u64::from(a.rank));
                a.machine.step(a.rank, &mut a.fs)
            };
            match step {
                Ok(MachineStep::Yield) => i += 1,
                Ok(MachineStep::Done(r)) => {
                    let a = self.active.remove(i).expect("index in bounds");
                    self.retire(a, Some(r), round);
                }
                Err(e) => {
                    let a = self.active.remove(i).expect("index in bounds");
                    if self.error.is_none() {
                        self.error = Some(e);
                    }
                    self.retire(a, None, round);
                }
            }
        }
        progressed
    }
}

impl ReactorPool {
    /// A pool configured by `config`, publishing counters to `telemetry`.
    pub fn new(config: &ReactorConfig, telemetry: &Telemetry) -> Self {
        let n = if config.reactors == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            config.reactors
        };
        ReactorPool {
            n,
            mode: config.mode,
            qos: config.qos.clone(),
            telemetry: telemetry.clone(),
        }
    }

    /// Number of reactors in the pool.
    pub fn reactors(&self) -> usize {
        self.n
    }

    /// Deterministic memory accounting for a drive of `ranks` tasks over
    /// `reactors` shards: fixed per-reactor state (rings, scheduling
    /// deque, bucket table) plus three ring/queue slots per task. The
    /// contrast is the thread-per-rank model, which pins a multi-MiB
    /// stack per concurrently driven rank — here rank state is ~300 B,
    /// so rank count scales to 10k+ with sub-linear total growth while
    /// the fixed share still amortizes.
    pub fn footprint_bytes(reactors: usize, ranks: u64) -> u64 {
        /// Rings, deque headers, bucket table, stats — per reactor.
        const REACTOR_FIXED: u64 = 4096;
        /// Inbox slot + outbox slot + active-queue entry.
        const PER_TASK: u64 = 3 * 96;
        reactors as u64 * REACTOR_FIXED + ranks * PER_TASK
    }

    /// Drive `tasks` to completion and hand every resource back.
    pub fn drive<F: Send, R: Send>(&self, tasks: Vec<RankTask<F, R>>) -> DriveOutcome<F, R> {
        let n_tasks = tasks.len();
        let cap = n_tasks + 1;
        // One inbox and one outbox ring per reactor, so every ring has
        // exactly one producer and one consumer: the pool thread produces
        // tasks into inboxes (initial distribution and steal migration
        // both go through them) and consumes results from outboxes; the
        // reactor is the other end of both.
        let mut inboxes: Vec<RingProducer<RankTask<F, R>>> = Vec::with_capacity(self.n);
        let mut outboxes: Vec<RingConsumer<TaskResult<F, R>>> = Vec::with_capacity(self.n);
        let mut shards: Vec<Shard<F, R>> = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let (tx, rx) = spsc_ring::<RankTask<F, R>>(cap);
            let (otx, orx) = spsc_ring::<TaskResult<F, R>>(cap);
            inboxes.push(tx);
            outboxes.push(orx);
            shards.push(Shard {
                inbox: rx,
                outbox: otx,
                active: VecDeque::new(),
                buckets: Vec::new(),
                stats: DriveStats::default(),
                error: None,
            });
        }
        // Disjoint ownership map: rank i lives on reactor i mod N for the
        // whole drive (modulo stealing, which re-homes it explicitly).
        for (i, task) in tasks.into_iter().enumerate() {
            if inboxes[i % self.n].push(task).is_err() {
                unreachable!("reactor inbox ring overflow");
            }
        }
        match self.mode {
            ReactorMode::Deterministic => self.run_deterministic(&mut shards, &mut inboxes),
            ReactorMode::Threaded => self.run_threaded(&mut shards),
        }
        // Collect results and fold stats.
        let mut results = Vec::with_capacity(n_tasks);
        for rx in &mut outboxes {
            while let Some(r) = rx.pop() {
                results.push(r);
            }
        }
        results.sort_by_key(|r| r.rank);
        let mut stats = DriveStats::default();
        let mut error = None;
        for s in &mut shards {
            stats.loops += s.stats.loops;
            stats.events += s.stats.events;
            stats.steal_ns += s.stats.steal_ns;
            stats.idle_ns += s.stats.idle_ns;
            stats.steals += s.stats.steals;
            stats.throttled += s.stats.throttled;
            stats.admitted += s.stats.admitted;
            if error.is_none() {
                error = s.error.take();
            }
        }
        let t = &self.telemetry;
        t.counter("reactor.loops").add(stats.loops);
        t.counter("reactor.events").add(stats.events);
        t.counter("reactor.steal_ns").add(stats.steal_ns);
        t.counter("reactor.idle_ns").add(stats.idle_ns);
        t.counter("qos.throttled").add(stats.throttled);
        t.counter("qos.admitted").add(stats.admitted);
        DriveOutcome {
            results,
            error,
            stats,
        }
    }

    /// Lockstep rounds over every shard on the calling thread. After each
    /// round, drained reactors steal from the most loaded one — through
    /// the victim's inbox ring, so the migration path is the same SPSC
    /// protocol as the initial distribution.
    fn run_deterministic<F: Send, R: Send>(
        &self,
        shards: &mut [Shard<F, R>],
        inboxes: &mut [RingProducer<RankTask<F, R>>],
    ) {
        let qos = self.qos.as_ref();
        let mut round: u64 = 0;
        loop {
            round += 1;
            let mut live = false;
            for shard in shards.iter_mut() {
                shard.drain_inbox();
                if shard.active.is_empty() {
                    continue;
                }
                live = true;
                shard.run_round(qos, self.n, round);
            }
            if !live {
                break;
            }
            self.steal_pass(shards, inboxes);
        }
    }

    /// Migrate one task per idle reactor from the most loaded shard. The
    /// choice is a pure function of shard loads, so deterministic runs
    /// steal identically.
    fn steal_pass<F: Send, R: Send>(
        &self,
        shards: &mut [Shard<F, R>],
        inboxes: &mut [RingProducer<RankTask<F, R>>],
    ) {
        for thief in 0..shards.len() {
            if !shards[thief].active.is_empty() || !inboxes[thief].is_empty() {
                continue;
            }
            let Some(donor) = (0..shards.len())
                .filter(|&d| shards[d].active.len() >= 2)
                .max_by_key(|&d| shards[d].active.len())
            else {
                continue;
            };
            let t = Instant::now();
            let a = shards[donor].active.pop_back().expect("donor has >= 2");
            let task = RankTask {
                rank: a.rank,
                tenant: a.tenant,
                fs: a.fs,
                machine: a.machine,
            };
            if inboxes[thief].push(task).is_err() {
                unreachable!("steal target inbox ring overflow");
            }
            shards[thief].stats.steals += 1;
            shards[thief].stats.steal_ns += t.elapsed().as_nanos() as u64;
        }
    }

    /// One scoped OS thread per reactor; each runs its shard to
    /// completion. No cross-shard stealing here — disjoint ownership
    /// means no shared state to guard, and the skew the deterministic
    /// mode steals away is bounded by the round-robin distribution.
    fn run_threaded<F: Send, R: Send>(&self, shards: &mut [Shard<F, R>]) {
        let qos = self.qos.as_ref();
        let n = self.n;
        std::thread::scope(|scope| {
            for shard in shards.iter_mut() {
                scope.spawn(move || {
                    shard.drain_inbox();
                    let mut round: u64 = 0;
                    while !shard.active.is_empty() {
                        round += 1;
                        if !shard.run_round(qos, n, round) {
                            // Everything resident is throttled: the shard
                            // is idle until the next refill.
                            let t = Instant::now();
                            std::thread::yield_now();
                            shard.stats.idle_ns += t.elapsed().as_nanos() as u64;
                        }
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine that increments its resource `steps` times, `cost` QoS
    /// units per step.
    struct Counter {
        left: u32,
        cost: u64,
    }

    impl RankMachine<u64> for Counter {
        type Out = u64;

        fn step(&mut self, _rank: u32, acc: &mut u64) -> Result<MachineStep<u64>, RuntimeError> {
            *acc += 1;
            self.left -= 1;
            if self.left == 0 {
                Ok(MachineStep::Done(*acc))
            } else {
                Ok(MachineStep::Yield)
            }
        }

        fn next_cost(&self) -> u64 {
            self.cost
        }
    }

    fn counter_tasks(spec: &[(u32, u32, u64)]) -> Vec<RankTask<u64, u64>> {
        spec.iter()
            .map(|&(rank, steps, cost)| RankTask {
                rank,
                tenant: rank % 2,
                fs: 0u64,
                machine: Box::new(Counter { left: steps, cost }),
            })
            .collect()
    }

    #[test]
    fn ring_roundtrips_in_order_and_bounds() {
        let (mut tx, mut rx) = spsc_ring::<u32>(4);
        assert!(tx.is_empty());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "full ring must refuse");
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Wrap-around: indices keep climbing past the capacity.
        for round in 0..10u32 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop(), Some(round));
        }
    }

    #[test]
    fn ring_drops_unconsumed_items() {
        let payload = Arc::new(());
        let (mut tx, rx) = spsc_ring::<Arc<()>>(8);
        for _ in 0..5 {
            tx.push(Arc::clone(&payload)).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1, "ring must drop its items");
    }

    #[test]
    fn ring_crosses_threads() {
        let (mut tx, mut rx) = spsc_ring::<u64>(16);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..1000u64 {
                    let mut item = i;
                    loop {
                        match tx.push(item) {
                            Ok(()) => break,
                            Err(back) => item = back,
                        }
                    }
                }
            });
            s.spawn(move || {
                let mut expect = 0u64;
                while expect < 1000 {
                    if let Some(v) = rx.pop() {
                        assert_eq!(v, expect, "FIFO order across threads");
                        expect += 1;
                    }
                }
            });
        });
    }

    #[test]
    fn deterministic_drive_completes_and_repeats_exactly() {
        let t = Telemetry::new();
        let pool = ReactorPool::new(
            &ReactorConfig {
                reactors: 3,
                ..ReactorConfig::default()
            },
            &t,
        );
        let spec: Vec<(u32, u32, u64)> = (0..17).map(|r| (r, 1 + r % 5, 1)).collect();
        let run = || {
            let out = pool.drive(counter_tasks(&spec));
            assert!(out.error.is_none());
            out.results
                .iter()
                .map(|r| (r.rank, r.result.unwrap(), r.done_round))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same tasks must retire in identical rounds");
        assert_eq!(a.len(), 17);
        for (rank, steps, _) in &a {
            assert_eq!(*steps, u64::from(1 + rank % 5));
        }
        let total_steps: u64 = spec.iter().map(|&(_, s, _)| u64::from(s)).sum();
        let snap = t.snapshot();
        assert_eq!(snap.counter("reactor.events"), 2 * total_steps);
        assert!(snap.counter("reactor.loops") > 0);
    }

    #[test]
    fn threaded_drive_completes_all_tasks() {
        let t = Telemetry::new();
        let pool = ReactorPool::new(
            &ReactorConfig {
                reactors: 4,
                mode: ReactorMode::Threaded,
                ..ReactorConfig::default()
            },
            &t,
        );
        let spec: Vec<(u32, u32, u64)> = (0..64).map(|r| (r, 3, 1)).collect();
        let out = pool.drive(counter_tasks(&spec));
        assert!(out.error.is_none());
        assert_eq!(out.results.len(), 64);
        assert!(out.results.iter().all(|r| r.result == Some(3)));
        assert_eq!(t.snapshot().counter("reactor.events"), 64 * 3);
    }

    #[test]
    fn idle_reactor_steals_from_loaded_shard() {
        let t = Telemetry::new();
        let pool = ReactorPool::new(
            &ReactorConfig {
                reactors: 2,
                ..ReactorConfig::default()
            },
            &t,
        );
        // Reactor 0 gets the two long tasks (ranks 0, 2), reactor 1 two
        // trivial ones: once 1 drains, it must pull a task across.
        let out = pool.drive(counter_tasks(&[
            (0, 400, 1),
            (1, 1, 1),
            (2, 400, 1),
            (3, 1, 1),
        ]));
        assert!(out.error.is_none());
        assert_eq!(out.results.len(), 4);
        assert!(out.stats.steals >= 1, "idle reactor must steal");
        assert_eq!(t.snapshot().counter("reactor.events"), 802);
    }

    #[test]
    fn machine_error_surfaces_but_returns_every_resource() {
        struct Fail;
        impl RankMachine<u64> for Fail {
            type Out = u64;
            fn step(&mut self, r: u32, _: &mut u64) -> Result<MachineStep<u64>, RuntimeError> {
                Err(RuntimeError::BadRank(r))
            }
        }
        let t = Telemetry::new();
        let pool = ReactorPool::new(
            &ReactorConfig {
                reactors: 2,
                ..ReactorConfig::default()
            },
            &t,
        );
        let mut tasks = counter_tasks(&[(0, 2, 1), (2, 2, 1)]);
        tasks.push(RankTask {
            rank: 1,
            tenant: 0,
            fs: 0,
            machine: Box::new(Fail),
        });
        let out = pool.drive(tasks);
        assert!(matches!(out.error, Some(RuntimeError::BadRank(1))));
        assert_eq!(out.results.len(), 3, "every fs comes back, even failed");
        let failed = out.results.iter().find(|r| r.rank == 1).unwrap();
        assert!(failed.result.is_none());
        assert!(out.results.iter().filter(|r| r.result.is_some()).count() == 2);
    }

    #[test]
    fn qos_throttles_over_quota_tenant_without_starving() {
        let t = Telemetry::new();
        let pool = ReactorPool::new(
            &ReactorConfig {
                reactors: 1,
                qos: Some(QosConfig {
                    quota_per_round: 4,
                    burst: 8,
                    overrides: vec![],
                }),
                ..ReactorConfig::default()
            },
            &t,
        );
        // Tenant 0 (rank 0): cheap steps, within quota. Tenant 1 (rank 1):
        // each step costs 4x its per-round refill — mostly throttled, but
        // the full-bucket rule keeps admitting one step per refill cycle.
        let out = pool.drive(counter_tasks(&[(0, 20, 1), (1, 20, 16)]));
        assert!(out.error.is_none());
        assert_eq!(out.results.len(), 2, "throttling must never starve");
        assert!(out.stats.throttled > 0, "over-quota tenant throttles");
        let snap = t.snapshot();
        assert_eq!(snap.counter("qos.admitted"), 40);
        assert_eq!(snap.counter("qos.throttled"), out.stats.throttled);
        // The well-behaved tenant retires long before the noisy one.
        let cheap = out.results.iter().find(|r| r.rank == 0).unwrap();
        let noisy = out.results.iter().find(|r| r.rank == 1).unwrap();
        assert!(cheap.done_round < noisy.done_round);
    }

    #[test]
    fn footprint_grows_sublinearly_in_ranks() {
        let per_rank = |ranks: u64| ReactorPool::footprint_bytes(16, ranks) / ranks;
        assert!(per_rank(10_000) <= per_rank(1_000));
        assert!(per_rank(1_000) <= per_rank(28));
        let fp1k = ReactorPool::footprint_bytes(16, 1_000);
        let fp10k = ReactorPool::footprint_bytes(16, 10_000);
        assert!(
            (fp10k as f64) < 10.0 * fp1k as f64,
            "10x ranks must cost < 10x bytes"
        );
    }
}
