//! The data plane: a [`microfs::BlockDevice`] over an NVMf connection.
//!
//! "The data plane provides a block device like interface to access the
//! remote SSD partition using NVMf" (§III-B). Each rank's `MicroFs` mounts
//! one `NvmfBlockDevice`, which maps partition-relative offsets into the
//! rank's contiguous segment of the job's namespace and forwards the IO
//! through the capsule codec to the target — entirely in userspace.

use crate::replication::{Mirror, ReplicationError, ScrubReport};
use bytes::Bytes;
use chaos::{ChaosHandle, CrashOp};
use fabric::initiator::NvmfConnection;
use microfs::block::{BlockDevice, DevError, IoCounters};

/// A remote SSD segment exposed as a block device.
pub struct NvmfBlockDevice {
    conn: NvmfConnection,
    /// Segment base within the namespace.
    base: u64,
    /// Segment size — the microfs partition size.
    size: u64,
    counters: IoCounters,
    /// Replication factor 2: a second copy on a partner failure domain,
    /// written through both submission windows concurrently. `None` (the
    /// default) leaves every path bit-for-bit unreplicated.
    mirror: Option<Box<Mirror>>,
    /// Crash-universe hook: disarmed (the default) every gate is one
    /// relaxed atomic load.
    chaos: ChaosHandle,
}

impl NvmfBlockDevice {
    /// Wrap `conn`, exposing `[base, base + size)` of its namespace.
    pub fn new(conn: NvmfConnection, base: u64, size: u64) -> Self {
        NvmfBlockDevice {
            conn,
            base,
            size,
            counters: IoCounters::default(),
            mirror: None,
            chaos: ChaosHandle::new(),
        }
    }

    /// Thread the runtime's chaos handle through, so the crash-universe
    /// mode can count and kill block-level writes.
    pub fn set_chaos(&mut self, chaos: ChaosHandle) {
        self.chaos = chaos;
    }

    /// One crash-universe index per write element, consumed *before* any
    /// byte hits the wire: a firing gate models a crash ahead of the
    /// batch, so the batch is atomically absent after recovery.
    fn crash_gate(&self, elems: usize) -> Result<(), DevError> {
        for _ in 0..elems {
            if self.chaos.crash_fire(CrashOp::BlockWrite) {
                return Err(DevError("crash point: block write".into()));
            }
        }
        Ok(())
    }

    /// Total NVMf `(ios, bytes)` issued on the underlying connection.
    pub fn nvmf_counters(&self) -> (u64, u64) {
        self.conn.io_counters()
    }

    /// The primary connection, for runtime-internal maintenance reads
    /// (manifest-region decoding during typestate recovery).
    pub(crate) fn conn_mut(&mut self) -> &mut NvmfConnection {
        &mut self.conn
    }

    /// Attach a replica mirror: every subsequent write lands on both
    /// copies before it returns.
    pub fn attach_mirror(&mut self, mirror: Mirror) {
        self.mirror = Some(Box::new(mirror));
    }

    /// Detach and return the mirror (for failover re-homing).
    pub fn take_mirror(&mut self) -> Option<Mirror> {
        self.mirror.take().map(|m| *m)
    }

    pub fn mirror(&self) -> Option<&Mirror> {
        self.mirror.as_deref()
    }

    /// Seal the current extent map as a new checkpoint epoch on both
    /// copies. `Ok(None)` when unreplicated.
    pub fn commit_epoch(&mut self) -> Result<Option<u64>, ReplicationError> {
        match &mut self.mirror {
            None => Ok(None),
            Some(m) => m
                .commit_epoch(&mut self.conn, self.base, self.size)
                .map(Some),
        }
    }

    /// Verify every committed extent on both copies, read-repairing
    /// whichever copy is corrupt. `Ok(None)` when unreplicated.
    pub fn scrub(&mut self) -> Result<Option<ScrubReport>, ReplicationError> {
        match &mut self.mirror {
            None => Ok(None),
            Some(m) => m.scrub(&mut self.conn, self.base).map(Some),
        }
    }

    /// Rebuild the mirror's extent map from the full primary image —
    /// used after a crash where the in-memory map did not survive.
    pub fn rescan_mirror(&mut self) -> Result<(), ReplicationError> {
        if let Some(m) = &mut self.mirror {
            m.rescan(&mut self.conn, self.base, self.size)?;
        }
        Ok(())
    }

    /// Forward a batch of partition-relative writes to the right path:
    /// mirrored through both windows when a replica is attached, plain
    /// zero-copy otherwise.
    fn dispatch_writes(&mut self, writes: Vec<(u64, Bytes)>) -> Result<(), DevError> {
        match &mut self.mirror {
            Some(m) => m
                .write_through(&mut self.conn, self.base, writes)
                .map_err(|e| DevError(e.to_string())),
            None => {
                let base = self.base;
                self.conn
                    .write_vectored_bytes(writes.into_iter().map(|(o, d)| (base + o, d)).collect())
                    .map_err(|e| DevError(e.to_string()))
            }
        }
    }

    /// Write an owned payload — the zero-copy path straight through the
    /// connection (no staging copy at this layer or below).
    pub fn write_bytes_at(&mut self, offset: u64, data: Bytes) -> Result<(), DevError> {
        self.check(offset, data.len() as u64)?;
        self.crash_gate(1)?;
        let len = data.len() as u64;
        if self.mirror.is_some() {
            self.dispatch_writes(vec![(offset, data)])?;
        } else {
            self.conn
                .write_bytes(self.base + offset, data)
                .map_err(|e| DevError(e.to_string()))?;
        }
        self.counters.writes += 1;
        self.counters.bytes_written += len;
        Ok(())
    }

    /// Write a batch of owned payloads through the pipelined submission
    /// window — zero-copy, up to the connection's `queue_depth` extents in
    /// flight at once.
    pub fn write_vectored_bytes_at(&mut self, writes: Vec<(u64, Bytes)>) -> Result<(), DevError> {
        let mut total = 0u64;
        for (offset, data) in &writes {
            self.check(*offset, data.len() as u64)?;
            total += data.len() as u64;
        }
        self.crash_gate(writes.len())?;
        let count = writes.len() as u64;
        self.dispatch_writes(writes)?;
        self.counters.writes += count;
        self.counters.bytes_written += total;
        Ok(())
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), DevError> {
        if offset.checked_add(len).is_none_or(|e| e > self.size) {
            return Err(DevError(format!(
                "IO [{offset}, +{len}) beyond segment of {}",
                self.size
            )));
        }
        Ok(())
    }
}

impl BlockDevice for NvmfBlockDevice {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), DevError> {
        self.check(offset, data.len() as u64)?;
        self.crash_gate(1)?;
        if self.mirror.is_some() {
            // Borrowed payloads are staged once so both capsules can
            // share the buffer (and its one CRC pass).
            self.dispatch_writes(vec![(offset, Bytes::copy_from_slice(data))])?;
        } else {
            self.conn
                .write(self.base + offset, data)
                .map_err(|e| DevError(e.to_string()))?;
        }
        self.counters.writes += 1;
        self.counters.bytes_written += data.len() as u64;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), DevError> {
        self.check(offset, buf.len() as u64)?;
        // read_into lands the wire payload directly in `buf` — one copy,
        // not the read-to-vec-then-copy double it replaced.
        self.conn
            .read_into(self.base + offset, buf)
            .map_err(|e| DevError(e.to_string()))?;
        self.counters.reads += 1;
        self.counters.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Pipeline a whole extent batch through the submission window: up to
    /// `queue_depth` write capsules in flight instead of one lock-step
    /// exchange per extent.
    fn write_vectored_at(&mut self, writes: &[(u64, &[u8])]) -> Result<(), DevError> {
        let mut total = 0u64;
        for &(offset, data) in writes {
            self.check(offset, data.len() as u64)?;
            total += data.len() as u64;
        }
        self.crash_gate(writes.len())?;
        if self.mirror.is_some() {
            self.dispatch_writes(
                writes
                    .iter()
                    .map(|&(o, d)| (o, Bytes::copy_from_slice(d)))
                    .collect(),
            )?;
        } else {
            let abs: Vec<(u64, &[u8])> = writes.iter().map(|&(o, d)| (self.base + o, d)).collect();
            self.conn
                .write_vectored(&abs)
                .map_err(|e| DevError(e.to_string()))?;
        }
        self.counters.writes += writes.len() as u64;
        self.counters.bytes_written += total;
        Ok(())
    }

    /// Pipeline a batch of reads through the submission window; each wire
    /// payload lands in its caller buffer with one copy.
    fn read_vectored_at(&mut self, reads: &mut [(u64, &mut [u8])]) -> Result<(), DevError> {
        let mut total = 0u64;
        for (offset, buf) in reads.iter() {
            self.check(*offset, buf.len() as u64)?;
            total += buf.len() as u64;
        }
        let count = reads.len() as u64;
        let base = self.base;
        let mut abs: Vec<(u64, &mut [u8])> = reads
            .iter_mut()
            .map(|(o, b)| (base + *o, &mut **b))
            .collect();
        self.conn
            .read_vectored_into(&mut abs)
            .map_err(|e| DevError(e.to_string()))?;
        self.counters.reads += count;
        self.counters.bytes_read += total;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DevError> {
        self.conn.flush().map_err(|e| DevError(e.to_string()))?;
        if let Some(m) = &mut self.mirror {
            // A replica flush failure degrades the mirror; it never
            // fails the application's flush.
            m.flush();
        }
        Ok(())
    }

    /// Whiteout hint from microfs: the span's file was deleted or
    /// truncated away. The mirror drops it from the extent map (and the
    /// delta chain records it); unreplicated devices ignore it.
    fn discard_at(&mut self, offset: u64, len: u64) -> Result<(), DevError> {
        self.check(offset, len)?;
        if let Some(m) = &mut self.mirror {
            if self.chaos.crash_fire(CrashOp::Discard) {
                return Err(DevError("crash point: discard".into()));
            }
            m.discard(offset, len);
        }
        Ok(())
    }

    fn size(&self) -> u64 {
        self.size
    }

    fn counters(&self) -> IoCounters {
        // Staging copies made on the initiator side are tracked in the
        // telemetry registry as `fabric.bytes_copied`, not here.
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{Initiator, NvmfTarget};
    use ssd::{Ssd, SsdConfig};
    use std::sync::Arc;

    fn segment_device(base: u64, size: u64) -> NvmfBlockDevice {
        segment_device_with_telemetry(base, size, telemetry::Telemetry::new()).0
    }

    fn segment_device_with_telemetry(
        base: u64,
        size: u64,
        t: telemetry::Telemetry,
    ) -> (NvmfBlockDevice, telemetry::Telemetry) {
        let ssd = Ssd::with_telemetry(
            SsdConfig {
                capacity: 64 << 20,
                ..SsdConfig::default()
            },
            t.clone(),
        );
        let ns = ssd.create_namespace(32 << 20).unwrap();
        let target = Arc::new(NvmfTarget::new(Arc::new(ssd)));
        let conn = Initiator::with_telemetry("nqn.rank0", t.clone()).connect(target, ns);
        (NvmfBlockDevice::new(conn, base, size), t)
    }

    #[test]
    fn io_is_offset_by_segment_base() {
        let mut d = segment_device(1 << 20, 1 << 20);
        d.write_at(0, b"segment start").unwrap();
        assert_eq!(d.read_vec(0, 13).unwrap(), b"segment start");
        assert_eq!(d.size(), 1 << 20);
    }

    #[test]
    fn segment_bounds_enforced_locally() {
        let mut d = segment_device(0, 4096);
        assert!(d.write_at(4090, &[0u8; 10]).is_err());
        let mut buf = [0u8; 10];
        assert!(d.read_at(4090, &mut buf).is_err());
        // Overflow-safe.
        assert!(d.write_at(u64::MAX, &[0u8; 1]).is_err());
    }

    #[test]
    fn counters_track_block_and_nvmf_levels() {
        let mut d = segment_device(0, 1 << 20);
        d.write_at(0, &[1u8; 100]).unwrap();
        let _ = d.read_vec(0, 50).unwrap();
        d.flush().unwrap();
        let c = d.counters();
        assert_eq!((c.writes, c.reads), (1, 1));
        let (ios, bytes) = d.nvmf_counters();
        assert_eq!(ios, 2);
        assert_eq!(bytes, 150);
    }

    #[test]
    fn zero_copy_write_and_single_copy_read() {
        let (mut d, t) = segment_device_with_telemetry(0, 1 << 20, telemetry::Telemetry::new());
        d.write_bytes_at(0, Bytes::from(vec![9u8; 4096])).unwrap();
        assert_eq!(
            t.snapshot().counter("fabric.bytes_copied"),
            0,
            "write_bytes_at must not copy"
        );
        let mut buf = vec![0u8; 4096];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 4096]);
        assert_eq!(
            t.snapshot().counter("fabric.bytes_copied"),
            4096,
            "read_at copies exactly once"
        );
    }

    #[test]
    fn vectored_io_pipelines_through_the_window() {
        let (mut d, t) =
            segment_device_with_telemetry(1 << 20, 4 << 20, telemetry::Telemetry::new());
        // A whole hugeblock batch in one window, zero-copy.
        let writes: Vec<(u64, Bytes)> = (0..48u64)
            .map(|i| (i * 4096, Bytes::from(vec![i as u8; 4096])))
            .collect();
        d.write_vectored_bytes_at(writes).unwrap();
        assert_eq!(t.snapshot().counter("fabric.bytes_copied"), 0);
        let c = d.counters();
        assert_eq!(c.writes, 48);
        assert_eq!(c.bytes_written, 48 * 4096);
        // Batched read back through the window, one copy per extent.
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; 4096]; 48];
        {
            let mut reads: Vec<(u64, &mut [u8])> = bufs
                .iter_mut()
                .enumerate()
                .map(|(i, b)| ((i as u64) * 4096, &mut b[..]))
                .collect();
            d.read_vectored_at(&mut reads).unwrap();
        }
        for (i, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &vec![i as u8; 4096], "extent {i}");
        }
        assert_eq!(d.counters().reads, 48);
        // Segment bounds are enforced before anything hits the wire.
        assert!(d
            .write_vectored_at(&[(0, b"ok"), ((4 << 20) - 1, b"spill")])
            .is_err());
    }

    #[test]
    fn mirrored_device_replicates_microfs_byte_for_byte() {
        use crate::replication::Mirror;
        use microfs::{FsConfig, MicroFs};
        let t = telemetry::Telemetry::new();
        let mk = |name: &str| {
            let ssd = Ssd::with_telemetry(
                SsdConfig {
                    capacity: 64 << 20,
                    ..SsdConfig::default()
                },
                t.clone(),
            );
            let ns = ssd.create_namespace(32 << 20).unwrap();
            let target = Arc::new(NvmfTarget::new(Arc::new(ssd)));
            Initiator::with_telemetry(name, t.clone()).connect(target, ns)
        };
        let fs_size = 16u64 << 20;
        let mut d = NvmfBlockDevice::new(mk("nqn.prim"), 4 << 20, fs_size);
        d.attach_mirror(Mirror::new(mk("nqn.repl"), &t));
        // Format + data run entirely through the mirrored write paths.
        let mut fs = MicroFs::format(d, FsConfig::default()).unwrap();
        let fd = fs.create("/ckpt", 0o644).unwrap();
        fs.write(fd, &vec![0x5Au8; 300_000]).unwrap();
        fs.close(fd).unwrap();
        fs.snapshot_now().unwrap();
        let mut d = fs.into_device();
        assert_eq!(d.commit_epoch().unwrap(), Some(1));
        assert_eq!(d.scrub().unwrap().unwrap().unrecoverable, 0);
        // The replica holds a byte-identical partition image.
        let m = d.take_mirror().unwrap();
        assert!(!m.is_degraded());
        let spans: Vec<(u64, u64, Option<u32>)> = m.map().entries();
        let (mut rconn, _, _, _) = m.into_parts();
        for (off, len, _) in spans {
            let replica = rconn.read_bytes(off, len as usize).unwrap();
            let mut primary = vec![0u8; len as usize];
            d.read_at(off, &mut primary).unwrap();
            assert_eq!(&replica[..], &primary[..], "extent at {off}");
        }
    }

    #[test]
    fn microfs_formats_and_runs_over_nvmf() {
        use microfs::{FsConfig, MicroFs, OpenFlags};
        let d = segment_device(4 << 20, 16 << 20);
        let mut fs = MicroFs::format(d, FsConfig::default()).unwrap();
        let fd = fs.create("/ckpt", 0o644).unwrap();
        let data = vec![0xCDu8; 200_000];
        fs.write(fd, &data).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/ckpt", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.read(fd, &mut buf).unwrap();
        assert_eq!(buf, data);
    }
}
