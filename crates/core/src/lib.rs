//! # nvmecr — the NVMe-CR runtime
//!
//! NVMe-CR (the paper's contribution) is "a scalable ephemeral userspace
//! storage runtime for storing checkpoint data with NVMf" built on the
//! [`microfs`] abstraction. This crate is the functional runtime: it moves
//! real bytes from per-rank [`microfs::MicroFs`] instances over the
//! [`fabric`] NVMf transport into namespaces on [`ssd`] devices, placed by
//! the storage balancer across the [`cluster`] topology.
//!
//! The three components of Figure 3:
//!
//! * **Control plane** — per-rank `MicroFs` (private namespace, metadata
//!   provenance, log record coalescing): see the `microfs` crate.
//! * **Data plane** — [`dataplane::NvmfBlockDevice`], a
//!   [`microfs::BlockDevice`] that forwards hugeblock IO through an NVMf
//!   connection to the rank's contiguous SSD segment.
//! * **Storage balancer** — [`balancer`], the failure-domain-aware,
//!   round-robin partitioner of §III-F (Figure 6), building the per-SSD
//!   `MPI_COMM_CR` communicators.
//!
//! Plus: [`cache`] (the paper's future-work cache layer, §V, with the
//! §III-D buffering hazard made testable), [`intercept`] (the
//! symbol-interception shim of §III-C),
//! [`multilevel`] (1-in-k checkpoints to a parallel filesystem, §III-F),
//! and [`metrics`] (efficiency and progress-rate definitions, §IV).
//!
//! Timing *models* for cluster-scale experiments live in the `baselines`
//! and `workloads` crates; this crate is the thing they model.

pub mod balancer;
pub mod cache;
pub mod config;
pub mod dataplane;
pub mod intercept;
pub mod metrics;
pub mod multilevel;
pub mod reactor;
pub mod recovery;
pub mod replication;
pub mod runtime;
pub mod supervisor;

pub use balancer::{BalanceError, DomainIndex, Placement, RankPlacement, StorageBalancer};
pub use cache::{CacheStats, CachedBlockDevice, WritePolicy};
pub use config::RuntimeConfig;
pub use dataplane::NvmfBlockDevice;
pub use intercept::PosixLayer;
pub use metrics::{efficiency, progress_rate};
pub use multilevel::{CheckpointLevel, MultiLevelPolicy};
pub use reactor::{
    MachineStep, QosConfig, RankMachine, RankTask, ReactorConfig, ReactorMode, ReactorPool,
};
pub use replication::{Mirror, ReplicationError, ScrubReport};
pub use runtime::{JobHandle, NvmeCrRuntime, RuntimeError, StorageRack};
pub use supervisor::{
    DegradedRank, RecoveryOutcome, RecoveryPolicy, RecoverySupervisor, Supervised,
};
