//! Application obliviousness: the symbol-interception shim (§III-C).
//!
//! The paper intercepts POSIX IO symbols with the GNU `ld` linker and
//! redirects them into the runtime, so unmodified binaries run over
//! NVMe-CR. Linking tricks don't reproduce in a library, but their semantic
//! content does: a dispatch layer that (a) claims the standard IO entry
//! points, (b) routes calls under the mount prefix to the runtime's
//! `MicroFs`, and (c) passes everything else through to the "kernel" (here:
//! counted and refused, since no kernel FS exists in the harness).
//!
//! `MPI_Init`/`MPI_Finalize` wrappers bracket the runtime's lifetime the
//! same way (§III-C: "runtime initialization and finalization is handled by
//! these wrappers").

use microfs::block::BlockDevice;
use microfs::{FsError, MicroFs, OpenFlags};

/// The POSIX symbols NVMe-CR interposes (the library-call surface of
/// §III-C/E). Used for documentation and to test coverage of the dispatch.
pub const INTERCEPTED_SYMBOLS: &[&str] = &[
    "open",
    "creat",
    "close",
    "read",
    "write",
    "pread",
    "pwrite",
    "lseek",
    "fsync",
    "mkdir",
    "unlink",
    "rename",
    "truncate",
    "stat",
    "MPI_Init",
    "MPI_Finalize",
];

/// Where a call was routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Handled by the NVMe-CR runtime in userspace.
    Runtime,
    /// Would fall through to the real libc/kernel.
    Passthrough,
}

/// Interception statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterceptStats {
    /// Calls handled in userspace.
    pub runtime_calls: u64,
    /// Calls that fell through to the kernel path.
    pub passthrough_calls: u64,
}

/// The dispatch layer: one per process, wrapping that process's `MicroFs`.
pub struct PosixLayer<D: BlockDevice> {
    fs: MicroFs<D>,
    mount_prefix: String,
    stats: InterceptStats,
}

impl<D: BlockDevice> PosixLayer<D> {
    /// Interpose over `fs`, claiming paths under `mount_prefix` (e.g.
    /// `/nvmecr`).
    pub fn new(fs: MicroFs<D>, mount_prefix: impl Into<String>) -> Self {
        let mount_prefix = mount_prefix.into();
        assert!(mount_prefix.starts_with('/') && !mount_prefix.ends_with('/'));
        PosixLayer {
            fs,
            mount_prefix,
            stats: InterceptStats::default(),
        }
    }

    /// Routing decision for a path (the check the interposed symbol makes
    /// first).
    pub fn route(&self, path: &str) -> Route {
        if path == self.mount_prefix || path.starts_with(&format!("{}/", self.mount_prefix)) {
            Route::Runtime
        } else {
            Route::Passthrough
        }
    }

    fn strip(&self, path: &str) -> Result<String, FsError> {
        match self.route(path) {
            Route::Passthrough => Err(FsError::Invalid(format!(
                "{path} is outside the {} mount (kernel passthrough)",
                self.mount_prefix
            ))),
            Route::Runtime => {
                let rest = &path[self.mount_prefix.len()..];
                Ok(if rest.is_empty() {
                    "/".to_string()
                } else {
                    rest.to_string()
                })
            }
        }
    }

    /// Interposed `open`.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u32) -> Result<u32, FsError> {
        match self.route(path) {
            Route::Runtime => {
                self.stats.runtime_calls += 1;
                let p = self.strip(path)?;
                self.fs.open(&p, flags, mode)
            }
            Route::Passthrough => {
                self.stats.passthrough_calls += 1;
                Err(FsError::Invalid(format!("passthrough: {path}")))
            }
        }
    }

    /// Interposed `creat`.
    pub fn creat(&mut self, path: &str, mode: u32) -> Result<u32, FsError> {
        self.open(path, OpenFlags::CREATE_TRUNC, mode)
    }

    /// Interposed `mkdir`.
    pub fn mkdir(&mut self, path: &str, mode: u32) -> Result<(), FsError> {
        match self.route(path) {
            Route::Runtime => {
                self.stats.runtime_calls += 1;
                let p = self.strip(path)?;
                self.fs.mkdir(&p, mode)
            }
            Route::Passthrough => {
                self.stats.passthrough_calls += 1;
                Err(FsError::Invalid(format!("passthrough: {path}")))
            }
        }
    }

    /// Interposed `unlink`.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        match self.route(path) {
            Route::Runtime => {
                self.stats.runtime_calls += 1;
                let p = self.strip(path)?;
                self.fs.unlink(&p)
            }
            Route::Passthrough => {
                self.stats.passthrough_calls += 1;
                Err(FsError::Invalid(format!("passthrough: {path}")))
            }
        }
    }

    /// Interposed `write` (fds are always runtime fds here).
    pub fn write(&mut self, fd: u32, data: &[u8]) -> Result<usize, FsError> {
        self.stats.runtime_calls += 1;
        self.fs.write(fd, data)
    }

    /// Interposed `read`.
    pub fn read(&mut self, fd: u32, buf: &mut [u8]) -> Result<usize, FsError> {
        self.stats.runtime_calls += 1;
        self.fs.read(fd, buf)
    }

    /// Interposed `fsync`.
    pub fn fsync(&mut self, fd: u32) -> Result<(), FsError> {
        self.stats.runtime_calls += 1;
        self.fs.fsync(fd)
    }

    /// Interposed `close`.
    pub fn close(&mut self, fd: u32) -> Result<(), FsError> {
        self.stats.runtime_calls += 1;
        self.fs.close(fd)
    }

    /// Interposed `stat`.
    pub fn stat(&mut self, path: &str) -> Result<microfs::fs::FileStat, FsError> {
        match self.route(path) {
            Route::Runtime => {
                self.stats.runtime_calls += 1;
                let p = self.strip(path)?;
                self.fs.stat(&p)
            }
            Route::Passthrough => {
                self.stats.passthrough_calls += 1;
                Err(FsError::Invalid(format!("passthrough: {path}")))
            }
        }
    }

    /// Interposed `lseek` (absolute).
    pub fn lseek(&mut self, fd: u32, pos: u64) -> Result<(), FsError> {
        self.stats.runtime_calls += 1;
        self.fs.seek(fd, pos)
    }

    /// Interposed `rename` — both paths must be under the mount.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        match (self.route(from), self.route(to)) {
            (Route::Runtime, Route::Runtime) => {
                self.stats.runtime_calls += 1;
                let f = self.strip(from)?;
                let t = self.strip(to)?;
                self.fs.rename(&f, &t)
            }
            _ => {
                self.stats.passthrough_calls += 1;
                Err(FsError::Invalid(format!(
                    "passthrough: rename {from} -> {to} crosses the mount"
                )))
            }
        }
    }

    /// Interposed `truncate`.
    pub fn truncate(&mut self, path: &str, size: u64) -> Result<(), FsError> {
        match self.route(path) {
            Route::Runtime => {
                self.stats.runtime_calls += 1;
                let p = self.strip(path)?;
                self.fs.truncate(&p, size)
            }
            Route::Passthrough => {
                self.stats.passthrough_calls += 1;
                Err(FsError::Invalid(format!("passthrough: {path}")))
            }
        }
    }

    /// Interception statistics.
    pub fn stats(&self) -> InterceptStats {
        self.stats
    }

    /// The wrapped filesystem (e.g. for finalize-time snapshotting).
    pub fn fs_mut(&mut self) -> &mut MicroFs<D> {
        &mut self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microfs::{FsConfig, MemDevice};

    fn layer() -> PosixLayer<MemDevice> {
        let fs = MicroFs::format(MemDevice::new(64 << 20), FsConfig::default()).unwrap();
        PosixLayer::new(fs, "/nvmecr")
    }

    #[test]
    fn paths_under_mount_are_intercepted() {
        let mut l = layer();
        assert_eq!(l.route("/nvmecr/ckpt.dat"), Route::Runtime);
        assert_eq!(l.route("/home/user/x"), Route::Passthrough);
        assert_eq!(l.route("/nvmecrX/ckpt"), Route::Passthrough);
        let fd = l.creat("/nvmecr/ckpt.dat", 0o644).unwrap();
        l.write(fd, b"data").unwrap();
        l.fsync(fd).unwrap();
        l.close(fd).unwrap();
        let fd = l.open("/nvmecr/ckpt.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(l.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"data");
        l.close(fd).unwrap();
    }

    #[test]
    fn passthrough_paths_are_counted_not_handled() {
        let mut l = layer();
        assert!(l.creat("/tmp/other", 0o644).is_err());
        assert!(l.mkdir("/var/x", 0o755).is_err());
        assert!(l.unlink("/etc/y").is_err());
        let s = l.stats();
        assert_eq!(s.passthrough_calls, 3);
        assert_eq!(s.runtime_calls, 0);
    }

    #[test]
    fn mkdir_and_unlink_through_the_shim() {
        let mut l = layer();
        l.mkdir("/nvmecr/dir", 0o755).unwrap();
        let fd = l.creat("/nvmecr/dir/f", 0o644).unwrap();
        l.close(fd).unwrap();
        l.unlink("/nvmecr/dir/f").unwrap();
        l.unlink("/nvmecr/dir").unwrap();
        assert!(l.stats().runtime_calls >= 5);
    }

    #[test]
    fn stat_seek_rename_truncate_through_the_shim() {
        let mut l = layer();
        let fd = l.creat("/nvmecr/a.dat", 0o644).unwrap();
        l.write(fd, b"0123456789").unwrap();
        l.lseek(fd, 2).unwrap();
        l.close(fd).unwrap();
        assert_eq!(l.stat("/nvmecr/a.dat").unwrap().size, 10);
        l.truncate("/nvmecr/a.dat", 4).unwrap();
        assert_eq!(l.stat("/nvmecr/a.dat").unwrap().size, 4);
        l.rename("/nvmecr/a.dat", "/nvmecr/b.dat").unwrap();
        assert!(l.stat("/nvmecr/a.dat").is_err());
        assert_eq!(l.stat("/nvmecr/b.dat").unwrap().size, 4);
        // Renames crossing the mount boundary fall through.
        assert!(l.rename("/nvmecr/b.dat", "/tmp/outside").is_err());
        assert!(
            l.stat("/nvmecr/b.dat").is_ok(),
            "failed rename must not move the file"
        );
        assert!(l.truncate("/etc/passwd", 0).is_err());
    }

    #[test]
    fn symbol_table_covers_posix_io() {
        for sym in ["open", "write", "read", "close", "fsync", "mkdir", "unlink"] {
            assert!(INTERCEPTED_SYMBOLS.contains(&sym));
        }
        assert!(INTERCEPTED_SYMBOLS.contains(&"MPI_Init"));
    }
}
