//! Typestate-guarded rank recovery: `Crashed` → `Replaying` → `Verified` →
//! serving.
//!
//! The runtime-level recovery path layers two obligations on top of the
//! microfs one ([`microfs::recovery`]): the rank must reconnect over the
//! fabric, and — when replicated — the manifest region must be decoded and
//! the mirror's extent map rebuilt (full-image CRC rescan) *before* the
//! instance serves reads or takes new writes. Skipping the verification
//! step used to be a runtime bug waiting to happen; with this API it does
//! not compile:
//!
//! ```compile_fail
//! fn premature(r: nvmecr::recovery::Replaying) {
//!     let _fs = r.serve(); // ERROR: `Replaying` has no `serve` —
//!                          // replay + manifest verification come first
//! }
//! ```
//!
//! ```compile_fail
//! fn skip_everything(c: nvmecr::recovery::Crashed) {
//!     let _fs = c.serve(); // ERROR: a crashed rank offers only `begin_replay`
//! }
//! ```
//!
//! The states:
//!
//! * [`Crashed`] — a rank's route and nothing else; no connection exists.
//! * [`Replaying`] — primary reconnected, snapshot loaded, log scanned but
//!   unapplied. No file API, no mirror, no escape hatch.
//! * [`Verified`] — log applied and (for replicated routes) the latest
//!   sealed epoch read back from the manifest region with the mirror map
//!   rebuilt by rescan. [`Verified::serve`] is the only way out.
//!
//! [`NvmeCrRuntime::recover_ranks`](crate::runtime::NvmeCrRuntime::recover_ranks)
//! and [`NvmeCrRuntime::attach`](crate::runtime::NvmeCrRuntime::attach)
//! drive this chain end to end.

use std::sync::Arc;

use fabric::Initiator;
use microfs::manifest::ManifestLayout;
use microfs::{ExtentMap, MicroFs};

use crate::config::RuntimeConfig;
use crate::dataplane::NvmfBlockDevice;
use crate::replication::{self, Mirror};
use crate::runtime::{RankRoute, RuntimeError};

/// A rank whose process (or whole job) died: a storage route pointing at
/// durable bytes, with no connection and no in-memory state.
pub struct Crashed {
    route: RankRoute,
    nqn: String,
    config: RuntimeConfig,
}

impl Crashed {
    /// Wrap a dead rank's route for recovery. `nqn` names the initiator
    /// the reconnection will present to the target.
    pub(crate) fn new(route: RankRoute, nqn: String, config: RuntimeConfig) -> Self {
        Crashed { route, nqn, config }
    }

    /// Reconnect the rank's primary over the fabric and load its snapshot
    /// and log. Nothing is applied and no replica is attached yet.
    pub fn begin_replay(self) -> Result<Replaying, RuntimeError> {
        let initiator = Initiator::with_config(
            self.nqn.clone(),
            self.config.telemetry.clone(),
            self.config.chaos.clone(),
            self.config.fabric.clone(),
        );
        let conn = initiator.connect(Arc::clone(&self.route.target), self.route.ns);
        let mut dev = NvmfBlockDevice::new(conn, self.route.base, self.route.fs_size());
        dev.set_chaos(self.config.chaos.clone());
        let fs = microfs::recovery::Crashed::new(dev, self.config.fs_config())
            .begin_replay()
            .map_err(RuntimeError::Fs)?;
        Ok(Replaying {
            route: self.route,
            nqn: self.nqn,
            config: self.config,
            fs,
        })
    }
}

/// Primary reconnected, snapshot state loaded, log records scanned but not
/// yet applied; replicated routes have not re-attached their mirror.
pub struct Replaying {
    route: RankRoute,
    nqn: String,
    config: RuntimeConfig,
    fs: microfs::recovery::Replaying<NvmfBlockDevice>,
}

impl Replaying {
    /// Log records waiting to be applied.
    pub fn pending_records(&self) -> usize {
        self.fs.pending_records()
    }

    /// Apply the log, then verify the replica state: decode the latest
    /// sealed epoch from the manifest region and rebuild the mirror's
    /// extent map by rescanning the full primary image (writes made after
    /// the last commit are on both copies but in no manifest; a map that
    /// missed them would silently drop them from future epochs). Both
    /// halves are one transition on purpose — "replayed but unverified"
    /// is not a representable state.
    pub fn replay_all(self) -> Result<Verified, RuntimeError> {
        let mut fs = self.fs.replay_all().map_err(RuntimeError::Fs)?.serve();
        if let Some(rr) = &self.route.replica {
            let fs_size = self.route.fs_size();
            let layout = if self.config.delta_chain_max > 0 {
                ManifestLayout::chained()
            } else {
                ManifestLayout::standard()
            };
            if self
                .config
                .chaos
                .recovery_fire(chaos::RecoveryOp::ManifestScan)
            {
                return Err(RuntimeError::Replication(
                    fabric::InitiatorError::Transport("crash point: recovery manifest scan".into())
                        .into(),
                ));
            }
            let epoch = replication::read_latest_epoch(
                fs.device_mut().conn_mut(),
                self.route.base + fs_size,
                layout,
            )
            .map_err(|e| RuntimeError::Replication(e.into()))?
            .unwrap_or(0);
            let ri = Initiator::with_config(
                format!("{}-mirror", self.nqn),
                self.config.telemetry.clone(),
                self.config.chaos.clone(),
                self.config.fabric.clone(),
            );
            let rconn = ri.connect(Arc::clone(&rr.target), rr.ns);
            let mut mirror =
                Mirror::with_state(rconn, ExtentMap::new(), epoch, &self.config.telemetry);
            mirror.set_chaos(self.config.chaos.clone());
            if self.config.delta_chain_max > 0 {
                // The first commit after a reconnect is always full: rescan
                // tiles the image differently from pre-restart manifests,
                // and a delta chain must never span a restart boundary.
                mirror.enable_delta_chain(self.config.delta_chain_max);
            }
            fs.device_mut().attach_mirror(mirror);
            fs.device_mut().rescan_mirror()?;
        }
        Ok(Verified { fs })
    }
}

/// Log applied, manifests verified, mirror (if any) re-attached: the rank
/// is consistent and may serve.
pub struct Verified {
    fs: MicroFs<NvmfBlockDevice>,
}

impl Verified {
    /// Records replayed to reach this state.
    pub fn replayed_records(&self) -> u64 {
        self.fs.stats().replayed_records
    }

    /// Hand the recovered, verified filesystem to the runtime.
    pub fn serve(self) -> MicroFs<NvmfBlockDevice> {
        self.fs
    }
}
