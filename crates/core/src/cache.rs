//! A cache layer over the data plane — the paper's stated future work
//! ("we plan to study the impact of a cache layer over NVMe-CR", §V).
//!
//! `CachedBlockDevice` wraps any [`BlockDevice`] with a block-granular LRU
//! **read cache** and an optional **write-back buffer**. The read cache is
//! uncontroversial (restart re-reads are served from DRAM). The write-back
//! mode exists to make the paper's §III-D argument *testable*: buffered
//! writes complete faster but are not durable until drained — dropping the
//! wrapper before a drain loses exactly the buffered bytes, which is why
//! NVMe-CR's write path is direct. Tests demonstrate both properties.

use std::collections::HashMap;

use microfs::block::{BlockDevice, DevError, IoCounters};

/// Write policy of the cache layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Writes go straight to the device (NVMe-CR's design, §III-D); the
    /// cache only serves reads.
    WriteThrough,
    /// Writes are buffered and drained on [`CachedBlockDevice::drain`] /
    /// `flush` — faster completions, delayed durability.
    WriteBack,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read requests served from cache.
    pub read_hits: u64,
    /// Read requests that went to the device.
    pub read_misses: u64,
    /// Write requests absorbed by the write-back buffer.
    pub buffered_writes: u64,
    /// Cache blocks evicted.
    pub evictions: u64,
}

struct Slot {
    data: Vec<u8>,
    dirty: bool,
    /// LRU stamp.
    used: u64,
}

/// An LRU block cache over a [`BlockDevice`].
pub struct CachedBlockDevice<D: BlockDevice> {
    inner: D,
    block: u64,
    capacity_blocks: usize,
    policy: WritePolicy,
    slots: HashMap<u64, Slot>,
    clock: u64,
    stats: CacheStats,
}

impl<D: BlockDevice> CachedBlockDevice<D> {
    /// Wrap `inner` with a cache of `capacity_bytes` in `block`-sized
    /// slots.
    pub fn new(inner: D, block: u64, capacity_bytes: u64, policy: WritePolicy) -> Self {
        assert!(block.is_power_of_two() && block >= 512);
        let capacity_blocks = (capacity_bytes / block).max(1) as usize;
        CachedBlockDevice {
            inner,
            block,
            capacity_blocks,
            policy,
            slots: HashMap::with_capacity(capacity_blocks),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently dirty in the write-back buffer.
    pub fn dirty_bytes(&self) -> u64 {
        self.slots.values().filter(|s| s.dirty).count() as u64 * self.block
    }

    /// Write all dirty blocks to the device (the drain the background
    /// thread would perform during compute phases).
    pub fn drain(&mut self) -> Result<(), DevError> {
        let mut dirty: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(&b, _)| b)
            .collect();
        dirty.sort_unstable();
        for b in dirty {
            let data = self.slots.get(&b).expect("listed").data.clone();
            self.inner.write_at(b * self.block, &data)?;
            self.slots.get_mut(&b).expect("listed").dirty = false;
        }
        Ok(())
    }

    /// Unwrap, discarding cache state. **Dirty write-back data is lost** —
    /// this models a crash and is exactly the §III-D hazard.
    pub fn into_inner_discarding(self) -> D {
        self.inner
    }

    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn evict_if_full(&mut self) -> Result<(), DevError> {
        while self.slots.len() >= self.capacity_blocks {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.used)
                .map(|(&b, _)| b)
                .expect("non-empty");
            let slot = self.slots.remove(&victim).expect("victim exists");
            if slot.dirty {
                self.inner.write_at(victim * self.block, &slot.data)?;
            }
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Load a block into the cache (reading through on miss).
    fn load(&mut self, b: u64) -> Result<&mut Slot, DevError> {
        if !self.slots.contains_key(&b) {
            self.stats.read_misses += 1;
            self.evict_if_full()?;
            let mut data = vec![0u8; self.block as usize];
            let off = b * self.block;
            // Clamp reads at the device end.
            let end = (off + self.block).min(self.inner.size());
            self.inner.read_at(off, &mut data[..(end - off) as usize])?;
            let used = self.touch();
            self.slots.insert(
                b,
                Slot {
                    data,
                    dirty: false,
                    used,
                },
            );
        } else {
            self.stats.read_hits += 1;
        }
        let stamp = self.touch();
        let slot = self.slots.get_mut(&b).expect("just ensured");
        slot.used = stamp;
        Ok(slot)
    }
}

impl<D: BlockDevice> BlockDevice for CachedBlockDevice<D> {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), DevError> {
        match self.policy {
            WritePolicy::WriteThrough => {
                // Keep any cached copies coherent, then write through.
                let mut pos = 0usize;
                while pos < data.len() {
                    let abs = offset + pos as u64;
                    let b = abs / self.block;
                    let within = (abs % self.block) as usize;
                    let n = (self.block as usize - within).min(data.len() - pos);
                    if let Some(slot) = self.slots.get_mut(&b) {
                        slot.data[within..within + n].copy_from_slice(&data[pos..pos + n]);
                    }
                    pos += n;
                }
                self.inner.write_at(offset, data)
            }
            WritePolicy::WriteBack => {
                let mut pos = 0usize;
                while pos < data.len() {
                    let abs = offset + pos as u64;
                    let b = abs / self.block;
                    let within = (abs % self.block) as usize;
                    let n = (self.block as usize - within).min(data.len() - pos);
                    let slot = self.load(b)?;
                    slot.data[within..within + n].copy_from_slice(&data[pos..pos + n]);
                    slot.dirty = true;
                    pos += n;
                }
                self.stats.buffered_writes += 1;
                Ok(())
            }
        }
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), DevError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let b = abs / self.block;
            let within = (abs % self.block) as usize;
            let n = (self.block as usize - within).min(buf.len() - pos);
            let slot = self.load(b)?;
            buf[pos..pos + n].copy_from_slice(&slot.data[within..within + n]);
            pos += n;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DevError> {
        self.drain()?;
        self.inner.flush()
    }

    fn size(&self) -> u64 {
        self.inner.size()
    }

    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microfs::MemDevice;

    fn cached(policy: WritePolicy) -> CachedBlockDevice<MemDevice> {
        CachedBlockDevice::new(MemDevice::new(1 << 20), 4096, 64 << 10, policy)
    }

    #[test]
    fn read_cache_absorbs_repeat_reads() {
        let mut c = cached(WritePolicy::WriteThrough);
        c.write_at(0, &[7u8; 8192]).unwrap();
        let mut buf = [0u8; 8192];
        c.read_at(0, &mut buf).unwrap();
        let dev_reads_after_first = c.counters().reads;
        for _ in 0..10 {
            c.read_at(0, &mut buf).unwrap();
        }
        assert_eq!(
            c.counters().reads,
            dev_reads_after_first,
            "hits must not touch the device"
        );
        assert!(c.stats().read_hits >= 20);
        assert_eq!(buf, [7u8; 8192]);
    }

    #[test]
    fn write_through_is_immediately_durable() {
        let mut c = cached(WritePolicy::WriteThrough);
        c.write_at(100, b"durable now").unwrap();
        assert_eq!(c.dirty_bytes(), 0);
        let mut inner = c.into_inner_discarding();
        assert_eq!(inner.read_vec(100, 11).unwrap(), b"durable now");
    }

    #[test]
    fn write_back_loses_data_on_crash_but_not_after_drain() {
        // The §III-D argument, demonstrated.
        let mut c = cached(WritePolicy::WriteBack);
        c.write_at(0, &[9u8; 4096]).unwrap();
        assert!(c.dirty_bytes() > 0);
        let mut inner = c.into_inner_discarding(); // crash
        assert_eq!(
            inner.read_vec(0, 4096).unwrap(),
            vec![0u8; 4096],
            "buffered bytes lost"
        );
        // Same sequence with a drain: durable.
        let mut c = cached(WritePolicy::WriteBack);
        c.write_at(0, &[9u8; 4096]).unwrap();
        c.drain().unwrap();
        assert_eq!(c.dirty_bytes(), 0);
        let mut inner = c.into_inner_discarding();
        assert_eq!(inner.read_vec(0, 4096).unwrap(), vec![9u8; 4096]);
    }

    #[test]
    fn write_through_keeps_cache_coherent() {
        let mut c = cached(WritePolicy::WriteThrough);
        c.write_at(0, &[1u8; 4096]).unwrap();
        let mut buf = [0u8; 4096];
        c.read_at(0, &mut buf).unwrap(); // populate cache
        c.write_at(0, &[2u8; 4096]).unwrap(); // must update cached copy
        c.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 4096]);
    }

    #[test]
    fn lru_eviction_writes_back_dirty_victims() {
        // Cache of 16 blocks; touch 32 distinct dirty blocks.
        let mut c = cached(WritePolicy::WriteBack);
        for b in 0..32u64 {
            c.write_at(b * 4096, &[b as u8; 4096]).unwrap();
        }
        assert!(c.stats().evictions > 0);
        c.drain().unwrap();
        let mut inner = c.into_inner_discarding();
        for b in 0..32u64 {
            assert_eq!(
                inner.read_vec(b * 4096, 4096).unwrap(),
                vec![b as u8; 4096],
                "block {b}"
            );
        }
    }

    #[test]
    fn microfs_runs_over_the_cache_layer() {
        use microfs::{FsConfig, MicroFs, OpenFlags};
        let cached = CachedBlockDevice::new(
            MemDevice::new(64 << 20),
            4096,
            1 << 20,
            WritePolicy::WriteThrough,
        );
        let mut fs = MicroFs::format(cached, FsConfig::default()).unwrap();
        let fd = fs.create("/c", 0o644).unwrap();
        fs.write(fd, &[5u8; 100_000]).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/c", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; 100_000];
        fs.read(fd, &mut buf).unwrap();
        assert_eq!(buf, vec![5u8; 100_000]);
        // Crash through the cache (write-through: nothing lost).
        let dev = fs.into_device().into_inner_discarding();
        let fs2 = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert_eq!(fs2.stat("/c").unwrap().size, 100_000);
    }

    #[test]
    fn flush_drains_writeback() {
        let mut c = cached(WritePolicy::WriteBack);
        c.write_at(0, &[3u8; 4096]).unwrap();
        c.flush().unwrap();
        assert_eq!(c.dirty_bytes(), 0);
    }
}
