//! Multi-level checkpointing policy (§III-F "Handling Cascading Failures",
//! evaluated in §IV-I / Table II).
//!
//! "Most checkpoints are still handled by NVMe-CR, but every so often, one
//! checkpoint is put on a slower but more reliable parallel filesystem,
//! such as Lustre." The policy decides the level of each checkpoint and,
//! given a failure, which checkpoint recovery can start from — a cascading
//! failure that takes the fast tier's partner domain forces a rollback to
//! the newest parallel-filesystem checkpoint.

/// Where one checkpoint is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointLevel {
    /// The fast ephemeral tier (NVMe-CR on partner-domain SSDs).
    Fast,
    /// The reliable parallel filesystem (replicated Lustre).
    Parallel,
}

/// The 1-in-k placement policy.
#[derive(Debug, Clone, Copy)]
pub struct MultiLevelPolicy {
    period: u32,
}

impl MultiLevelPolicy {
    /// Every `period`-th checkpoint (1-indexed) goes to the parallel
    /// filesystem. The paper evaluates `period = 10`.
    pub fn new(period: u32) -> Self {
        assert!(period >= 1);
        MultiLevelPolicy { period }
    }

    /// The period.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Level of checkpoint number `idx` (1-indexed).
    pub fn level_for(&self, idx: u32) -> CheckpointLevel {
        if idx.is_multiple_of(self.period) {
            CheckpointLevel::Parallel
        } else {
            CheckpointLevel::Fast
        }
    }

    /// Of `taken` checkpoints, how many landed on each `(fast, parallel)`
    /// tier.
    pub fn split(&self, taken: u32) -> (u32, u32) {
        let parallel = taken / self.period;
        (taken - parallel, parallel)
    }

    /// The newest checkpoint index recovery can restart from, given the
    /// number taken so far and whether the fast tier survived the failure.
    /// Returns `None` if nothing is recoverable (no checkpoints, or fast
    /// tier lost before any parallel checkpoint existed).
    pub fn recovery_point(&self, taken: u32, fast_tier_intact: bool) -> Option<u32> {
        if taken == 0 {
            return None;
        }
        if fast_tier_intact {
            Some(taken)
        } else {
            let newest_parallel = (taken / self.period) * self.period;
            (newest_parallel > 0).then_some(newest_parallel)
        }
    }

    /// Checkpoint intervals of lost work when restarting from
    /// [`recovery_point`](Self::recovery_point) after `taken` checkpoints.
    pub fn lost_intervals(&self, taken: u32, fast_tier_intact: bool) -> u32 {
        match self.recovery_point(taken, fast_tier_intact) {
            Some(p) => taken - p,
            None => taken,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_in_ten_schedule() {
        let p = MultiLevelPolicy::new(10);
        let levels: Vec<CheckpointLevel> = (1..=10).map(|i| p.level_for(i)).collect();
        assert_eq!(
            levels
                .iter()
                .filter(|l| **l == CheckpointLevel::Parallel)
                .count(),
            1
        );
        assert_eq!(levels[9], CheckpointLevel::Parallel);
        assert_eq!(p.split(10), (9, 1));
        assert_eq!(p.split(25), (23, 2));
    }

    #[test]
    fn recovery_uses_fast_tier_when_intact() {
        let p = MultiLevelPolicy::new(10);
        assert_eq!(p.recovery_point(17, true), Some(17));
        assert_eq!(p.lost_intervals(17, true), 0);
    }

    #[test]
    fn cascading_failure_rolls_back_to_parallel_tier() {
        let p = MultiLevelPolicy::new(10);
        assert_eq!(p.recovery_point(17, false), Some(10));
        assert_eq!(p.lost_intervals(17, false), 7);
        // Exactly at a parallel checkpoint: nothing lost.
        assert_eq!(p.lost_intervals(20, false), 0);
    }

    #[test]
    fn early_cascading_failure_loses_everything() {
        let p = MultiLevelPolicy::new(10);
        assert_eq!(p.recovery_point(7, false), None);
        assert_eq!(p.lost_intervals(7, false), 7);
        assert_eq!(p.recovery_point(0, true), None);
    }

    #[test]
    fn period_one_is_all_parallel() {
        let p = MultiLevelPolicy::new(1);
        assert!((1..=5).all(|i| p.level_for(i) == CheckpointLevel::Parallel));
        assert_eq!(p.split(5), (0, 5));
        assert_eq!(p.lost_intervals(5, false), 0);
    }
}
