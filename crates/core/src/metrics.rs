//! The paper's evaluation metrics (§IV).

use simkit::{Rate, SimTime};

/// Storage-system *efficiency*: "the ratio of the peak IO bandwidth visible
/// to applications to the peak theoretical bandwidth offered by hardware"
/// (§IV-H). Clamped to `[0, 1]`.
pub fn efficiency(bytes_moved: u64, makespan: SimTime, hw_peak: Rate) -> f64 {
    if makespan == SimTime::ZERO {
        return 1.0;
    }
    let achieved = bytes_moved as f64 / makespan.as_secs();
    (achieved / hw_peak.as_bytes_per_sec()).clamp(0.0, 1.0)
}

/// Application *progress rate*: "the ratio of application time spent in
/// compute to total application time" (§I, footnote 1).
pub fn progress_rate(compute: SimTime, total: SimTime) -> f64 {
    if total == SimTime::ZERO {
        return 1.0;
    }
    (compute.as_secs() / total.as_secs()).clamp(0.0, 1.0)
}

/// The hardware-bandwidth saving the paper argues for (§I-B): the factor by
/// which a more efficient runtime lowers the IO bandwidth (and TCO) needed
/// to sustain a target progress rate.
///
/// Returns `None` (instead of panicking) when either efficiency is not a
/// positive finite number — degenerate sweeps (zero-byte runs, failed
/// baselines) flow through as an absent data point.
pub fn required_bandwidth_factor(eff_ours: f64, eff_theirs: f64) -> Option<f64> {
    let valid = |e: f64| e.is_finite() && e > 0.0;
    (valid(eff_ours) && valid(eff_theirs)).then(|| eff_ours / eff_theirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_definition() {
        // 24 GiB over 8 SSDs of 2.4 GiB/s in 10 s -> half the hardware.
        let hw = Rate::gib_per_sec(2.4 * 8.0);
        let e = efficiency(192 << 30, SimTime::secs(20.0), hw);
        assert!((e - 0.5).abs() < 1e-9);
        // Perfect run.
        let e = efficiency(
            (2.4 * (1u64 << 30) as f64) as u64,
            SimTime::secs(1.0),
            Rate::gib_per_sec(2.4),
        );
        assert!(e > 0.999);
    }

    #[test]
    fn efficiency_clamps() {
        let hw = Rate::gib_per_sec(1.0);
        assert!(efficiency(100 << 30, SimTime::secs(1.0), hw) <= 1.0);
        assert_eq!(efficiency(0, SimTime::ZERO, hw), 1.0);
    }

    #[test]
    fn progress_rate_definition() {
        let pr = progress_rate(SimTime::secs(42.0), SimTime::secs(100.0));
        assert!((pr - 0.42).abs() < 1e-12);
        assert_eq!(progress_rate(SimTime::ZERO, SimTime::ZERO), 1.0);
    }

    #[test]
    fn bandwidth_factor_reads_as_tco_saving() {
        // 0.96 vs 0.48 efficiency -> 2x less hardware bandwidth needed,
        // the paper's "lower the required hardware IO bandwidth by 2x".
        assert!((required_bandwidth_factor(0.96, 0.48).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_factor_rejects_degenerate_inputs() {
        assert_eq!(required_bandwidth_factor(0.0, 0.5), None);
        assert_eq!(required_bandwidth_factor(0.5, 0.0), None);
        assert_eq!(required_bandwidth_factor(-1.0, 0.5), None);
        assert_eq!(required_bandwidth_factor(f64::NAN, 0.5), None);
        assert_eq!(required_bandwidth_factor(0.5, f64::INFINITY), None);
    }
}
