//! Synchronous checkpoint replication onto a partner failure domain.
//!
//! When [`crate::RuntimeConfig::replication_factor`] is 2, every rank's
//! block device carries a [`Mirror`]: a second NVMf connection to a
//! namespace on a storage node in the rank's partner failure domain. The
//! write path pushes each extent through *both* submission windows
//! concurrently (`fabric::write_mirrored_bytes` alternates window passes,
//! so the two copies overlap rather than serialize), records the extent's
//! CRC32 in an in-memory [`ExtentMap`], and the runtime seals an
//! [`EpochManifest`] per checkpoint round into a ping-pong slot pair at
//! the tail of both copies. Recovery (`fail_over_rank`) then re-homes the
//! rank and replays the surviving replica extent-by-extent, verifying
//! every committed extent against its CRC before the rank is declared
//! healthy; a scrub pass walks both copies and read-repairs latent bit
//! rot from whichever copy still matches the manifest.
//!
//! Degraded mode: a replica-side IO error never fails the application
//! write — the mirror flips to degraded, queues the stale spans, and the
//! next epoch commit attempts a resync from the primary. While degraded,
//! epoch commits land on the primary only, so a replica-based restore
//! falls back to the replica's last *complete* epoch (counted in
//! `replication.lag_epochs`).

use bytes::Bytes;
use fabric::{write_mirrored_bytes, InitiatorError, MirroredWrite, NvmfConnection};
use microfs::crc::{crc32, crc32_update};
use microfs::manifest::{
    slot_offset, EpochManifest, ExtentMap, ManifestError, COMMIT_RECORD_BYTES, SLOT_BYTES,
};
use std::fmt;
use std::sync::Arc;
use telemetry::{Counter, Histogram, Telemetry};

/// Chunk size for scrub/restore/resync streaming reads — bounds peak
/// memory regardless of how large merged extents grow.
const COPY_CHUNK: usize = 4 << 20;

/// Replication-layer metric handles, resolved once per mirror.
#[derive(Clone)]
pub struct ReplicationMetrics {
    /// Bytes successfully written to the replica copy.
    pub bytes: Arc<Counter>,
    /// Epochs sealed with a commit record (on at least the primary).
    pub epochs_committed: Arc<Counter>,
    /// Epochs of history lost across replica-based restores.
    pub lag_epochs: Arc<Counter>,
    /// Restores that could not use the live extent map verbatim and fell
    /// back to the last complete manifest (or started degraded).
    pub degraded_restores: Arc<Counter>,
    /// Extents rewritten from the surviving copy (scrub read-repair).
    pub repairs: Arc<Counter>,
    /// Wall time of mirrored data-path window submissions.
    pub mirror_ns: Arc<Histogram>,
    /// Wall time of full scrub passes.
    pub scrub_ns: Arc<Histogram>,
}

impl ReplicationMetrics {
    pub fn new(t: &Telemetry) -> Self {
        ReplicationMetrics {
            bytes: t.counter("replication.bytes"),
            epochs_committed: t.counter("replication.epochs_committed"),
            lag_epochs: t.counter("replication.lag_epochs"),
            degraded_restores: t.counter("replication.degraded_restores"),
            repairs: t.counter("replication.repairs"),
            mirror_ns: t.histogram("replication.mirror_ns"),
            scrub_ns: t.histogram("replication.scrub_ns"),
        }
    }
}

/// Errors from the replication layer.
#[derive(Debug)]
pub enum ReplicationError {
    /// The underlying fabric IO failed (on the copy the caller needed).
    Fabric(InitiatorError),
    /// Manifest encode/decode failed.
    Manifest(ManifestError),
    /// Both copies of an extent disagree with the committed CRC.
    Unrecoverable { offset: u64, len: u64 },
    /// No complete epoch exists on the surviving copy.
    NoCompleteEpoch,
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::Fabric(e) => write!(f, "replication fabric IO: {e}"),
            ReplicationError::Manifest(e) => write!(f, "replication manifest: {e}"),
            ReplicationError::Unrecoverable { offset, len } => {
                write!(f, "extent [{offset}, +{len}) corrupt on both copies")
            }
            ReplicationError::NoCompleteEpoch => {
                write!(f, "no complete checkpoint epoch on surviving copy")
            }
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<InitiatorError> for ReplicationError {
    fn from(e: InitiatorError) -> Self {
        ReplicationError::Fabric(e)
    }
}

impl From<ManifestError> for ReplicationError {
    fn from(e: ManifestError) -> Self {
        ReplicationError::Manifest(e)
    }
}

/// Result of one scrub pass over a rank's two copies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Committed extents whose CRCs were verified on both copies.
    pub extents_checked: u64,
    /// Extents rewritten from the surviving good copy.
    pub repaired: u64,
    /// Extents corrupt on *both* copies — data loss, surfaced loudly.
    pub unrecoverable: u64,
    /// Extents skipped because they were written after the last commit
    /// (no CRC on record yet).
    pub skipped_dirty: u64,
}

/// Live mirror state for one rank: the replica connection, the extent
/// map shared by both copies, and the epoch counter.
pub struct Mirror {
    conn: NvmfConnection,
    map: ExtentMap,
    epoch: u64,
    degraded: bool,
    /// Spans whose replica copy is stale after a degraded write; resynced
    /// from the primary at the next epoch commit.
    pending_resync: Vec<(u64, u64)>,
    metrics: ReplicationMetrics,
}

impl Mirror {
    /// A fresh mirror over an empty replica namespace.
    pub fn new(conn: NvmfConnection, t: &Telemetry) -> Self {
        Self::with_state(conn, ExtentMap::new(), 0, t)
    }

    /// Rebuild a mirror from recovered state (manifest decode or a
    /// surviving in-memory map).
    pub fn with_state(conn: NvmfConnection, map: ExtentMap, epoch: u64, t: &Telemetry) -> Self {
        Mirror {
            conn,
            map,
            epoch,
            degraded: false,
            pending_resync: Vec::new(),
            metrics: ReplicationMetrics::new(t),
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    pub fn map(&self) -> &ExtentMap {
        &self.map
    }

    /// Tear down into `(replica connection, extent map, epoch, degraded)`
    /// — used by `fail_over_rank` to reuse the surviving copy.
    pub fn into_parts(self) -> (NvmfConnection, ExtentMap, u64, bool) {
        (self.conn, self.map, self.epoch, self.degraded)
    }

    /// Mirror a batch of partition-relative writes: primary lands at
    /// `primary_base + offset`, replica at `offset`. Each payload's CRC
    /// is computed exactly once here and shared by both capsule encodes
    /// (pre-CRC path) and the extent map. Replica errors degrade the
    /// mirror instead of failing the write; primary errors propagate.
    pub fn write_through(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
        writes: Vec<(u64, Bytes)>,
    ) -> Result<(), InitiatorError> {
        if writes.is_empty() {
            return Ok(());
        }
        let timer = self.metrics.mirror_ns.time();
        let mut mirrored = Vec::with_capacity(writes.len());
        let mut total = 0u64;
        for (offset, data) in writes {
            let crc = crc32(&data);
            self.map.record(offset, data.len() as u64, crc);
            total += data.len() as u64;
            mirrored.push(MirroredWrite {
                primary_offset: primary_base + offset,
                replica_offset: offset,
                data,
                crc,
            });
        }
        let spans: Vec<(u64, u64)> = mirrored
            .iter()
            .map(|w| (w.replica_offset, w.data.len() as u64))
            .collect();
        if self.degraded {
            // Replica already stale — write the primary alone and queue
            // the spans for the next resync attempt.
            let plain = mirrored
                .into_iter()
                .map(|w| (w.primary_offset, w.data, w.crc))
                .collect();
            primary.write_vectored_bytes_precrc(plain)?;
            self.pending_resync.extend(spans);
            drop(timer);
            return Ok(());
        }
        let outcome = write_mirrored_bytes(primary, &mut self.conn, mirrored)?;
        drop(timer);
        if outcome.replica_error.is_some() {
            // The window may have partially landed on the replica; treat
            // the whole batch as stale.
            self.degraded = true;
            self.pending_resync.extend(spans);
        } else {
            self.metrics.bytes.add(total);
        }
        Ok(())
    }

    /// Flush the replica copy. A replica flush failure degrades the
    /// mirror conservatively: every mapped extent is queued for resync,
    /// since volatile replica state of unknown extent may have been lost.
    pub fn flush(&mut self) {
        if self.degraded {
            return;
        }
        if self.conn.flush().is_err() {
            self.degraded = true;
            let spans: Vec<(u64, u64)> = self
                .map
                .entries()
                .into_iter()
                .map(|(o, l, _)| (o, l))
                .collect();
            self.pending_resync.extend(spans);
        }
    }

    /// Try to bring a degraded replica back in sync by copying the stale
    /// spans from the primary. Clears the degraded flag on full success.
    fn try_resync(&mut self, primary: &mut NvmfConnection, primary_base: u64) {
        if !self.degraded {
            return;
        }
        let spans = std::mem::take(&mut self.pending_resync);
        for (i, &(offset, len)) in spans.iter().enumerate() {
            if copy_extent(primary, primary_base + offset, &mut self.conn, offset, len).is_err() {
                // Still unhealthy; keep the remaining spans queued.
                self.pending_resync.extend_from_slice(&spans[i..]);
                return;
            }
            self.metrics.bytes.add(len);
        }
        self.degraded = false;
    }

    /// Rebuild the extent map from the full primary image. Used after a
    /// crash or restart where the in-memory map is gone but the on-device
    /// copies survive: chunked reads re-CRC the whole partition, and
    /// adjacent chunks merge back into a handful of extents. `fs_size`
    /// is the partition size (the manifest region is excluded).
    pub fn rescan(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
        fs_size: u64,
    ) -> Result<(), InitiatorError> {
        let mut off = 0u64;
        while off < fs_size {
            let len = COPY_CHUNK.min((fs_size - off) as usize);
            let data = primary.read_bytes(primary_base + off, len)?;
            self.map.record(off, len as u64, crc32(&data));
            off += len as u64;
        }
        Ok(())
    }

    /// Seal the current extent map as epoch `self.epoch + 1` on both
    /// copies: body first, fully retired, then the commit record — so a
    /// torn commit is detectable and restore falls back to the previous
    /// slot. Returns the committed epoch.
    pub fn commit_epoch(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
        fs_size: u64,
    ) -> Result<u64, ReplicationError> {
        // Extents fragmented by overlapping writes lost their CRCs;
        // re-read them from the primary before sealing.
        for (offset, len) in self.map.dirty_fragments() {
            let crc = extent_crc(primary, primary_base + offset, len)?;
            self.map.set_crc(offset, len, crc);
        }
        self.try_resync(primary, primary_base);

        let epoch = self.epoch + 1;
        let manifest = self.map.to_manifest(epoch)?;
        let body = Bytes::from(manifest.encode_body()?);
        let record = Bytes::copy_from_slice(&manifest.encode_commit(&body));
        let slot = fs_size + slot_offset(epoch);
        let body_off = slot + COMMIT_RECORD_BYTES;
        let record_off = slot;
        let body_crc = crc32(&body);
        let record_crc = crc32(&record);

        if self.degraded {
            // Primary-only commit: the replica stays at its last complete
            // epoch and a replica-based restore will lag.
            primary.write_vectored_bytes_precrc(vec![(primary_base + body_off, body, body_crc)])?;
            primary.write_vectored_bytes_precrc(vec![(
                primary_base + record_off,
                record,
                record_crc,
            )])?;
        } else {
            let out = write_mirrored_bytes(
                primary,
                &mut self.conn,
                vec![MirroredWrite {
                    primary_offset: primary_base + body_off,
                    replica_offset: body_off,
                    data: body,
                    crc: body_crc,
                }],
            )?;
            if out.replica_error.is_some() {
                self.degraded = true;
                primary.write_vectored_bytes_precrc(vec![(
                    primary_base + record_off,
                    record,
                    record_crc,
                )])?;
            } else {
                let out = write_mirrored_bytes(
                    primary,
                    &mut self.conn,
                    vec![MirroredWrite {
                        primary_offset: primary_base + record_off,
                        replica_offset: record_off,
                        data: record,
                        crc: record_crc,
                    }],
                )?;
                if out.replica_error.is_some() {
                    self.degraded = true;
                }
            }
        }
        // The epoch is only real once it is durable.
        primary.flush()?;
        if !self.degraded && self.conn.flush().is_err() {
            self.degraded = true;
        }
        self.epoch = epoch;
        self.metrics.epochs_committed.inc();
        Ok(epoch)
    }

    /// Walk every committed extent, verify both copies against the
    /// recorded CRC, and read-repair whichever copy is corrupt from the
    /// one that still matches. Both-copies-corrupt is reported, loudly,
    /// as unrecoverable — scrub never silently "fixes" with bad data.
    pub fn scrub(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
    ) -> Result<ScrubReport, ReplicationError> {
        let timer = self.metrics.scrub_ns.time();
        let mut report = ScrubReport::default();
        for (offset, len, crc) in self.map.entries() {
            let Some(crc) = crc else {
                report.skipped_dirty += 1;
                continue;
            };
            report.extents_checked += 1;
            let primary_ok = extent_crc(primary, primary_base + offset, len)? == crc;
            let replica_ok = match extent_crc(&mut self.conn, offset, len) {
                Ok(c) => c == crc,
                Err(_) => false,
            };
            match (primary_ok, replica_ok) {
                (true, true) => {}
                (false, true) => {
                    copy_extent(&mut self.conn, offset, primary, primary_base + offset, len)?;
                    self.metrics.repairs.inc();
                    report.repaired += 1;
                    telemetry::instant("replication", "read_repair", &[("offset", offset)]);
                }
                (true, false) => {
                    copy_extent(primary, primary_base + offset, &mut self.conn, offset, len)?;
                    self.metrics.repairs.inc();
                    report.repaired += 1;
                    telemetry::instant("replication", "read_repair", &[("offset", offset)]);
                }
                (false, false) => {
                    report.unrecoverable += 1;
                    telemetry::instant("replication", "unrecoverable", &[("offset", offset)]);
                }
            }
        }
        drop(timer);
        Ok(report)
    }
}

/// Streaming CRC32 of `[offset, offset + len)` on `conn`, chunked so a
/// merged multi-hundred-MiB extent never needs a single allocation.
fn extent_crc(conn: &mut NvmfConnection, offset: u64, len: u64) -> Result<u32, InitiatorError> {
    let mut state = 0xFFFF_FFFFu32;
    let mut done = 0u64;
    while done < len {
        let chunk = COPY_CHUNK.min((len - done) as usize);
        let data = conn.read_bytes(offset + done, chunk)?;
        state = crc32_update(state, &data);
        done += chunk as u64;
    }
    Ok(state ^ 0xFFFF_FFFF)
}

/// Chunked copy of `[src_off, +len)` on `src` to `dst_off` on `dst`.
fn copy_extent(
    src: &mut NvmfConnection,
    src_off: u64,
    dst: &mut NvmfConnection,
    dst_off: u64,
    len: u64,
) -> Result<(), InitiatorError> {
    let mut done = 0u64;
    while done < len {
        let chunk = COPY_CHUNK.min((len - done) as usize);
        let data = src.read_bytes(src_off + done, chunk)?;
        let crc = crc32(&data);
        dst.write_vectored_bytes_precrc(vec![(dst_off + done, data, crc)])?;
        done += chunk as u64;
    }
    Ok(())
}

/// Read both manifest slots at `region_base` on `conn` and return the
/// decodable one with the highest epoch, if any. A torn or never-written
/// slot simply loses.
pub fn read_latest_manifest(
    conn: &mut NvmfConnection,
    region_base: u64,
) -> Result<Option<EpochManifest>, InitiatorError> {
    let mut best: Option<EpochManifest> = None;
    for slot in 0..2u64 {
        let bytes = conn.read_bytes(region_base + slot * SLOT_BYTES, SLOT_BYTES as usize)?;
        if let Ok(m) = EpochManifest::decode_slot(&bytes) {
            if best.as_ref().is_none_or(|b| m.epoch > b.epoch) {
                best = Some(m);
            }
        }
    }
    Ok(best)
}

/// What a replica-based restore recovered.
pub struct RestoreOutcome {
    /// Extent map describing the restored image.
    pub map: ExtentMap,
    /// Epoch the restored image corresponds to.
    pub epoch: u64,
    /// True when the live map could not be used verbatim and the restore
    /// rolled back to the last complete manifest on the replica.
    pub rolled_back: bool,
}

/// Re-populate a fresh primary from the surviving replica.
///
/// With a `live` map (the rank was mounted when its shard died) every
/// committed extent is copied with streaming CRC verification and
/// mid-epoch extents are copied as-is — the restored image is
/// byte-identical to the moment of the failure. If verification fails,
/// or no live map survived, the restore rolls back to the replica's last
/// *complete* epoch: only manifest extents are copied, each strictly
/// verified. Epochs lost in the rollback are counted in
/// `replication.lag_epochs`; any fallback counts a degraded restore.
pub fn restore_from_replica(
    replica: &mut NvmfConnection,
    live: Option<(ExtentMap, u64)>,
    primary: &mut NvmfConnection,
    primary_base: u64,
    fs_size: u64,
    t: &Telemetry,
) -> Result<RestoreOutcome, ReplicationError> {
    let metrics = ReplicationMetrics::new(t);
    let live_epoch = live.as_ref().map(|(_, e)| *e);
    if let Some((map, epoch)) = live {
        match restore_extents(replica, map.entries(), primary, primary_base, false) {
            Ok(()) => {
                copy_manifest_region(replica, primary, primary_base, fs_size)?;
                return Ok(RestoreOutcome {
                    map,
                    epoch,
                    rolled_back: false,
                });
            }
            Err(ReplicationError::Unrecoverable { .. }) => {
                // The replica disagrees with the live map (e.g. it was
                // mid-write when the primary died). Fall back to its
                // last sealed epoch.
                metrics.degraded_restores.inc();
            }
            Err(e) => return Err(e),
        }
    } else {
        metrics.degraded_restores.inc();
    }

    let manifest =
        read_latest_manifest(replica, fs_size)?.ok_or(ReplicationError::NoCompleteEpoch)?;
    let map = ExtentMap::from_manifest(&manifest);
    // Manifest extents always carry CRCs; verify strictly — a mismatch
    // here means the data is gone on both copies.
    restore_extents(replica, map.entries(), primary, primary_base, true)?;
    copy_manifest_region(replica, primary, primary_base, fs_size)?;
    if let Some(live_epoch) = live_epoch {
        metrics
            .lag_epochs
            .add(live_epoch.saturating_sub(manifest.epoch));
    }
    telemetry::instant(
        "replication",
        "rollback_restore",
        &[("epoch", manifest.epoch)],
    );
    Ok(RestoreOutcome {
        map,
        epoch: manifest.epoch,
        rolled_back: true,
    })
}

/// Copy `entries` from the replica onto the new primary, verifying the
/// streamed bytes against each recorded CRC. `strict` fails on extents
/// without a CRC (manifest path); otherwise they are copied unverified
/// (mid-epoch writes in a live map).
fn restore_extents(
    replica: &mut NvmfConnection,
    entries: Vec<(u64, u64, Option<u32>)>,
    primary: &mut NvmfConnection,
    primary_base: u64,
    strict: bool,
) -> Result<(), ReplicationError> {
    for (offset, len, crc) in entries {
        match crc {
            Some(expected) => {
                let mut state = 0xFFFF_FFFFu32;
                let mut done = 0u64;
                while done < len {
                    let chunk = COPY_CHUNK.min((len - done) as usize);
                    let data = replica.read_bytes(offset + done, chunk)?;
                    state = crc32_update(state, &data);
                    let chunk_crc = crc32(&data);
                    primary.write_vectored_bytes_precrc(vec![(
                        primary_base + offset + done,
                        data,
                        chunk_crc,
                    )])?;
                    done += chunk as u64;
                }
                if state ^ 0xFFFF_FFFF != expected {
                    return Err(ReplicationError::Unrecoverable { offset, len });
                }
            }
            None if strict => return Err(ReplicationError::Unrecoverable { offset, len }),
            None => copy_extent(replica, offset, primary, primary_base + offset, len)?,
        }
    }
    Ok(())
}

/// Carry both manifest slots over so the new primary can serve future
/// restores and scrubs without the old replica.
fn copy_manifest_region(
    replica: &mut NvmfConnection,
    primary: &mut NvmfConnection,
    primary_base: u64,
    fs_size: u64,
) -> Result<(), InitiatorError> {
    copy_extent(
        replica,
        fs_size,
        primary,
        primary_base + fs_size,
        2 * SLOT_BYTES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{Initiator, NvmfTarget};
    use ssd::{Ssd, SsdConfig};

    fn conn_pair() -> (NvmfConnection, NvmfConnection, Telemetry) {
        let t = Telemetry::new();
        let mk = |name: &str| {
            let ssd = Ssd::with_telemetry(
                SsdConfig {
                    capacity: 256 << 20,
                    ..SsdConfig::default()
                },
                t.clone(),
            );
            let ns = ssd.create_namespace(64 << 20).unwrap();
            let target = Arc::new(NvmfTarget::new(Arc::new(ssd)));
            Initiator::with_telemetry(name, t.clone()).connect(target, ns)
        };
        (mk("nqn.prim"), mk("nqn.repl"), t)
    }

    const FS: u64 = 32 << 20;

    #[test]
    fn write_through_lands_on_both_and_commit_survives_roundtrip() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        let data = Bytes::from(vec![0xABu8; 64 << 10]);
        m.write_through(
            &mut p,
            0,
            vec![(4096, data.clone()), (1 << 20, data.clone())],
        )
        .unwrap();
        let epoch = m.commit_epoch(&mut p, 0, FS).unwrap();
        assert_eq!(epoch, 1);
        assert!(!m.is_degraded());
        // Both copies hold the data; manifest decodes on both.
        let (mut r, map, epoch, _) = m.into_parts();
        assert_eq!(&r.read_bytes(4096, 64 << 10).unwrap()[..], &data[..]);
        assert_eq!(&p.read_bytes(1 << 20, 64 << 10).unwrap()[..], &data[..]);
        let from_replica = read_latest_manifest(&mut r, FS).unwrap().unwrap();
        let from_primary = read_latest_manifest(&mut p, FS).unwrap().unwrap();
        assert_eq!(from_replica.epoch, 1);
        assert_eq!(from_primary.epoch, 1);
        assert_eq!(
            ExtentMap::from_manifest(&from_replica).entries(),
            map.entries()
        );
        assert_eq!(epoch, 1);
        assert_eq!(t.snapshot().counter("replication.epochs_committed"), 1);
        assert_eq!(t.snapshot().counter("replication.bytes"), 2 * (64 << 10));
    }

    #[test]
    fn scrub_repairs_single_copy_corruption_and_reports_double() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x11u8; 8192]))])
            .unwrap();
        m.write_through(&mut p, 0, vec![(1 << 20, Bytes::from(vec![0x22u8; 8192]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // Corrupt the primary's first extent behind the mirror's back.
        p.write_bytes(100, Bytes::from_static(b"rot")).unwrap();
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!(rep.repaired, 1);
        assert_eq!(rep.unrecoverable, 0);
        assert_eq!(&p.read_bytes(0, 8192).unwrap()[..], &[0x11u8; 8192][..]);
        // Clean second pass.
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!((rep.repaired, rep.unrecoverable), (0, 0));
        // Corrupt the same extent on both copies: unrecoverable.
        p.write_bytes(100, Bytes::from_static(b"rot")).unwrap();
        {
            let (r, map, epoch, _) = m.into_parts();
            let mut r = r;
            r.write_bytes(100, Bytes::from_static(b"rot")).unwrap();
            m = Mirror::with_state(r, map, epoch, &t);
        }
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!(rep.unrecoverable, 1);
        assert_eq!(t.snapshot().counter("replication.repairs"), 1);
    }

    #[test]
    fn restore_from_live_map_is_byte_identical() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        let a = Bytes::from(
            (0..16384u32)
                .flat_map(|i| (i as u8).to_le_bytes())
                .collect::<Vec<_>>(),
        );
        m.write_through(&mut p, 0, vec![(0, a.clone())]).unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // One uncommitted (mid-epoch) write too.
        let b = Bytes::from(vec![0x77u8; 4096]);
        m.write_through(&mut p, 0, vec![(2 << 20, b.clone())])
            .unwrap();

        let (mut replica, map, epoch, _) = m.into_parts();
        let (mut fresh, _unused_replica, _) = conn_pair();
        let out =
            restore_from_replica(&mut replica, Some((map, epoch)), &mut fresh, 0, FS, &t).unwrap();
        assert!(!out.rolled_back);
        assert_eq!(out.epoch, 1);
        assert_eq!(&fresh.read_bytes(0, a.len()).unwrap()[..], &a[..]);
        assert_eq!(&fresh.read_bytes(2 << 20, 4096).unwrap()[..], &b[..]);
        // Manifest region carried over.
        assert_eq!(
            read_latest_manifest(&mut fresh, FS).unwrap().unwrap().epoch,
            1
        );
    }

    #[test]
    fn restore_without_live_map_rolls_back_to_last_complete_epoch() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        let a = Bytes::from(vec![0x31u8; 8192]);
        m.write_through(&mut p, 0, vec![(0, a.clone())]).unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // Mid-epoch write that never commits — must not appear.
        m.write_through(&mut p, 0, vec![(1 << 20, Bytes::from(vec![0x99u8; 4096]))])
            .unwrap();
        let (mut replica, _, _, _) = m.into_parts();
        let (mut fresh, _u, _) = conn_pair();
        let out = restore_from_replica(&mut replica, None, &mut fresh, 0, FS, &t).unwrap();
        assert!(out.rolled_back);
        assert_eq!(out.epoch, 1);
        assert_eq!(&fresh.read_bytes(0, 8192).unwrap()[..], &a[..]);
        assert_eq!(t.snapshot().counter("replication.degraded_restores"), 1);
    }

    #[test]
    fn restore_with_no_manifest_is_no_complete_epoch() {
        let (_p, mut r, t) = conn_pair();
        let (mut fresh, _u, _) = conn_pair();
        assert!(matches!(
            restore_from_replica(&mut r, None, &mut fresh, 0, FS, &t),
            Err(ReplicationError::NoCompleteEpoch)
        ));
    }

    #[test]
    fn rescan_rebuilds_a_committable_map() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        m.write_through(&mut p, 0, vec![(4096, Bytes::from(vec![0x42u8; 12288]))])
            .unwrap();
        // Simulate losing the in-memory map: fresh mirror over the same
        // replica, rescan from the primary.
        let (r, _, _, _) = m.into_parts();
        let mut m = Mirror::with_state(r, ExtentMap::new(), 0, &t);
        m.rescan(&mut p, 0, FS).unwrap();
        // Whole-partition chunks merge into one extent.
        assert_eq!(m.map().len(), 1);
        let epoch = m.commit_epoch(&mut p, 0, FS).unwrap();
        assert_eq!(epoch, 1);
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!(rep.unrecoverable, 0);
        assert_eq!(rep.repaired, 0);
    }
}
