//! Synchronous checkpoint replication onto a partner failure domain.
//!
//! When [`crate::RuntimeConfig::replication_factor`] is 2, every rank's
//! block device carries a [`Mirror`]: a second NVMf connection to a
//! namespace on a storage node in the rank's partner failure domain. The
//! write path pushes each extent through *both* submission windows
//! concurrently (`fabric::write_mirrored_bytes` alternates window passes,
//! so the two copies overlap rather than serialize), records the extent's
//! CRC32 in an in-memory [`ExtentMap`], and the runtime seals an
//! [`EpochManifest`] per checkpoint round into a ping-pong slot pair at
//! the tail of both copies. Recovery (`fail_over_rank`) then re-homes the
//! rank and replays the surviving replica extent-by-extent, verifying
//! every committed extent against its CRC before the rank is declared
//! healthy; a scrub pass walks both copies and read-repairs latent bit
//! rot from whichever copy still matches the manifest.
//!
//! Degraded mode: a replica-side IO error never fails the application
//! write — the mirror flips to degraded, queues the stale spans, and the
//! next epoch commit attempts a resync from the primary. While degraded,
//! epoch commits land on the primary only, so a replica-based restore
//! falls back to the replica's last *complete* epoch (counted in
//! `replication.lag_epochs`).

use bytes::Bytes;
use chaos::{ChaosHandle, CrashOp};
use fabric::{write_mirrored_bytes, InitiatorError, MirroredWrite, NvmfConnection};
use microfs::cow::IntervalSet;
use microfs::crc::{crc32, crc32_update};
use microfs::manifest::{
    EpochManifest, ExtentMap, ManifestError, ManifestExtent, ManifestLayout, COMMIT_RECORD_BYTES,
    MAX_DELTA_CHAIN, REGION_BYTES, SLOT_BYTES,
};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use telemetry::{Counter, FlightKind, FlightRecorder, Gauge, Histogram, Telemetry};

/// Chunk size for scrub/restore/resync streaming reads — bounds peak
/// memory regardless of how large merged extents grow.
const COPY_CHUNK: usize = 4 << 20;

/// Merge cap applied to the extent map while a delta chain is enabled:
/// extents stay near write granularity so the tuple diff between epochs
/// captures roughly what changed instead of one giant merged extent.
const CHAIN_MERGE_LIMIT: u64 = 64 << 10;

/// Replication-layer metric handles, resolved once per mirror.
#[derive(Clone)]
pub struct ReplicationMetrics {
    /// Bytes successfully written to the replica copy.
    pub bytes: Arc<Counter>,
    /// Epochs sealed with a commit record (on at least the primary).
    pub epochs_committed: Arc<Counter>,
    /// Epochs of history lost across replica-based restores.
    pub lag_epochs: Arc<Counter>,
    /// Restores that could not use the live extent map verbatim and fell
    /// back to the last complete manifest (or started degraded).
    pub degraded_restores: Arc<Counter>,
    /// Extents rewritten from the surviving copy (scrub read-repair).
    pub repairs: Arc<Counter>,
    /// Wall time of mirrored data-path window submissions.
    pub mirror_ns: Arc<Histogram>,
    /// Wall time of full scrub passes.
    pub scrub_ns: Arc<Histogram>,
    /// Extents carried by delta epoch manifests (full manifests excluded).
    pub delta_extents: Arc<Counter>,
    /// Current lineage length (full manifest plus deltas since it).
    pub chain_len: Arc<Gauge>,
    /// Wall time of full-compaction commits (sealing a full manifest while
    /// the delta chain is enabled).
    pub compaction_ns: Arc<Histogram>,
    /// Flight recorder: mirror writes, degradations, epoch commits, and
    /// rollback restores, causally ordered against the fabric commands
    /// that carried them.
    pub flight: Arc<FlightRecorder>,
}

impl ReplicationMetrics {
    pub fn new(t: &Telemetry) -> Self {
        ReplicationMetrics {
            bytes: t.counter("replication.bytes"),
            epochs_committed: t.counter("replication.epochs_committed"),
            lag_epochs: t.counter("replication.lag_epochs"),
            degraded_restores: t.counter("replication.degraded_restores"),
            repairs: t.counter("replication.repairs"),
            mirror_ns: t.histogram("replication.mirror_ns"),
            scrub_ns: t.histogram("replication.scrub_ns"),
            delta_extents: t.counter("cow.delta_extents"),
            chain_len: t.gauge("cow.chain_len"),
            compaction_ns: t.histogram("cow.compaction_ns"),
            flight: t.recorder(),
        }
    }
}

/// Errors from the replication layer.
#[derive(Debug)]
pub enum ReplicationError {
    /// The underlying fabric IO failed (on the copy the caller needed).
    Fabric(InitiatorError),
    /// Manifest encode/decode failed.
    Manifest(ManifestError),
    /// Both copies of an extent disagree with the committed CRC.
    Unrecoverable { offset: u64, len: u64 },
    /// No complete epoch exists on the surviving copy.
    NoCompleteEpoch,
    /// A delta chain's manifests partially shadow an ancestor extent — the
    /// lineage is internally inconsistent (should be impossible: re-tiling
    /// always replaces whole extent tuples).
    ChainInconsistent { epoch: u64, offset: u64 },
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::Fabric(e) => write!(f, "replication fabric IO: {e}"),
            ReplicationError::Manifest(e) => write!(f, "replication manifest: {e}"),
            ReplicationError::Unrecoverable { offset, len } => {
                write!(f, "extent [{offset}, +{len}) corrupt on both copies")
            }
            ReplicationError::NoCompleteEpoch => {
                write!(f, "no complete checkpoint epoch on surviving copy")
            }
            ReplicationError::ChainInconsistent { epoch, offset } => {
                write!(
                    f,
                    "delta chain at epoch {epoch} partially shadows extent at {offset}"
                )
            }
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<InitiatorError> for ReplicationError {
    fn from(e: InitiatorError) -> Self {
        ReplicationError::Fabric(e)
    }
}

impl From<ManifestError> for ReplicationError {
    fn from(e: ManifestError) -> Self {
        ReplicationError::Manifest(e)
    }
}

/// Result of one scrub pass over a rank's two copies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Committed extents whose CRCs were verified on both copies.
    pub extents_checked: u64,
    /// Extents rewritten from the surviving good copy.
    pub repaired: u64,
    /// Extents corrupt on *both* copies — data loss, surfaced loudly.
    pub unrecoverable: u64,
    /// Extents skipped because they were written after the last commit
    /// (no CRC on record yet).
    pub skipped_dirty: u64,
}

/// Live mirror state for one rank: the replica connection, the extent
/// map shared by both copies, and the epoch counter.
pub struct Mirror {
    conn: NvmfConnection,
    map: ExtentMap,
    epoch: u64,
    degraded: bool,
    /// Spans whose replica copy is stale after a degraded write; resynced
    /// from the primary at the next epoch commit.
    pending_resync: Vec<(u64, u64)>,
    metrics: ReplicationMetrics,
    /// Manifest region geometry: standard ping-pong pair, or the delta
    /// chain ring once [`Mirror::enable_delta_chain`] is called.
    layout: ManifestLayout,
    /// Deltas allowed since the last full manifest before a compaction.
    delta_chain_max: u32,
    /// Deltas sealed since the last full manifest.
    deltas_since_full: u32,
    /// Extent tuples as of the previous commit — the diff base for the
    /// next delta. `None` forces the next commit to be full (fresh mirror,
    /// post-rescan, post-failover: tiling never spans a restart).
    last_entries: Option<HashSet<(u64, u64, u32)>>,
    /// Whiteouts (device discards) accumulated since the last commit.
    pending_whiteouts: Vec<(u64, u64)>,
    /// Crash-universe hook: disarmed (the default) every gate is one
    /// relaxed atomic load.
    chaos: ChaosHandle,
}

impl Mirror {
    /// A fresh mirror over an empty replica namespace.
    pub fn new(conn: NvmfConnection, t: &Telemetry) -> Self {
        Self::with_state(conn, ExtentMap::new(), 0, t)
    }

    /// Rebuild a mirror from recovered state (manifest decode or a
    /// surviving in-memory map).
    pub fn with_state(conn: NvmfConnection, map: ExtentMap, epoch: u64, t: &Telemetry) -> Self {
        Mirror {
            conn,
            map,
            epoch,
            degraded: false,
            pending_resync: Vec::new(),
            metrics: ReplicationMetrics::new(t),
            layout: ManifestLayout::standard(),
            delta_chain_max: 0,
            deltas_since_full: 0,
            last_entries: None,
            pending_whiteouts: Vec::new(),
            chaos: ChaosHandle::new(),
        }
    }

    /// Thread the runtime's chaos handle through, so the crash-universe
    /// mode can count and kill mirrored writes and epoch commits.
    pub fn set_chaos(&mut self, chaos: ChaosHandle) {
        self.chaos = chaos;
    }

    /// Switch this mirror to the delta-chain manifest ring: commits seal
    /// sparse delta manifests (changed extents + whiteouts) linked by
    /// `parent_epoch`, with a full compaction every `max` deltas. The next
    /// commit is always full — it anchors the new chain. Also caps extent
    /// merging so the tuple diff stays near write granularity.
    pub fn enable_delta_chain(&mut self, max: u32) {
        self.layout = ManifestLayout::chained();
        self.delta_chain_max = max.clamp(1, MAX_DELTA_CHAIN);
        self.deltas_since_full = 0;
        self.last_entries = None;
        self.map.set_merge_limit(CHAIN_MERGE_LIMIT);
    }

    /// The manifest region geometry in effect.
    pub fn layout(&self) -> ManifestLayout {
        self.layout
    }

    /// Deltas sealed since the last full manifest.
    pub fn chain_len(&self) -> u32 {
        self.deltas_since_full
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    pub fn map(&self) -> &ExtentMap {
        &self.map
    }

    /// Tear down into `(replica connection, extent map, epoch, degraded)`
    /// — used by `fail_over_rank` to reuse the surviving copy.
    pub fn into_parts(self) -> (NvmfConnection, ExtentMap, u64, bool) {
        (self.conn, self.map, self.epoch, self.degraded)
    }

    /// Mirror a batch of partition-relative writes: primary lands at
    /// `primary_base + offset`, replica at `offset`. Each payload's CRC
    /// is computed exactly once here and shared by both capsule encodes
    /// (pre-CRC path) and the extent map. Replica errors degrade the
    /// mirror instead of failing the write; primary errors propagate.
    pub fn write_through(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
        mut writes: Vec<(u64, Bytes)>,
    ) -> Result<(), InitiatorError> {
        if writes.is_empty() {
            return Ok(());
        }
        // Crash-universe gate, one index per element. When the crash
        // lands at element `i`, elements before it still reach both
        // copies, element `i` reaches the primary only (its replica DMA
        // never completed), and the rest of the batch is lost — the most
        // asymmetric state a mid-batch power cut can leave.
        let mut tail = None;
        if self.chaos.is_crash_armed() {
            for i in 0..writes.len() {
                if self.chaos.crash_fire(CrashOp::MirrorWrite) {
                    tail = Some(writes.split_off(i));
                    break;
                }
            }
        }
        if !writes.is_empty() {
            // Epoch trace context: the write belongs to the epoch being
            // built (one past the last sealed one); every fabric/ssd
            // event under this frame carries it.
            let _epoch = telemetry::context::with_epoch(self.epoch + 1);
            let timer = self.metrics.mirror_ns.time();
            let mut mirrored = Vec::with_capacity(writes.len());
            let mut total = 0u64;
            for (offset, data) in writes {
                let crc = crc32(&data);
                self.map.record(offset, data.len() as u64, crc);
                total += data.len() as u64;
                mirrored.push(MirroredWrite {
                    primary_offset: primary_base + offset,
                    replica_offset: offset,
                    data,
                    crc,
                });
            }
            let spans: Vec<(u64, u64)> = mirrored
                .iter()
                .map(|w| (w.replica_offset, w.data.len() as u64))
                .collect();
            if self.degraded {
                // Replica already stale — write the primary alone and
                // queue the spans for the next resync attempt.
                let plain = mirrored
                    .into_iter()
                    .map(|w| (w.primary_offset, w.data, w.crc))
                    .collect();
                primary.write_vectored_bytes_precrc(plain)?;
                self.pending_resync.extend(spans);
                drop(timer);
            } else {
                let outcome = write_mirrored_bytes(primary, &mut self.conn, mirrored)?;
                drop(timer);
                if outcome.replica_error.is_some() {
                    // The window may have partially landed on the
                    // replica; treat the whole batch as stale.
                    self.degraded = true;
                    self.metrics.flight.record(
                        FlightKind::MirrorDegraded,
                        0,
                        0,
                        spans.len() as u64,
                        0,
                    );
                    self.pending_resync.extend(spans);
                } else {
                    self.metrics.bytes.add(total);
                    self.metrics.flight.record(
                        FlightKind::MirrorWrite,
                        0,
                        0,
                        total,
                        spans.len() as u64,
                    );
                }
            }
        }
        if let Some(mut tail) = tail {
            // The crashed element's primary copy landed; nothing after it
            // did. The in-memory map dies with the crash, so it is not
            // updated.
            let (offset, data) = tail.remove(0);
            let crc = crc32(&data);
            primary.write_vectored_bytes_precrc(vec![(primary_base + offset, data, crc)])?;
            let _ = primary.flush();
            return Err(InitiatorError::Transport(
                "crash point: mirror write".into(),
            ));
        }
        Ok(())
    }

    /// Drop `[offset, offset+len)` from the mirrored image: the span's
    /// file was deleted or truncated away. The extent map forgets it and,
    /// while the delta chain is enabled, the next delta manifest records
    /// it as a whiteout so chain materialization stops resurrecting
    /// ancestor bytes beneath it.
    pub fn discard(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.map.remove(offset, len);
        if self.layout.is_chained() {
            self.pending_whiteouts.push((offset, len));
        }
    }

    /// Flush the replica copy. A replica flush failure degrades the
    /// mirror conservatively: every mapped extent is queued for resync,
    /// since volatile replica state of unknown extent may have been lost.
    pub fn flush(&mut self) {
        if self.degraded {
            return;
        }
        if self.conn.flush().is_err() {
            self.degraded = true;
            let spans: Vec<(u64, u64)> = self
                .map
                .entries()
                .into_iter()
                .map(|(o, l, _)| (o, l))
                .collect();
            self.metrics
                .flight
                .record(FlightKind::MirrorDegraded, 0, 0, spans.len() as u64, 1);
            self.pending_resync.extend(spans);
        }
    }

    /// Try to bring a degraded replica back in sync by copying the stale
    /// spans from the primary. Clears the degraded flag on full success.
    fn try_resync(&mut self, primary: &mut NvmfConnection, primary_base: u64) {
        if !self.degraded {
            return;
        }
        let spans = std::mem::take(&mut self.pending_resync);
        for (i, &(offset, len)) in spans.iter().enumerate() {
            if copy_extent(primary, primary_base + offset, &mut self.conn, offset, len).is_err() {
                // Still unhealthy; keep the remaining spans queued.
                self.pending_resync.extend_from_slice(&spans[i..]);
                return;
            }
            self.metrics.bytes.add(len);
        }
        self.degraded = false;
    }

    /// Rebuild the extent map from the full primary image. Used after a
    /// crash or restart where the in-memory map is gone but the on-device
    /// copies survive: chunked reads re-CRC the whole partition, and
    /// adjacent chunks merge back into a handful of extents. `fs_size`
    /// is the partition size (the manifest region is excluded).
    pub fn rescan(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
        fs_size: u64,
    ) -> Result<(), InitiatorError> {
        let mut off = 0u64;
        while off < fs_size {
            if self.chaos.recovery_fire(chaos::RecoveryOp::RescanChunk) {
                return Err(InitiatorError::Transport(
                    "crash point: recovery rescan".into(),
                ));
            }
            let len = COPY_CHUNK.min((fs_size - off) as usize);
            let data = primary.read_bytes(primary_base + off, len)?;
            self.map.record(off, len as u64, crc32(&data));
            off += len as u64;
        }
        Ok(())
    }

    /// Seal the current extent map as epoch `self.epoch + 1` on both
    /// copies: body first, fully retired, then the commit record — so a
    /// torn commit is detectable and restore falls back to the previous
    /// slot. With the delta chain enabled the sealed manifest is a sparse
    /// delta (changed extent tuples + whiteouts, `parent_epoch` linked)
    /// unless the compaction policy — or a chain anchor being absent —
    /// requires a full one. Returns the committed epoch.
    pub fn commit_epoch(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
        fs_size: u64,
    ) -> Result<u64, ReplicationError> {
        let _epoch_ctx = telemetry::context::with_epoch(self.epoch + 1);
        // Extents fragmented by overlapping writes lost their CRCs;
        // re-read them from the primary before sealing.
        for (offset, len) in self.map.dirty_fragments() {
            let crc = extent_crc(primary, primary_base + offset, len)?;
            self.map.set_crc(offset, len, crc);
        }
        self.try_resync(primary, primary_base);

        let epoch = self.epoch + 1;
        let chained = self.layout.is_chained();
        let mut full = !chained
            || self.last_entries.is_none()
            || self.deltas_since_full >= self.delta_chain_max;
        let mut sealed: Option<(EpochManifest, Vec<u8>)> = None;
        if !full {
            if let Some(last) = self.last_entries.as_ref() {
                let mut extents = Vec::new();
                for (offset, len, crc) in self.map.entries() {
                    let crc = crc.ok_or(ManifestError::Dirty { offset })?;
                    if !last.contains(&(offset, len, crc)) {
                        extents.push(ManifestExtent { offset, len, crc });
                    }
                }
                let m = EpochManifest {
                    epoch,
                    parent_epoch: self.epoch,
                    extents,
                    whiteouts: self.pending_whiteouts.clone(),
                };
                match m.encode_body() {
                    // An oversized delta (pathological churn) compacts instead.
                    Ok(b) if b.len() <= self.layout.body_capacity() => sealed = Some((m, b)),
                    _ => full = true,
                }
            } else {
                // No diff base (should be unreachable given the `full`
                // computation above): anchor a fresh chain instead.
                full = true;
            }
        }
        let compaction_timer = (chained && full).then(|| self.metrics.compaction_ns.time());
        let (manifest, body) = match sealed {
            Some(pair) => pair,
            None => {
                let m = self.map.to_manifest(epoch)?;
                let b = m.encode_body()?;
                if b.len() > self.layout.body_capacity() {
                    return Err(ReplicationError::Manifest(ManifestError::TooLarge {
                        extents: m.extents.len(),
                    }));
                }
                (m, b)
            }
        };
        let body = Bytes::from(body);
        let record = Bytes::copy_from_slice(&manifest.encode_commit(&body));
        let slot = fs_size + self.layout.slot_offset(epoch);
        let body_off = slot + COMMIT_RECORD_BYTES;
        let record_off = slot;
        let body_crc = crc32(&body);
        let record_crc = crc32(&record);

        // Crash-universe gate for the body phase: the body reaches the
        // primary but the crash lands before the replica copy or either
        // commit record — a torn slot restore must treat as invisible.
        if self.chaos.crash_fire(CrashOp::ManifestBody) {
            primary.write_vectored_bytes_precrc(vec![(primary_base + body_off, body, body_crc)])?;
            let _ = primary.flush();
            return Err(ReplicationError::Fabric(InitiatorError::Transport(
                "crash point: manifest body".into(),
            )));
        }
        if self.degraded {
            // Primary-only commit: the replica stays at its last complete
            // epoch and a replica-based restore will lag.
            primary.write_vectored_bytes_precrc(vec![(primary_base + body_off, body, body_crc)])?;
        } else {
            let out = write_mirrored_bytes(
                primary,
                &mut self.conn,
                vec![MirroredWrite {
                    primary_offset: primary_base + body_off,
                    replica_offset: body_off,
                    data: body,
                    crc: body_crc,
                }],
            )?;
            if out.replica_error.is_some() {
                self.degraded = true;
            }
        }
        // Crash-universe gate for the record phase: the body is durable
        // on both copies but only the primary's commit record lands —
        // the replica must fall back to an older complete head while the
        // primary legitimately serves the new epoch.
        if self.chaos.crash_fire(CrashOp::CommitRecord) {
            primary.write_vectored_bytes_precrc(vec![(
                primary_base + record_off,
                record,
                record_crc,
            )])?;
            let _ = primary.flush();
            return Err(ReplicationError::Fabric(InitiatorError::Transport(
                "crash point: commit record".into(),
            )));
        }
        if self.degraded {
            primary.write_vectored_bytes_precrc(vec![(
                primary_base + record_off,
                record,
                record_crc,
            )])?;
        } else {
            let out = write_mirrored_bytes(
                primary,
                &mut self.conn,
                vec![MirroredWrite {
                    primary_offset: primary_base + record_off,
                    replica_offset: record_off,
                    data: record,
                    crc: record_crc,
                }],
            )?;
            if out.replica_error.is_some() {
                self.degraded = true;
            }
        }
        // The epoch is only real once it is durable.
        primary.flush()?;
        if !self.degraded && self.conn.flush().is_err() {
            self.degraded = true;
        }
        self.epoch = epoch;
        self.metrics.epochs_committed.inc();
        self.metrics
            .flight
            .record(FlightKind::EpochCommit, 0, 0, epoch, full as u64);
        if chained {
            if full {
                self.deltas_since_full = 0;
                self.pending_whiteouts.clear();
            } else {
                self.deltas_since_full += 1;
                self.pending_whiteouts.clear();
                self.metrics
                    .delta_extents
                    .add(manifest.extents.len() as u64);
            }
            self.last_entries = Some(
                self.map
                    .entries()
                    .into_iter()
                    .filter_map(|(o, l, c)| c.map(|c| (o, l, c)))
                    .collect(),
            );
            self.metrics
                .chain_len
                .set(i64::from(self.deltas_since_full) + 1);
        }
        drop(compaction_timer);
        Ok(epoch)
    }

    /// Walk every committed extent, verify both copies against the
    /// recorded CRC, and read-repair whichever copy is corrupt from the
    /// one that still matches. Both-copies-corrupt is reported, loudly,
    /// as unrecoverable — scrub never silently "fixes" with bad data.
    pub fn scrub(
        &mut self,
        primary: &mut NvmfConnection,
        primary_base: u64,
    ) -> Result<ScrubReport, ReplicationError> {
        let timer = self.metrics.scrub_ns.time();
        let mut report = ScrubReport::default();
        for (offset, len, crc) in self.map.entries() {
            let Some(crc) = crc else {
                report.skipped_dirty += 1;
                continue;
            };
            report.extents_checked += 1;
            let primary_ok = extent_crc(primary, primary_base + offset, len)? == crc;
            let replica_ok = match extent_crc(&mut self.conn, offset, len) {
                Ok(c) => c == crc,
                Err(_) => false,
            };
            match (primary_ok, replica_ok) {
                (true, true) => {}
                (false, true) => {
                    copy_extent(&mut self.conn, offset, primary, primary_base + offset, len)?;
                    self.metrics.repairs.inc();
                    report.repaired += 1;
                    telemetry::instant("replication", "read_repair", &[("offset", offset)]);
                }
                (true, false) => {
                    copy_extent(primary, primary_base + offset, &mut self.conn, offset, len)?;
                    self.metrics.repairs.inc();
                    report.repaired += 1;
                    telemetry::instant("replication", "read_repair", &[("offset", offset)]);
                }
                (false, false) => {
                    report.unrecoverable += 1;
                    telemetry::instant("replication", "unrecoverable", &[("offset", offset)]);
                }
            }
        }
        drop(timer);
        Ok(report)
    }
}

/// Streaming CRC32 of `[offset, offset + len)` on `conn`, chunked so a
/// merged multi-hundred-MiB extent never needs a single allocation.
fn extent_crc(conn: &mut NvmfConnection, offset: u64, len: u64) -> Result<u32, InitiatorError> {
    let mut state = 0xFFFF_FFFFu32;
    let mut done = 0u64;
    while done < len {
        let chunk = COPY_CHUNK.min((len - done) as usize);
        let data = conn.read_bytes(offset + done, chunk)?;
        state = crc32_update(state, &data);
        done += chunk as u64;
    }
    Ok(state ^ 0xFFFF_FFFF)
}

/// Chunked copy of `[src_off, +len)` on `src` to `dst_off` on `dst`.
fn copy_extent(
    src: &mut NvmfConnection,
    src_off: u64,
    dst: &mut NvmfConnection,
    dst_off: u64,
    len: u64,
) -> Result<(), InitiatorError> {
    let mut done = 0u64;
    while done < len {
        let chunk = COPY_CHUNK.min((len - done) as usize);
        let data = src.read_bytes(src_off + done, chunk)?;
        let crc = crc32(&data);
        dst.write_vectored_bytes_precrc(vec![(dst_off + done, data, crc)])?;
        done += chunk as u64;
    }
    Ok(())
}

/// Read both manifest slots at `region_base` on `conn` and return the
/// decodable one with the highest epoch, if any. A torn or never-written
/// slot simply loses.
pub fn read_latest_manifest(
    conn: &mut NvmfConnection,
    region_base: u64,
) -> Result<Option<EpochManifest>, InitiatorError> {
    let mut best: Option<EpochManifest> = None;
    for slot in 0..2u64 {
        let bytes = conn.read_bytes(region_base + slot * SLOT_BYTES, SLOT_BYTES as usize)?;
        if let Ok(m) = EpochManifest::decode_slot(&bytes) {
            if best.as_ref().is_none_or(|b| m.epoch > b.epoch) {
                best = Some(m);
            }
        }
    }
    Ok(best)
}

/// Read every decodable manifest in the region at `region_base`, one per
/// slot under `layout`. Torn or never-written slots are skipped.
pub fn read_manifests(
    conn: &mut NvmfConnection,
    region_base: u64,
    layout: ManifestLayout,
) -> Result<Vec<EpochManifest>, InitiatorError> {
    let mut out = Vec::new();
    for slot in 0..layout.slots {
        let bytes = conn.read_bytes(
            region_base + slot * layout.slot_bytes,
            layout.slot_bytes as usize,
        )?;
        if let Ok(m) = EpochManifest::decode_slot(&bytes) {
            out.push(m);
        }
    }
    Ok(out)
}

/// Highest committed epoch anywhere in the region, if any.
pub fn read_latest_epoch(
    conn: &mut NvmfConnection,
    region_base: u64,
    layout: ManifestLayout,
) -> Result<Option<u64>, InitiatorError> {
    Ok(read_manifests(conn, region_base, layout)?
        .into_iter()
        .map(|m| m.epoch)
        .max())
}

/// Materialize the newest complete lineage in a delta-chain ring:
/// candidate heads are tried in descending epoch order, and a head counts
/// only when every `parent_epoch` link down to a full manifest is present
/// (degraded-mode commits can leave replica-side holes). Extents resolve
/// newest-first — an ancestor extent fully covered by younger extents or
/// whiteouts is skipped whole; partial shadowing is impossible by
/// construction (re-tiling replaces whole tuples) and reported loudly if
/// it ever appears. Returns the disjoint extents plus the head epoch.
pub fn materialize_chain(
    conn: &mut NvmfConnection,
    region_base: u64,
    layout: ManifestLayout,
) -> Result<Option<(Vec<ManifestExtent>, u64)>, ReplicationError> {
    materialize_chain_with(conn, region_base, layout, &ChaosHandle::default())
}

/// [`materialize_chain`] with a chaos handle: each chain link resolved
/// consumes one nested [`chaos::RecoveryOp::ChainMaterialize`] index, so
/// the nested crash plane can kill chain materialization mid-walk.
pub fn materialize_chain_with(
    conn: &mut NvmfConnection,
    region_base: u64,
    layout: ManifestLayout,
    chaos: &ChaosHandle,
) -> Result<Option<(Vec<ManifestExtent>, u64)>, ReplicationError> {
    let mut manifests = read_manifests(conn, region_base, layout)?;
    manifests.sort_by_key(|m| std::cmp::Reverse(m.epoch));
    for head in 0..manifests.len() {
        let mut chain: Vec<&EpochManifest> = Vec::new();
        let mut cur = &manifests[head];
        loop {
            if chaos.recovery_fire(chaos::RecoveryOp::ChainMaterialize) {
                return Err(ReplicationError::Fabric(InitiatorError::Transport(
                    "crash point: recovery chain materialize".into(),
                )));
            }
            chain.push(cur);
            if !cur.is_delta() {
                break;
            }
            // Parent links strictly descend; anything else is garbage.
            match manifests
                .iter()
                .find(|m| m.epoch == cur.parent_epoch && m.epoch < cur.epoch)
            {
                Some(p) => cur = p,
                None => {
                    chain.clear();
                    break;
                }
            }
        }
        if chain.is_empty() {
            continue;
        }
        let mut covered = IntervalSet::new();
        let mut out: Vec<ManifestExtent> = Vec::new();
        for m in &chain {
            for e in &m.extents {
                let (start, end) = (e.offset, e.offset + e.len);
                if covered.covers(start, end) {
                    continue;
                }
                if covered.intersects(start, end) {
                    return Err(ReplicationError::ChainInconsistent {
                        epoch: m.epoch,
                        offset: e.offset,
                    });
                }
                covered.insert(start, end);
                out.push(*e);
            }
            for &(offset, len) in &m.whiteouts {
                covered.insert(offset, offset + len);
            }
        }
        out.sort_by_key(|e| e.offset);
        return Ok(Some((out, manifests[head].epoch)));
    }
    Ok(None)
}

/// Zero the commit record of any slot holding an epoch newer than
/// `epoch`. After a rollback restore, such slots are stale heads of an
/// abandoned lineage — a later commit would otherwise let them chain onto
/// fresh manifests and poison a future restore.
fn invalidate_future_slots(
    conn: &mut NvmfConnection,
    base: u64,
    region_base: u64,
    layout: ManifestLayout,
    epoch: u64,
) -> Result<(), ReplicationError> {
    for slot in 0..layout.slots {
        let off = region_base + slot * layout.slot_bytes;
        let bytes = conn.read_bytes(base + off, layout.slot_bytes as usize)?;
        if let Ok(m) = EpochManifest::decode_slot(&bytes) {
            if m.epoch > epoch {
                let zeros = Bytes::from(vec![0u8; COMMIT_RECORD_BYTES as usize]);
                let crc = crc32(&zeros);
                conn.write_vectored_bytes_precrc(vec![(base + off, zeros, crc)])?;
            }
        }
    }
    conn.flush()?;
    Ok(())
}

/// What a replica-based restore recovered.
pub struct RestoreOutcome {
    /// Extent map describing the restored image.
    pub map: ExtentMap,
    /// Epoch the restored image corresponds to.
    pub epoch: u64,
    /// True when the live map could not be used verbatim and the restore
    /// rolled back to the last complete manifest on the replica.
    pub rolled_back: bool,
}

/// Re-populate a fresh primary from the surviving replica.
///
/// With a `live` map (the rank was mounted when its shard died) every
/// committed extent is copied with streaming CRC verification and
/// mid-epoch extents are copied as-is — the restored image is
/// byte-identical to the moment of the failure. If verification fails,
/// or no live map survived, the restore rolls back to the replica's last
/// *complete* epoch: under the standard layout that is the newest sealed
/// manifest; under the chained layout the newest complete delta lineage,
/// materialized newest-backward. Either way only manifest extents are
/// copied, each strictly verified. Epochs lost in the rollback are
/// counted in `replication.lag_epochs`; any fallback counts a degraded
/// restore.
pub fn restore_from_replica(
    replica: &mut NvmfConnection,
    live: Option<(ExtentMap, u64)>,
    primary: &mut NvmfConnection,
    primary_base: u64,
    fs_size: u64,
    layout: ManifestLayout,
    t: &Telemetry,
) -> Result<RestoreOutcome, ReplicationError> {
    restore_from_replica_with(
        replica,
        live,
        primary,
        primary_base,
        fs_size,
        layout,
        t,
        &ChaosHandle::default(),
    )
}

/// [`restore_from_replica`] with a chaos handle: each extent copied back
/// consumes one nested [`chaos::RecoveryOp::RestoreExtent`] index, so the
/// nested crash plane can kill the restore mid-copy.
#[allow(clippy::too_many_arguments)]
pub fn restore_from_replica_with(
    replica: &mut NvmfConnection,
    live: Option<(ExtentMap, u64)>,
    primary: &mut NvmfConnection,
    primary_base: u64,
    fs_size: u64,
    layout: ManifestLayout,
    t: &Telemetry,
    chaos: &ChaosHandle,
) -> Result<RestoreOutcome, ReplicationError> {
    let metrics = ReplicationMetrics::new(t);
    let live_epoch = live.as_ref().map(|(_, e)| *e);
    if let Some((map, epoch)) = live {
        match restore_extents(replica, map.entries(), primary, primary_base, false, chaos) {
            Ok(()) => {
                copy_manifest_region(replica, primary, primary_base, fs_size)?;
                return Ok(RestoreOutcome {
                    map,
                    epoch,
                    rolled_back: false,
                });
            }
            Err(ReplicationError::Unrecoverable { .. }) => {
                // The replica disagrees with the live map (e.g. it was
                // mid-write when the primary died). Fall back to its
                // last sealed epoch.
                metrics.degraded_restores.inc();
            }
            Err(e) => return Err(e),
        }
    } else {
        metrics.degraded_restores.inc();
    }

    let (map, epoch) = if layout.is_chained() {
        let (extents, epoch) = materialize_chain_with(replica, fs_size, layout, chaos)?
            .ok_or(ReplicationError::NoCompleteEpoch)?;
        (ExtentMap::from_extents(&extents), epoch)
    } else {
        let manifest =
            read_latest_manifest(replica, fs_size)?.ok_or(ReplicationError::NoCompleteEpoch)?;
        let map = ExtentMap::from_manifest(&manifest);
        (map, manifest.epoch)
    };
    // Manifest extents always carry CRCs; verify strictly — a mismatch
    // here means the data is gone on both copies.
    restore_extents(replica, map.entries(), primary, primary_base, true, chaos)?;
    copy_manifest_region(replica, primary, primary_base, fs_size)?;
    if layout.is_chained() {
        // Slots newer than the restored epoch are stale heads of an
        // abandoned lineage; neuter them on both copies so they can never
        // chain onto post-restore manifests.
        invalidate_future_slots(primary, primary_base, fs_size, layout, epoch)?;
        invalidate_future_slots(replica, 0, fs_size, layout, epoch)?;
    }
    let lag = live_epoch.map_or(0, |le| le.saturating_sub(epoch));
    if live_epoch.is_some() {
        metrics.lag_epochs.add(lag);
    }
    metrics
        .flight
        .record(FlightKind::RollbackRestore, 0, 0, epoch, lag);
    metrics.flight.trip(FlightKind::RollbackRestore, epoch);
    telemetry::instant("replication", "rollback_restore", &[("epoch", epoch)]);
    Ok(RestoreOutcome {
        map,
        epoch,
        rolled_back: true,
    })
}

/// Copy `entries` from the replica onto the new primary, verifying the
/// streamed bytes against each recorded CRC. `strict` fails on extents
/// without a CRC (manifest path); otherwise they are copied unverified
/// (mid-epoch writes in a live map).
fn restore_extents(
    replica: &mut NvmfConnection,
    entries: Vec<(u64, u64, Option<u32>)>,
    primary: &mut NvmfConnection,
    primary_base: u64,
    strict: bool,
    chaos: &ChaosHandle,
) -> Result<(), ReplicationError> {
    for (offset, len, crc) in entries {
        if chaos.recovery_fire(chaos::RecoveryOp::RestoreExtent) {
            return Err(ReplicationError::Fabric(InitiatorError::Transport(
                "crash point: recovery restore extent".into(),
            )));
        }
        match crc {
            Some(expected) => {
                let mut state = 0xFFFF_FFFFu32;
                let mut done = 0u64;
                while done < len {
                    let chunk = COPY_CHUNK.min((len - done) as usize);
                    let data = replica.read_bytes(offset + done, chunk)?;
                    state = crc32_update(state, &data);
                    let chunk_crc = crc32(&data);
                    primary.write_vectored_bytes_precrc(vec![(
                        primary_base + offset + done,
                        data,
                        chunk_crc,
                    )])?;
                    done += chunk as u64;
                }
                if state ^ 0xFFFF_FFFF != expected {
                    return Err(ReplicationError::Unrecoverable { offset, len });
                }
            }
            None if strict => return Err(ReplicationError::Unrecoverable { offset, len }),
            None => copy_extent(replica, offset, primary, primary_base + offset, len)?,
        }
    }
    Ok(())
}

/// Carry the whole manifest region over so the new primary can serve
/// future restores and scrubs without the old replica. The region is the
/// same [`REGION_BYTES`] under either layout.
fn copy_manifest_region(
    replica: &mut NvmfConnection,
    primary: &mut NvmfConnection,
    primary_base: u64,
    fs_size: u64,
) -> Result<(), InitiatorError> {
    copy_extent(
        replica,
        fs_size,
        primary,
        primary_base + fs_size,
        REGION_BYTES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{Initiator, NvmfTarget};
    use ssd::{Ssd, SsdConfig};

    fn conn_pair() -> (NvmfConnection, NvmfConnection, Telemetry) {
        let t = Telemetry::new();
        let mk = |name: &str| {
            let ssd = Ssd::with_telemetry(
                SsdConfig {
                    capacity: 256 << 20,
                    ..SsdConfig::default()
                },
                t.clone(),
            );
            let ns = ssd.create_namespace(64 << 20).unwrap();
            let target = Arc::new(NvmfTarget::new(Arc::new(ssd)));
            Initiator::with_telemetry(name, t.clone()).connect(target, ns)
        };
        (mk("nqn.prim"), mk("nqn.repl"), t)
    }

    const FS: u64 = 32 << 20;

    #[test]
    fn write_through_lands_on_both_and_commit_survives_roundtrip() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        let data = Bytes::from(vec![0xABu8; 64 << 10]);
        m.write_through(
            &mut p,
            0,
            vec![(4096, data.clone()), (1 << 20, data.clone())],
        )
        .unwrap();
        let epoch = m.commit_epoch(&mut p, 0, FS).unwrap();
        assert_eq!(epoch, 1);
        assert!(!m.is_degraded());
        // Both copies hold the data; manifest decodes on both.
        let (mut r, map, epoch, _) = m.into_parts();
        assert_eq!(&r.read_bytes(4096, 64 << 10).unwrap()[..], &data[..]);
        assert_eq!(&p.read_bytes(1 << 20, 64 << 10).unwrap()[..], &data[..]);
        let from_replica = read_latest_manifest(&mut r, FS).unwrap().unwrap();
        let from_primary = read_latest_manifest(&mut p, FS).unwrap().unwrap();
        assert_eq!(from_replica.epoch, 1);
        assert_eq!(from_primary.epoch, 1);
        assert_eq!(
            ExtentMap::from_manifest(&from_replica).entries(),
            map.entries()
        );
        assert_eq!(epoch, 1);
        assert_eq!(t.snapshot().counter("replication.epochs_committed"), 1);
        assert_eq!(t.snapshot().counter("replication.bytes"), 2 * (64 << 10));
    }

    #[test]
    fn scrub_repairs_single_copy_corruption_and_reports_double() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x11u8; 8192]))])
            .unwrap();
        m.write_through(&mut p, 0, vec![(1 << 20, Bytes::from(vec![0x22u8; 8192]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // Corrupt the primary's first extent behind the mirror's back.
        p.write_bytes(100, Bytes::from_static(b"rot")).unwrap();
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!(rep.repaired, 1);
        assert_eq!(rep.unrecoverable, 0);
        assert_eq!(&p.read_bytes(0, 8192).unwrap()[..], &[0x11u8; 8192][..]);
        // Clean second pass.
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!((rep.repaired, rep.unrecoverable), (0, 0));
        // Corrupt the same extent on both copies: unrecoverable.
        p.write_bytes(100, Bytes::from_static(b"rot")).unwrap();
        {
            let (r, map, epoch, _) = m.into_parts();
            let mut r = r;
            r.write_bytes(100, Bytes::from_static(b"rot")).unwrap();
            m = Mirror::with_state(r, map, epoch, &t);
        }
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!(rep.unrecoverable, 1);
        assert_eq!(t.snapshot().counter("replication.repairs"), 1);
    }

    #[test]
    fn restore_from_live_map_is_byte_identical() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        let a = Bytes::from(
            (0..16384u32)
                .flat_map(|i| (i as u8).to_le_bytes())
                .collect::<Vec<_>>(),
        );
        m.write_through(&mut p, 0, vec![(0, a.clone())]).unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // One uncommitted (mid-epoch) write too.
        let b = Bytes::from(vec![0x77u8; 4096]);
        m.write_through(&mut p, 0, vec![(2 << 20, b.clone())])
            .unwrap();

        let (mut replica, map, epoch, _) = m.into_parts();
        let (mut fresh, _unused_replica, _) = conn_pair();
        let out = restore_from_replica(
            &mut replica,
            Some((map, epoch)),
            &mut fresh,
            0,
            FS,
            ManifestLayout::standard(),
            &t,
        )
        .unwrap();
        assert!(!out.rolled_back);
        assert_eq!(out.epoch, 1);
        assert_eq!(&fresh.read_bytes(0, a.len()).unwrap()[..], &a[..]);
        assert_eq!(&fresh.read_bytes(2 << 20, 4096).unwrap()[..], &b[..]);
        // Manifest region carried over.
        assert_eq!(
            read_latest_manifest(&mut fresh, FS).unwrap().unwrap().epoch,
            1
        );
    }

    #[test]
    fn restore_without_live_map_rolls_back_to_last_complete_epoch() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        let a = Bytes::from(vec![0x31u8; 8192]);
        m.write_through(&mut p, 0, vec![(0, a.clone())]).unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // Mid-epoch write that never commits — must not appear.
        m.write_through(&mut p, 0, vec![(1 << 20, Bytes::from(vec![0x99u8; 4096]))])
            .unwrap();
        let (mut replica, _, _, _) = m.into_parts();
        let (mut fresh, _u, _) = conn_pair();
        let out = restore_from_replica(
            &mut replica,
            None,
            &mut fresh,
            0,
            FS,
            ManifestLayout::standard(),
            &t,
        )
        .unwrap();
        assert!(out.rolled_back);
        assert_eq!(out.epoch, 1);
        assert_eq!(&fresh.read_bytes(0, 8192).unwrap()[..], &a[..]);
        assert_eq!(t.snapshot().counter("replication.degraded_restores"), 1);
    }

    #[test]
    fn restore_with_no_manifest_is_no_complete_epoch() {
        let (_p, mut r, t) = conn_pair();
        let (mut fresh, _u, _) = conn_pair();
        assert!(matches!(
            restore_from_replica(
                &mut r,
                None,
                &mut fresh,
                0,
                FS,
                ManifestLayout::standard(),
                &t
            ),
            Err(ReplicationError::NoCompleteEpoch)
        ));
    }

    #[test]
    fn rescan_rebuilds_a_committable_map() {
        let (mut p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        m.write_through(&mut p, 0, vec![(4096, Bytes::from(vec![0x42u8; 12288]))])
            .unwrap();
        // Simulate losing the in-memory map: fresh mirror over the same
        // replica, rescan from the primary.
        let (r, _, _, _) = m.into_parts();
        let mut m = Mirror::with_state(r, ExtentMap::new(), 0, &t);
        m.rescan(&mut p, 0, FS).unwrap();
        // Whole-partition chunks merge into one extent.
        assert_eq!(m.map().len(), 1);
        let epoch = m.commit_epoch(&mut p, 0, FS).unwrap();
        assert_eq!(epoch, 1);
        let rep = m.scrub(&mut p, 0).unwrap();
        assert_eq!(rep.unrecoverable, 0);
        assert_eq!(rep.repaired, 0);
    }

    /// Build a chained mirror over a fresh conn pair.
    fn chained_mirror(max: u32) -> (NvmfConnection, Mirror, Telemetry) {
        let (p, r, t) = conn_pair();
        let mut m = Mirror::new(r, &t);
        m.enable_delta_chain(max);
        (p, m, t)
    }

    #[test]
    fn delta_chain_seals_sparse_manifests_and_materializes() {
        let (mut p, mut m, t) = chained_mirror(4);
        // Tile the base image at the chain merge granularity so a later
        // single-tile overwrite re-seals exactly one tuple.
        let tile = Bytes::from(vec![0xA0u8; 64 << 10]);
        for i in 0..4u64 {
            m.write_through(&mut p, 0, vec![(i * (64 << 10), tile.clone())])
                .unwrap();
        }
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // Dirty one 64 KiB tile out of four.
        let dirty = Bytes::from(vec![0xB1u8; 64 << 10]);
        m.write_through(&mut p, 0, vec![(64 << 10, dirty.clone())])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();

        let layout = ManifestLayout::chained();
        let manifests = read_manifests(&mut p, FS, layout).unwrap();
        let e1 = manifests.iter().find(|m| m.epoch == 1).unwrap();
        let e2 = manifests.iter().find(|m| m.epoch == 2).unwrap();
        assert!(!e1.is_delta(), "first commit anchors the chain");
        assert!(e2.is_delta(), "second commit is a sparse delta");
        assert_eq!(e2.parent_epoch, 1);
        assert_eq!(e2.extents.len(), 1, "only the dirty tile re-seals");
        assert_eq!(e2.extents[0].offset, 64 << 10);

        // The materialized chain tiles the whole image, newest-first.
        let (extents, head) = materialize_chain(&mut p, FS, layout).unwrap().unwrap();
        assert_eq!(head, 2);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 256 << 10);
        assert!(t.snapshot().counter("cow.delta_extents") >= 1);
        assert_eq!(t.snapshot().gauge("cow.chain_len").value, 2);
    }

    #[test]
    fn compaction_policy_reseals_full_after_max_deltas() {
        let (mut p, mut m, t) = chained_mirror(2);
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x10u8; 128 << 10]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // epoch 1: full (anchor)
        for i in 0..3u8 {
            m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x20 + i; 64 << 10]))])
                .unwrap();
            m.commit_epoch(&mut p, 0, FS).unwrap();
        }
        // Epochs 2 and 3 are deltas; epoch 4 hits delta_chain_max=2 and
        // compacts back to a full manifest.
        let manifests = read_manifests(&mut p, FS, ManifestLayout::chained()).unwrap();
        let is_delta = |e: u64| manifests.iter().find(|m| m.epoch == e).unwrap().is_delta();
        assert!(!is_delta(1));
        assert!(is_delta(2));
        assert!(is_delta(3));
        assert!(!is_delta(4), "chain compacts after delta_chain_max deltas");
        assert_eq!(m.chain_len(), 0);
        assert_eq!(t.snapshot().gauge("cow.chain_len").value, 1);
        assert!(t
            .snapshot()
            .histogram("cow.compaction_ns")
            .is_some_and(|h| h.count >= 2));
    }

    #[test]
    fn whiteouts_shadow_ancestor_extents_in_materialization() {
        let (mut p, mut m, _t) = chained_mirror(4);
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x55u8; 192 << 10]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap();
        // Whiteout the middle tile, dirty nothing else.
        m.discard(64 << 10, 64 << 10);
        m.commit_epoch(&mut p, 0, FS).unwrap();

        let layout = ManifestLayout::chained();
        let e2 = read_manifests(&mut p, FS, layout)
            .unwrap()
            .into_iter()
            .find(|m| m.epoch == 2)
            .unwrap();
        assert_eq!(e2.whiteouts, vec![(64 << 10, 64 << 10)]);
        let (extents, head) = materialize_chain(&mut p, FS, layout).unwrap().unwrap();
        assert_eq!(head, 2);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 128 << 10, "whiteout tile is not materialized");
        assert!(extents
            .iter()
            .all(|e| e.offset + e.len <= 64 << 10 || e.offset >= 128 << 10));
    }

    #[test]
    fn chained_restore_materializes_through_the_delta_chain() {
        let (mut p, mut m, t) = chained_mirror(6);
        let a = Bytes::from(vec![0xAAu8; 256 << 10]);
        let b = Bytes::from(vec![0xBBu8; 64 << 10]);
        let c = Bytes::from(vec![0xCCu8; 64 << 10]);
        m.write_through(&mut p, 0, vec![(0, a.clone())]).unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 1: full
        m.write_through(&mut p, 0, vec![(64 << 10, b.clone())])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 2: delta
        m.write_through(&mut p, 0, vec![(1 << 20, c.clone())])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 3: delta

        let (mut replica, _, _, _) = m.into_parts();
        let (mut fresh, _u, _) = conn_pair();
        let layout = ManifestLayout::chained();
        let out = restore_from_replica(&mut replica, None, &mut fresh, 0, FS, layout, &t).unwrap();
        assert!(out.rolled_back);
        assert_eq!(out.epoch, 3);
        assert_eq!(&fresh.read_bytes(0, 64 << 10).unwrap()[..], &a[..64 << 10]);
        assert_eq!(&fresh.read_bytes(64 << 10, 64 << 10).unwrap()[..], &b[..]);
        assert_eq!(
            &fresh.read_bytes(128 << 10, 128 << 10).unwrap()[..],
            &a[..128 << 10]
        );
        assert_eq!(&fresh.read_bytes(1 << 20, 64 << 10).unwrap()[..], &c[..]);
    }

    #[test]
    fn chain_hole_falls_back_to_older_complete_head() {
        // A degraded-mode commit writes only the primary: the replica
        // keeps both its old data AND its old manifests, so a later
        // replica-side materialization sees a hole in the newest lineage
        // and must fall back to the newest head whose chain is complete.
        let (mut p, mut m, _t) = chained_mirror(6);
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x11u8; 128 << 10]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 1: full
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x22u8; 64 << 10]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 2: delta
        m.write_through(
            &mut p,
            0,
            vec![(64 << 10, Bytes::from(vec![0x33u8; 64 << 10]))],
        )
        .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 3: delta

        // Zero epoch 2's commit record on the primary — the shape its
        // region takes when that commit only ever reached the replica.
        let layout = ManifestLayout::chained();
        let hole = FS + layout.slot_offset(2);
        let zeros = Bytes::from(vec![0u8; COMMIT_RECORD_BYTES as usize]);
        let crc = crc32(&zeros);
        p.write_vectored_bytes_precrc(vec![(hole, zeros, crc)])
            .unwrap();
        p.flush().unwrap();

        // Epoch 3's parent link dangles; the walk skips it and lands on
        // the complete epoch-1 anchor.
        let (extents, head) = materialize_chain(&mut p, FS, layout).unwrap().unwrap();
        assert_eq!(head, 1, "incomplete lineages are skipped");
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 128 << 10);
    }

    /// Simulate a crash between a commit's two phases: the body landed in
    /// the slot but the commit record never did. Returns the slot offset.
    fn write_torn_slot(conn: &mut NvmfConnection, m: &EpochManifest, layout: ManifestLayout) {
        let body = Bytes::from(m.encode_body().unwrap());
        let crc = crc32(&body);
        let slot = FS + layout.slot_offset(m.epoch);
        conn.write_vectored_bytes_precrc(vec![(slot + COMMIT_RECORD_BYTES, body, crc)])
            .unwrap();
        conn.flush().unwrap();
    }

    #[test]
    fn torn_delta_commit_rolls_back_to_last_complete_epoch() {
        let (mut p, mut m, _t) = chained_mirror(6);
        let a = Bytes::from(vec![0x61u8; 128 << 10]);
        m.write_through(&mut p, 0, vec![(0, a.clone())]).unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 1: full
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x62u8; 64 << 10]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 2: delta
                                                // Epoch 3's delta body reaches both slots, but the crash lands
                                                // before either commit record: the chain head stays at 2.
        let layout = ManifestLayout::chained();
        let torn = EpochManifest {
            epoch: 3,
            parent_epoch: 2,
            extents: vec![ManifestExtent {
                offset: 64 << 10,
                len: 64 << 10,
                crc: 0xBAD,
            }],
            whiteouts: Vec::new(),
        };
        write_torn_slot(&mut p, &torn, layout);
        let (mut replica, _, _, _) = m.into_parts();
        write_torn_slot(&mut replica, &torn, layout);
        let (_, head) = materialize_chain(&mut replica, FS, layout)
            .unwrap()
            .unwrap();
        assert_eq!(head, 2, "the torn delta must stay invisible");
    }

    #[test]
    fn torn_compaction_commit_rolls_back_to_the_sealed_chain() {
        let (mut p, mut m, _t) = chained_mirror(6);
        m.write_through(&mut p, 0, vec![(0, Bytes::from(vec![0x71u8; 128 << 10]))])
            .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 1: full
        m.write_through(
            &mut p,
            0,
            vec![(64 << 10, Bytes::from(vec![0x72u8; 64 << 10]))],
        )
        .unwrap();
        m.commit_epoch(&mut p, 0, FS).unwrap(); // 2: delta
                                                // A compaction (full manifest) for epoch 3 is torn mid-commit:
                                                // restore still materializes the sealed 1 <- 2 lineage.
        let layout = ManifestLayout::chained();
        let full = m.map().to_manifest(3).unwrap();
        write_torn_slot(&mut p, &full, layout);
        let (mut replica, _, _, _) = m.into_parts();
        write_torn_slot(&mut replica, &full, layout);
        let (extents, head) = materialize_chain(&mut replica, FS, layout)
            .unwrap()
            .unwrap();
        assert_eq!(head, 2);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 128 << 10);
    }

    use proptest::prelude::*;

    proptest! {
        /// Any randomly generated delta chain — random dirty fractions,
        /// compaction points (driven by `chain_max`), overlapping writes,
        /// and whiteouts — materializes to exactly the byte set and bytes
        /// of the equivalent full rewrite (the mirror's final extent map).
        #[test]
        fn prop_chain_materializes_byte_identical(
            chain_max in 1u32..5,
            epochs in proptest::collection::vec(
                (
                    proptest::collection::vec((0u64..60, 1u64..5, any::<u8>()), 1..6),
                    proptest::collection::vec((0u64..60, 1u64..5), 0..3),
                ),
                1..6,
            ),
        ) {
            const BS: u64 = 4096;
            let (mut p, r, t) = conn_pair();
            let mut m = Mirror::new(r, &t);
            m.enable_delta_chain(chain_max);
            let mut shadow = vec![0u8; (64 * BS) as usize];
            for (writes, whiteouts) in &epochs {
                for &(blk, blocks, fill) in writes {
                    let (off, len) = (blk * BS, blocks * BS);
                    m.write_through(&mut p, 0, vec![(off, Bytes::from(vec![fill; len as usize]))])
                        .unwrap();
                    shadow[off as usize..(off + len) as usize].fill(fill);
                }
                for &(blk, blocks) in whiteouts {
                    m.discard(blk * BS, blocks * BS);
                }
                m.commit_epoch(&mut p, 0, FS).unwrap();
            }
            let want: Vec<(u64, u64)> = m
                .map()
                .entries()
                .into_iter()
                .map(|(o, l, _)| (o, l))
                .collect();
            let (mut replica, _, _, _) = m.into_parts();
            let layout = ManifestLayout::chained();
            let materialized = materialize_chain(&mut replica, FS, layout).unwrap();
            prop_assert!(
                materialized.is_some(),
                "committed chains always materialize"
            );
            let (extents, _) = materialized.unwrap();
            // Same byte set as the equivalent full rewrite...
            let mut got = IntervalSet::new();
            for e in &extents {
                got.insert(e.offset, e.offset + e.len);
            }
            let mut full = IntervalSet::new();
            for &(o, l) in &want {
                full.insert(o, o + l);
            }
            prop_assert_eq!(got.spans(), full.spans());
            // ...and byte-identical content under every extent.
            for e in &extents {
                let data = replica.read_bytes(e.offset, e.len as usize).unwrap();
                prop_assert_eq!(
                    &data[..],
                    &shadow[e.offset as usize..(e.offset + e.len) as usize]
                );
            }
        }
    }
}
