//! Runtime orchestration: from a scheduler allocation to per-rank mounted
//! filesystems, and back through crash and recovery.
//!
//! `NvmeCrRuntime` is the ephemeral, job-lifetime runtime of §III-B: at
//! `MPI_Init` it partitions the granted SSDs (storage balancer), creates
//! the job's NVMe namespaces, connects each rank's NVMf initiator, and
//! formats one `MicroFs` per rank; at `MPI_Finalize` it snapshots and
//! tears down. `crash_rank`/`recover_rank` exercise the paper's recovery
//! story over real bytes.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rayon::prelude::*;

use cluster::{FailureDomains, JobAllocation, NodeId, NodeKind, Topology};
use fabric::{Initiator, NvmfTarget};
use microfs::manifest::{ManifestLayout, REGION_BYTES};
use microfs::{ExtentMap, FsError, FsStats, MicroFs};
use ssd::{NsId, Ssd, SsdConfig, SsdError};
use telemetry::Telemetry;

use crate::balancer::{BalanceError, Placement, StorageBalancer};
use crate::config::RuntimeConfig;
use crate::dataplane::NvmfBlockDevice;
use crate::reactor::{FnMachine, RankMachine, RankTask, ReactorConfig, ReactorPool};
use crate::replication::{self, Mirror, ReplicationError, ScrubReport};

/// Smallest per-rank segment we accept (microfs needs room for its log,
/// snapshot slots, and data region).
pub const MIN_SEGMENT: u64 = 16 << 20;

thread_local! {
    /// Set while this thread is a worker inside a parallel rank drive.
    /// Nested drives — recovery or failover running inside a parallel
    /// closure — used to open a second rayon scope from each worker,
    /// multiplying threads; with the guard they run inline on the worker
    /// that is already part of the one sized pool.
    static IN_PAR_DRIVE: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` over `items` on the shared sized worker pool. If the calling
/// thread is itself a drive worker (a nested call), the items run inline
/// sequentially instead of fanning out — one pool's worth of threads,
/// regardless of nesting depth.
pub(crate) fn par_ranks<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if IN_PAR_DRIVE.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    items
        .into_par_iter()
        .map(|t| {
            /// Clears the worker flag even if `f` panics (the pool's
            /// threads outlive one drive only in tests, but a stale flag
            /// would serialize every later drive on that thread).
            struct Reset;
            impl Drop for Reset {
                fn drop(&mut self) {
                    IN_PAR_DRIVE.with(|c| c.set(false));
                }
            }
            IN_PAR_DRIVE.with(|c| c.set(true));
            let _reset = Reset;
            f(t)
        })
        .collect()
}

/// Runtime failures.
#[derive(Debug)]
pub enum RuntimeError {
    /// Balancer rejected the allocation.
    Balance(BalanceError),
    /// Device/namespace management failed.
    Ssd(SsdError),
    /// Filesystem failure.
    Fs(FsError),
    /// Replication-layer failure (mirror commit, scrub, or restore).
    Replication(ReplicationError),
    /// Referenced rank does not exist or is not mounted.
    BadRank(u32),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Balance(e) => write!(f, "balancer: {e}"),
            RuntimeError::Ssd(e) => write!(f, "ssd: {e}"),
            RuntimeError::Fs(e) => write!(f, "fs: {e}"),
            RuntimeError::Replication(e) => write!(f, "replication: {e}"),
            RuntimeError::BadRank(r) => write!(f, "bad rank {r}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<BalanceError> for RuntimeError {
    fn from(e: BalanceError) -> Self {
        RuntimeError::Balance(e)
    }
}
impl From<SsdError> for RuntimeError {
    fn from(e: SsdError) -> Self {
        RuntimeError::Ssd(e)
    }
}
impl From<FsError> for RuntimeError {
    fn from(e: FsError) -> Self {
        RuntimeError::Fs(e)
    }
}
impl From<ReplicationError> for RuntimeError {
    fn from(e: ReplicationError) -> Self {
        RuntimeError::Replication(e)
    }
}

/// The storage side of the cluster: one functional SSD + NVMf target per
/// `(storage node, ssd index)`.
pub struct StorageRack {
    targets: BTreeMap<(NodeId, u32), Arc<NvmfTarget>>,
}

impl StorageRack {
    /// Build devices and target daemons for every storage node in `topo`,
    /// reporting device metrics to the global telemetry registry.
    pub fn build(topo: &Topology, ssd_config: &SsdConfig) -> Self {
        Self::build_with_telemetry(topo, ssd_config, Telemetry::default())
    }

    /// [`build`](StorageRack::build) with an explicit telemetry handle —
    /// every device in the rack reports to `telemetry`'s registry.
    pub fn build_with_telemetry(
        topo: &Topology,
        ssd_config: &SsdConfig,
        telemetry: Telemetry,
    ) -> Self {
        let mut targets = BTreeMap::new();
        for node in topo.storage_nodes() {
            if let NodeKind::Storage { ssds } = topo.kind_of(node) {
                for s in 0..ssds {
                    let ssd = Ssd::with_telemetry(ssd_config.clone(), telemetry.clone());
                    targets.insert((node, s), Arc::new(NvmfTarget::new(Arc::new(ssd))));
                }
            }
        }
        StorageRack { targets }
    }

    /// The target fronting one SSD.
    pub fn target(&self, node: NodeId, ssd: u32) -> Option<&Arc<NvmfTarget>> {
        self.targets.get(&(node, ssd))
    }

    /// Number of SSDs in the rack.
    pub fn ssd_count(&self) -> usize {
        self.targets.len()
    }

    /// Simulate a power failure on every device in a set of nodes,
    /// returning total bytes lost (zero with capacitors).
    pub fn power_fail_nodes(&self, nodes: &[NodeId]) -> u64 {
        let mut lost = 0;
        for ((node, _), target) in &self.targets {
            if nodes.contains(node) {
                lost += target.device().power_failure().lost_bytes;
            }
        }
        lost
    }

    /// The targets on one storage node, in SSD-index order.
    pub fn targets_on(&self, node: NodeId) -> Vec<(u32, Arc<NvmfTarget>)> {
        self.targets
            .iter()
            .filter(|((n, _), _)| *n == node)
            .map(|((_, s), t)| (*s, Arc::clone(t)))
            .collect()
    }
}

#[derive(Clone)]
struct GrantState {
    target: Arc<NvmfTarget>,
    ns: NsId,
    /// The storage node fronting the namespace.
    node: NodeId,
}

/// Where one rank's bytes currently live: a target, a namespace, and the
/// rank's window into it. At init every route points into the job's shared
/// grant namespaces; after [`NvmeCrRuntime::fail_over_rank`] the affected
/// rank's route points at a private replacement namespace on a partner
/// failure domain.
#[derive(Clone)]
pub(crate) struct RankRoute {
    pub(crate) target: Arc<NvmfTarget>,
    pub(crate) ns: NsId,
    /// Byte offset of the rank's segment within `ns`.
    pub(crate) base: u64,
    /// Segment size in bytes.
    pub(crate) size: u64,
    /// The storage node holding the bytes (failure-domain bookkeeping).
    pub(crate) node: NodeId,
    /// Replication factor 2: the rank's second copy on a partner failure
    /// domain. Its namespace is `size` bytes laid out identically to the
    /// primary segment (partition image at 0, manifest region at the
    /// tail), so either copy can serve a restore.
    pub(crate) replica: Option<ReplicaRoute>,
}

/// Where a rank's replica lives (its own private namespace, base 0).
#[derive(Clone)]
pub(crate) struct ReplicaRoute {
    pub(crate) target: Arc<NvmfTarget>,
    pub(crate) ns: NsId,
    pub(crate) node: NodeId,
}

impl RankRoute {
    /// The microfs partition size: replicated routes reserve the manifest
    /// region at the segment tail.
    pub(crate) fn fs_size(&self) -> u64 {
        if self.replica.is_some() {
            self.size - REGION_BYTES
        } else {
            self.size
        }
    }
}

/// Connect a rank's primary — and, when the route carries a replica, its
/// fresh mirror (empty extent map, epoch 0) — and wrap both in the rank's
/// block device. This is the format-time path; reconnecting after a crash
/// or restart goes through the [`crate::recovery`] typestate chain, which
/// rebuilds the mirror from the on-device manifests instead.
fn rank_device(
    route: &RankRoute,
    nqn: &str,
    config: &RuntimeConfig,
) -> Result<NvmfBlockDevice, RuntimeError> {
    let initiator = Initiator::with_config(
        nqn.to_string(),
        config.telemetry.clone(),
        config.chaos.clone(),
        config.fabric.clone(),
    );
    let conn = initiator.connect(Arc::clone(&route.target), route.ns);
    let fs_size = route.fs_size();
    let Some(rr) = &route.replica else {
        let mut dev = NvmfBlockDevice::new(conn, route.base, fs_size);
        dev.set_chaos(config.chaos.clone());
        return Ok(dev);
    };
    let ri = Initiator::with_config(
        format!("{nqn}-mirror"),
        config.telemetry.clone(),
        config.chaos.clone(),
        config.fabric.clone(),
    );
    let rconn = ri.connect(Arc::clone(&rr.target), rr.ns);
    let mut dev = NvmfBlockDevice::new(conn, route.base, fs_size);
    dev.set_chaos(config.chaos.clone());
    let mut mirror = Mirror::with_state(rconn, ExtentMap::new(), 0, &config.telemetry);
    mirror.set_chaos(config.chaos.clone());
    if config.delta_chain_max > 0 {
        // A fresh mirror anchors the delta lineage at its first (full)
        // commit; a chain must never span a restart boundary.
        mirror.enable_delta_chain(config.delta_chain_max);
    }
    dev.attach_mirror(mirror);
    Ok(dev)
}

/// Pick a partner-domain home for a rank's replica: a storage node other
/// than the primary's, domain-separated from the rank (preferring nodes
/// also separated from the primary), with an SSD that has room. The scan
/// order is rotated by rank so replicas spread across the rack.
///
/// Candidates come through the allocation's [`DomainIndex`], so nodes in
/// the rank's own failure domain are never touched — at 10k namespaces
/// the old whole-rack scan was the placement hot loop.
fn place_replica(
    rack: &StorageRack,
    domains: &FailureDomains,
    index: &crate::balancer::DomainIndex,
    rank: u32,
    rank_node: NodeId,
    primary_node: NodeId,
    size: u64,
) -> Result<ReplicaRoute, RuntimeError> {
    let rank_dom = domains.domain_of(rank_node);
    let primary_dom = domains.domain_of(primary_node);
    let pass = |strict: bool| {
        index
            .cyclic_candidates(rank as usize, |d| {
                d != rank_dom && (!strict || d != primary_dom)
            })
            .into_iter()
            .find_map(|(_, node)| {
                if node == primary_node {
                    return None;
                }
                let mut targets = rack.targets_on(node);
                if !targets.is_empty() {
                    let rot = rank as usize % targets.len();
                    targets.rotate_left(rot);
                }
                targets
                    .into_iter()
                    .map(|(_, t)| t)
                    .find(|t| t.device().namespaces().free_bytes() >= size)
                    .map(|t| (t, node))
            })
    };
    let (target, node) = pass(true)
        .or_else(|| pass(false))
        .ok_or(RuntimeError::Balance(BalanceError::NoFailoverTarget {
            rank,
        }))?;
    let ns = target.device().create_namespace(size)?;
    Ok(ReplicaRoute { target, ns, node })
}

/// A detached job's storage handle: everything needed to reattach to the
/// surviving namespaces after the application died (the restart half of
/// checkpoint/restart). The ephemeral runtime dies with the job; the
/// checkpoint data does not.
///
/// Cloneable so a failed attach can be retried with a different policy:
/// the handle names durable state, it does not own connections.
#[derive(Clone)]
pub struct JobHandle {
    grants: Vec<GrantState>,
    routes: Vec<RankRoute>,
    rank_nodes: Vec<NodeId>,
    extra_ns: Vec<(Arc<NvmfTarget>, NsId)>,
    placement: Placement,
    config: RuntimeConfig,
}

impl JobHandle {
    /// Ranks covered by this handle.
    pub fn rank_count(&self) -> u32 {
        self.placement.per_rank.len() as u32
    }

    /// Construct the runtime shell with every rank still crashed (no
    /// mounting). The [`crate::supervisor::RecoverySupervisor`] uses this
    /// to recover ranks one at a time — with retries, deadlines, and
    /// quarantine — instead of the all-or-nothing parallel mount of
    /// [`NvmeCrRuntime::attach`].
    pub(crate) fn into_empty_runtime(self) -> NvmeCrRuntime {
        let slots = self.routes.len();
        NvmeCrRuntime {
            placement: self.placement,
            grants: self.grants,
            routes: self.routes,
            rank_nodes: self.rank_nodes,
            extra_ns: self.extra_ns,
            config: self.config,
            ranks: (0..slots).map(|_| None).collect(),
        }
    }
}

/// A live NVMe-CR job runtime.
pub struct NvmeCrRuntime {
    placement: Placement,
    grants: Vec<GrantState>,
    /// Per-rank storage routes (indexed by rank); updated on failover.
    routes: Vec<RankRoute>,
    /// Compute node of each rank (failure-domain checks on failover).
    rank_nodes: Vec<NodeId>,
    /// Failover namespaces created after init, deleted at finalize.
    extra_ns: Vec<(Arc<NvmfTarget>, NsId)>,
    config: RuntimeConfig,
    ranks: Vec<Option<MicroFs<NvmfBlockDevice>>>,
}

impl NvmeCrRuntime {
    /// Initialize the runtime for `alloc` (the `MPI_Init` wrapper's work):
    /// place ranks, create namespaces, connect, format.
    pub fn init(
        rack: &StorageRack,
        topo: &Topology,
        alloc: &JobAllocation,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        let domains = FailureDomains::derive(topo);
        let balancer = StorageBalancer::new(topo, &domains);
        let placement = balancer.place(alloc, config.namespace_bytes, MIN_SEGMENT)?;
        // One namespace per grant, created from the device's free space
        // (the gres-granted slot).
        let mut grants = Vec::with_capacity(alloc.storage.len());
        for g in &alloc.storage {
            let target = rack
                .target(g.node, g.ssd)
                .ok_or(BalanceError::UnknownSsd {
                    node: g.node,
                    ssd: g.ssd,
                })?
                .clone();
            let ns = target.device().create_namespace(config.namespace_bytes)?;
            grants.push(GrantState {
                target,
                ns,
                node: g.node,
            });
        }
        // Each rank's initial route: its segment of its grant's namespace.
        let mut routes: Vec<RankRoute> = placement
            .per_rank
            .iter()
            .map(|p| {
                let gs = &grants[p.grant];
                RankRoute {
                    target: Arc::clone(&gs.target),
                    ns: gs.ns,
                    base: p.segment_offset,
                    size: p.segment_size,
                    node: gs.node,
                    replica: None,
                }
            })
            .collect();
        // Replication factor 2: give every rank a second copy on a
        // partner failure domain, in its own namespace sized like the
        // primary segment (image + manifest region).
        if config.replication_factor >= 2 {
            // One domain index for the whole job: every rank's replica
            // lookup probes domain buckets, not the full namespace list.
            let index = crate::balancer::DomainIndex::build(&domains, &topo.storage_nodes());
            for (rank, route) in routes.iter_mut().enumerate() {
                route.replica = Some(place_replica(
                    rack,
                    &domains,
                    &index,
                    rank as u32,
                    alloc.rank_nodes[rank],
                    route.node,
                    route.size,
                )?);
            }
        }
        // Per-rank: connect an initiator and format the segment. Ranks
        // are fully independent (own connection, own namespace shard, own
        // filesystem), so format in parallel.
        let init_rank_ns = config.telemetry.histogram("driver.init_rank_ns");
        let ranks = par_ranks(placement.per_rank.clone(), |p| {
            let _span = telemetry::span("driver", "init_rank").arg("rank", u64::from(p.rank));
            let _rank = telemetry::context::with_rank(u64::from(p.rank));
            let _t = init_rank_ns.time();
            let route = &routes[p.rank as usize];
            let dev = rank_device(
                route,
                &format!("nqn.2026-07.io.nvmecr:rank{}", p.rank),
                &config,
            )?;
            MicroFs::format(dev, config.fs_config())
                .map(Some)
                .map_err(RuntimeError::from)
        })
        .into_iter()
        .collect::<Result<Vec<_>, RuntimeError>>()?;
        Ok(NvmeCrRuntime {
            placement,
            grants,
            routes,
            rank_nodes: alloc.rank_nodes.clone(),
            extra_ns: Vec::new(),
            config,
            ranks,
        })
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// The verified placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Mutable access to one rank's filesystem.
    pub fn rank_fs(&mut self, rank: u32) -> Result<&mut MicroFs<NvmfBlockDevice>, RuntimeError> {
        self.ranks
            .get_mut(rank as usize)
            .and_then(Option::as_mut)
            .ok_or(RuntimeError::BadRank(rank))
    }

    /// Run `f` against every *mounted* rank's filesystem in parallel,
    /// collecting the results in rank order (crashed ranks are skipped).
    ///
    /// Each rank's `MicroFs` owns its own NVMf connection to its own
    /// namespace shard, so rank driving shares no lock: this is the
    /// runtime-side analogue of the paper's per-process microfs instances
    /// on dedicated hardware queues.
    pub fn map_ranks_par<R, F>(&mut self, f: F) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(u32, &mut MicroFs<NvmfBlockDevice>) -> Result<R, RuntimeError> + Sync,
    {
        let slots: Vec<(usize, &mut Option<MicroFs<NvmfBlockDevice>>)> =
            self.ranks.iter_mut().enumerate().collect();
        let results: Vec<Result<Option<R>, RuntimeError>> =
            par_ranks(slots, |(rank, slot)| match slot.as_mut() {
                Some(fs) => {
                    // Rank trace context: every flight-recorder event below
                    // this frame (fabric, ssd, microfs, replication) is
                    // stamped with the driving rank.
                    let _rank = telemetry::context::with_rank(rank as u64);
                    f(rank as u32, fs).map(Some)
                }
                None => Ok(None),
            });
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            if let Some(v) = r? {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// [`map_ranks_par`](NvmeCrRuntime::map_ranks_par) without results.
    pub fn for_each_rank_par<F>(&mut self, f: F) -> Result<(), RuntimeError>
    where
        F: Fn(u32, &mut MicroFs<NvmfBlockDevice>) -> Result<(), RuntimeError> + Sync,
    {
        self.map_ranks_par(f).map(|_| ())
    }

    /// Drive every *mounted* rank through the shard-per-core reactor pool
    /// (§"Reactor execution model", DESIGN.md §14): rank count decouples
    /// from thread count — each reactor multiplexes many rank state
    /// machines, advancing each by completion-sized steps instead of
    /// parking one OS thread per rank.
    ///
    /// `tenant_of` maps a rank to its tenant id for QoS admission (ignored
    /// unless [`ReactorConfig::qos`] is set); `build` constructs the state
    /// machine driven against that rank's filesystem. Every filesystem is
    /// returned to its slot when the drive ends, whether its machine
    /// completed or failed — matching [`map_ranks_par`] semantics where
    /// ranks stay mounted on error.
    ///
    /// [`map_ranks_par`]: NvmeCrRuntime::map_ranks_par
    pub fn drive_reactor<R, B>(
        &mut self,
        reactor: &ReactorConfig,
        tenant_of: impl Fn(u32) -> u32,
        build: B,
    ) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        B: Fn(u32) -> Box<dyn RankMachine<MicroFs<NvmfBlockDevice>, Out = R>>,
    {
        let mut cfg = reactor.clone();
        if cfg.reactors == 0 {
            cfg.reactors = self.config.reactors as usize;
        }
        let pool = ReactorPool::new(&cfg, &self.config.telemetry);
        let mut tasks = Vec::new();
        for (rank, slot) in self.ranks.iter_mut().enumerate() {
            if let Some(fs) = slot.take() {
                let rank = rank as u32;
                tasks.push(RankTask {
                    rank,
                    tenant: tenant_of(rank),
                    fs,
                    machine: build(rank),
                });
            }
        }
        let outcome = pool.drive(tasks);
        let mut out = Vec::new();
        for r in outcome.results {
            // Reinstall unconditionally: a failed machine leaves its rank
            // mounted, exactly like an Err from a rayon-driven closure.
            self.ranks[r.rank as usize] = Some(r.fs);
            if let Some(v) = r.result {
                out.push(v);
            }
        }
        match outcome.error {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// [`map_ranks_par`](NvmeCrRuntime::map_ranks_par) on the reactor
    /// pool: each rank's closure runs as a one-shot state machine (a
    /// single `step` to completion), so existing whole-rank operations can
    /// ride the reactor data plane unchanged.
    pub fn map_ranks_reactor<R, F>(
        &mut self,
        reactor: &ReactorConfig,
        f: F,
    ) -> Result<Vec<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(u32, &mut MicroFs<NvmfBlockDevice>) -> Result<R, RuntimeError>
            + Send
            + Sync
            + 'static,
    {
        let f = std::sync::Arc::new(f);
        self.drive_reactor(
            reactor,
            |_| 0,
            move |_| {
                let f = std::sync::Arc::clone(&f);
                Box::new(FnMachine::new(
                    move |rank, fs: &mut MicroFs<NvmfBlockDevice>| f(rank, fs),
                ))
            },
        )
    }

    /// One rank's current storage route (supervisor-internal).
    pub(crate) fn route(&self, rank: u32) -> Option<&RankRoute> {
        self.routes.get(rank as usize)
    }

    /// The runtime's configuration (supervisor-internal).
    pub(crate) fn runtime_config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Whether `rank` currently has a mounted filesystem.
    pub fn is_mounted(&self, rank: u32) -> bool {
        self.ranks.get(rank as usize).is_some_and(Option::is_some)
    }

    /// Kill the SSD shard behind `rank`'s *primary* namespace: every
    /// subsequent IO on it fails with `ShardDead` until the rank fails
    /// over. Chaos/test aid — this is the persistent-failure injection
    /// the supervisor's quarantine path exists for. Ranks sharing the
    /// same grant namespace share the blast radius, as a real dead drive
    /// would.
    pub fn kill_primary_shard(&self, rank: u32) -> Result<(), RuntimeError> {
        let route = self
            .routes
            .get(rank as usize)
            .ok_or(RuntimeError::BadRank(rank))?;
        route
            .target
            .device()
            .shard(route.ns)
            .map_err(RuntimeError::Ssd)?
            .kill();
        Ok(())
    }

    /// Simulate a process crash: all volatile state of the rank's instance
    /// is dropped; the device keeps whatever was durable.
    pub fn crash_rank(&mut self, rank: u32) -> Result<(), RuntimeError> {
        let slot = self
            .ranks
            .get_mut(rank as usize)
            .ok_or(RuntimeError::BadRank(rank))?;
        if slot.take().is_none() {
            return Err(RuntimeError::BadRank(rank));
        }
        Ok(())
    }

    /// Recover a crashed rank: reconnect and `mount` (snapshot + replay).
    pub fn recover_rank(&mut self, rank: u32) -> Result<(), RuntimeError> {
        self.recover_ranks(&[rank])
    }

    /// Recover several crashed ranks at once, mounting (snapshot + log
    /// replay) in parallel. All listed ranks must currently be crashed;
    /// ranks that mounted before an error is hit stay mounted.
    pub fn recover_ranks(&mut self, ranks: &[u32]) -> Result<(), RuntimeError> {
        let mut seen = std::collections::HashSet::new();
        for &rank in ranks {
            let crashed = self
                .placement
                .per_rank
                .get(rank as usize)
                .is_some_and(|_| self.ranks[rank as usize].is_none());
            if !crashed || !seen.insert(rank) {
                return Err(RuntimeError::BadRank(rank));
            }
        }
        let jobs: Vec<_> = ranks
            .iter()
            .map(|&rank| (rank, self.routes[rank as usize].clone()))
            .collect();
        let config = &self.config;
        let recover_rank_ns = config.telemetry.histogram("driver.recover_rank_ns");
        let mounted: Vec<(u32, Result<MicroFs<NvmfBlockDevice>, RuntimeError>)> =
            par_ranks(jobs, |(rank, route)| {
                let _span = telemetry::span("driver", "recover_rank").arg("rank", u64::from(rank));
                let _rank = telemetry::context::with_rank(u64::from(rank));
                let _t = recover_rank_ns.time();
                // The typestate chain: reconnect, replay the log, verify
                // manifests + rebuild the mirror, and only then serve.
                let fs = crate::recovery::Crashed::new(
                    route,
                    format!("nqn.2026-07.io.nvmecr:rank{rank}-r"),
                    config.clone(),
                )
                .begin_replay()
                .and_then(crate::recovery::Replaying::replay_all)
                .map(crate::recovery::Verified::serve);
                (rank, fs)
            });
        let mut first_err = None;
        for (rank, fs) in mounted {
            match fs {
                Ok(fs) => self.ranks[rank as usize] = Some(fs),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Run the offline consistency checker against a crashed rank's
    /// partition (the rank must currently be crashed; fsck mounts nothing).
    pub fn fsck_rank(&mut self, rank: u32) -> Result<microfs::FsckReport, RuntimeError> {
        let route = self
            .routes
            .get(rank as usize)
            .cloned()
            .ok_or(RuntimeError::BadRank(rank))?;
        if self.ranks[rank as usize].is_some() {
            return Err(RuntimeError::BadRank(rank));
        }
        let initiator = Initiator::with_telemetry(
            format!("nqn.2026-07.io.nvmecr:fsck{rank}"),
            self.config.telemetry.clone(),
        );
        let fs_size = route.fs_size();
        let conn = initiator.connect(route.target, route.ns);
        let mut dev = NvmfBlockDevice::new(conn, route.base, fs_size);
        Ok(microfs::fsck(&mut dev))
    }

    /// Seal one checkpoint epoch per mounted rank (replication factor 2):
    /// resolve outstanding extent CRCs and write the manifest body plus
    /// commit record to both copies. Returns the committed epochs; empty
    /// when replication is off.
    pub fn commit_epochs(&mut self) -> Result<Vec<u64>, RuntimeError> {
        self.map_ranks_par(|_rank, fs| {
            let sealed = fs
                .device_mut()
                .commit_epoch()
                .map_err(RuntimeError::Replication)?;
            if sealed.is_some() {
                // Sealed epochs reset the filesystem's copy-on-write
                // tracker: the next first-touch of any extent counts as
                // a fresh copy-up.
                fs.cow_epoch_begin();
            }
            Ok(sealed)
        })
        .map(|v| v.into_iter().flatten().collect())
    }

    /// [`commit_epochs`](Self::commit_epochs) for a single rank.
    pub fn commit_epoch_rank(&mut self, rank: u32) -> Result<Option<u64>, RuntimeError> {
        let fs = self.rank_fs(rank)?;
        let sealed = fs
            .device_mut()
            .commit_epoch()
            .map_err(RuntimeError::Replication)?;
        if sealed.is_some() {
            fs.cow_epoch_begin();
        }
        Ok(sealed)
    }

    /// Scrub one rank's two copies: verify every committed extent against
    /// its manifest CRC on both the primary and the replica, read-repair
    /// latent corruption from whichever copy still matches. `Ok(None)`
    /// when the rank is unreplicated.
    pub fn scrub_rank(&mut self, rank: u32) -> Result<Option<ScrubReport>, RuntimeError> {
        let fs = self.rank_fs(rank)?;
        fs.device_mut().scrub().map_err(RuntimeError::Replication)
    }

    /// The storage node currently holding `rank`'s bytes.
    pub fn rank_storage_node(&self, rank: u32) -> Result<NodeId, RuntimeError> {
        self.routes
            .get(rank as usize)
            .map(|r| r.node)
            .ok_or(RuntimeError::BadRank(rank))
    }

    /// Re-place a rank whose storage shard died (§III-F "Handling Cascading
    /// Failures"): pick a surviving storage node that is domain-separated
    /// from both the rank and the failed node, and create a private
    /// replacement namespace there.
    ///
    /// With `replication_factor >= 2` this is a *recovery*, not a reset:
    /// the replacement is re-populated from the rank's live replica on
    /// the partner failure domain, every committed extent is byte-verified
    /// against its manifest CRC before the rank is declared healthy, and
    /// the rank remounts its filesystem exactly where it left off. Only if
    /// the replica was mid-epoch (or degraded) does the restore roll back
    /// to the replica's last *complete* epoch. The surviving replica stays
    /// attached as the rank's mirror.
    ///
    /// Unreplicated (factor 1) the replacement is formatted fresh — the
    /// data on the dead shard is gone; that is exactly the case
    /// multi-level checkpointing covers, and the caller is expected to
    /// roll back to the last PFS-level checkpoint and re-populate the new
    /// namespace.
    pub fn fail_over_rank(
        &mut self,
        rank: u32,
        rack: &StorageRack,
        topo: &Topology,
    ) -> Result<(), RuntimeError> {
        let route = self
            .routes
            .get(rank as usize)
            .cloned()
            .ok_or(RuntimeError::BadRank(rank))?;
        let _span = telemetry::span("driver", "fail_over_rank").arg("rank", u64::from(rank));
        let _rank = telemetry::context::with_rank(u64::from(rank));
        // Recovery begins: mark it in the flight recorder and trip a dump
        // so the events leading up to the failure are preserved before the
        // restore churn overwrites the rings.
        let flight = self.config.telemetry.recorder();
        flight.record(telemetry::FlightKind::Failover, 0, 0, u64::from(rank), 0);
        flight.trip(telemetry::FlightKind::Failover, u64::from(rank));
        let rank_node = self.rank_nodes[rank as usize];
        let domains = FailureDomains::derive(topo);
        let mut candidates = topo.storage_nodes();
        // Prefer not co-locating both copies: keep the replica's node out
        // of the candidate list unless nothing else qualifies.
        if let Some(rr) = &route.replica {
            if candidates.len() > 1 {
                let replica_node = rr.node;
                candidates.retain(|&n| n != replica_node);
            }
        }
        let idx =
            crate::balancer::failover_grant(&domains, rank, rank_node, route.node, &candidates)
                .or_else(|_| {
                    candidates = topo.storage_nodes();
                    crate::balancer::failover_grant(
                        &domains,
                        rank,
                        rank_node,
                        route.node,
                        &candidates,
                    )
                })?;
        let new_node = candidates[idx];
        // First SSD on the partner node with room for the rank's segment.
        let size = route.size.max(MIN_SEGMENT);
        let target = rack
            .targets_on(new_node)
            .into_iter()
            .map(|(_, t)| t)
            .find(|t| t.device().namespaces().free_bytes() >= size)
            .ok_or(RuntimeError::Balance(BalanceError::NoFailoverTarget {
                rank,
            }))?;
        let ns = target.device().create_namespace(size)?;
        let initiator = Initiator::with_config(
            format!("nqn.2026-07.io.nvmecr:rank{rank}-failover"),
            self.config.telemetry.clone(),
            self.config.chaos.clone(),
            self.config.fabric.clone(),
        );
        let mut conn = initiator.connect(Arc::clone(&target), ns);
        let fs = if let Some(rr) = &route.replica {
            let fs_size = size - REGION_BYTES;
            // Reuse the live mirror (replica connection + extent map) if
            // the rank was still mounted; a crashed rank reconnects to
            // the replica namespace and restores from its manifest.
            let live = self.ranks[rank as usize]
                .take()
                .and_then(|fs| fs.into_device().take_mirror())
                .map(Mirror::into_parts);
            let (mut rconn, state) = match live {
                Some((rconn, map, epoch, _degraded)) => (rconn, Some((map, epoch))),
                None => {
                    let ri = Initiator::with_config(
                        format!("nqn.2026-07.io.nvmecr:rank{rank}-restore"),
                        self.config.telemetry.clone(),
                        self.config.chaos.clone(),
                        self.config.fabric.clone(),
                    );
                    (ri.connect(Arc::clone(&rr.target), rr.ns), None)
                }
            };
            let layout = if self.config.delta_chain_max > 0 {
                ManifestLayout::chained()
            } else {
                ManifestLayout::standard()
            };
            let outcome = replication::restore_from_replica_with(
                &mut rconn,
                state,
                &mut conn,
                0,
                fs_size,
                layout,
                &self.config.telemetry,
                &self.config.chaos,
            )?;
            let mut dev = NvmfBlockDevice::new(conn, 0, fs_size);
            dev.set_chaos(self.config.chaos.clone());
            let mut mirror =
                Mirror::with_state(rconn, outcome.map, outcome.epoch, &self.config.telemetry);
            mirror.set_chaos(self.config.chaos.clone());
            if self.config.delta_chain_max > 0 {
                // Restart the lineage: the first post-failover commit is a
                // full manifest anchoring a fresh chain.
                mirror.enable_delta_chain(self.config.delta_chain_max);
            }
            dev.attach_mirror(mirror);
            // Mount, not format: the restored image is the rank's own
            // filesystem, byte-verified against the manifest. The mirror
            // state came from the restore itself, so only the microfs-level
            // typestate chain runs here (replay is purely in-memory).
            microfs::recovery::Crashed::new(dev, self.config.fs_config())
                .begin_replay()?
                .replay_all()?
                .serve()
        } else {
            let mut dev = NvmfBlockDevice::new(conn, 0, size);
            dev.set_chaos(self.config.chaos.clone());
            MicroFs::format(dev, self.config.fs_config())?
        };
        self.ranks[rank as usize] = Some(fs);
        self.extra_ns.push((Arc::clone(&target), ns));
        self.routes[rank as usize] = RankRoute {
            target,
            ns,
            base: 0,
            size,
            node: new_node,
            replica: route.replica,
        };
        self.config.telemetry.counter("driver.failovers").inc();
        Ok(())
    }

    /// Aggregate per-rank filesystem statistics (Table I accounting).
    pub fn aggregate_stats(&self) -> Vec<FsStats> {
        self.ranks.iter().flatten().map(|fs| fs.stats()).collect()
    }

    /// Total device-resident metadata bytes across ranks.
    pub fn metadata_device_bytes(&self) -> u64 {
        self.aggregate_stats()
            .iter()
            .map(FsStats::metadata_device_bytes)
            .sum()
    }

    /// Total DRAM metadata footprint across ranks.
    pub fn dram_footprint(&self) -> u64 {
        self.ranks
            .iter()
            .flatten()
            .map(MicroFs::dram_footprint)
            .sum()
    }

    /// The telemetry handle the job's components report to. Data-plane
    /// counters that used to be hand-plumbed (`bytes_copied`,
    /// `lock_wait_ns`) live in this registry as `fabric.bytes_copied`,
    /// `ssd.bytes_copied` and `ssd.lock_wait_ns`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.config.telemetry
    }

    /// Detach: tear down the ephemeral runtime (as a job kill would) but
    /// leave the namespaces and their checkpoint data on the devices.
    /// The returned [`JobHandle`] lets a restarted job [`attach`].
    ///
    /// [`attach`]: NvmeCrRuntime::attach
    pub fn detach(mut self) -> JobHandle {
        // Seal a final epoch per replicated rank so a restart can rebuild
        // every mirror from manifests alone. A failing commit (degraded
        // mirror, dead replica shard) must not block the detach — the
        // restart path rescans and falls back to the last complete epoch.
        let _ = self.commit_epochs();
        self.into_handle()
    }

    /// Simulate the whole job dying at an arbitrary instant (power loss,
    /// OOM kill, chaos crash point): every rank's volatile state is
    /// dropped with *no* final epoch commit, no snapshot, no goodbye.
    /// The devices keep exactly the bytes that were durable at the moment
    /// of death; the returned handle reattaches through the full recovery
    /// path. This is the re-execution primitive the crash-universe
    /// explorer kills jobs with.
    pub fn crash_job(self) -> JobHandle {
        self.into_handle()
    }

    fn into_handle(mut self) -> JobHandle {
        self.ranks.clear(); // drop every rank's volatile state
        JobHandle {
            grants: self
                .grants
                .iter()
                .map(|g| GrantState {
                    target: Arc::clone(&g.target),
                    ns: g.ns,
                    node: g.node,
                })
                .collect(),
            routes: self.routes.clone(),
            rank_nodes: self.rank_nodes.clone(),
            extra_ns: self.extra_ns.clone(),
            placement: self.placement.clone(),
            config: self.config.clone(),
        }
    }

    /// Attach a restarted job to surviving namespaces: every rank's
    /// partition is *mounted* (snapshot + log replay), not formatted, so
    /// checkpoints written before the failure are readable.
    pub fn attach(handle: JobHandle) -> Result<Self, RuntimeError> {
        // Every rank mounts (snapshot + log replay) independently — via its
        // *route*, so ranks failed over to a replacement namespace reattach
        // to the replacement, not the dead shard. Do it in parallel, same as
        // init-time formatting.
        let restart_rank_ns = handle.config.telemetry.histogram("driver.restart_rank_ns");
        let jobs: Vec<(usize, RankRoute)> = handle.routes.iter().cloned().enumerate().collect();
        let ranks = par_ranks(jobs, |(rank, route)| {
            let _span = telemetry::span("driver", "restart_rank").arg("rank", rank as u64);
            let _rank = telemetry::context::with_rank(rank as u64);
            let _t = restart_rank_ns.time();
            // Same typestate chain as recover_ranks: the restart must
            // not serve reads before replay + manifest verification.
            crate::recovery::Crashed::new(
                route,
                format!("nqn.2026-07.io.nvmecr:rank{rank}-restart"),
                handle.config.clone(),
            )
            .begin_replay()
            .and_then(crate::recovery::Replaying::replay_all)
            .map(|v| Some(v.serve()))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RuntimeError>>()?;
        Ok(NvmeCrRuntime {
            placement: handle.placement,
            grants: handle.grants,
            routes: handle.routes,
            rank_nodes: handle.rank_nodes,
            extra_ns: handle.extra_ns,
            config: handle.config,
            ranks,
        })
    }

    /// Finalize (the `MPI_Finalize` wrapper's work): snapshot every rank's
    /// state and delete the job's namespaces, returning final stats.
    pub fn finalize(mut self) -> Result<Vec<FsStats>, RuntimeError> {
        let mut stats = Vec::new();
        for slot in &mut self.ranks {
            if let Some(fs) = slot.as_mut() {
                fs.snapshot_now()?;
                stats.push(fs.stats());
            }
        }
        self.ranks.clear();
        for gs in &self.grants {
            gs.target.device().delete_namespace(gs.ns)?;
        }
        for (target, ns) in &self.extra_ns {
            target.device().delete_namespace(*ns)?;
        }
        for route in &self.routes {
            if let Some(rr) = &route.replica {
                rr.target.device().delete_namespace(rr.ns)?;
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{JobRequest, Scheduler};
    use microfs::OpenFlags;

    fn small_setup(procs: u32) -> (StorageRack, Topology, JobAllocation, RuntimeConfig) {
        // Private registry so exact-value counter assertions stay isolated
        // from other tests running concurrently in this process.
        let telemetry = Telemetry::new();
        let topo = Topology::paper_testbed();
        let ssd_config = SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        };
        let rack = StorageRack::build_with_telemetry(&topo, &ssd_config, telemetry.clone());
        let mut sched = Scheduler::new(topo.clone(), 4);
        let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
        let config = RuntimeConfig {
            namespace_bytes: 4 << 30,
            telemetry,
            ..RuntimeConfig::default()
        };
        (rack, topo, alloc, config)
    }

    #[test]
    fn rack_builds_one_target_per_ssd() {
        let topo = Topology::paper_testbed();
        let rack = StorageRack::build(
            &topo,
            &SsdConfig {
                capacity: 1 << 30,
                ..SsdConfig::default()
            },
        );
        assert_eq!(rack.ssd_count(), 8);
    }

    #[test]
    fn init_checkpoint_finalize_roundtrip() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        assert_eq!(rt.rank_count(), 56);
        // Every rank dumps an N-N checkpoint file.
        for rank in 0..rt.rank_count() {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.create(&format!("/ckpt_rank{rank}.dat"), 0o644).unwrap();
            fs.write(fd, &vec![rank as u8; 64 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        assert!(rt.metadata_device_bytes() > 0);
        assert!(rt.dram_footprint() > 0);
        let stats = rt.finalize().unwrap();
        assert_eq!(stats.len(), 56);
        assert!(stats.iter().all(|s| s.creates == 1));
    }

    #[test]
    fn namespaces_isolate_ranks_sharing_an_ssd() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        // Ranks 0 and 1 may share an SSD via different segments; write
        // distinct data and verify no bleed-through.
        for rank in [0u32, 1, 2, 3] {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.create("/same_name.dat", 0o644).unwrap();
            fs.write(fd, &vec![0xA0 + rank as u8; 32 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        for rank in [0u32, 1, 2, 3] {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.open("/same_name.dat", OpenFlags::RDONLY, 0).unwrap();
            let mut buf = vec![0u8; 32 << 10];
            fs.read(fd, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == 0xA0 + rank as u8),
                "rank {rank} sees foreign bytes"
            );
            fs.close(fd).unwrap();
        }
    }

    #[test]
    fn crash_and_recover_rank_preserves_checkpoint() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 239) as u8).collect();
        {
            let fs = rt.rank_fs(7).unwrap();
            let fd = fs.create("/survivor.dat", 0o644).unwrap();
            fs.write(fd, &data).unwrap();
            fs.close(fd).unwrap();
        }
        rt.crash_rank(7).unwrap();
        assert!(rt.rank_fs(7).is_err());
        rt.recover_rank(7).unwrap();
        let fs = rt.rank_fs(7).unwrap();
        assert!(fs.stats().replayed_records > 0);
        let fd = fs.open("/survivor.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.read(fd, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn fsck_over_nvmf_declares_crashed_partition_clean() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        {
            let fs = rt.rank_fs(9).unwrap();
            let fd = fs.create("/ck.dat", 0o644).unwrap();
            fs.write(fd, &[9u8; 100_000]).unwrap();
            fs.close(fd).unwrap();
        }
        rt.crash_rank(9).unwrap();
        let report = rt.fsck_rank(9).unwrap();
        assert!(report.is_clean(), "{:?}", report.issues);
        assert!(report.replayed > 0);
        // A mounted rank cannot be fsck'd (the device is in use).
        rt.recover_rank(9).unwrap();
        assert!(matches!(rt.fsck_rank(9), Err(RuntimeError::BadRank(9))));
    }

    #[test]
    fn double_crash_and_bad_rank_errors() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        rt.crash_rank(0).unwrap();
        assert!(matches!(rt.crash_rank(0), Err(RuntimeError::BadRank(0))));
        assert!(matches!(rt.rank_fs(999), Err(RuntimeError::BadRank(999))));
        rt.recover_rank(0).unwrap();
        assert!(matches!(rt.recover_rank(0), Err(RuntimeError::BadRank(0))));
    }

    #[test]
    fn job_restart_via_detach_attach() {
        // The full C/R lifecycle: job runs, checkpoints, dies; its restart
        // reattaches to the surviving namespaces and reads the state back.
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        for rank in 0..56u32 {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.create("/state.dat", 0o644).unwrap();
            fs.write(fd, &vec![rank as u8; 128 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        // Job killed (node failure / walltime): runtime evaporates.
        let handle = rt.detach();
        assert_eq!(handle.rank_count(), 56);
        // Restarted job attaches; every rank's instance mounts and replays.
        let mut rt2 = NvmeCrRuntime::attach(handle).unwrap();
        for rank in (0..56u32).step_by(11) {
            let fs = rt2.rank_fs(rank).unwrap();
            assert!(fs.stats().replayed_records > 0);
            let fd = fs.open("/state.dat", OpenFlags::RDONLY, 0).unwrap();
            let mut buf = vec![0u8; 128 << 10];
            let mut got = 0;
            while got < buf.len() {
                let n = fs.read(fd, &mut buf[got..]).unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
            assert!(buf.iter().all(|&b| b == rank as u8), "rank {rank}");
            fs.close(fd).unwrap();
        }
        // The restarted job keeps checkpointing, then finalizes cleanly.
        let fs = rt2.rank_fs(0).unwrap();
        let fd = fs.create("/state2.dat", 0o644).unwrap();
        fs.write(fd, &[1u8; 4096]).unwrap();
        fs.close(fd).unwrap();
        rt2.finalize().unwrap();
    }

    #[test]
    fn parallel_rank_driving_roundtrip() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        // Checkpoint every rank in parallel.
        rt.for_each_rank_par(|rank, fs| {
            let fd = fs.create("/par.dat", 0o644)?;
            fs.write(fd, &vec![rank as u8; 48 << 10])?;
            fs.fsync(fd)?;
            fs.close(fd)?;
            Ok(())
        })
        .unwrap();
        // Verify every rank in parallel, collecting byte counts.
        let verified = rt
            .map_ranks_par(|rank, fs| {
                let fd = fs.open("/par.dat", OpenFlags::RDONLY, 0)?;
                let mut buf = vec![0u8; 48 << 10];
                let mut got = 0;
                while got < buf.len() {
                    let n = fs.read(fd, &mut buf[got..])?;
                    if n == 0 {
                        break;
                    }
                    got += n;
                }
                fs.close(fd)?;
                assert!(buf.iter().all(|&b| b == rank as u8), "rank {rank}");
                Ok(got as u64)
            })
            .unwrap();
        assert_eq!(verified.len(), 56);
        assert!(verified.iter().all(|&n| n == 48 << 10));
        let snap = rt.telemetry().snapshot();
        assert!(
            snap.counter("fabric.bytes_copied") > 0,
            "slice-path fs IO stages copies that must be visible"
        );
        assert!(snap.counter("ssd.bytes_copied") > 0);
        // Per-rank phase latencies from init land in the registry too.
        assert_eq!(
            snap.histogram("driver.init_rank_ns").unwrap().count,
            u64::from(rt.rank_count())
        );
    }

    #[test]
    fn recover_ranks_in_parallel_after_multi_rank_crash() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        rt.for_each_rank_par(|rank, fs| {
            let fd = fs.create("/multi.dat", 0o644)?;
            fs.write(fd, &vec![!(rank as u8); 32 << 10])?;
            fs.close(fd)?;
            Ok(())
        })
        .unwrap();
        let crashed: Vec<u32> = (0..56).step_by(7).collect();
        for &r in &crashed {
            rt.crash_rank(r).unwrap();
        }
        rt.recover_ranks(&crashed).unwrap();
        for &r in &crashed {
            let fs = rt.rank_fs(r).unwrap();
            assert!(fs.stats().replayed_records > 0);
            let fd = fs.open("/multi.dat", OpenFlags::RDONLY, 0).unwrap();
            let mut buf = vec![0u8; 32 << 10];
            fs.read(fd, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == !(r as u8)), "rank {r}");
        }
        // Duplicate and not-crashed ranks are rejected up front.
        assert!(matches!(
            rt.recover_ranks(&[1, 1]),
            Err(RuntimeError::BadRank(1))
        ));
        assert!(matches!(
            rt.recover_ranks(&[0]),
            Err(RuntimeError::BadRank(0))
        ));
    }

    #[test]
    fn fail_over_rank_moves_storage_to_partner_domain() {
        let (rack, topo, alloc, config) = small_setup(56);
        let telemetry = config.telemetry.clone();
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        {
            let fs = rt.rank_fs(5).unwrap();
            let fd = fs.create("/pre.dat", 0o644).unwrap();
            fs.write(fd, &[5u8; 32 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        // The shard holding rank 5's namespace dies permanently.
        let old_node = rt.rank_storage_node(5).unwrap();
        let route = rt.routes[5].clone();
        route.target.device().shard(route.ns).unwrap().kill();
        rt.fail_over_rank(5, &rack, &topo).unwrap();
        // The replacement is a different node, still domain-separated from
        // the rank (the testbed has a single storage rack, so separation
        // from the failed node itself is not achievable here).
        let new_node = rt.rank_storage_node(5).unwrap();
        assert_ne!(new_node, old_node);
        let domains = FailureDomains::derive(&topo);
        assert!(domains.separated(alloc.rank_nodes[5], new_node));
        assert_eq!(telemetry.snapshot().counter("driver.failovers"), 1);
        // The replacement namespace takes a fresh, byte-identical checkpoint.
        let fs = rt.rank_fs(5).unwrap();
        let fd = fs.create("/post.dat", 0o644).unwrap();
        fs.write(fd, &[7u8; 64 << 10]).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/post.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; 64 << 10];
        let mut got = 0;
        while got < buf.len() {
            let n = fs.read(fd, &mut buf[got..]).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 64 << 10);
        assert!(buf.iter().all(|&b| b == 7));
        // Crash + recover goes through the *new* route.
        rt.crash_rank(5).unwrap();
        rt.recover_rank(5).unwrap();
        let fs = rt.rank_fs(5).unwrap();
        assert_eq!(fs.stat("/post.dat").unwrap().size, 64 << 10);
    }

    fn replicated_setup(procs: u32) -> (StorageRack, Topology, JobAllocation, RuntimeConfig) {
        let telemetry = Telemetry::new();
        let topo = Topology::paper_testbed();
        let ssd_config = SsdConfig {
            capacity: 8 << 30,
            ..SsdConfig::default()
        };
        let rack = StorageRack::build_with_telemetry(&topo, &ssd_config, telemetry.clone());
        let mut sched = Scheduler::new(topo.clone(), 4);
        let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
        let config = RuntimeConfig {
            // 8 ranks share the single grant namespace: 32 MiB segments,
            // so the full-image rescans in attach/recover stay cheap.
            namespace_bytes: 256 << 20,
            replication_factor: 2,
            telemetry,
            ..RuntimeConfig::default()
        };
        (rack, topo, alloc, config)
    }

    #[test]
    fn replicated_init_places_replicas_on_partner_domains() {
        let (rack, topo, alloc, config) = replicated_setup(8);
        let telemetry = config.telemetry.clone();
        let domains = FailureDomains::derive(&topo);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        for rank in 0..rt.rank_count() as usize {
            let route = &rt.routes[rank];
            let Some(rr) = route.replica.as_ref() else {
                panic!("rank {rank}: replicated init left no replica route");
            };
            assert_ne!(rr.node, route.node, "rank {rank}: copies co-located");
            assert!(
                domains.separated(alloc.rank_nodes[rank], rr.node),
                "rank {rank}: replica shares the rank's failure domain"
            );
        }
        // A checkpoint round commits one epoch per rank on both copies.
        rt.for_each_rank_par(|rank, fs| {
            let fd = fs.create("/e1.dat", 0o644)?;
            fs.write(fd, &vec![rank as u8; 64 << 10])?;
            fs.close(fd)?;
            Ok(())
        })
        .unwrap();
        let epochs = rt.commit_epochs().unwrap();
        assert_eq!(epochs, vec![1; 8]);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("replication.epochs_committed"), 8);
        assert!(snap.counter("replication.bytes") > 0);
        // A clean scrub across both copies of rank 0.
        let report = rt.scrub_rank(0).unwrap().unwrap();
        assert_eq!(report.unrecoverable, 0);
        assert_eq!(report.repaired, 0);
        assert!(report.extents_checked > 0);
        // Finalize releases grant, failover, and replica namespaces.
        rt.finalize().unwrap();
        for (_, target) in rack.targets.iter() {
            let d = target.device();
            assert_eq!(d.namespaces().free_bytes(), 8 << 30);
        }
    }

    #[test]
    fn replicated_fail_over_restores_data_from_surviving_replica() {
        let (rack, topo, alloc, config) = replicated_setup(8);
        let telemetry = config.telemetry.clone();
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        let committed: Vec<u8> = (0..96_000u32).map(|i| (i % 251) as u8).collect();
        {
            let fs = rt.rank_fs(3).unwrap();
            let fd = fs.create("/epoch1.dat", 0o644).unwrap();
            fs.write(fd, &committed).unwrap();
            fs.close(fd).unwrap();
        }
        rt.commit_epochs().unwrap();
        // Mid-epoch write after the commit — the live extent map restores
        // it too.
        let tail = vec![0x6Eu8; 20_000];
        {
            let fs = rt.rank_fs(3).unwrap();
            let fd = fs.create("/midepoch.dat", 0o644).unwrap();
            fs.write(fd, &tail).unwrap();
            fs.close(fd).unwrap();
        }
        // The primary shard dies permanently; the rank fails over and is
        // re-populated from the replica, byte-verified.
        let old_node = rt.rank_storage_node(3).unwrap();
        let route = rt.routes[3].clone();
        route.target.device().shard(route.ns).unwrap().kill();
        rt.fail_over_rank(3, &rack, &topo).unwrap();
        assert_ne!(rt.rank_storage_node(3).unwrap(), old_node);
        let read_all = |fs: &mut MicroFs<NvmfBlockDevice>, path: &str, len: usize| {
            let fd = fs.open(path, OpenFlags::RDONLY, 0).unwrap();
            let mut buf = vec![0u8; len];
            let mut got = 0;
            while got < len {
                let n = fs.read(fd, &mut buf[got..]).unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
            fs.close(fd).unwrap();
            assert_eq!(got, len, "{path}");
            buf
        };
        {
            let fs = rt.rank_fs(3).unwrap();
            assert_eq!(read_all(fs, "/epoch1.dat", committed.len()), committed);
            assert_eq!(read_all(fs, "/midepoch.dat", tail.len()), tail);
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("driver.failovers"), 1);
        assert_eq!(
            snap.counter("replication.degraded_restores"),
            0,
            "live-map restore must not be degraded"
        );
        // The rank keeps running replicated: new writes, a new epoch, a
        // clean scrub, then crash + recover over the *new* route. (The
        // other ranks shared the killed grant namespace, so only rank 3
        // is healthy enough to commit here.)
        {
            let fs = rt.rank_fs(3).unwrap();
            let fd = fs.create("/after.dat", 0o644).unwrap();
            fs.write(fd, &[0x5Cu8; 32 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        assert_eq!(rt.commit_epoch_rank(3).unwrap(), Some(2));
        let report = rt.scrub_rank(3).unwrap().unwrap();
        assert_eq!(report.unrecoverable, 0);
        rt.crash_rank(3).unwrap();
        rt.recover_rank(3).unwrap();
        let fs = rt.rank_fs(3).unwrap();
        assert_eq!(fs.stat("/after.dat").unwrap().size, 32 << 10);
        assert_eq!(fs.stat("/epoch1.dat").unwrap().size, committed.len() as u64);
    }

    #[test]
    fn replicated_crashed_rank_fails_over_to_last_complete_epoch() {
        // Shard death while the rank itself is down: no live extent map
        // survives, so the restore decodes the replica's manifest and
        // rolls back to the last *complete* epoch.
        let (rack, topo, alloc, config) = replicated_setup(8);
        let telemetry = config.telemetry.clone();
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        {
            let fs = rt.rank_fs(1).unwrap();
            let fd = fs.create("/sealed.dat", 0o644).unwrap();
            fs.write(fd, &[0xB7u8; 48 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        rt.commit_epochs().unwrap();
        rt.crash_rank(1).unwrap();
        let route = rt.routes[1].clone();
        route.target.device().shard(route.ns).unwrap().kill();
        rt.fail_over_rank(1, &rack, &topo).unwrap();
        let fs = rt.rank_fs(1).unwrap();
        assert_eq!(fs.stat("/sealed.dat").unwrap().size, 48 << 10);
        assert_eq!(
            telemetry
                .snapshot()
                .counter("replication.degraded_restores"),
            1
        );
    }

    #[test]
    fn replicated_job_survives_detach_attach() {
        let (rack, topo, alloc, config) = replicated_setup(8);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        rt.for_each_rank_par(|rank, fs| {
            let fd = fs.create("/restart.dat", 0o644)?;
            fs.write(fd, &vec![rank as u8 ^ 0x40; 40 << 10])?;
            fs.close(fd)?;
            Ok(())
        })
        .unwrap();
        // detach commits a final epoch per rank; attach rebuilds every
        // mirror (manifest epoch + full-image rescan) and stays scrubable.
        let handle = rt.detach();
        let mut rt2 = NvmeCrRuntime::attach(handle).unwrap();
        for rank in 0..8u32 {
            let fs = rt2.rank_fs(rank).unwrap();
            assert_eq!(fs.stat("/restart.dat").unwrap().size, 40 << 10);
        }
        let report = rt2.scrub_rank(5).unwrap().unwrap();
        assert_eq!(report.unrecoverable, 0);
        // Epochs continue from the manifest, not from zero.
        let epochs = rt2.commit_epochs().unwrap();
        assert!(epochs.iter().all(|&e| e == 2), "{epochs:?}");
        rt2.finalize().unwrap();
    }

    #[test]
    fn finalize_releases_namespaces_for_next_job() {
        let (rack, topo, alloc, config) = small_setup(112);
        let free_before: u64 = {
            let g = &alloc.storage[0];
            rack.target(g.node, g.ssd)
                .unwrap()
                .device()
                .namespaces()
                .free_bytes()
        };
        let rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config.clone()).unwrap();
        rt.finalize().unwrap();
        let free_after: u64 = {
            let g = &alloc.storage[0];
            rack.target(g.node, g.ssd)
                .unwrap()
                .device()
                .namespaces()
                .free_bytes()
        };
        assert_eq!(free_before, free_after);
    }

    #[test]
    fn nested_par_ranks_shares_one_pool() {
        // Satellite fix: recovery running inside a parallel drive must not
        // stack a second rayon wave on top of the first. The inner
        // par_ranks call below runs inline on the already-pooled worker,
        // so the innermost units in flight never exceed the pool width.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cap = rayon::current_num_threads();
        let active = AtomicUsize::new(0);
        let high = AtomicUsize::new(0);
        let outer: Vec<u32> = (0..16).collect();
        par_ranks(outer, |_| {
            let inner: Vec<u32> = (0..16).collect();
            par_ranks(inner, |_| {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                high.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                active.fetch_sub(1, Ordering::SeqCst);
            });
        });
        let high = high.load(Ordering::SeqCst);
        assert!(
            high <= cap,
            "nested par_ranks oversubscribed: {high} concurrent units > {cap} pool threads"
        );
    }

    #[test]
    fn reactor_drive_checkpoints_every_rank() {
        let (rack, topo, alloc, config) = small_setup(56);
        let telemetry = config.telemetry.clone();
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        let reactor = ReactorConfig {
            reactors: 4,
            ..ReactorConfig::default()
        };
        let written = rt
            .map_ranks_reactor(&reactor, |rank, fs| {
                let fd = fs.create(&format!("/reactor_rank{rank}.dat"), 0o644)?;
                fs.write(fd, &vec![rank as u8; 64 << 10])?;
                fs.close(fd)?;
                Ok(64u64 << 10)
            })
            .unwrap();
        assert_eq!(written.len(), 56);
        assert!(telemetry.counter("reactor.events").get() >= 56);
        assert!(telemetry.counter("reactor.loops").get() > 0);
        // Reactor-written state is ordinary microfs state: crash one rank
        // and recover it through the standard replay path.
        rt.crash_rank(3).unwrap();
        rt.recover_rank(3).unwrap();
        let fs = rt.rank_fs(3).unwrap();
        let fd = fs.open("/reactor_rank3.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; 64 << 10];
        fs.read(fd, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
    }

    #[test]
    fn reactor_drive_with_config_default_sizes_from_runtime_config() {
        let (rack, topo, alloc, mut config) = small_setup(28);
        config.reactors = 2;
        let telemetry = config.telemetry.clone();
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        let out = rt
            .map_ranks_reactor(&ReactorConfig::default(), |rank, _fs| Ok(rank))
            .unwrap();
        assert_eq!(out, (0..28).collect::<Vec<_>>());
        assert!(telemetry.counter("reactor.events").get() >= 28);
    }
}
