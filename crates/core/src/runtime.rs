//! Runtime orchestration: from a scheduler allocation to per-rank mounted
//! filesystems, and back through crash and recovery.
//!
//! `NvmeCrRuntime` is the ephemeral, job-lifetime runtime of §III-B: at
//! `MPI_Init` it partitions the granted SSDs (storage balancer), creates
//! the job's NVMe namespaces, connects each rank's NVMf initiator, and
//! formats one `MicroFs` per rank; at `MPI_Finalize` it snapshots and
//! tears down. `crash_rank`/`recover_rank` exercise the paper's recovery
//! story over real bytes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use cluster::{FailureDomains, JobAllocation, NodeId, NodeKind, Topology};
use fabric::{Initiator, NvmfTarget};
use microfs::{FsError, FsStats, MicroFs};
use ssd::{NsId, Ssd, SsdConfig, SsdError};

use crate::balancer::{BalanceError, Placement, StorageBalancer};
use crate::config::RuntimeConfig;
use crate::dataplane::NvmfBlockDevice;

/// Smallest per-rank segment we accept (microfs needs room for its log,
/// snapshot slots, and data region).
pub const MIN_SEGMENT: u64 = 16 << 20;

/// Runtime failures.
#[derive(Debug)]
pub enum RuntimeError {
    /// Balancer rejected the allocation.
    Balance(BalanceError),
    /// Device/namespace management failed.
    Ssd(SsdError),
    /// Filesystem failure.
    Fs(FsError),
    /// Referenced rank does not exist or is not mounted.
    BadRank(u32),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Balance(e) => write!(f, "balancer: {e}"),
            RuntimeError::Ssd(e) => write!(f, "ssd: {e}"),
            RuntimeError::Fs(e) => write!(f, "fs: {e}"),
            RuntimeError::BadRank(r) => write!(f, "bad rank {r}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<BalanceError> for RuntimeError {
    fn from(e: BalanceError) -> Self {
        RuntimeError::Balance(e)
    }
}
impl From<SsdError> for RuntimeError {
    fn from(e: SsdError) -> Self {
        RuntimeError::Ssd(e)
    }
}
impl From<FsError> for RuntimeError {
    fn from(e: FsError) -> Self {
        RuntimeError::Fs(e)
    }
}

/// The storage side of the cluster: one functional SSD + NVMf target per
/// `(storage node, ssd index)`.
pub struct StorageRack {
    targets: BTreeMap<(NodeId, u32), Arc<NvmfTarget>>,
}

impl StorageRack {
    /// Build devices and target daemons for every storage node in `topo`.
    pub fn build(topo: &Topology, ssd_config: &SsdConfig) -> Self {
        let mut targets = BTreeMap::new();
        for node in topo.storage_nodes() {
            if let NodeKind::Storage { ssds } = topo.kind_of(node) {
                for s in 0..ssds {
                    let ssd = Ssd::new(ssd_config.clone());
                    targets.insert((node, s), Arc::new(NvmfTarget::new(Arc::new(Mutex::new(ssd)))));
                }
            }
        }
        StorageRack { targets }
    }

    /// The target fronting one SSD.
    pub fn target(&self, node: NodeId, ssd: u32) -> Option<&Arc<NvmfTarget>> {
        self.targets.get(&(node, ssd))
    }

    /// Number of SSDs in the rack.
    pub fn ssd_count(&self) -> usize {
        self.targets.len()
    }

    /// Simulate a power failure on every device in a set of nodes,
    /// returning total bytes lost (zero with capacitors).
    pub fn power_fail_nodes(&self, nodes: &[NodeId]) -> u64 {
        let mut lost = 0;
        for ((node, _), target) in &self.targets {
            if nodes.contains(node) {
                lost += target.device().lock().power_failure().lost_bytes;
            }
        }
        lost
    }
}

struct GrantState {
    target: Arc<NvmfTarget>,
    ns: NsId,
}

/// A detached job's storage handle: everything needed to reattach to the
/// surviving namespaces after the application died (the restart half of
/// checkpoint/restart). The ephemeral runtime dies with the job; the
/// checkpoint data does not.
pub struct JobHandle {
    grants: Vec<(Arc<NvmfTarget>, NsId)>,
    placement: Placement,
    config: RuntimeConfig,
}

impl JobHandle {
    /// Ranks covered by this handle.
    pub fn rank_count(&self) -> u32 {
        self.placement.per_rank.len() as u32
    }
}

/// A live NVMe-CR job runtime.
pub struct NvmeCrRuntime {
    placement: Placement,
    grants: Vec<GrantState>,
    config: RuntimeConfig,
    ranks: Vec<Option<MicroFs<NvmfBlockDevice>>>,
}

impl NvmeCrRuntime {
    /// Initialize the runtime for `alloc` (the `MPI_Init` wrapper's work):
    /// place ranks, create namespaces, connect, format.
    pub fn init(
        rack: &StorageRack,
        topo: &Topology,
        alloc: &JobAllocation,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        let domains = FailureDomains::derive(topo);
        let balancer = StorageBalancer::new(topo, &domains);
        let placement = balancer.place(alloc, config.namespace_bytes, MIN_SEGMENT)?;
        // One namespace per grant, created from the device's free space
        // (the gres-granted slot).
        let mut grants = Vec::with_capacity(alloc.storage.len());
        for g in &alloc.storage {
            let target = rack
                .target(g.node, g.ssd)
                .expect("scheduler granted an existing SSD")
                .clone();
            let ns = target.device().lock().create_namespace(config.namespace_bytes)?;
            grants.push(GrantState { target, ns });
        }
        // Per-rank: connect an initiator and format the segment.
        let mut ranks = Vec::with_capacity(placement.per_rank.len());
        for p in &placement.per_rank {
            let gs = &grants[p.grant];
            let initiator = Initiator::new(format!("nqn.2026-07.io.nvmecr:rank{}", p.rank));
            let conn = initiator.connect(Arc::clone(&gs.target), gs.ns);
            let dev = NvmfBlockDevice::new(conn, p.segment_offset, p.segment_size);
            let fs = MicroFs::format(dev, config.fs_config())?;
            ranks.push(Some(fs));
        }
        Ok(NvmeCrRuntime { placement, grants, config, ranks })
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// The verified placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Mutable access to one rank's filesystem.
    pub fn rank_fs(&mut self, rank: u32) -> Result<&mut MicroFs<NvmfBlockDevice>, RuntimeError> {
        self.ranks
            .get_mut(rank as usize)
            .and_then(Option::as_mut)
            .ok_or(RuntimeError::BadRank(rank))
    }

    /// Simulate a process crash: all volatile state of the rank's instance
    /// is dropped; the device keeps whatever was durable.
    pub fn crash_rank(&mut self, rank: u32) -> Result<(), RuntimeError> {
        let slot = self
            .ranks
            .get_mut(rank as usize)
            .ok_or(RuntimeError::BadRank(rank))?;
        if slot.take().is_none() {
            return Err(RuntimeError::BadRank(rank));
        }
        Ok(())
    }

    /// Recover a crashed rank: reconnect and `mount` (snapshot + replay).
    pub fn recover_rank(&mut self, rank: u32) -> Result<(), RuntimeError> {
        let p = *self
            .placement
            .per_rank
            .get(rank as usize)
            .ok_or(RuntimeError::BadRank(rank))?;
        if self.ranks[rank as usize].is_some() {
            return Err(RuntimeError::BadRank(rank));
        }
        let gs = &self.grants[p.grant];
        let initiator = Initiator::new(format!("nqn.2026-07.io.nvmecr:rank{}-r", p.rank));
        let conn = initiator.connect(Arc::clone(&gs.target), gs.ns);
        let dev = NvmfBlockDevice::new(conn, p.segment_offset, p.segment_size);
        let fs = MicroFs::mount(dev, self.config.fs_config())?;
        self.ranks[rank as usize] = Some(fs);
        Ok(())
    }

    /// Run the offline consistency checker against a crashed rank's
    /// partition (the rank must currently be crashed; fsck mounts nothing).
    pub fn fsck_rank(&mut self, rank: u32) -> Result<microfs::FsckReport, RuntimeError> {
        let p = *self
            .placement
            .per_rank
            .get(rank as usize)
            .ok_or(RuntimeError::BadRank(rank))?;
        if self.ranks[rank as usize].is_some() {
            return Err(RuntimeError::BadRank(rank));
        }
        let gs = &self.grants[p.grant];
        let initiator = Initiator::new(format!("nqn.2026-07.io.nvmecr:fsck{}", p.rank));
        let conn = initiator.connect(Arc::clone(&gs.target), gs.ns);
        let mut dev = NvmfBlockDevice::new(conn, p.segment_offset, p.segment_size);
        Ok(microfs::fsck(&mut dev))
    }

    /// Aggregate per-rank filesystem statistics (Table I accounting).
    pub fn aggregate_stats(&self) -> Vec<FsStats> {
        self.ranks
            .iter()
            .flatten()
            .map(|fs| fs.stats())
            .collect()
    }

    /// Total device-resident metadata bytes across ranks.
    pub fn metadata_device_bytes(&self) -> u64 {
        self.aggregate_stats()
            .iter()
            .map(FsStats::metadata_device_bytes)
            .sum()
    }

    /// Total DRAM metadata footprint across ranks.
    pub fn dram_footprint(&self) -> u64 {
        self.ranks.iter().flatten().map(MicroFs::dram_footprint).sum()
    }

    /// Detach: tear down the ephemeral runtime (as a job kill would) but
    /// leave the namespaces and their checkpoint data on the devices.
    /// The returned [`JobHandle`] lets a restarted job [`attach`].
    ///
    /// [`attach`]: NvmeCrRuntime::attach
    pub fn detach(mut self) -> JobHandle {
        self.ranks.clear(); // drop every rank's volatile state
        JobHandle {
            grants: self
                .grants
                .iter()
                .map(|g| (Arc::clone(&g.target), g.ns))
                .collect(),
            placement: self.placement.clone(),
            config: self.config.clone(),
        }
    }

    /// Attach a restarted job to surviving namespaces: every rank's
    /// partition is *mounted* (snapshot + log replay), not formatted, so
    /// checkpoints written before the failure are readable.
    pub fn attach(handle: JobHandle) -> Result<Self, RuntimeError> {
        let grants: Vec<GrantState> = handle
            .grants
            .into_iter()
            .map(|(target, ns)| GrantState { target, ns })
            .collect();
        let mut ranks = Vec::with_capacity(handle.placement.per_rank.len());
        for p in &handle.placement.per_rank {
            let gs = &grants[p.grant];
            let initiator = Initiator::new(format!("nqn.2026-07.io.nvmecr:rank{}-restart", p.rank));
            let conn = initiator.connect(Arc::clone(&gs.target), gs.ns);
            let dev = NvmfBlockDevice::new(conn, p.segment_offset, p.segment_size);
            let fs = MicroFs::mount(dev, handle.config.fs_config())?;
            ranks.push(Some(fs));
        }
        Ok(NvmeCrRuntime {
            placement: handle.placement,
            grants,
            config: handle.config,
            ranks,
        })
    }

    /// Finalize (the `MPI_Finalize` wrapper's work): snapshot every rank's
    /// state and delete the job's namespaces, returning final stats.
    pub fn finalize(mut self) -> Result<Vec<FsStats>, RuntimeError> {
        let mut stats = Vec::new();
        for slot in &mut self.ranks {
            if let Some(fs) = slot.as_mut() {
                fs.snapshot_now()?;
                stats.push(fs.stats());
            }
        }
        self.ranks.clear();
        for gs in &self.grants {
            gs.target.device().lock().delete_namespace(gs.ns)?;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{JobRequest, Scheduler};
    use microfs::OpenFlags;

    fn small_setup(procs: u32) -> (StorageRack, Topology, JobAllocation, RuntimeConfig) {
        let topo = Topology::paper_testbed();
        let ssd_config = SsdConfig { capacity: 8 << 30, ..SsdConfig::default() };
        let rack = StorageRack::build(&topo, &ssd_config);
        let mut sched = Scheduler::new(topo.clone(), 4);
        let alloc = sched.submit(&JobRequest::full_subscription(procs)).unwrap();
        let config = RuntimeConfig { namespace_bytes: 4 << 30, ..RuntimeConfig::default() };
        (rack, topo, alloc, config)
    }

    #[test]
    fn rack_builds_one_target_per_ssd() {
        let topo = Topology::paper_testbed();
        let rack = StorageRack::build(&topo, &SsdConfig { capacity: 1 << 30, ..SsdConfig::default() });
        assert_eq!(rack.ssd_count(), 8);
    }

    #[test]
    fn init_checkpoint_finalize_roundtrip() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        assert_eq!(rt.rank_count(), 56);
        // Every rank dumps an N-N checkpoint file.
        for rank in 0..rt.rank_count() {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.create(&format!("/ckpt_rank{rank}.dat"), 0o644).unwrap();
            fs.write(fd, &vec![rank as u8; 64 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        assert!(rt.metadata_device_bytes() > 0);
        assert!(rt.dram_footprint() > 0);
        let stats = rt.finalize().unwrap();
        assert_eq!(stats.len(), 56);
        assert!(stats.iter().all(|s| s.creates == 1));
    }

    #[test]
    fn namespaces_isolate_ranks_sharing_an_ssd() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        // Ranks 0 and 1 may share an SSD via different segments; write
        // distinct data and verify no bleed-through.
        for rank in [0u32, 1, 2, 3] {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.create("/same_name.dat", 0o644).unwrap();
            fs.write(fd, &vec![0xA0 + rank as u8; 32 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        for rank in [0u32, 1, 2, 3] {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.open("/same_name.dat", OpenFlags::RDONLY, 0).unwrap();
            let mut buf = vec![0u8; 32 << 10];
            fs.read(fd, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0xA0 + rank as u8), "rank {rank} sees foreign bytes");
            fs.close(fd).unwrap();
        }
    }

    #[test]
    fn crash_and_recover_rank_preserves_checkpoint() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 239) as u8).collect();
        {
            let fs = rt.rank_fs(7).unwrap();
            let fd = fs.create("/survivor.dat", 0o644).unwrap();
            fs.write(fd, &data).unwrap();
            fs.close(fd).unwrap();
        }
        rt.crash_rank(7).unwrap();
        assert!(rt.rank_fs(7).is_err());
        rt.recover_rank(7).unwrap();
        let fs = rt.rank_fs(7).unwrap();
        assert!(fs.stats().replayed_records > 0);
        let fd = fs.open("/survivor.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.read(fd, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn fsck_over_nvmf_declares_crashed_partition_clean() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        {
            let fs = rt.rank_fs(9).unwrap();
            let fd = fs.create("/ck.dat", 0o644).unwrap();
            fs.write(fd, &[9u8; 100_000]).unwrap();
            fs.close(fd).unwrap();
        }
        rt.crash_rank(9).unwrap();
        let report = rt.fsck_rank(9).unwrap();
        assert!(report.is_clean(), "{:?}", report.issues);
        assert!(report.replayed > 0);
        // A mounted rank cannot be fsck'd (the device is in use).
        rt.recover_rank(9).unwrap();
        assert!(matches!(rt.fsck_rank(9), Err(RuntimeError::BadRank(9))));
    }

    #[test]
    fn double_crash_and_bad_rank_errors() {
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        rt.crash_rank(0).unwrap();
        assert!(matches!(rt.crash_rank(0), Err(RuntimeError::BadRank(0))));
        assert!(matches!(rt.rank_fs(999), Err(RuntimeError::BadRank(999))));
        rt.recover_rank(0).unwrap();
        assert!(matches!(rt.recover_rank(0), Err(RuntimeError::BadRank(0))));
    }

    #[test]
    fn job_restart_via_detach_attach() {
        // The full C/R lifecycle: job runs, checkpoints, dies; its restart
        // reattaches to the surviving namespaces and reads the state back.
        let (rack, topo, alloc, config) = small_setup(56);
        let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).unwrap();
        for rank in 0..56u32 {
            let fs = rt.rank_fs(rank).unwrap();
            let fd = fs.create("/state.dat", 0o644).unwrap();
            fs.write(fd, &vec![rank as u8; 128 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        // Job killed (node failure / walltime): runtime evaporates.
        let handle = rt.detach();
        assert_eq!(handle.rank_count(), 56);
        // Restarted job attaches; every rank's instance mounts and replays.
        let mut rt2 = NvmeCrRuntime::attach(handle).unwrap();
        for rank in (0..56u32).step_by(11) {
            let fs = rt2.rank_fs(rank).unwrap();
            assert!(fs.stats().replayed_records > 0);
            let fd = fs.open("/state.dat", OpenFlags::RDONLY, 0).unwrap();
            let mut buf = vec![0u8; 128 << 10];
            let mut got = 0;
            while got < buf.len() {
                let n = fs.read(fd, &mut buf[got..]).unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
            assert!(buf.iter().all(|&b| b == rank as u8), "rank {rank}");
            fs.close(fd).unwrap();
        }
        // The restarted job keeps checkpointing, then finalizes cleanly.
        let fs = rt2.rank_fs(0).unwrap();
        let fd = fs.create("/state2.dat", 0o644).unwrap();
        fs.write(fd, &[1u8; 4096]).unwrap();
        fs.close(fd).unwrap();
        rt2.finalize().unwrap();
    }

    #[test]
    fn finalize_releases_namespaces_for_next_job() {
        let (rack, topo, alloc, config) = small_setup(112);
        let free_before: u64 = {
            let g = &alloc.storage[0];
            rack.target(g.node, g.ssd).unwrap().device().lock().namespaces().free_bytes()
        };
        let rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config.clone()).unwrap();
        rt.finalize().unwrap();
        let free_after: u64 = {
            let g = &alloc.storage[0];
            rack.target(g.node, g.ssd).unwrap().device().lock().namespaces().free_bytes()
        };
        assert_eq!(free_before, free_after);
    }
}
