//! Experiment drivers.
//!
//! Two kinds of driving:
//!
//! * **Model-level** ([`scaling_sweep`], [`multilevel_eval`]): sweep
//!   [`StorageModel`]s over scenarios for the Figure 9 and Table II
//!   harnesses, in simulated time.
//! * **Functional** ([`run_functional_checkpoints`]): build the paper's
//!   testbed (scheduler → balancer → NVMf → SSDs), run a CoMD-like
//!   N-N checkpoint sequence with *real bytes*, crash ranks, recover, and
//!   verify payloads byte-for-byte. Used by integration tests, examples,
//!   and the metadata-overhead (Table I) harness.

use baselines::model::StorageModel;
use baselines::scenario::Scenario;
use baselines::LustreModel;
use cluster::{JobRequest, Scheduler, Topology};
use nvmecr::multilevel::{CheckpointLevel, MultiLevelPolicy};
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::{metrics, RuntimeConfig};
use simkit::SimTime;
use ssd::SsdConfig;
use telemetry::Telemetry;

use crate::comd::CoMD;

/// One point of a scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Process count.
    pub procs: u32,
    /// Checkpoint efficiency (Figure 9a/9c).
    pub ckpt_efficiency: f64,
    /// Recovery efficiency (Figure 9b/9d).
    pub rec_efficiency: f64,
    /// One checkpoint's makespan.
    pub ckpt_time: SimTime,
    /// One recovery's makespan.
    pub rec_time: SimTime,
}

/// Sweep a model over scenarios (one per process count).
pub fn scaling_sweep(model: &dyn StorageModel, scenarios: &[Scenario]) -> Vec<ScalingPoint> {
    scenarios
        .iter()
        .map(|s| ScalingPoint {
            procs: s.procs,
            ckpt_efficiency: model.checkpoint_efficiency(s),
            rec_efficiency: model.recovery_efficiency(s),
            ckpt_time: model.checkpoint_makespan(s),
            rec_time: model.recovery_makespan(s),
        })
        .collect()
}

/// Table II row: multi-level checkpointing outcome for one tier-1 system.
#[derive(Debug, Clone)]
pub struct MultiLevelResult {
    /// Tier-1 system name.
    pub system: &'static str,
    /// Total checkpoint time across the run's checkpoints.
    pub checkpoint_time: SimTime,
    /// Recovery time after a (non-cascading) failure.
    pub recovery_time: SimTime,
    /// Application progress rate (compute / total).
    pub progress_rate: f64,
}

/// Run the §IV-I evaluation: `n_ckpts` checkpoints with every
/// `policy.period()`-th going to Lustre, then one recovery from tier 1.
pub fn multilevel_eval(
    tier1: &dyn StorageModel,
    s: &Scenario,
    policy: MultiLevelPolicy,
    n_ckpts: u32,
    compute_interval: SimTime,
) -> MultiLevelResult {
    let lustre = LustreModel::new();
    let t_fast = tier1.checkpoint_makespan(s);
    let t_slow = lustre.checkpoint_makespan(s);
    let mut checkpoint_time = SimTime::ZERO;
    for i in 1..=n_ckpts {
        checkpoint_time += match policy.level_for(i) {
            CheckpointLevel::Fast => t_fast,
            CheckpointLevel::Parallel => t_slow,
        };
    }
    let recovery_time = tier1.recovery_makespan(s);
    let compute = compute_interval * f64::from(n_ckpts);
    let total = compute + checkpoint_time;
    MultiLevelResult {
        system: tier1.name(),
        checkpoint_time,
        recovery_time,
        progress_rate: metrics::progress_rate(compute, total),
    }
}

/// Outcome of a functional (real-bytes) run.
#[derive(Debug, Clone)]
pub struct FunctionalReport {
    /// Ranks driven.
    pub procs: u32,
    /// Checkpoints completed per rank.
    pub ckpts: u32,
    /// Total checkpoint bytes written and verified.
    pub bytes_verified: u64,
    /// Ranks crashed and recovered successfully.
    pub recovered_ranks: u32,
    /// Log records replayed across recovered ranks.
    pub replayed_records: u64,
    /// Device-resident metadata bytes across all ranks.
    pub metadata_bytes: u64,
    /// DRAM metadata footprint across all ranks.
    pub dram_bytes: u64,
    /// Every metric the run's components reported (the run gets its own
    /// registry, so this covers exactly this run's traffic): `fabric.*`,
    /// `ssd.*`, `microfs.*`, and `driver.*` counters, gauges, and latency
    /// histograms.
    pub telemetry: telemetry::MetricsSnapshot,
}

impl FunctionalReport {
    /// Payload bytes memcpy'd anywhere on the data path (initiator
    /// staging + device drain-to-media) over the whole run.
    pub fn bytes_copied(&self) -> u64 {
        self.telemetry.counter("fabric.bytes_copied") + self.telemetry.counter("ssd.bytes_copied")
    }

    /// Nanoseconds ranks spent blocked on namespace-shard locks —
    /// the direct observable for cross-rank device contention.
    pub fn lock_wait_ns(&self) -> u64 {
        self.telemetry.counter("ssd.lock_wait_ns")
    }
}

/// How the per-rank phases of a functional run are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// One rank at a time, in rank order.
    Serial,
    /// All ranks concurrently on a rayon pool (each rank owns its
    /// filesystem, connection, and namespace shard, so this shares no
    /// data-plane lock across ranks).
    Parallel,
}

/// Write rank `rank`'s checkpoint `ckpt` into its filesystem. Payload
/// generation happens here so parallel driving parallelises it too.
fn checkpoint_rank(
    comd: &CoMD,
    fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>,
    rank: u32,
    ckpt: u32,
    bytes_per_rank: u64,
) -> Result<(), nvmecr::runtime::RuntimeError> {
    let write_size = 1usize << 20;
    if ckpt == 0 {
        // Per-rank private namespaces: same paths, no coordination.
        fs.mkdir("/comd", 0o755).ok();
    }
    fs.mkdir(&format!("/comd/ckpt_{ckpt:03}"), 0o755)?;
    let payload = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
    let path = CoMD::checkpoint_path(rank, ckpt);
    let fd = fs.create(&path, 0o644)?;
    for chunk in payload.chunks(write_size) {
        fs.write(fd, chunk)?;
    }
    fs.fsync(fd)?;
    fs.close(fd)?;
    Ok(())
}

/// Read back rank `rank`'s checkpoint `ckpt` and compare byte-for-byte.
/// Returns the verified byte count, or `Ok(None)` on a mismatch (the
/// caller turns that into an error — [`nvmecr::runtime::RuntimeError`]
/// has no corruption variant and shouldn't grow one for a workload).
fn verify_rank(
    comd: &CoMD,
    fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>,
    rank: u32,
    ckpt: u32,
    bytes_per_rank: u64,
) -> Result<Option<u64>, nvmecr::runtime::RuntimeError> {
    let expect = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
    let path = CoMD::checkpoint_path(rank, ckpt);
    let fd = fs.open(&path, microfs::OpenFlags::RDONLY, 0)?;
    let mut buf = vec![0u8; expect.len()];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd)?;
    Ok((buf == expect).then_some(expect.len() as u64))
}

/// Drive the full functional stack: schedule a job on the paper testbed,
/// run `ckpts` N-N checkpoint rounds of `bytes_per_rank` each (CoMD-style
/// payloads), crash `crash_ranks`, recover them, and verify every byte of
/// the newest checkpoint. Drives ranks in parallel; use
/// [`run_functional_checkpoints_with`] to pick the mode explicitly.
pub fn run_functional_checkpoints(
    procs: u32,
    ckpts: u32,
    bytes_per_rank: u64,
    crash_ranks: &[u32],
) -> Result<FunctionalReport, Box<dyn std::error::Error>> {
    run_functional_checkpoints_with(
        DriveMode::Parallel,
        procs,
        ckpts,
        bytes_per_rank,
        crash_ranks,
    )
}

/// Data-plane tunables for a functional run. Defaults match
/// [`RuntimeConfig::default`]; the pipeline bench sweeps `queue_depth`
/// with 4 KiB `block_size` so each checkpoint issues enough commands for
/// the submission window to matter.
#[derive(Debug, Clone)]
pub struct FunctionalTuning {
    /// Filesystem hugeblock size (and thus per-command payload size).
    pub block_size: u64,
    /// NVMf submission-window depth each rank's initiator keeps in flight.
    pub queue_depth: usize,
    /// Synchronous copies of every rank's checkpoint data (1 = off). At 2
    /// each checkpoint round also seals a replication epoch, so the run
    /// measures the full mirrored-commit cost, not just the data writes.
    pub replication_factor: u32,
}

impl Default for FunctionalTuning {
    fn default() -> Self {
        let defaults = RuntimeConfig::default();
        FunctionalTuning {
            block_size: defaults.block_size,
            queue_depth: defaults.fabric.queue_depth,
            replication_factor: defaults.replication_factor,
        }
    }
}

/// [`run_functional_checkpoints`] with an explicit [`DriveMode`] — the
/// serial mode exists so benches can measure the parallel speedup against
/// an identical-work baseline.
pub fn run_functional_checkpoints_with(
    mode: DriveMode,
    procs: u32,
    ckpts: u32,
    bytes_per_rank: u64,
    crash_ranks: &[u32],
) -> Result<FunctionalReport, Box<dyn std::error::Error>> {
    run_functional_checkpoints_tuned(
        mode,
        procs,
        ckpts,
        bytes_per_rank,
        crash_ranks,
        FunctionalTuning::default(),
    )
}

/// [`run_functional_checkpoints_with`] plus explicit data-plane tuning —
/// the QD-sweep bench drives the same real-bytes stack at each window
/// depth and reads `fabric.submit_ns` out of the report's telemetry.
pub fn run_functional_checkpoints_tuned(
    mode: DriveMode,
    procs: u32,
    ckpts: u32,
    bytes_per_rank: u64,
    crash_ranks: &[u32],
    tuning: FunctionalTuning,
) -> Result<FunctionalReport, Box<dyn std::error::Error>> {
    let topo = Topology::paper_testbed();
    // Each run reports into its own registry so the report's snapshot
    // covers exactly this run (runs may share a process, e.g. in tests).
    let telemetry = Telemetry::new();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 16 << 30,
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(procs))?;
    let mut config = RuntimeConfig {
        namespace_bytes: 8 << 30,
        telemetry: telemetry.clone(),
        block_size: tuning.block_size,
        replication_factor: tuning.replication_factor,
        ..RuntimeConfig::default()
    };
    config.fabric.queue_depth = tuning.queue_depth;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let comd = CoMD::weak_scaling();
    let ckpt_rank_ns = telemetry.histogram("driver.checkpoint_rank_ns");
    let verify_rank_ns = telemetry.histogram("driver.verify_rank_ns");

    // Checkpoint phases. Each rank owns its filesystem, NVMf connection,
    // and (via the balancer) a disjoint region of a namespace shard, so
    // ranks can be driven concurrently without sharing a data-plane lock.
    for ckpt in 0..ckpts {
        let do_ckpt = |rank: u32,
                       fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>|
         -> Result<(), nvmecr::runtime::RuntimeError> {
            let _span = telemetry::span("driver", "checkpoint_rank")
                .arg("rank", u64::from(rank))
                .arg("ckpt", u64::from(ckpt));
            let _t = ckpt_rank_ns.time();
            checkpoint_rank(&comd, fs, rank, ckpt, bytes_per_rank)
        };
        match mode {
            DriveMode::Parallel => rt.for_each_rank_par(do_ckpt)?,
            DriveMode::Serial => {
                for rank in 0..procs {
                    let fs = rt.rank_fs(rank)?;
                    do_ckpt(rank, fs)?;
                }
            }
        }
        // Replicated runs seal one epoch per checkpoint round: manifests
        // land on both copies, so a failover restores this round exactly.
        if tuning.replication_factor >= 2 {
            rt.commit_epochs()?;
        }
    }

    // Crash, then recover — batched in parallel mode (recovery mounts
    // replay WALs independently per rank), one at a time in serial mode.
    for &rank in crash_ranks {
        rt.crash_rank(rank)?;
    }
    match mode {
        DriveMode::Parallel => rt.recover_ranks(crash_ranks)?,
        DriveMode::Serial => {
            for &rank in crash_ranks {
                rt.recover_rank(rank)?;
            }
        }
    }
    let mut replayed = 0;
    for &rank in crash_ranks {
        replayed += rt.rank_fs(rank)?.stats().replayed_records;
    }

    // Verify the newest checkpoint everywhere (and recovered ranks fully).
    let last = ckpts - 1;
    let do_verify = |rank: u32,
                     fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>|
     -> Result<Option<u64>, nvmecr::runtime::RuntimeError> {
        let _span = telemetry::span("driver", "verify_rank").arg("rank", u64::from(rank));
        let _t = verify_rank_ns.time();
        verify_rank(&comd, fs, rank, last, bytes_per_rank)
    };
    let verified: Vec<Option<u64>> = match mode {
        DriveMode::Parallel => rt.map_ranks_par(do_verify)?,
        DriveMode::Serial => {
            let mut out = Vec::with_capacity(procs as usize);
            for rank in 0..procs {
                let fs = rt.rank_fs(rank)?;
                out.push(do_verify(rank, fs)?);
            }
            out
        }
    };
    let mut bytes_verified = 0u64;
    for (rank, v) in verified.iter().enumerate() {
        match v {
            Some(n) => bytes_verified += n,
            None => return Err(format!("rank {rank} checkpoint {last} corrupted").into()),
        }
    }

    let metadata_bytes = rt.metadata_device_bytes();
    let dram_bytes = rt.dram_footprint();
    rt.finalize()?;
    Ok(FunctionalReport {
        procs,
        ckpts,
        bytes_verified,
        recovered_ranks: crash_ranks.len() as u32,
        replayed_records: replayed,
        metadata_bytes,
        dram_bytes,
        telemetry: telemetry.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvmecr_model::NvmeCrModel;

    #[test]
    fn sweep_produces_one_point_per_scenario() {
        let scenarios: Vec<Scenario> = [56u32, 112]
            .iter()
            .map(|&p| Scenario::weak_scaling(p))
            .collect();
        let pts = scaling_sweep(&NvmeCrModel::full(), &scenarios);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.ckpt_efficiency > 0.5));
    }

    #[test]
    fn multilevel_ordering_matches_table2() {
        use baselines::{GlusterFsModel, OrangeFsModel};
        // Table II's setting: strong scaling at 448 processes.
        let s = Scenario::strong_scaling(448);
        let policy = MultiLevelPolicy::new(10);
        let compute = CoMD::strong_scaling(448).compute_interval();
        let ours = multilevel_eval(&NvmeCrModel::full(), &s, policy, 10, compute);
        let gluster = multilevel_eval(&GlusterFsModel::new(), &s, policy, 10, compute);
        let orange = multilevel_eval(&OrangeFsModel::new(), &s, policy, 10, compute);
        // Table II ordering: NVMe-CR < GlusterFS < OrangeFS on time,
        // reversed on progress rate.
        assert!(ours.checkpoint_time < gluster.checkpoint_time);
        assert!(gluster.checkpoint_time < orange.checkpoint_time);
        assert!(ours.progress_rate > gluster.progress_rate);
        assert!(gluster.progress_rate > orange.progress_rate);
        // Paper ballpark: NVMe-CR progress rate ~0.42.
        assert!(
            (0.30..0.65).contains(&ours.progress_rate),
            "progress rate {}",
            ours.progress_rate
        );
    }

    #[test]
    fn functional_small_run_verifies_bytes() {
        let report = run_functional_checkpoints(56, 2, 256 << 10, &[3, 17]).unwrap();
        assert_eq!(report.procs, 56);
        assert_eq!(report.bytes_verified, 56 * (256 << 10));
        assert_eq!(report.recovered_ranks, 2);
        assert!(report.replayed_records > 0);
        assert!(report.metadata_bytes > 0);
        assert!(report.dram_bytes > 0);
        assert!(report.bytes_copied() > 0);
        // The snapshot spans every instrumented layer of this run.
        let layers = report.telemetry.layers();
        for layer in ["driver", "fabric", "microfs", "ssd"] {
            assert!(layers.iter().any(|l| l == layer), "missing layer {layer}");
        }
        // 56 ranks x 2 checkpoints, timed once each.
        let h = report
            .telemetry
            .histogram("driver.checkpoint_rank_ns")
            .unwrap();
        assert_eq!(h.count, 56 * 2);
        assert!(h.percentile(99.0) >= h.percentile(50.0));
        assert_eq!(
            report
                .telemetry
                .histogram("driver.recover_rank_ns")
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn serial_and_parallel_modes_agree() {
        let par =
            run_functional_checkpoints_with(DriveMode::Parallel, 8, 1, 64 << 10, &[2]).unwrap();
        let ser = run_functional_checkpoints_with(DriveMode::Serial, 8, 1, 64 << 10, &[2]).unwrap();
        assert_eq!(par.bytes_verified, ser.bytes_verified);
        assert_eq!(par.replayed_records, ser.replayed_records);
        assert_eq!(par.metadata_bytes, ser.metadata_bytes);
        assert_eq!(par.bytes_copied(), ser.bytes_copied());
    }
}
