//! Experiment drivers.
//!
//! Two kinds of driving:
//!
//! * **Model-level** ([`scaling_sweep`], [`multilevel_eval`]): sweep
//!   [`StorageModel`]s over scenarios for the Figure 9 and Table II
//!   harnesses, in simulated time.
//! * **Functional** ([`run_functional_checkpoints`]): build the paper's
//!   testbed (scheduler → balancer → NVMf → SSDs), run a CoMD-like
//!   N-N checkpoint sequence with *real bytes*, crash ranks, recover, and
//!   verify payloads byte-for-byte. Used by integration tests, examples,
//!   and the metadata-overhead (Table I) harness.

use std::sync::Mutex;

use baselines::model::StorageModel;
use baselines::scenario::Scenario;
use baselines::LustreModel;
use chaos::{ChaosHandle, FaultAction, FaultPlan, FaultSite};
use cluster::{JobRequest, Scheduler, Topology};
use nvmecr::multilevel::{CheckpointLevel, MultiLevelPolicy};
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::{metrics, RuntimeConfig};
use simkit::SimTime;
use ssd::SsdConfig;
use telemetry::Telemetry;

use crate::comd::CoMD;
use crate::incremental::IncrementalCheckpointer;

/// One point of a scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Process count.
    pub procs: u32,
    /// Checkpoint efficiency (Figure 9a/9c).
    pub ckpt_efficiency: f64,
    /// Recovery efficiency (Figure 9b/9d).
    pub rec_efficiency: f64,
    /// One checkpoint's makespan.
    pub ckpt_time: SimTime,
    /// One recovery's makespan.
    pub rec_time: SimTime,
}

/// Sweep a model over scenarios (one per process count).
pub fn scaling_sweep(model: &dyn StorageModel, scenarios: &[Scenario]) -> Vec<ScalingPoint> {
    scenarios
        .iter()
        .map(|s| ScalingPoint {
            procs: s.procs,
            ckpt_efficiency: model.checkpoint_efficiency(s),
            rec_efficiency: model.recovery_efficiency(s),
            ckpt_time: model.checkpoint_makespan(s),
            rec_time: model.recovery_makespan(s),
        })
        .collect()
}

/// Table II row: multi-level checkpointing outcome for one tier-1 system.
#[derive(Debug, Clone)]
pub struct MultiLevelResult {
    /// Tier-1 system name.
    pub system: &'static str,
    /// Total checkpoint time across the run's checkpoints.
    pub checkpoint_time: SimTime,
    /// Recovery time after a (non-cascading) failure.
    pub recovery_time: SimTime,
    /// Application progress rate (compute / total).
    pub progress_rate: f64,
}

/// Run the §IV-I evaluation: `n_ckpts` checkpoints with every
/// `policy.period()`-th going to Lustre, then one recovery from tier 1.
pub fn multilevel_eval(
    tier1: &dyn StorageModel,
    s: &Scenario,
    policy: MultiLevelPolicy,
    n_ckpts: u32,
    compute_interval: SimTime,
) -> MultiLevelResult {
    let lustre = LustreModel::new();
    let t_fast = tier1.checkpoint_makespan(s);
    let t_slow = lustre.checkpoint_makespan(s);
    let mut checkpoint_time = SimTime::ZERO;
    for i in 1..=n_ckpts {
        checkpoint_time += match policy.level_for(i) {
            CheckpointLevel::Fast => t_fast,
            CheckpointLevel::Parallel => t_slow,
        };
    }
    let recovery_time = tier1.recovery_makespan(s);
    let compute = compute_interval * f64::from(n_ckpts);
    let total = compute + checkpoint_time;
    MultiLevelResult {
        system: tier1.name(),
        checkpoint_time,
        recovery_time,
        progress_rate: metrics::progress_rate(compute, total),
    }
}

/// Outcome of a functional (real-bytes) run.
#[derive(Debug, Clone)]
pub struct FunctionalReport {
    /// Ranks driven.
    pub procs: u32,
    /// Checkpoints completed per rank.
    pub ckpts: u32,
    /// Total checkpoint bytes written and verified.
    pub bytes_verified: u64,
    /// Ranks crashed and recovered successfully.
    pub recovered_ranks: u32,
    /// Log records replayed across recovered ranks.
    pub replayed_records: u64,
    /// Device-resident metadata bytes across all ranks.
    pub metadata_bytes: u64,
    /// DRAM metadata footprint across all ranks.
    pub dram_bytes: u64,
    /// Every metric the run's components reported (the run gets its own
    /// registry, so this covers exactly this run's traffic): `fabric.*`,
    /// `ssd.*`, `microfs.*`, and `driver.*` counters, gauges, and latency
    /// histograms.
    pub telemetry: telemetry::MetricsSnapshot,
}

impl FunctionalReport {
    /// Payload bytes memcpy'd anywhere on the data path (initiator
    /// staging + device drain-to-media) over the whole run.
    pub fn bytes_copied(&self) -> u64 {
        self.telemetry.counter("fabric.bytes_copied") + self.telemetry.counter("ssd.bytes_copied")
    }

    /// Nanoseconds ranks spent blocked on namespace-shard locks —
    /// the direct observable for cross-rank device contention.
    pub fn lock_wait_ns(&self) -> u64 {
        self.telemetry.counter("ssd.lock_wait_ns")
    }

    /// FNV-1a hash over the run's deterministic outcome: the verified
    /// bytes, recovery work, metadata footprints, and the data-plane IO
    /// volume counters — everything two equivalent runs must reproduce
    /// exactly, and nothing timing-dependent. Two drive modes agree iff
    /// their state hashes agree.
    pub fn state_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(u64::from(self.procs));
        mix(u64::from(self.ckpts));
        mix(self.bytes_verified);
        mix(u64::from(self.recovered_ranks));
        mix(self.replayed_records);
        mix(self.metadata_bytes);
        mix(self.dram_bytes);
        mix(self.telemetry.counter("fabric.io_ops"));
        mix(self.telemetry.counter("fabric.io_bytes"));
        h
    }
}

/// How the per-rank phases of a functional run are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// One rank at a time, in rank order.
    Serial,
    /// All ranks concurrently on a rayon pool (each rank owns its
    /// filesystem, connection, and namespace shard, so this shares no
    /// data-plane lock across ranks).
    Parallel,
    /// All ranks multiplexed onto the shard-per-core reactor pool
    /// ([`nvmecr::ReactorPool`]): each rank is a state machine advanced
    /// one submission-window chunk per step, so rank count decouples from
    /// thread count. Storage semantics are identical to `Parallel` — the
    /// chaos parity test holds the two modes byte-for-byte equal.
    Reactor,
}

/// Write rank `rank`'s checkpoint `ckpt` into its filesystem. Payload
/// generation happens here so parallel driving parallelises it too.
fn checkpoint_rank(
    comd: &CoMD,
    fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>,
    rank: u32,
    ckpt: u32,
    bytes_per_rank: u64,
) -> Result<(), nvmecr::runtime::RuntimeError> {
    let write_size = 1usize << 20;
    if ckpt == 0 {
        // Per-rank private namespaces: same paths, no coordination.
        fs.mkdir("/comd", 0o755).ok();
    }
    fs.mkdir(&format!("/comd/ckpt_{ckpt:03}"), 0o755)?;
    let payload = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
    let path = CoMD::checkpoint_path(rank, ckpt);
    let fd = fs.create(&path, 0o644)?;
    for chunk in payload.chunks(write_size) {
        fs.write(fd, chunk)?;
    }
    fs.fsync(fd)?;
    fs.close(fd)?;
    Ok(())
}

/// One rank's checkpoint as a reactor state machine: the exact operation
/// sequence of [`checkpoint_rank`] — mkdirs, create, 1 MiB writes, fsync,
/// close — cut at write-chunk boundaries so a reactor advances many ranks'
/// checkpoints concurrently on one core. Byte-for-byte the same storage
/// traffic as the blocking path.
struct CkptMachine {
    comd: CoMD,
    ckpt: u32,
    bytes_per_rank: u64,
    ckpt_rank_ns: std::sync::Arc<telemetry::Histogram>,
    state: CkptState,
}

enum CkptState {
    Start,
    Writing {
        fd: u32,
        payload: Vec<u8>,
        off: usize,
        started: std::time::Instant,
    },
}

impl nvmecr::RankMachine<microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>> for CkptMachine {
    type Out = ();

    fn step(
        &mut self,
        rank: u32,
        fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>,
    ) -> Result<nvmecr::MachineStep<()>, nvmecr::runtime::RuntimeError> {
        let write_size = 1usize << 20;
        match &mut self.state {
            CkptState::Start => {
                let started = std::time::Instant::now();
                if self.ckpt == 0 {
                    fs.mkdir("/comd", 0o755).ok();
                }
                fs.mkdir(&format!("/comd/ckpt_{:03}", self.ckpt), 0o755)?;
                let payload =
                    self.comd
                        .checkpoint_payload(rank, self.ckpt, self.bytes_per_rank as usize);
                let path = CoMD::checkpoint_path(rank, self.ckpt);
                let fd = fs.create(&path, 0o644)?;
                self.state = CkptState::Writing {
                    fd,
                    payload,
                    off: 0,
                    started,
                };
                Ok(nvmecr::MachineStep::Yield)
            }
            CkptState::Writing {
                fd,
                payload,
                off,
                started,
            } => {
                let end = (*off + write_size).min(payload.len());
                fs.write(*fd, &payload[*off..end])?;
                *off = end;
                if *off < payload.len() {
                    return Ok(nvmecr::MachineStep::Yield);
                }
                fs.fsync(*fd)?;
                fs.close(*fd)?;
                self.ckpt_rank_ns
                    .record(started.elapsed().as_nanos() as u64);
                Ok(nvmecr::MachineStep::Done(()))
            }
        }
    }
}

/// Read back rank `rank`'s checkpoint `ckpt` and compare byte-for-byte.
/// Returns the verified byte count, or `Ok(None)` on a mismatch (the
/// caller turns that into an error — [`nvmecr::runtime::RuntimeError`]
/// has no corruption variant and shouldn't grow one for a workload).
fn verify_rank(
    comd: &CoMD,
    fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>,
    rank: u32,
    ckpt: u32,
    bytes_per_rank: u64,
) -> Result<Option<u64>, nvmecr::runtime::RuntimeError> {
    let expect = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
    let path = CoMD::checkpoint_path(rank, ckpt);
    let fd = fs.open(&path, microfs::OpenFlags::RDONLY, 0)?;
    let mut buf = vec![0u8; expect.len()];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd)?;
    Ok((buf == expect).then_some(expect.len() as u64))
}

/// Drive the full functional stack: schedule a job on the paper testbed,
/// run `ckpts` N-N checkpoint rounds of `bytes_per_rank` each (CoMD-style
/// payloads), crash `crash_ranks`, recover them, and verify every byte of
/// the newest checkpoint. Drives ranks in parallel; use
/// [`run_functional_checkpoints_with`] to pick the mode explicitly.
pub fn run_functional_checkpoints(
    procs: u32,
    ckpts: u32,
    bytes_per_rank: u64,
    crash_ranks: &[u32],
) -> Result<FunctionalReport, Box<dyn std::error::Error>> {
    run_functional_checkpoints_with(
        DriveMode::Parallel,
        procs,
        ckpts,
        bytes_per_rank,
        crash_ranks,
    )
}

/// Data-plane tunables for a functional run. Defaults match
/// [`RuntimeConfig::default`]; the pipeline bench sweeps `queue_depth`
/// with 4 KiB `block_size` so each checkpoint issues enough commands for
/// the submission window to matter.
#[derive(Debug, Clone)]
pub struct FunctionalTuning {
    /// Filesystem hugeblock size (and thus per-command payload size).
    pub block_size: u64,
    /// NVMf submission-window depth each rank's initiator keeps in flight.
    pub queue_depth: usize,
    /// Synchronous copies of every rank's checkpoint data (1 = off). At 2
    /// each checkpoint round also seals a replication epoch, so the run
    /// measures the full mirrored-commit cost, not just the data writes.
    pub replication_factor: u32,
    /// Copy-on-write delta epochs (replicated runs only): `0` keeps the
    /// full-manifest commit path; `n > 0` seals sparse delta manifests
    /// and compacts after at most `n` deltas.
    pub delta_chain_max: u32,
    /// Reactors for [`DriveMode::Reactor`] (0 = one per available core).
    /// Ignored by the other modes.
    pub reactors: u32,
}

impl Default for FunctionalTuning {
    fn default() -> Self {
        let defaults = RuntimeConfig::default();
        FunctionalTuning {
            block_size: defaults.block_size,
            queue_depth: defaults.fabric.queue_depth,
            replication_factor: defaults.replication_factor,
            delta_chain_max: defaults.delta_chain_max,
            reactors: defaults.reactors,
        }
    }
}

/// [`run_functional_checkpoints`] with an explicit [`DriveMode`] — the
/// serial mode exists so benches can measure the parallel speedup against
/// an identical-work baseline.
pub fn run_functional_checkpoints_with(
    mode: DriveMode,
    procs: u32,
    ckpts: u32,
    bytes_per_rank: u64,
    crash_ranks: &[u32],
) -> Result<FunctionalReport, Box<dyn std::error::Error>> {
    run_functional_checkpoints_tuned(
        mode,
        procs,
        ckpts,
        bytes_per_rank,
        crash_ranks,
        FunctionalTuning::default(),
    )
}

/// [`run_functional_checkpoints_with`] plus explicit data-plane tuning —
/// the QD-sweep bench drives the same real-bytes stack at each window
/// depth and reads `fabric.submit_ns` out of the report's telemetry.
pub fn run_functional_checkpoints_tuned(
    mode: DriveMode,
    procs: u32,
    ckpts: u32,
    bytes_per_rank: u64,
    crash_ranks: &[u32],
    tuning: FunctionalTuning,
) -> Result<FunctionalReport, Box<dyn std::error::Error>> {
    let topo = Topology::paper_testbed();
    // Each run reports into its own registry so the report's snapshot
    // covers exactly this run (runs may share a process, e.g. in tests).
    let telemetry = Telemetry::new();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 16 << 30,
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(procs))?;
    let mut config = RuntimeConfig {
        namespace_bytes: 8 << 30,
        telemetry: telemetry.clone(),
        block_size: tuning.block_size,
        replication_factor: tuning.replication_factor,
        delta_chain_max: tuning.delta_chain_max,
        reactors: tuning.reactors,
        ..RuntimeConfig::default()
    };
    config.fabric.queue_depth = tuning.queue_depth;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let reactor_cfg = nvmecr::ReactorConfig::default();
    let comd = CoMD::weak_scaling();
    let ckpt_rank_ns = telemetry.histogram("driver.checkpoint_rank_ns");
    let verify_rank_ns = telemetry.histogram("driver.verify_rank_ns");

    // Checkpoint phases. Each rank owns its filesystem, NVMf connection,
    // and (via the balancer) a disjoint region of a namespace shard, so
    // ranks can be driven concurrently without sharing a data-plane lock.
    for ckpt in 0..ckpts {
        let do_ckpt = |rank: u32,
                       fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>|
         -> Result<(), nvmecr::runtime::RuntimeError> {
            let _span = telemetry::span("driver", "checkpoint_rank")
                .arg("rank", u64::from(rank))
                .arg("ckpt", u64::from(ckpt));
            let _t = ckpt_rank_ns.time();
            checkpoint_rank(&comd, fs, rank, ckpt, bytes_per_rank)
        };
        match mode {
            DriveMode::Parallel => rt.for_each_rank_par(do_ckpt)?,
            DriveMode::Serial => {
                for rank in 0..procs {
                    let fs = rt.rank_fs(rank)?;
                    do_ckpt(rank, fs)?;
                }
            }
            DriveMode::Reactor => {
                rt.drive_reactor(
                    &reactor_cfg,
                    |_| 0,
                    |_| {
                        Box::new(CkptMachine {
                            comd: comd.clone(),
                            ckpt,
                            bytes_per_rank,
                            ckpt_rank_ns: ckpt_rank_ns.clone(),
                            state: CkptState::Start,
                        })
                    },
                )?;
            }
        }
        // Replicated runs seal one epoch per checkpoint round: manifests
        // land on both copies, so a failover restores this round exactly.
        if tuning.replication_factor >= 2 {
            rt.commit_epochs()?;
        }
    }

    // Crash, then recover — batched in parallel mode (recovery mounts
    // replay WALs independently per rank), one at a time in serial mode.
    for &rank in crash_ranks {
        rt.crash_rank(rank)?;
    }
    match mode {
        DriveMode::Parallel | DriveMode::Reactor => rt.recover_ranks(crash_ranks)?,
        DriveMode::Serial => {
            for &rank in crash_ranks {
                rt.recover_rank(rank)?;
            }
        }
    }
    let mut replayed = 0;
    for &rank in crash_ranks {
        replayed += rt.rank_fs(rank)?.stats().replayed_records;
    }

    // Verify the newest checkpoint everywhere (and recovered ranks fully).
    let last = ckpts - 1;
    let do_verify = |rank: u32,
                     fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>|
     -> Result<Option<u64>, nvmecr::runtime::RuntimeError> {
        let _span = telemetry::span("driver", "verify_rank").arg("rank", u64::from(rank));
        let _t = verify_rank_ns.time();
        verify_rank(&comd, fs, rank, last, bytes_per_rank)
    };
    let verified: Vec<Option<u64>> = match mode {
        DriveMode::Parallel => rt.map_ranks_par(do_verify)?,
        DriveMode::Serial => {
            let mut out = Vec::with_capacity(procs as usize);
            for rank in 0..procs {
                let fs = rt.rank_fs(rank)?;
                out.push(do_verify(rank, fs)?);
            }
            out
        }
        DriveMode::Reactor => {
            let comd = comd.clone();
            let verify_rank_ns = verify_rank_ns.clone();
            rt.map_ranks_reactor(&reactor_cfg, move |rank, fs| {
                let _span = telemetry::span("driver", "verify_rank").arg("rank", u64::from(rank));
                let _t = verify_rank_ns.time();
                verify_rank(&comd, fs, rank, last, bytes_per_rank)
            })?
        }
    };
    let mut bytes_verified = 0u64;
    for (rank, v) in verified.iter().enumerate() {
        match v {
            Some(n) => bytes_verified += n,
            None => return Err(format!("rank {rank} checkpoint {last} corrupted").into()),
        }
    }

    let metadata_bytes = rt.metadata_device_bytes();
    let dram_bytes = rt.dram_footprint();
    rt.finalize()?;
    Ok(FunctionalReport {
        procs,
        ckpts,
        bytes_verified,
        recovered_ranks: crash_ranks.len() as u32,
        replayed_records: replayed,
        metadata_bytes,
        dram_bytes,
        telemetry: telemetry.snapshot(),
    })
}

// ---------------------------------------------------------------------------
// Incremental (dirty-fraction) checkpoint runs
// ---------------------------------------------------------------------------

/// Diff granularity of the incremental drivers. Matches the chained
/// mirror's extent re-tile cap, so one dirty chunk re-seals exactly one
/// manifest tuple on the copy-on-write path.
pub const INCREMENTAL_CHUNK: usize = 64 << 10;

/// How a rank decides which bytes of its evolving image to write each
/// checkpoint round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementalStrategy {
    /// Rewrite the whole image every round — the N-N baseline.
    FullRewrite,
    /// Hash the whole image in [`INCREMENTAL_CHUNK`] chunks and write
    /// only the chunks whose hash changed (libhashckpt-style, §II-B):
    /// write volume proportional to the dirty set, scan cost proportional
    /// to the full image.
    HashScan,
    /// The application tracks its own dirty chunks as it mutates them and
    /// writes exactly those — no scan at all. Composed with
    /// `delta_chain_max > 0` the manifest side also seals sparse deltas.
    CowTracked,
}

impl IncrementalStrategy {
    /// Stable label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            IncrementalStrategy::FullRewrite => "full_rewrite",
            IncrementalStrategy::HashScan => "hash_scan",
            IncrementalStrategy::CowTracked => "cow_tracked",
        }
    }
}

/// splitmix64 — the deterministic generator behind image content and
/// per-round dirty-set selection (runs must be reproducible per rank).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fill_chunk(data: &mut [u8], seed: u64) {
    let mut w = seed;
    for (j, b) in data.iter_mut().enumerate() {
        if j % 8 == 0 {
            w = mix64(w.wrapping_add(j as u64));
        }
        *b = (w >> ((j % 8) * 8)) as u8;
    }
}

/// One rank's evolving application image: deterministic content, and a
/// deterministic dirty set per round so every strategy sees identical
/// mutations.
pub struct IncrementalImage {
    rank: u32,
    chunk: usize,
    data: Vec<u8>,
}

impl IncrementalImage {
    /// A fresh image of `len` bytes for `rank`, mutated and diffed at
    /// `chunk`-byte granularity.
    pub fn new(rank: u32, len: usize, chunk: usize) -> Self {
        assert!(chunk > 0);
        let mut data = vec![0u8; len];
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            fill_chunk(c, mix64((u64::from(rank) << 40) ^ i as u64));
        }
        IncrementalImage { rank, chunk, data }
    }

    /// Current image bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutate this round's dirty set — `dirty_permille`/1000 of the
    /// chunks (at least one), chosen pseudo-randomly but deterministically
    /// per `(rank, round)` — and return the coalesced dirty byte spans.
    pub fn advance(&mut self, round: u32, dirty_permille: u32) -> Vec<(u64, u64)> {
        let nchunks = self.data.len().div_ceil(self.chunk);
        let k = ((nchunks as u64 * u64::from(dirty_permille)).div_ceil(1000) as usize)
            .clamp(1, nchunks);
        let mut idx: Vec<usize> = (0..nchunks).collect();
        let (rank, chunk, len) = (self.rank, self.chunk, self.data.len());
        idx.sort_by_key(|&i| mix64((u64::from(rank) << 40) ^ (u64::from(round) << 20) ^ i as u64));
        idx.truncate(k);
        idx.sort_unstable();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for &i in &idx {
            let start = i * chunk;
            let end = (start + chunk).min(len);
            fill_chunk(
                &mut self.data[start..end],
                mix64((u64::from(rank) << 40) ^ (u64::from(round) << 20) ^ (i as u64) ^ 0x5eed),
            );
            let span_len = (end - start) as u64;
            match spans.last_mut() {
                Some((s, l)) if *s + *l == start as u64 => *l += span_len,
                _ => spans.push((start as u64, span_len)),
            }
        }
        spans
    }
}

/// Everything one incremental run needs: scale, churn, strategy, and the
/// stack tuning underneath.
#[derive(Debug, Clone)]
pub struct IncrementalSpec {
    /// Dirty-set strategy each rank checkpoints with.
    pub strategy: IncrementalStrategy,
    /// Ranks driven.
    pub procs: u32,
    /// Checkpoint rounds; round 0 writes the full image, later rounds
    /// mutate and re-checkpoint.
    pub rounds: u32,
    /// Image bytes per rank.
    pub bytes_per_rank: u64,
    /// Per-round dirty fraction in permille (100 = 10%).
    pub dirty_permille: u32,
    /// Bytes of namespace the job requests per granted SSD.
    pub namespace_bytes: u64,
    /// Data-plane tuning (QD, block size, replication, delta chains).
    pub tuning: FunctionalTuning,
    /// After the last round, kill rank 0's primary shard and byte-verify
    /// the replica-driven restore (requires `replication_factor >= 2`).
    pub fail_over: bool,
}

/// Outcome of one incremental run.
#[derive(Debug, Clone)]
pub struct IncrementalRunReport {
    /// Ranks driven.
    pub procs: u32,
    /// Rounds completed.
    pub rounds: u32,
    /// Image bytes per rank.
    pub bytes_per_rank: u64,
    /// Device bytes written by round 0 (full image baseline, commit
    /// included).
    pub first_round_device_bytes: u64,
    /// Device bytes written by rounds 1.. — the steady state the
    /// write-reduction gate measures.
    pub steady_device_bytes: u64,
    /// Bytes the application handed to the filesystem in rounds 1..
    pub steady_app_bytes: u64,
    /// Final-image bytes read back and verified across all ranks.
    pub bytes_verified: u64,
    /// `true` when the run killed rank 0's shard after the last round and
    /// the restored image verified byte-identical.
    pub failover_verified: bool,
    /// Every metric this run's components reported (`cow.*`,
    /// `incremental.*`, `replication.*`, `fabric.*`, `ssd.*`, ...).
    pub telemetry: telemetry::MetricsSnapshot,
}

/// Total bytes written across every device in the rack.
fn rack_write_bytes(rack: &StorageRack, topo: &Topology) -> u64 {
    let mut total = 0;
    for node in topo.storage_nodes() {
        for (_, target) in rack.targets_on(node) {
            total += target.device().io_counters().2;
        }
    }
    total
}

/// `pwrite` the image's bytes over `spans` into `path` (created on the
/// first round), fsync, and return the bytes written.
fn write_image_spans(
    fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>,
    path: &str,
    image: &[u8],
    spans: &[(u64, u64)],
    first: bool,
) -> Result<u64, nvmecr::runtime::RuntimeError> {
    let fd = if first {
        fs.create(path, 0o644)?
    } else {
        fs.open(
            path,
            microfs::OpenFlags {
                write: true,
                ..microfs::OpenFlags::RDONLY
            },
            0,
        )?
    };
    let mut written = 0u64;
    for &(offset, len) in spans {
        let (start, end) = (offset as usize, (offset + len) as usize);
        for (i, piece) in image[start..end].chunks(1 << 20).enumerate() {
            fs.pwrite(fd, offset + (i as u64) * (1 << 20), piece)?;
            written += piece.len() as u64;
        }
    }
    fs.fsync(fd)?;
    fs.close(fd)?;
    Ok(written)
}

/// Per-rank state the rounds thread through the parallel drive.
struct IncrementalRank {
    image: IncrementalImage,
    hasher: IncrementalCheckpointer,
    app_bytes: u64,
}

/// Drive `spec.procs` ranks through `spec.rounds` incremental checkpoint
/// rounds of one in-place image file per rank: round 0 writes the full
/// image, every later round mutates `dirty_permille`/1000 of the chunks
/// and re-checkpoints under `spec.strategy`. Replicated runs seal one
/// epoch per round; with `delta_chain_max > 0` those epochs are sparse
/// delta manifests. The final image is read back and byte-verified on
/// every rank, and optionally again on rank 0 after a shard-kill
/// failover restore through the delta chain.
pub fn run_incremental_checkpoints(
    spec: &IncrementalSpec,
) -> Result<IncrementalRunReport, Box<dyn std::error::Error>> {
    if spec.rounds == 0 {
        return Err("incremental runs need at least one round".into());
    }
    if spec.fail_over && spec.tuning.replication_factor < 2 {
        return Err("failover verification needs replication_factor >= 2".into());
    }
    let topo = Topology::paper_testbed();
    let telemetry = Telemetry::new();
    let ssd_chaos = ChaosHandle::new();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 16 << 30,
            chaos: ssd_chaos.clone(),
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched.submit(&JobRequest::full_subscription(spec.procs))?;
    let mut config = RuntimeConfig {
        namespace_bytes: spec.namespace_bytes,
        telemetry: telemetry.clone(),
        block_size: spec.tuning.block_size,
        replication_factor: spec.tuning.replication_factor,
        delta_chain_max: spec.tuning.delta_chain_max,
        ..RuntimeConfig::default()
    };
    config.fabric.queue_depth = spec.tuning.queue_depth;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let ckpt_ns = telemetry.histogram("driver.incremental_ckpt_ns");

    let path = "/comd/incr.dat";
    let ranks: Vec<Mutex<IncrementalRank>> = (0..spec.procs)
        .map(|rank| {
            Mutex::new(IncrementalRank {
                image: IncrementalImage::new(rank, spec.bytes_per_rank as usize, INCREMENTAL_CHUNK),
                hasher: IncrementalCheckpointer::new(
                    spec.bytes_per_rank as usize,
                    INCREMENTAL_CHUNK,
                ),
                app_bytes: 0,
            })
        })
        .collect();

    let after_init = rack_write_bytes(&rack, &topo);
    let mut after_first = after_init;
    for round in 0..spec.rounds {
        rt.for_each_rank_par(|rank, fs| {
            let mut state = ranks[rank as usize].lock().expect("rank state");
            let state = &mut *state;
            if round == 0 {
                fs.mkdir("/comd", 0o755).ok();
            }
            let spans = if round == 0 {
                vec![(0u64, spec.bytes_per_rank)]
            } else {
                state.image.advance(round, spec.dirty_permille)
            };
            let _t = ckpt_ns.time();
            state.app_bytes += match spec.strategy {
                IncrementalStrategy::FullRewrite => write_image_spans(
                    fs,
                    path,
                    state.image.data(),
                    &[(0, spec.bytes_per_rank)],
                    round == 0,
                )?,
                IncrementalStrategy::CowTracked => {
                    write_image_spans(fs, path, state.image.data(), &spans, round == 0)?
                }
                IncrementalStrategy::HashScan => {
                    let report = state
                        .hasher
                        .checkpoint(fs, path, state.image.data())
                        .map_err(nvmecr::runtime::RuntimeError::Fs)?;
                    report.record(&telemetry);
                    report.bytes_written
                }
            };
            Ok(())
        })?;
        if spec.tuning.replication_factor >= 2 {
            rt.commit_epochs()?;
        }
        if round == 0 {
            after_first = rack_write_bytes(&rack, &topo);
        }
    }
    let after_rounds = rack_write_bytes(&rack, &topo);
    let steady_app_bytes: u64 = ranks
        .iter()
        .map(|r| r.lock().expect("rank state").app_bytes)
        .sum::<u64>()
        - spec.procs as u64 * spec.bytes_per_rank;

    // Every rank's final image must read back byte-identical.
    let verified: Vec<bool> = rt.map_ranks_par(|rank, fs| {
        let state = ranks[rank as usize].lock().expect("rank state");
        verify_image(fs, path, state.image.data())
    })?;
    if let Some(rank) = verified.iter().position(|&ok| !ok) {
        return Err(format!("rank {rank} final incremental image corrupted").into());
    }
    let bytes_verified = spec.procs as u64 * spec.bytes_per_rank;

    let mut failover_verified = false;
    if spec.fail_over {
        // Kill rank 0's primary shard under a crashed rank: the restore
        // must come entirely from the replica's manifest chain.
        let victim = 0u32;
        rt.crash_rank(victim)?;
        ssd_chaos.arm(
            FaultPlan::new(1).at_op(FaultSite::ShardIo, FaultAction::KillShard, 0),
            &telemetry,
        );
        let doomed = {
            let fs = rt.rank_fs(1)?;
            match fs.create("/doomed.dat", 0o644) {
                Err(_) => true,
                Ok(fd) => fs.write(fd, &[0u8; 4096]).is_err() || fs.close(fd).is_err(),
            }
        };
        ssd_chaos.disarm();
        if !doomed {
            return Err("shard kill did not take".into());
        }
        rt.fail_over_rank(victim, &rack, &topo)?;
        let state = ranks[victim as usize].lock().expect("rank state");
        let fs = rt.rank_fs(victim)?;
        if !verify_image(fs, path, state.image.data())? {
            return Err(
                "restored incremental image is not byte-identical to the last epoch".into(),
            );
        }
        failover_verified = true;
        // The shared shard died with the other ranks' primaries: tear the
        // rack down with the job instead of finalizing through dead routes.
    } else {
        rt.finalize()?;
    }

    Ok(IncrementalRunReport {
        procs: spec.procs,
        rounds: spec.rounds,
        bytes_per_rank: spec.bytes_per_rank,
        first_round_device_bytes: after_first - after_init,
        steady_device_bytes: after_rounds - after_first,
        steady_app_bytes,
        bytes_verified,
        failover_verified,
        telemetry: telemetry.snapshot(),
    })
}

/// Read `path` fully and compare against `expect`.
fn verify_image(
    fs: &mut microfs::MicroFs<nvmecr::dataplane::NvmfBlockDevice>,
    path: &str,
    expect: &[u8],
) -> Result<bool, nvmecr::runtime::RuntimeError> {
    let fd = fs.open(path, microfs::OpenFlags::RDONLY, 0)?;
    let mut buf = vec![0u8; expect.len()];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd)?;
    Ok(got == expect.len() && buf == expect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvmecr_model::NvmeCrModel;

    #[test]
    fn sweep_produces_one_point_per_scenario() {
        let scenarios: Vec<Scenario> = [56u32, 112]
            .iter()
            .map(|&p| Scenario::weak_scaling(p))
            .collect();
        let pts = scaling_sweep(&NvmeCrModel::full(), &scenarios);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.ckpt_efficiency > 0.5));
    }

    #[test]
    fn multilevel_ordering_matches_table2() {
        use baselines::{GlusterFsModel, OrangeFsModel};
        // Table II's setting: strong scaling at 448 processes.
        let s = Scenario::strong_scaling(448);
        let policy = MultiLevelPolicy::new(10);
        let compute = CoMD::strong_scaling(448).compute_interval();
        let ours = multilevel_eval(&NvmeCrModel::full(), &s, policy, 10, compute);
        let gluster = multilevel_eval(&GlusterFsModel::new(), &s, policy, 10, compute);
        let orange = multilevel_eval(&OrangeFsModel::new(), &s, policy, 10, compute);
        // Table II ordering: NVMe-CR < GlusterFS < OrangeFS on time,
        // reversed on progress rate.
        assert!(ours.checkpoint_time < gluster.checkpoint_time);
        assert!(gluster.checkpoint_time < orange.checkpoint_time);
        assert!(ours.progress_rate > gluster.progress_rate);
        assert!(gluster.progress_rate > orange.progress_rate);
        // Paper ballpark: NVMe-CR progress rate ~0.42.
        assert!(
            (0.30..0.65).contains(&ours.progress_rate),
            "progress rate {}",
            ours.progress_rate
        );
    }

    #[test]
    fn functional_small_run_verifies_bytes() {
        let report = run_functional_checkpoints(56, 2, 256 << 10, &[3, 17]).unwrap();
        assert_eq!(report.procs, 56);
        assert_eq!(report.bytes_verified, 56 * (256 << 10));
        assert_eq!(report.recovered_ranks, 2);
        assert!(report.replayed_records > 0);
        assert!(report.metadata_bytes > 0);
        assert!(report.dram_bytes > 0);
        assert!(report.bytes_copied() > 0);
        // The snapshot spans every instrumented layer of this run.
        let layers = report.telemetry.layers();
        for layer in ["driver", "fabric", "microfs", "ssd"] {
            assert!(layers.iter().any(|l| l == layer), "missing layer {layer}");
        }
        // 56 ranks x 2 checkpoints, timed once each.
        let h = report
            .telemetry
            .histogram("driver.checkpoint_rank_ns")
            .unwrap();
        assert_eq!(h.count, 56 * 2);
        assert!(h.percentile(99.0) >= h.percentile(50.0));
        assert_eq!(
            report
                .telemetry
                .histogram("driver.recover_rank_ns")
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn serial_and_parallel_modes_agree() {
        let par =
            run_functional_checkpoints_with(DriveMode::Parallel, 8, 1, 64 << 10, &[2]).unwrap();
        let ser = run_functional_checkpoints_with(DriveMode::Serial, 8, 1, 64 << 10, &[2]).unwrap();
        assert_eq!(par.bytes_verified, ser.bytes_verified);
        assert_eq!(par.replayed_records, ser.replayed_records);
        assert_eq!(par.metadata_bytes, ser.metadata_bytes);
        assert_eq!(par.bytes_copied(), ser.bytes_copied());
        assert_eq!(par.state_hash(), ser.state_hash());
    }

    #[test]
    fn reactor_mode_agrees_with_parallel_and_multiplexes_ranks() {
        // 8 ranks on 2 reactors: 4x more ranks than threads, yet the
        // storage outcome is bit-equal to the thread-per-rank drive.
        let tuning = FunctionalTuning {
            reactors: 2,
            ..FunctionalTuning::default()
        };
        let rea = run_functional_checkpoints_tuned(
            DriveMode::Reactor,
            8,
            2,
            256 << 10,
            &[1, 5],
            tuning.clone(),
        )
        .unwrap();
        let par =
            run_functional_checkpoints_tuned(DriveMode::Parallel, 8, 2, 256 << 10, &[1, 5], tuning)
                .unwrap();
        assert_eq!(rea.state_hash(), par.state_hash());
        assert_eq!(rea.bytes_verified, 8 * (256 << 10));
        assert_eq!(rea.replayed_records, par.replayed_records);
        // The reactor pool actually ran: multiplexed events and loops.
        assert!(rea.telemetry.counter("reactor.events") > 0);
        assert!(rea.telemetry.counter("reactor.loops") > 0);
        assert_eq!(par.telemetry.counter("reactor.events"), 0);
        // 256 KiB in 1 MiB chunks is one write step + the open step, so
        // each rank machine yields at least once per checkpoint.
        assert!(rea.telemetry.counter("reactor.events") >= 8 * 2 * 2);
        // Per-rank checkpoint latency is recorded in both modes alike.
        let h = rea
            .telemetry
            .histogram("driver.checkpoint_rank_ns")
            .unwrap();
        assert_eq!(h.count, 8 * 2);
    }

    #[test]
    fn incremental_image_is_deterministic_and_dirty_set_is_exact() {
        let mut a = IncrementalImage::new(3, 1 << 20, INCREMENTAL_CHUNK);
        let mut b = IncrementalImage::new(3, 1 << 20, INCREMENTAL_CHUNK);
        assert_eq!(a.data(), b.data());
        let sa = a.advance(1, 100);
        let sb = b.advance(1, 100);
        assert_eq!(sa, sb);
        assert_eq!(a.data(), b.data());
        // 16 chunks at 100 permille -> exactly 2 dirty chunks.
        let dirty: u64 = sa.iter().map(|&(_, l)| l).sum();
        assert_eq!(dirty, 2 * INCREMENTAL_CHUNK as u64);
        // Different rounds dirty different sets (with overwhelming odds).
        let sc = a.advance(2, 100);
        assert!(a.data() != b.data() || sc == sb);
    }

    #[test]
    fn incremental_cow_run_reduces_steady_write_bytes_and_verifies() {
        let spec = IncrementalSpec {
            strategy: IncrementalStrategy::CowTracked,
            procs: 8,
            rounds: 4,
            bytes_per_rank: 1 << 20,
            dirty_permille: 100,
            namespace_bytes: 256 << 20,
            tuning: FunctionalTuning {
                replication_factor: 2,
                delta_chain_max: 4,
                ..FunctionalTuning::default()
            },
            fail_over: true,
        };
        let cow = run_incremental_checkpoints(&spec).unwrap();
        assert_eq!(cow.bytes_verified, 8 << 20);
        assert!(cow.failover_verified);
        // Steady rounds hand the fs only the dirty fraction.
        assert!(cow.steady_app_bytes < 3 * (8 << 20) / 4);
        assert!(cow.steady_device_bytes < cow.first_round_device_bytes * 3);
        // The chain sealed sparse deltas and the fs tracked copy-ups.
        assert!(cow.telemetry.counter("cow.delta_extents") > 0);
        assert!(cow.telemetry.counter("cow.copy_up_bytes") > 0);
        assert!(cow.telemetry.gauge("cow.chain_len").peak >= 2);
        assert_eq!(cow.telemetry.counter("replication.degraded_restores"), 1);

        let full = run_incremental_checkpoints(&IncrementalSpec {
            strategy: IncrementalStrategy::FullRewrite,
            fail_over: false,
            tuning: FunctionalTuning {
                replication_factor: 2,
                delta_chain_max: 0,
                ..FunctionalTuning::default()
            },
            ..spec
        })
        .unwrap();
        assert!(
            full.steady_device_bytes as f64 >= 3.0 * cow.steady_device_bytes as f64,
            "full {} vs cow {}",
            full.steady_device_bytes,
            cow.steady_device_bytes
        );
    }

    #[test]
    fn incremental_hash_scan_matches_cow_write_volume() {
        let mk = |strategy| IncrementalSpec {
            strategy,
            procs: 4,
            rounds: 3,
            bytes_per_rank: 512 << 10,
            dirty_permille: 125,
            namespace_bytes: 128 << 20,
            tuning: FunctionalTuning {
                replication_factor: 1,
                ..FunctionalTuning::default()
            },
            fail_over: false,
        };
        let hash = run_incremental_checkpoints(&mk(IncrementalStrategy::HashScan)).unwrap();
        let cow = run_incremental_checkpoints(&mk(IncrementalStrategy::CowTracked)).unwrap();
        // The hash diff finds exactly the chunks the app knows it dirtied.
        assert_eq!(hash.steady_app_bytes, cow.steady_app_bytes);
        assert!(hash.telemetry.counter("incremental.bytes_skipped") > 0);
        assert_eq!(
            hash.telemetry.counter("incremental.chunks_written"),
            (hash.steady_app_bytes + 4 * (512 << 10)) / INCREMENTAL_CHUNK as u64
        );
    }
}
