//! N-1 checkpointing over private namespaces.
//!
//! The paper targets N-N ("the designs proposed in this paper are
//! specifically targeted towards the N-N pattern", §III-E) because ~90% of
//! runs use it \[39\]. Applications that insist on a single logical
//! checkpoint file can still run over NVMe-CR with this adapter: each rank
//! writes its disjoint segment as a *private* file (zero coordination, as
//! always), and the reader reassembles the logical N-1 file from the
//! per-rank segments — the same decomposition PLFS \[24\] performs under a
//! shared-file facade.

use microfs::block::BlockDevice;
use microfs::{FsError, MicroFs, OpenFlags};

/// Maps one logical N-1 file onto per-rank segment files.
#[derive(Debug, Clone)]
pub struct N1Adapter {
    /// Logical file name (used to derive per-rank segment paths).
    pub logical_name: String,
    /// Bytes each rank owns.
    pub bytes_per_rank: u64,
}

impl N1Adapter {
    /// An adapter for `logical_name` with fixed per-rank segments.
    pub fn new(logical_name: impl Into<String>, bytes_per_rank: u64) -> Self {
        assert!(bytes_per_rank > 0);
        N1Adapter {
            logical_name: logical_name.into(),
            bytes_per_rank,
        }
    }

    /// The private path rank `rank` writes its segment to.
    pub fn segment_path(&self, rank: u32) -> String {
        format!("/{}.seg{rank:05}", self.logical_name)
    }

    /// The logical offset range `[start, end)` rank `rank` owns.
    pub fn segment_range(&self, rank: u32) -> (u64, u64) {
        let start = u64::from(rank) * self.bytes_per_rank;
        (start, start + self.bytes_per_rank)
    }

    /// Which rank owns logical offset `off`.
    pub fn owner_of(&self, off: u64) -> u32 {
        (off / self.bytes_per_rank) as u32
    }

    /// Rank-side: write `data` at logical offset `off` (must fall entirely
    /// within this rank's segment — crossing segments would need the
    /// coordination the design refuses to pay).
    pub fn write_segment<D: BlockDevice>(
        &self,
        fs: &mut MicroFs<D>,
        rank: u32,
        off: u64,
        data: &[u8],
    ) -> Result<(), FsError> {
        let (start, end) = self.segment_range(rank);
        if off < start || off + data.len() as u64 > end {
            return Err(FsError::Invalid(format!(
                "logical range [{off}, {}) crosses rank {rank}'s segment [{start}, {end})",
                off + data.len() as u64
            )));
        }
        let path = self.segment_path(rank);
        let fd = match fs.stat(&path) {
            Ok(_) => fs.open(&path, OpenFlags::RDWR, 0)?,
            Err(_) => fs.open(&path, OpenFlags::CREATE_EXCL, 0o644)?,
        };
        let r = fs.pwrite(fd, off - start, data).map(|_| ());
        fs.close(fd)?;
        r
    }

    /// Reader-side: reassemble the logical byte range `[off, off+len)`
    /// from the per-rank filesystems (indexed by rank).
    pub fn read_logical<D: BlockDevice>(
        &self,
        fss: &mut [&mut MicroFs<D>],
        off: u64,
        len: usize,
    ) -> Result<Vec<u8>, FsError> {
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        while pos < len {
            let abs = off + pos as u64;
            let rank = self.owner_of(abs);
            let (start, end) = self.segment_range(rank);
            let take = ((end - abs) as usize).min(len - pos);
            let fs = fss
                .get_mut(rank as usize)
                .ok_or_else(|| FsError::Invalid(format!("no fs for rank {rank}")))?;
            let path = self.segment_path(rank);
            let fd = fs.open(&path, OpenFlags::RDONLY, 0)?;
            let mut got = 0usize;
            while got < take {
                let n = fs.pread(
                    fd,
                    abs - start + got as u64,
                    &mut out[pos + got..pos + take],
                )?;
                if n == 0 {
                    break; // sparse tail reads as zeros
                }
                got += n;
            }
            fs.close(fd)?;
            pos += take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microfs::{FsConfig, MemDevice};

    fn fs() -> MicroFs<MemDevice> {
        MicroFs::format(MemDevice::new(32 << 20), FsConfig::default()).unwrap()
    }

    #[test]
    fn segments_partition_the_logical_file() {
        let a = N1Adapter::new("shared.ckpt", 1 << 20);
        assert_eq!(a.segment_range(0), (0, 1 << 20));
        assert_eq!(a.segment_range(3), (3 << 20, 4 << 20));
        assert_eq!(a.owner_of(0), 0);
        assert_eq!(a.owner_of((1 << 20) - 1), 0);
        assert_eq!(a.owner_of(1 << 20), 1);
        assert_ne!(a.segment_path(0), a.segment_path(1));
    }

    #[test]
    fn write_then_reassemble() {
        let adapter = N1Adapter::new("shared.ckpt", 64 << 10);
        let mut ranks: Vec<MicroFs<MemDevice>> = (0..4).map(|_| fs()).collect();
        for (rank, f) in ranks.iter_mut().enumerate() {
            let (start, _) = adapter.segment_range(rank as u32);
            let data = vec![0xA0 + rank as u8; 64 << 10];
            adapter.write_segment(f, rank as u32, start, &data).unwrap();
        }
        let mut refs: Vec<&mut MicroFs<MemDevice>> = ranks.iter_mut().collect();
        // A read spanning three segments.
        let off = (64 << 10) - 100;
        let len = (64 << 10) + 200;
        let got = adapter.read_logical(&mut refs, off, len).unwrap();
        assert!(got[..100].iter().all(|&b| b == 0xA0));
        assert!(got[100..100 + (64 << 10)].iter().all(|&b| b == 0xA1));
        assert!(got[100 + (64 << 10)..].iter().all(|&b| b == 0xA2));
    }

    #[test]
    fn cross_segment_writes_are_refused() {
        let adapter = N1Adapter::new("shared.ckpt", 4096);
        let mut f = fs();
        // Rank 0 trying to spill into rank 1's segment.
        let err = adapter
            .write_segment(&mut f, 0, 4000, &[0u8; 200])
            .unwrap_err();
        assert!(matches!(err, FsError::Invalid(_)));
        // And writing below its own range.
        let err = adapter.write_segment(&mut f, 1, 0, &[0u8; 8]).unwrap_err();
        assert!(matches!(err, FsError::Invalid(_)));
    }

    #[test]
    fn partial_segments_read_zeros_for_holes() {
        let adapter = N1Adapter::new("shared.ckpt", 8192);
        let mut ranks: Vec<MicroFs<MemDevice>> = (0..2).map(|_| fs()).collect();
        adapter
            .write_segment(&mut ranks[0], 0, 0, &[7u8; 100])
            .unwrap();
        adapter
            .write_segment(&mut ranks[1], 1, 8192, &[9u8; 100])
            .unwrap();
        let mut refs: Vec<&mut MicroFs<MemDevice>> = ranks.iter_mut().collect();
        let got = adapter.read_logical(&mut refs, 0, 8292).unwrap();
        assert!(got[..100].iter().all(|&b| b == 7));
        assert!(got[100..8192].iter().all(|&b| b == 0), "hole reads zeros");
        assert!(got[8192..].iter().all(|&b| b == 9));
    }
}
