//! Optimal checkpoint intervals (Young/Daly) and machine efficiency.
//!
//! The paper's motivation (§I) is an exascale MTBF under 30 minutes: "not
//! only will checkpoint time increase, but checkpoint frequency will also
//! increase to account for the decrease in MTBF". This module makes that
//! argument quantitative: given a system MTBF `M` and a per-checkpoint
//! dump time `delta`, Young's first-order optimum is `sqrt(2*delta*M)` and
//! the resulting machine efficiency follows — so a faster checkpoint tier
//! (smaller `delta`) converts directly into usable compute, which is the
//! TCO argument of §I-B run through checkpointing theory.

use simkit::SimTime;

/// Young's first-order optimal compute interval between checkpoints:
/// `sqrt(2 * dump * mtbf)`.
pub fn young_interval(dump: SimTime, mtbf: SimTime) -> SimTime {
    SimTime::secs((2.0 * dump.as_secs() * mtbf.as_secs()).sqrt())
}

/// Daly's higher-order refinement of the optimum (accurate when the dump
/// time is not small relative to MTBF).
pub fn daly_interval(dump: SimTime, mtbf: SimTime) -> SimTime {
    let d = dump.as_secs();
    let m = mtbf.as_secs();
    if d < 2.0 * m {
        let t = (2.0 * d * m).sqrt()
            * (1.0 + (1.0 / 3.0) * (d / (2.0 * m)).sqrt() + (1.0 / 9.0) * (d / (2.0 * m)))
            - d;
        SimTime::secs(t.max(0.0))
    } else {
        SimTime::secs(m)
    }
}

/// Expected machine efficiency when checkpointing every `interval` of
/// compute with dump time `dump` under exponential failures of mean
/// `mtbf`: the fraction of wall-clock spent on *useful, retained* compute.
///
/// First-order model: each cycle costs `interval + dump` of wall-clock;
/// a failure (rate `1/mtbf`) loses on average half an interval plus a
/// restart (we fold restart into `dump` for simplicity).
pub fn efficiency(interval: SimTime, dump: SimTime, mtbf: SimTime) -> f64 {
    let w = interval.as_secs();
    let d = dump.as_secs();
    let m = mtbf.as_secs();
    assert!(w > 0.0 && m > 0.0);
    // Useful fraction of a cycle, discounted by expected rework.
    let cycle = w + d;
    let failures_per_cycle = cycle / m;
    let rework = failures_per_cycle * (w / 2.0 + d);
    ((w - rework) / cycle).clamp(0.0, 1.0)
}

/// The best achievable efficiency for a given dump time and MTBF, using
/// Young's interval.
pub fn best_efficiency(dump: SimTime, mtbf: SimTime) -> f64 {
    efficiency(young_interval(dump, mtbf), dump, mtbf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_textbook_example() {
        // dump 5 min, MTBF 24 h -> sqrt(2 * 300 * 86400) ~ 7200 s.
        let t = young_interval(SimTime::secs(300.0), SimTime::secs(86_400.0));
        assert!((t.as_secs() - 7200.0).abs() < 1.0);
    }

    #[test]
    fn daly_is_close_to_young_for_small_dumps() {
        let dump = SimTime::secs(60.0);
        let mtbf = SimTime::secs(86_400.0);
        let y = young_interval(dump, mtbf).as_secs();
        let d = daly_interval(dump, mtbf).as_secs();
        assert!((y - d).abs() / y < 0.1, "young {y} vs daly {d}");
    }

    #[test]
    fn optimum_actually_optimizes() {
        let dump = SimTime::secs(40.0);
        let mtbf = SimTime::secs(1800.0); // the paper's sub-30-min exascale MTBF
        let w_opt = young_interval(dump, mtbf);
        let e_opt = efficiency(w_opt, dump, mtbf);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            let e = efficiency(w_opt * factor, dump, mtbf);
            assert!(
                e <= e_opt + 0.01,
                "interval x{factor} should not beat the optimum: {e} vs {e_opt}"
            );
        }
    }

    #[test]
    fn faster_checkpoints_mean_higher_efficiency() {
        // The paper's argument end-to-end: at exascale MTBF, halving the
        // dump time (what NVMe-CR's 2x does) raises machine efficiency.
        let mtbf = SimTime::secs(1800.0);
        let slow = best_efficiency(SimTime::secs(85.9), mtbf); // OrangeFS Table II
        let fast = best_efficiency(SimTime::secs(39.5), mtbf); // NVMe-CR Table II
        assert!(fast > slow + 0.05, "fast {fast} vs slow {slow}");
        assert!((0.0..=1.0).contains(&fast));
    }

    #[test]
    fn shrinking_mtbf_demands_shorter_intervals() {
        let dump = SimTime::secs(40.0);
        let petascale = young_interval(dump, SimTime::secs(86_400.0));
        let exascale = young_interval(dump, SimTime::secs(1800.0));
        assert!(exascale < petascale / 5.0);
    }

    #[test]
    fn degenerate_dump_larger_than_mtbf() {
        // When the dump takes longer than the MTBF, Daly clamps to MTBF
        // and efficiency collapses toward zero.
        let e = best_efficiency(SimTime::secs(4000.0), SimTime::secs(1800.0));
        assert!(e < 0.2, "{e}");
        let d = daly_interval(SimTime::secs(4000.0), SimTime::secs(1800.0));
        assert_eq!(d.as_secs(), 1800.0);
    }
}
