//! Hash-based incremental checkpointing — the paper's "complementary
//! techniques" (§II-B, citing libhashckpt \[31\]): "these works are
//! complementary to the designs proposed in this paper and can be combined
//! for improved performance."
//!
//! `IncrementalCheckpointer` hashes the application image in chunks and,
//! on each checkpoint, writes only the chunks whose hash changed since the
//! previous one — via plain `pwrite` on a microfs file, so it composes
//! with everything else in the runtime (provenance, coalescing, recovery).

use microfs::block::BlockDevice;
use microfs::{FsError, MicroFs, OpenFlags};
use telemetry::Telemetry;

/// FNV-1a 64-bit, the same family used for name hashing elsewhere.
fn chunk_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Outcome of one incremental checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Chunks examined.
    pub chunks: u64,
    /// Chunks actually written.
    pub chunks_written: u64,
    /// Bytes actually written.
    pub bytes_written: u64,
    /// Bytes the hash diff proved unchanged and skipped.
    pub bytes_skipped: u64,
}

impl IncrementalReport {
    /// Fraction of the image that had to be written, `0.0..=1.0`.
    pub fn write_fraction(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.chunks_written as f64 / self.chunks as f64
        }
    }

    /// Fold this checkpoint's outcome into `t`'s registry under the
    /// `incremental.*` counters, so functional runs surface hash-diff
    /// savings next to the `cow.*` manifest-side counters.
    pub fn record(&self, t: &Telemetry) {
        t.counter("incremental.chunks").add(self.chunks);
        t.counter("incremental.chunks_written")
            .add(self.chunks_written);
        t.counter("incremental.bytes_skipped")
            .add(self.bytes_skipped);
    }
}

/// Incremental checkpoint writer for one rank's application image.
pub struct IncrementalCheckpointer {
    chunk_size: usize,
    /// Hash of each chunk at the last completed checkpoint.
    prev: Vec<u64>,
    image_len: usize,
}

impl IncrementalCheckpointer {
    /// A checkpointer for images of `image_len` bytes, diffed at
    /// `chunk_size` granularity. The first checkpoint writes everything.
    pub fn new(image_len: usize, chunk_size: usize) -> Self {
        assert!(chunk_size > 0);
        IncrementalCheckpointer {
            chunk_size,
            prev: Vec::new(),
            image_len,
        }
    }

    /// Chunk granularity.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Write `image` to `path` on `fs`, sending only changed chunks.
    /// The target file always holds the complete, current image afterwards
    /// (unchanged chunks are already there from previous checkpoints).
    pub fn checkpoint<D: BlockDevice>(
        &mut self,
        fs: &mut MicroFs<D>,
        path: &str,
        image: &[u8],
    ) -> Result<IncrementalReport, FsError> {
        assert_eq!(image.len(), self.image_len, "image size is fixed per run");
        let first = self.prev.is_empty();
        let fd = if first || fs.stat(path).is_err() {
            fs.open(path, OpenFlags::CREATE_TRUNC, 0o644)?
        } else {
            fs.open(
                path,
                OpenFlags {
                    write: true,
                    ..OpenFlags::RDONLY
                },
                0,
            )?
        };
        let mut report = IncrementalReport {
            chunks: 0,
            chunks_written: 0,
            bytes_written: 0,
            bytes_skipped: 0,
        };
        let mut new_hashes = Vec::with_capacity(image.len().div_ceil(self.chunk_size));
        for (i, chunk) in image.chunks(self.chunk_size).enumerate() {
            report.chunks += 1;
            let h = chunk_hash(chunk);
            new_hashes.push(h);
            let dirty = first || self.prev.get(i).is_none_or(|&p| p != h);
            if dirty {
                fs.pwrite(fd, (i * self.chunk_size) as u64, chunk)?;
                report.chunks_written += 1;
                report.bytes_written += chunk.len() as u64;
            } else {
                report.bytes_skipped += chunk.len() as u64;
            }
        }
        fs.fsync(fd)?;
        fs.close(fd)?;
        // Only commit the hash table once the checkpoint completed — a
        // failed checkpoint must not make future diffs skip its chunks.
        self.prev = new_hashes;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microfs::{FsConfig, MemDevice};

    fn fs() -> MicroFs<MemDevice> {
        MicroFs::format(MemDevice::new(64 << 20), FsConfig::default()).unwrap()
    }

    fn read_all(fs: &mut MicroFs<MemDevice>, path: &str, len: usize) -> Vec<u8> {
        let fd = fs.open(path, OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; len];
        let mut got = 0;
        while got < len {
            let n = fs.read(fd, &mut buf[got..]).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
        fs.close(fd).unwrap();
        buf
    }

    #[test]
    fn first_checkpoint_writes_everything() {
        let mut f = fs();
        let image = vec![1u8; 256 << 10];
        let mut inc = IncrementalCheckpointer::new(image.len(), 16 << 10);
        let r = inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        assert_eq!(r.chunks, 16);
        assert_eq!(r.chunks_written, 16);
        assert_eq!(r.write_fraction(), 1.0);
        assert_eq!(read_all(&mut f, "/inc.dat", image.len()), image);
    }

    #[test]
    fn unchanged_image_writes_nothing() {
        let mut f = fs();
        let image = vec![2u8; 128 << 10];
        let mut inc = IncrementalCheckpointer::new(image.len(), 16 << 10);
        inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        let r = inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        assert_eq!(r.chunks_written, 0);
        assert_eq!(r.bytes_written, 0);
    }

    #[test]
    fn only_dirty_chunks_rewritten_and_file_stays_complete() {
        let mut f = fs();
        let mut image = vec![0u8; 256 << 10];
        let chunk = 16usize << 10;
        let mut inc = IncrementalCheckpointer::new(image.len(), chunk);
        inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        // Dirty chunks 3 and 9.
        image[3 * chunk + 5] = 0xAA;
        image[9 * chunk] = 0xBB;
        let r = inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        assert_eq!(r.chunks_written, 2);
        assert_eq!(r.bytes_written, 2 * chunk as u64);
        assert_eq!(r.bytes_skipped, 14 * chunk as u64);
        assert!((r.write_fraction() - 2.0 / 16.0).abs() < 1e-12);
        assert_eq!(read_all(&mut f, "/inc.dat", image.len()), image);
        let t = telemetry::Telemetry::new();
        r.record(&t);
        let snap = t.snapshot();
        assert_eq!(snap.counter("incremental.chunks"), 16);
        assert_eq!(snap.counter("incremental.chunks_written"), 2);
        assert_eq!(snap.counter("incremental.bytes_skipped"), 14 * chunk as u64);
    }

    #[test]
    fn incremental_checkpoints_survive_crash_recovery() {
        let mut f = fs();
        let chunk = 8usize << 10;
        let mut image: Vec<u8> = (0..64 << 10).map(|i| (i % 249) as u8).collect();
        let mut inc = IncrementalCheckpointer::new(image.len(), chunk);
        inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        image[12345] ^= 0xFF;
        inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        // Crash + replay: the composed image must be the *newest* one.
        let dev = f.into_device();
        let mut f = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert_eq!(read_all(&mut f, "/inc.dat", image.len()), image);
    }

    #[test]
    fn savings_scale_with_dirty_fraction() {
        // The point of [31]: IO volume proportional to what changed.
        let mut f = fs();
        let chunk = 4usize << 10;
        let n = 64usize;
        let mut image = vec![0u8; n * chunk];
        let mut inc = IncrementalCheckpointer::new(image.len(), chunk);
        inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        for dirty in [4usize, 16, 32] {
            for c in 0..dirty {
                image[c * chunk] = image[c * chunk].wrapping_add(1);
            }
            let r = inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
            assert_eq!(r.chunks_written as usize, dirty);
        }
    }

    #[test]
    fn tail_partial_chunk_handled() {
        let mut f = fs();
        let image = vec![7u8; (16 << 10) + 123];
        let mut inc = IncrementalCheckpointer::new(image.len(), 16 << 10);
        let r = inc.checkpoint(&mut f, "/inc.dat", &image).unwrap();
        assert_eq!(r.chunks, 2);
        assert_eq!(r.bytes_written, image.len() as u64);
        assert_eq!(read_all(&mut f, "/inc.dat", image.len()), image);
    }
}
