//! Checkpoint IO patterns: N-N and N-1 (§III-E, citing PLFS \[24\]).
//!
//! "In the N-1 pattern, processes write to a single shared file, whereas in
//! the N-N pattern each process writes to a unique file. Recent work has
//! estimated that 90% of application runs use the N-N pattern." NVMe-CR's
//! private namespaces are designed for N-N; the N-1 plan is provided so
//! harnesses can show why it does not fit private namespaces (each rank
//! would need coordination on a shared offset space).

/// One planned write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOp {
    /// Issuing rank.
    pub rank: u32,
    /// Target file path.
    pub path: String,
    /// File offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A checkpoint IO pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPattern {
    /// Each rank writes its own file sequentially.
    NN,
    /// All ranks write disjoint segments of one shared file.
    N1,
}

impl CheckpointPattern {
    /// The write plan for `procs` ranks each dumping `bytes_per_rank` in
    /// `write_size` chunks during checkpoint `ckpt`.
    pub fn plan(self, procs: u32, bytes_per_rank: u64, write_size: u64, ckpt: u32) -> Vec<WriteOp> {
        assert!(write_size > 0);
        let mut out = Vec::new();
        for rank in 0..procs {
            let (path, base) = match self {
                CheckpointPattern::NN => (crate::comd::CoMD::checkpoint_path(rank, ckpt), 0u64),
                CheckpointPattern::N1 => (
                    format!("/comd/shared_ckpt_{ckpt:03}.dat"),
                    u64::from(rank) * bytes_per_rank,
                ),
            };
            let mut off = 0;
            while off < bytes_per_rank {
                let len = write_size.min(bytes_per_rank - off);
                out.push(WriteOp {
                    rank,
                    path: path.clone(),
                    offset: base + off,
                    len,
                });
                off += len;
            }
        }
        out
    }

    /// Number of distinct files the plan touches.
    pub fn file_count(self, procs: u32) -> u32 {
        match self {
            CheckpointPattern::NN => procs,
            CheckpointPattern::N1 => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn nn_plan_one_file_per_rank_sequential() {
        let plan = CheckpointPattern::NN.plan(4, 10 << 20, 1 << 20, 0);
        let files: HashSet<&str> = plan.iter().map(|w| w.path.as_str()).collect();
        assert_eq!(files.len(), 4);
        assert_eq!(plan.len(), 4 * 10);
        // Per-rank writes are sequential from zero.
        let rank0: Vec<&WriteOp> = plan.iter().filter(|w| w.rank == 0).collect();
        for (i, w) in rank0.iter().enumerate() {
            assert_eq!(w.offset, i as u64 * (1 << 20));
        }
    }

    #[test]
    fn n1_plan_disjoint_segments_of_one_file() {
        let plan = CheckpointPattern::N1.plan(4, 8 << 20, 1 << 20, 2);
        let files: HashSet<&str> = plan.iter().map(|w| w.path.as_str()).collect();
        assert_eq!(files.len(), 1);
        // Coverage is disjoint and complete.
        let mut ranges: Vec<(u64, u64)> =
            plan.iter().map(|w| (w.offset, w.offset + w.len)).collect();
        ranges.sort_unstable();
        let mut cursor = 0;
        for (s, e) in ranges {
            assert_eq!(s, cursor);
            cursor = e;
        }
        assert_eq!(cursor, 4 * (8 << 20));
    }

    #[test]
    fn partial_tail_write() {
        let plan = CheckpointPattern::NN.plan(1, (1 << 20) + 5, 1 << 20, 0);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[1].len, 5);
    }

    #[test]
    fn file_counts() {
        assert_eq!(CheckpointPattern::NN.file_count(448), 448);
        assert_eq!(CheckpointPattern::N1.file_count(448), 1);
    }
}
