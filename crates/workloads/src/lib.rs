//! # nvmecr-workloads — applications, patterns, and experiment drivers
//!
//! The paper evaluates with ECP CoMD, a molecular-dynamics proxy app that
//! alternates compute phases with N-N checkpoint dumps. This crate holds:
//!
//! * [`comd`] — the CoMD-like application model: atoms, deterministic
//!   checkpoint payloads (real bytes for functional runs), compute-phase
//!   timing, and the paper's weak/strong scaling presets;
//! * [`pattern`] — N-N and N-1 checkpoint write plans (§III-E: the paper
//!   targets N-N, citing that ~90% of runs use it \[39\]);
//! * [`nvmecr_model`] — NVMe-CR as a [`baselines::StorageModel`], including
//!   the Figure 7(d) drilldown ladder, the hugeblock-size sweep of
//!   Figure 7(a), the local/remote split of Figure 8(a), and the
//!   coalescing on/off recovery ablation of §IV-I;
//! * [`incremental`] — hash-based incremental checkpointing, the
//!   complementary technique the paper cites as combinable (\[31\], §II-B);
//! * [`driver`] — experiment drivers: model-level scaling sweeps
//!   (Figure 9), the multi-level checkpointing evaluation (Table II), and
//!   a *functional* driver that runs real bytes through the full
//!   `nvmecr` + `microfs` + `fabric` + `ssd` stack with crash/recovery
//!   verification.

pub mod apps;
pub mod comd;
pub mod driver;
pub mod incremental;
pub mod interval;
pub mod n1;
pub mod nvmecr_model;
pub mod pattern;
pub mod trace;

pub use apps::PhasedApp;
pub use comd::CoMD;
pub use driver::{
    multilevel_eval, run_functional_checkpoints, run_functional_checkpoints_tuned,
    run_functional_checkpoints_with, run_incremental_checkpoints, scaling_sweep, DriveMode,
    FunctionalReport, FunctionalTuning, IncrementalImage, IncrementalRunReport, IncrementalSpec,
    IncrementalStrategy, MultiLevelResult, ScalingPoint, INCREMENTAL_CHUNK,
};
pub use incremental::{IncrementalCheckpointer, IncrementalReport};
pub use interval::{best_efficiency, daly_interval, young_interval};
pub use n1::N1Adapter;
pub use nvmecr_model::NvmeCrModel;
pub use pattern::{CheckpointPattern, WriteOp};
pub use trace::{IoTrace, TraceOp};
