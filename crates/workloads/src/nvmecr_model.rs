//! NVMe-CR as a [`StorageModel`] — the timing model of the functional
//! runtime in the `nvmecr` crate.
//!
//! The model composes the same mechanism vocabulary as the baselines, with
//! the paper's design choices: userspace SPDK path, private per-process
//! namespaces (no serialized creates), round-robin balanced placement,
//! compact provenance records instead of shipped metadata, and
//! hugeblock-sized device requests. The Figure 7(d) drilldown ladder is
//! expressed by constructing the model at earlier [`DrilldownLevel`]s.

use baselines::dagutil;
use baselines::model::{MetadataOverhead, StorageModel};
use baselines::scenario::Scenario;
use baselines::spec::{DataPlaneSpec, PlacementPolicy};
use fabric::{IoPath, NetConfig};
use nvmecr::config::DrilldownLevel;
use simkit::{Rate, SimTime};

/// The NVMe-CR runtime's timing model.
pub struct NvmeCrModel {
    level: DrilldownLevel,
    coalescing: bool,
    block_size: Option<u64>,
    local: bool,
    /// Checkpoints accumulated in the log since the last internal-state
    /// snapshot (drives replay length at recovery; the paper's runs take
    /// 10 checkpoints).
    ckpts_in_log: u32,
}

impl Default for NvmeCrModel {
    fn default() -> Self {
        Self::full()
    }
}

impl NvmeCrModel {
    /// The complete design: userspace + private namespaces + provenance +
    /// hugeblocks + coalescing.
    pub fn full() -> Self {
        NvmeCrModel {
            level: DrilldownLevel::Hugeblocks,
            coalescing: true,
            block_size: None,
            local: false,
            ckpts_in_log: 10,
        }
    }

    /// A rung of the Figure 7(d) drilldown ladder.
    pub fn at_level(level: DrilldownLevel) -> Self {
        NvmeCrModel {
            level,
            ..Self::full()
        }
    }

    /// Override the hugeblock size (the Figure 7(a) sweep).
    pub fn with_block_size(block_size: u64) -> Self {
        NvmeCrModel {
            block_size: Some(block_size),
            ..Self::full()
        }
    }

    /// Disable log record coalescing (§IV-I recovery ablation).
    pub fn without_coalescing() -> Self {
        NvmeCrModel {
            coalescing: false,
            ..Self::full()
        }
    }

    /// Access a *local* SSD instead of NVMf (Figure 8(a)'s comparison):
    /// the fabric becomes a DMA engine — huge bandwidth, sub-µs latency.
    pub fn local() -> Self {
        NvmeCrModel {
            local: true,
            ..Self::full()
        }
    }

    /// Builder-style: set checkpoints accumulated in the log.
    pub fn with_ckpts_in_log(mut self, n: u32) -> Self {
        self.ckpts_in_log = n;
        self
    }

    /// Local SSD with an explicit hugeblock size (the Figure 7(a) sweep
    /// runs on a local device).
    pub fn local_with_block_size(block_size: u64) -> Self {
        NvmeCrModel {
            local: true,
            ..Self::with_block_size(block_size)
        }
    }

    /// Local SSD at a drilldown rung (Figure 7(d) runs on one node).
    pub fn local_at_level(level: DrilldownLevel) -> Self {
        NvmeCrModel {
            local: true,
            ..Self::at_level(level)
        }
    }

    fn block_size_of(&self) -> u64 {
        self.block_size.unwrap_or_else(|| self.level.block_size())
    }

    fn replay_records(&self, s: &Scenario) -> u64 {
        let writes_per_ckpt = s.bytes_per_proc.div_ceil(s.app_write_size);
        let per_ckpt = if self.coalescing {
            // Sequential dumps coalesce to ~2 records per file (the dirent
            // write plus the merged data record).
            2
        } else {
            writes_per_ckpt
        };
        per_ckpt * u64::from(self.ckpts_in_log)
    }

    fn spec(&self, s: &Scenario) -> DataPlaneSpec {
        let block = self.block_size_of();
        let userspace = self.level.userspace_private();
        // Replay cost per log record at recovery: B+Tree insert, block-map
        // extension, and a log-region read share. Calibrated against the
        // paper's 3.6 s vs 4.0 s recovery with/without coalescing (§IV-I).
        let replay = SimTime::micros(250.0) * self.replay_records(s) as f64;
        DataPlaneSpec {
            // Pre-userspace rungs run over a POSIX kernel filesystem whose
            // layering caps attainable bandwidth (the Fig 1/7c argument).
            layer_efficiency: if userspace { 1.0 } else { 0.60 },
            request_size: block,
            path: if userspace {
                IoPath::Userspace
            } else {
                IoPath::Kernel
            },
            placement: PlacementPolicy::RoundRobin,
            // A global namespace serializes creates (pre-private-ns rungs).
            create_serialized: (!userspace).then(|| SimTime::micros(150.0)),
            create_client: SimTime::micros(8.0),
            // Metadata provenance: a Write record is 25 payload + 10 header
            // bytes; without it, physical redo images (inode + block-map
            // pages) ship with every write (§III-E "large sized physical
            // log records").
            write_meta_bytes: if self.level.provenance() {
                64
            } else {
                128 << 10
            },
            meta_server_op: None,
            // Host CPU per device request: SPDK submit + completion poll
            // plus O(1) circular-pool allocation; bitmap allocation and
            // journal bookkeeping cost more on the pre-provenance rungs.
            alloc_per_block: if self.level.provenance() {
                SimTime::micros(0.7)
            } else {
                SimTime::micros(1.1)
            },
            // Create persists one hugeblock-unit dirent append plus the
            // log record.
            create_device_bytes: block + 64,
            recovery_prologue: replay,
            ..DataPlaneSpec::base("NVMe-CR")
        }
    }

    fn scenario_of(&self, s: &Scenario) -> Scenario {
        if self.local {
            // Local PCIe access: model the fabric as a near-free DMA hop.
            Scenario {
                net: NetConfig {
                    link_bw: Rate::gib_per_sec(256.0),
                    base_latency: SimTime::nanos(300.0),
                    per_message_cpu: SimTime::nanos(100.0),
                    per_hop_latency: SimTime::ZERO,
                },
                ..s.clone()
            }
        } else {
            s.clone()
        }
    }

    /// The drilldown level in effect.
    pub fn level(&self) -> DrilldownLevel {
        self.level
    }
}

impl StorageModel for NvmeCrModel {
    fn name(&self) -> &'static str {
        "NVMe-CR"
    }

    fn checkpoint_makespan(&self, s: &Scenario) -> SimTime {
        let s = self.scenario_of(s);
        dagutil::checkpoint_makespan(&s, &self.spec(&s))
    }

    fn recovery_makespan(&self, s: &Scenario) -> SimTime {
        let s = self.scenario_of(s);
        dagutil::recovery_makespan(&s, &self.spec(&s))
    }

    fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64 {
        let s = self.scenario_of(s);
        dagutil::create_rate(&s, &self.spec(&s), creates_per_proc)
    }

    fn server_loads(&self, s: &Scenario) -> Vec<f64> {
        // The storage balancer allocates SSDs by the paper's 56-112
        // procs-per-SSD rule (§III-F) and round-robins ranks over exactly
        // those, so the load is perfectly equal at every concurrency
        // ("NVMe-CR achieves perfect load balancing regardless of the
        // level of concurrency", §IV-C).
        let allocated = s.procs.div_ceil(56).clamp(1, s.servers);
        let scenario = Scenario {
            servers: allocated,
            ..s.clone()
        };
        dagutil::server_loads(&scenario, &self.spec(s))
    }

    fn metadata_overhead(&self, s: &Scenario) -> MetadataOverhead {
        // Per-runtime device-resident metadata: the microfs partition
        // reserves ~1% for the operation log and two 4% snapshot slots;
        // add the dirent blocks. Partition = namespace / ranks sharing it.
        let ranks_per_ssd = u64::from(s.procs.div_ceil(s.servers)).max(1);
        let partition = (8u64 << 30) / ranks_per_ssd;
        let reserved = partition / 100 + 2 * (partition / 25).max(1 << 20);
        MetadataOverhead {
            per_server_bytes: 0,
            per_runtime_bytes: reserved + self.block_size_of(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_perfect_efficiency_at_448() {
        let m = NvmeCrModel::full();
        let s = Scenario::weak_scaling(448);
        let ckpt = m.checkpoint_efficiency(&s);
        let rec = m.recovery_efficiency(&s);
        assert!(ckpt > 0.90, "checkpoint efficiency {ckpt} (paper: 0.96)");
        assert!(rec > 0.93, "recovery efficiency {rec} (paper: 0.99)");
    }

    #[test]
    fn beats_every_baseline_at_scale() {
        use baselines::{GlusterFsModel, OrangeFsModel};
        let s = Scenario::weak_scaling(448);
        let ours = NvmeCrModel::full().checkpoint_efficiency(&s);
        assert!(ours > GlusterFsModel::new().checkpoint_efficiency(&s));
        assert!(ours > OrangeFsModel::new().checkpoint_efficiency(&s) * 2.0);
    }

    #[test]
    fn hugeblock_sweep_has_32k_optimum() {
        // Figure 7(a): 28 procs, 512 MB each, one local SSD.
        let s = Scenario::single_node(512 << 20);
        let time_at = |bs: u64| {
            NvmeCrModel {
                local: true,
                ..NvmeCrModel::with_block_size(bs)
            }
            .checkpoint_makespan(&s)
            .as_secs()
        };
        let t4k = time_at(4 << 10);
        let t32k = time_at(32 << 10);
        let t1m = time_at(1 << 20);
        assert!(
            t4k > t32k * 1.04 && t4k < t32k * 1.15,
            "4K should be ~7% slower than 32K: {t4k} vs {t32k}"
        );
        assert!(
            t1m > t32k * 1.15,
            "oversized blocks must be penalized: {t1m} vs {t32k}"
        );
    }

    #[test]
    fn drilldown_ladder_improves_monotonically() {
        // Figure 7(d): each added optimization lowers checkpoint time.
        let times_at = |procs: u32| -> Vec<f64> {
            let s = Scenario {
                servers: 1,
                ..Scenario::new(procs, 512 << 20)
            };
            DrilldownLevel::ladder()
                .iter()
                .map(|&l| {
                    NvmeCrModel {
                        local: true,
                        ..NvmeCrModel::at_level(l)
                    }
                    .checkpoint_makespan(&s)
                    .as_secs()
                })
                .collect()
        };
        let full = times_at(28);
        for w in full.windows(2) {
            assert!(w[1] < w[0], "each drilldown rung must improve: {full:?}");
        }
        // The full design is substantially better than the base.
        assert!(full[0] > full[3] * 1.4, "{full:?}");
        // Hugeblocks matter most at low concurrency ("the improvement is
        // mostly noticeable at low concurrency", SIV-E).
        let solo = times_at(1);
        let hugeblock_gain_solo = solo[2] / solo[3];
        assert!(
            hugeblock_gain_solo > 1.2,
            "hugeblocks at 1 proc should give >20%: {solo:?}"
        );
    }

    #[test]
    fn nvmf_overhead_is_small() {
        // Figure 8(a): remote vs local within ~3.5%.
        let s = Scenario::single_node(512 << 20);
        let local = NvmeCrModel::local().checkpoint_makespan(&s).as_secs();
        let remote = NvmeCrModel::full().checkpoint_makespan(&s).as_secs();
        let overhead = remote / local - 1.0;
        assert!(
            (0.0..0.05).contains(&overhead),
            "NVMf overhead should be <~3.5%: {overhead}"
        );
    }

    #[test]
    fn coalescing_speeds_up_recovery() {
        let s = Scenario::weak_scaling(448);
        let with = NvmeCrModel::full().recovery_makespan(&s).as_secs();
        let without = NvmeCrModel::without_coalescing()
            .recovery_makespan(&s)
            .as_secs();
        let delta = without - with;
        assert!(
            (0.1..1.5).contains(&delta),
            "replay saving should be ~0.4s over a 10-ckpt log: {delta}"
        );
    }

    #[test]
    fn create_rate_ratios_match_figure_8b() {
        use baselines::{GlusterFsModel, OrangeFsModel};
        let s = Scenario::weak_scaling(448);
        let ours = NvmeCrModel::full().create_rate(&s, 5);
        let gluster = GlusterFsModel::new().create_rate(&s, 5);
        let orange = OrangeFsModel::new().create_rate(&s, 5);
        let r_g = ours / gluster;
        let r_o = ours / orange;
        assert!((4.0..12.0).contains(&r_g), "vs GlusterFS ~7x, got {r_g}");
        assert!((10.0..30.0).contains(&r_o), "vs OrangeFS ~18x, got {r_o}");
        assert!(r_o > r_g, "OrangeFS must trail GlusterFS");
    }

    #[test]
    fn perfect_load_balance() {
        let m = NvmeCrModel::full();
        assert_eq!(m.load_cov(&Scenario::weak_scaling(448)), 0.0);
        assert_eq!(m.load_cov(&Scenario::weak_scaling(56)), 0.0);
    }
}
