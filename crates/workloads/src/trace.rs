//! IO trace recording and replay.
//!
//! Checkpoint studies live and die by traces: record the exact operation
//! stream an application issues, then replay it against a different
//! configuration (block size, coalescing, another system model). The trace
//! is a compact line format (one op per line) so traces can be shipped,
//! diffed, and hand-edited.
//!
//! ```text
//! mkdir /comd 493
//! create /comd/ckpt.dat 420
//! write /comd/ckpt.dat 0 1048576
//! close /comd/ckpt.dat
//! ```

use std::fmt::Write as _;

use microfs::block::BlockDevice;
use microfs::{FsError, MicroFs, OpenFlags};

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// `mkdir(path, mode)`.
    Mkdir {
        /// Directory path.
        path: String,
        /// Mode bits.
        mode: u32,
    },
    /// `creat(path, mode)`.
    Create {
        /// File path.
        path: String,
        /// Mode bits.
        mode: u32,
    },
    /// `pwrite(path, offset, len)` (payload is synthesized on replay).
    Write {
        /// File path.
        path: String,
        /// File offset.
        offset: u64,
        /// Length.
        len: u64,
    },
    /// `close(path)` — closes the traced file's replay fd.
    Close {
        /// File path.
        path: String,
    },
    /// `unlink(path)`.
    Unlink {
        /// File path.
        path: String,
    },
}

/// A recorded operation stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoTrace {
    /// Operations in issue order.
    pub ops: Vec<TraceOp>,
}

impl IoTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the trace of one rank dumping `bytes` in `write_size` chunks
    /// to `path` — the canonical N-N checkpoint stream.
    pub fn nn_checkpoint(path: &str, bytes: u64, write_size: u64) -> Self {
        let mut t = IoTrace::new();
        if let Some(idx) = path.rfind('/') {
            if idx > 0 {
                t.ops.push(TraceOp::Mkdir {
                    path: path[..idx].to_string(),
                    mode: 0o755,
                });
            }
        }
        t.ops.push(TraceOp::Create {
            path: path.to_string(),
            mode: 0o644,
        });
        let mut off = 0;
        while off < bytes {
            let len = write_size.min(bytes - off);
            t.ops.push(TraceOp::Write {
                path: path.to_string(),
                offset: off,
                len,
            });
            off += len;
        }
        t.ops.push(TraceOp::Close {
            path: path.to_string(),
        });
        t
    }

    /// Serialize to the line format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match op {
                TraceOp::Mkdir { path, mode } => writeln!(out, "mkdir {path} {mode}"),
                TraceOp::Create { path, mode } => writeln!(out, "create {path} {mode}"),
                TraceOp::Write { path, offset, len } => {
                    writeln!(out, "write {path} {offset} {len}")
                }
                TraceOp::Close { path } => writeln!(out, "close {path}"),
                TraceOp::Unlink { path } => writeln!(out, "unlink {path}"),
            }
            .expect("string write");
        }
        out
    }

    /// Parse the line format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut t = IoTrace::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let verb = parts.next().unwrap();
            let mut arg = |name: &str| {
                parts
                    .next()
                    .map(str::to_string)
                    .ok_or(format!("line {}: missing {name}", ln + 1))
            };
            let op = match verb {
                "mkdir" | "create" => {
                    let path = arg("path")?;
                    let mode: u32 = arg("mode")?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", ln + 1))?;
                    if verb == "mkdir" {
                        TraceOp::Mkdir { path, mode }
                    } else {
                        TraceOp::Create { path, mode }
                    }
                }
                "write" => TraceOp::Write {
                    path: arg("path")?,
                    offset: arg("offset")?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", ln + 1))?,
                    len: arg("len")?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", ln + 1))?,
                },
                "close" => TraceOp::Close { path: arg("path")? },
                "unlink" => TraceOp::Unlink { path: arg("path")? },
                other => return Err(format!("line {}: unknown verb {other}", ln + 1)),
            };
            t.ops.push(op);
        }
        Ok(t)
    }

    /// Total bytes the trace writes.
    pub fn bytes_written(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Write { len, .. } => *len,
                _ => 0,
            })
            .sum()
    }

    /// Replay against a filesystem; payloads are a deterministic fill.
    /// Returns the number of operations applied.
    pub fn replay<D: BlockDevice>(&self, fs: &mut MicroFs<D>) -> Result<usize, FsError> {
        use std::collections::HashMap;
        let mut fds: HashMap<&str, u32> = HashMap::new();
        let mut applied = 0;
        for op in &self.ops {
            match op {
                TraceOp::Mkdir { path, mode } => {
                    // Idempotent mkdir, like `mkdir -p` for traced dirs.
                    match fs.mkdir(path, *mode) {
                        Ok(()) | Err(FsError::AlreadyExists(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                TraceOp::Create { path, mode } => {
                    let fd = fs.open(path, OpenFlags::CREATE_TRUNC, *mode)?;
                    fds.insert(path, fd);
                }
                TraceOp::Write { path, offset, len } => {
                    let fd = *fds
                        .get(path.as_str())
                        .ok_or_else(|| FsError::Invalid(format!("write before create: {path}")))?;
                    let payload = vec![(offset % 251) as u8; *len as usize];
                    fs.pwrite(fd, *offset, &payload)?;
                }
                TraceOp::Close { path } => {
                    if let Some(fd) = fds.remove(path.as_str()) {
                        fs.close(fd)?;
                    }
                }
                TraceOp::Unlink { path } => fs.unlink(path)?,
            }
            applied += 1;
        }
        // Close anything the trace left open.
        for (_, fd) in fds {
            fs.close(fd)?;
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microfs::{FsConfig, MemDevice};

    #[test]
    fn text_roundtrip() {
        let t = IoTrace::nn_checkpoint("/comd/rank0.dat", 3 << 20, 1 << 20);
        let text = t.to_text();
        let parsed = IoTrace::from_text(&text).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(t.bytes_written(), 3 << 20);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(IoTrace::from_text("destroy /x").is_err());
        assert!(IoTrace::from_text("write /x notanumber 5").is_err());
        assert!(IoTrace::from_text("mkdir /x").is_err());
        // Comments and blanks are fine.
        let t = IoTrace::from_text("# header\n\ncreate /f 420\nclose /f\n").unwrap();
        assert_eq!(t.ops.len(), 2);
    }

    #[test]
    fn replay_produces_the_file() {
        let t = IoTrace::nn_checkpoint("/comd/rank0.dat", 2 << 20, 512 << 10);
        let mut fs = MicroFs::format(MemDevice::new(32 << 20), FsConfig::default()).unwrap();
        let applied = t.replay(&mut fs).unwrap();
        assert_eq!(applied, t.ops.len());
        assert_eq!(fs.stat("/comd/rank0.dat").unwrap().size, 2 << 20);
        // Sequential writes in the trace coalesced in the log.
        assert!(fs.stats().wal.coalesced >= 2);
    }

    #[test]
    fn replay_against_different_block_sizes() {
        // The point of traces: same stream, different configuration.
        let t = IoTrace::nn_checkpoint("/d/x.dat", 1 << 20, 128 << 10);
        for bs in [4u64 << 10, 32 << 10, 256 << 10] {
            let config = FsConfig {
                block_size: bs,
                ..FsConfig::default()
            };
            let mut fs = MicroFs::format(MemDevice::new(64 << 20), config).unwrap();
            t.replay(&mut fs).unwrap();
            assert_eq!(fs.stat("/d/x.dat").unwrap().size, 1 << 20, "bs={bs}");
        }
    }

    #[test]
    fn write_before_create_is_an_error() {
        let t = IoTrace {
            ops: vec![TraceOp::Write {
                path: "/x".into(),
                offset: 0,
                len: 10,
            }],
        };
        let mut fs = MicroFs::format(MemDevice::new(32 << 20), FsConfig::default()).unwrap();
        assert!(matches!(t.replay(&mut fs), Err(FsError::Invalid(_))));
    }

    #[test]
    fn unclosed_files_are_closed_at_end() {
        let t = IoTrace {
            ops: vec![
                TraceOp::Create {
                    path: "/x".into(),
                    mode: 0o644,
                },
                TraceOp::Write {
                    path: "/x".into(),
                    offset: 0,
                    len: 100,
                },
            ],
        };
        let mut fs = MicroFs::format(MemDevice::new(32 << 20), FsConfig::default()).unwrap();
        t.replay(&mut fs).unwrap();
        assert_eq!(fs.open_files(), 0);
    }
}
