//! The broader ECP proxy-app suite (§IV-A): "Most applications in the ECP
//! application suite, including AMG, Ember, ExaMiniMD, and miniAMR have
//! similar behavior and are likely to show similar improvements as CoMD."
//!
//! Each app is a [`PhasedApp`]: a compute phase of some intensity followed
//! by an N-N dump of some size, repeated. They differ in *checkpoint
//! density* (bytes dumped per second of compute), which is what moves the
//! progress-rate needle; the suite harness verifies the paper's claim that
//! NVMe-CR's advantage persists across the suite.

use simkit::SimTime;

/// A compute/checkpoint phase-structured application.
#[derive(Debug, Clone)]
pub struct PhasedApp {
    /// Display name.
    pub name: &'static str,
    /// Compute time between checkpoints, per rank.
    pub compute_interval: SimTime,
    /// Checkpoint bytes per rank per dump.
    pub bytes_per_rank: u64,
}

impl PhasedApp {
    /// Checkpoint density: bytes dumped per second of compute.
    pub fn density(&self) -> f64 {
        self.bytes_per_rank as f64 / self.compute_interval.as_secs()
    }

    /// Application progress rate given a per-checkpoint dump time.
    pub fn progress_rate(&self, dump: SimTime) -> f64 {
        self.compute_interval.as_secs() / (self.compute_interval + dump).as_secs()
    }

    /// CoMD: molecular dynamics, the paper's primary subject.
    pub fn comd() -> Self {
        PhasedApp {
            name: "CoMD",
            compute_interval: SimTime::secs(3.3),
            bytes_per_rank: 156 << 20,
        }
    }

    /// AMG: algebraic multigrid — larger state (matrices + vectors),
    /// longer solve phases.
    pub fn amg() -> Self {
        PhasedApp {
            name: "AMG",
            compute_interval: SimTime::secs(10.0),
            bytes_per_rank: 320 << 20,
        }
    }

    /// Ember: communication proxy — small state, frequent dumps.
    pub fn ember() -> Self {
        PhasedApp {
            name: "Ember",
            compute_interval: SimTime::secs(1.2),
            bytes_per_rank: 48 << 20,
        }
    }

    /// ExaMiniMD: MD like CoMD, somewhat denser dumps.
    pub fn examinimd() -> Self {
        PhasedApp {
            name: "ExaMiniMD",
            compute_interval: SimTime::secs(2.5),
            bytes_per_rank: 180 << 20,
        }
    }

    /// miniAMR: adaptive mesh refinement — bursty, mid-size dumps.
    pub fn miniamr() -> Self {
        PhasedApp {
            name: "miniAMR",
            compute_interval: SimTime::secs(4.5),
            bytes_per_rank: 96 << 20,
        }
    }

    /// The suite evaluated in the harness.
    pub fn suite() -> Vec<PhasedApp> {
        vec![
            Self::comd(),
            Self::amg(),
            Self::ember(),
            Self::examinimd(),
            Self::miniamr(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmeCrModel;
    use baselines::model::StorageModel;
    use baselines::{OrangeFsModel, Scenario};

    #[test]
    fn densities_differ_across_the_suite() {
        let suite = PhasedApp::suite();
        let mut densities: Vec<f64> = suite.iter().map(PhasedApp::density).collect();
        densities.sort_by(f64::total_cmp);
        densities.dedup_by(|a, b| (*a - *b).abs() < 1.0);
        assert_eq!(
            densities.len(),
            suite.len(),
            "each app has a distinct density"
        );
    }

    #[test]
    fn progress_rate_decreases_with_dump_time() {
        let app = PhasedApp::comd();
        let fast = app.progress_rate(SimTime::secs(1.0));
        let slow = app.progress_rate(SimTime::secs(10.0));
        assert!(fast > slow);
        assert!((0.0..=1.0).contains(&fast) && (0.0..=1.0).contains(&slow));
    }

    #[test]
    fn nvmecr_advantage_holds_across_the_suite() {
        // §IV-A's claim: the other ECP apps "are likely to show similar
        // improvements as CoMD". Every app must see a better progress rate
        // on NVMe-CR than on OrangeFS at 448 procs.
        let ours = NvmeCrModel::full();
        let orange = OrangeFsModel::new();
        for app in PhasedApp::suite() {
            let s = Scenario::new(448, app.bytes_per_rank);
            let pr_ours = app.progress_rate(ours.checkpoint_makespan(&s));
            let pr_orange = app.progress_rate(orange.checkpoint_makespan(&s));
            assert!(
                pr_ours > pr_orange * 1.1,
                "{}: {pr_ours:.3} vs {pr_orange:.3}",
                app.name
            );
        }
    }
}
