//! CoMD-like application model.
//!
//! CoMD is a classical molecular-dynamics proxy app \[14\]; for checkpoint
//! purposes what matters is its phase structure (compute steps between
//! periodic dumps) and its dump content (per-atom state: position,
//! velocity, momentum, species — serialized as a flat record stream, one
//! file per rank in the N-N pattern).
//!
//! The paper's strong- and weak-scaling parameters imply different
//! per-atom checkpoint sizes (~525 B/atom for strong scaling's
//! 16,384K atoms / 86 GB; ~4.9 KB/atom for weak scaling's 32K atoms/rank /
//! 700 GB), so `bytes_per_atom` is explicit per experiment; DESIGN.md §4
//! records the discrepancy.

use simkit::SimTime;

/// One rank's slice of a CoMD run.
#[derive(Debug, Clone)]
pub struct CoMD {
    /// Atoms simulated by this rank.
    pub atoms_per_rank: u64,
    /// Checkpoint bytes per atom.
    pub bytes_per_atom: u64,
    /// Timesteps between checkpoints.
    pub steps_per_interval: u32,
    /// Compute time per atom per timestep (force evaluation dominates;
    /// Lennard-Jones CoMD runs ~1 µs/atom/step on a Broadwell core).
    pub compute_per_atom_step: SimTime,
}

impl CoMD {
    /// Weak-scaling preset (§IV-H): 32K atoms per rank, sized so each rank
    /// dumps 156.25 MiB per checkpoint (700 GB / 10 checkpoints / 448).
    pub fn weak_scaling() -> Self {
        CoMD {
            atoms_per_rank: 32 << 10,
            bytes_per_atom: (156 << 20) / (32 << 10),
            steps_per_interval: 100,
            compute_per_atom_step: SimTime::micros(1.0),
        }
    }

    /// Strong-scaling preset (§IV-H): 16,384K atoms total, 86 GB over 10
    /// checkpoints (~525 B/atom).
    pub fn strong_scaling(procs: u32) -> Self {
        let total_atoms: u64 = 16_384 << 10;
        CoMD {
            atoms_per_rank: total_atoms / u64::from(procs),
            bytes_per_atom: 525,
            steps_per_interval: 100,
            compute_per_atom_step: SimTime::micros(1.0),
        }
    }

    /// Bytes this rank writes per checkpoint.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.atoms_per_rank * self.bytes_per_atom
    }

    /// Compute time of one inter-checkpoint interval.
    pub fn compute_interval(&self) -> SimTime {
        self.compute_per_atom_step
            * (self.atoms_per_rank as f64 * f64::from(self.steps_per_interval))
    }

    /// Deterministic checkpoint payload for `(rank, ckpt)` — stands in for
    /// the serialized atom state. Functional tests verify these bytes
    /// survive crash/recovery exactly.
    pub fn checkpoint_payload(&self, rank: u32, ckpt: u32, len: usize) -> Vec<u8> {
        // SplitMix64 stream seeded by (rank, ckpt): fast, deterministic,
        // incompressible-ish — like real double-precision atom state.
        let mut z = (u64::from(rank) << 32) ^ u64::from(ckpt) ^ 0x9E37_79B9_7F4A_7C15;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    /// The checkpoint file path this rank writes for checkpoint `ckpt`.
    pub fn checkpoint_path(rank: u32, ckpt: u32) -> String {
        format!("/comd/ckpt_{ckpt:03}/rank_{rank:05}.dat")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_totals() {
        let c = CoMD::weak_scaling();
        let total = c.checkpoint_bytes() * 448 * 10;
        assert!((650e9..750e9).contains(&(total as f64)), "{total}");
    }

    #[test]
    fn strong_scaling_totals() {
        let c = CoMD::strong_scaling(448);
        let total = c.checkpoint_bytes() * 448 * 10;
        assert!((80e9..92e9).contains(&(total as f64)), "{total}");
        // Atoms conserved across decompositions (up to rounding).
        let c2 = CoMD::strong_scaling(112);
        assert!(c2.atoms_per_rank > c.atoms_per_rank * 3);
    }

    #[test]
    fn payload_is_deterministic_and_rank_unique() {
        let c = CoMD::weak_scaling();
        let a = c.checkpoint_payload(3, 1, 4096);
        let b = c.checkpoint_payload(3, 1, 4096);
        let other = c.checkpoint_payload(4, 1, 4096);
        assert_eq!(a, b);
        assert_ne!(a, other);
        assert_eq!(a.len(), 4096);
        // Odd lengths work.
        assert_eq!(c.checkpoint_payload(0, 0, 1001).len(), 1001);
    }

    #[test]
    fn compute_interval_scales_with_atoms() {
        let small = CoMD {
            atoms_per_rank: 1000,
            ..CoMD::weak_scaling()
        };
        let big = CoMD {
            atoms_per_rank: 10_000,
            ..CoMD::weak_scaling()
        };
        assert!(big.compute_interval() > small.compute_interval() * 9.0);
    }

    #[test]
    fn paths_are_distinct_per_rank_and_ckpt() {
        assert_ne!(CoMD::checkpoint_path(0, 0), CoMD::checkpoint_path(1, 0));
        assert_ne!(CoMD::checkpoint_path(0, 0), CoMD::checkpoint_path(0, 1));
    }
}
