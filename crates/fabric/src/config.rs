//! Network and software-stack calibration constants.

use simkit::{Rate, SimTime};

/// RDMA fabric parameters. Defaults approximate the paper's 100 Gbps EDR
/// InfiniBand with ConnectX-5 adapters (§IV-A).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-link bandwidth (EDR: 100 Gbps ≈ 12.5 GB/s).
    pub link_bw: Rate,
    /// End-to-end base latency of one RDMA message (NIC-to-NIC).
    pub base_latency: SimTime,
    /// Host CPU cost to post one RDMA work request and poll its completion.
    pub per_message_cpu: SimTime,
    /// Additional propagation/forwarding latency per switch hop.
    pub per_hop_latency: SimTime,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link_bw: Rate::gbit_per_sec(100.0),
            base_latency: SimTime::micros(1.5),
            per_message_cpu: SimTime::micros(0.3),
            per_hop_latency: SimTime::micros(0.15),
        }
    }
}

impl NetConfig {
    /// Wire latency for a message crossing `hops` switches.
    pub fn latency(&self, hops: u32) -> SimTime {
        self.base_latency + self.per_hop_latency * f64::from(hops)
    }

    /// The paper's fabric: 100 Gbps EDR InfiniBand.
    pub fn edr() -> Self {
        NetConfig::default()
    }

    /// 200 Gbps HDR InfiniBand (a next-generation deployment).
    pub fn hdr() -> Self {
        NetConfig {
            link_bw: Rate::gbit_per_sec(200.0),
            base_latency: SimTime::micros(1.2),
            ..NetConfig::default()
        }
    }

    /// 25 Gbps Ethernet with kernel TCP — the "commodity fabric" point
    /// the sensitivity sweep shows to be marginal for one SSD.
    pub fn tcp25g() -> Self {
        NetConfig {
            link_bw: Rate::gbit_per_sec(25.0),
            base_latency: SimTime::micros(15.0),
            per_message_cpu: SimTime::micros(2.0),
            per_hop_latency: SimTime::micros(1.0),
        }
    }
}

/// Per-command reliability parameters for the initiator: bounded
/// exponential backoff with a modeled command timeout. Backoff and timeout
/// are *modeled* time — they are charged to `fabric.backoff_ns` /
/// `fabric.timeouts` rather than slept, matching how the rest of the
/// workspace accounts simulated latency.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Attempts after the first before a command is declared exhausted.
    pub max_retries: u32,
    /// Backoff before retry #1; doubles per retry.
    pub base_backoff_ns: u64,
    /// Backoff ceiling.
    pub max_backoff_ns: u64,
    /// Modeled time the initiator waits for a response before declaring
    /// the command lost.
    pub command_timeout_ns: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 8,
            base_backoff_ns: 10_000,       // 10 µs
            max_backoff_ns: 10_000_000,    // 10 ms
            command_timeout_ns: 1_000_000, // 1 ms
        }
    }
}

impl RetryConfig {
    /// Backoff before retry number `attempt` (1-based), exponentially
    /// doubled from the base and clamped to the ceiling.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1);
        let backed = if shift >= self.base_backoff_ns.leading_zeros() {
            u64::MAX // doubling would overflow: saturate
        } else {
            self.base_backoff_ns << shift
        };
        backed.min(self.max_backoff_ns)
    }
}

/// Initiator-side data-plane tuning: the submission window and the CQ poll
/// batches, plus the per-command retry policy.
///
/// The paper's scalability rests on deep NVMe queues (the P4800X exposes 32
/// hardware queues; SPDK keeps many commands in flight per queue pair), so
/// the initiator posts up to [`FabricConfig::queue_depth`] command capsules
/// before polling for completions instead of running lock-step.
///
/// The poll batches bound how many completions one `poll_cq` call drains.
/// Each poll iteration costs one [`NetConfig::per_message_cpu`]-scale CPU
/// charge (~0.3 µs on EDR) regardless of how many completions it returns,
/// so draining in batches amortises that cost: a batch of 16 cuts the
/// per-completion poll overhead ~16× versus polling one at a time, while
/// keeping the drain loop's working set (decoded capsules held live) small
/// enough to stay cache-resident.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Command capsules the initiator keeps in flight per connection
    /// before it must poll for completions (the QD of the submission
    /// window). 32 matches the device's hardware queue count.
    pub queue_depth: usize,
    /// Completions drained per initiator-side `poll_cq` call.
    pub initiator_poll_batch: usize,
    /// Command capsules drained per target-daemon poll iteration; the
    /// whole batch is decoded, executed, and responded to before the next
    /// poll (the batched reactor iteration).
    pub target_poll_batch: usize,
    /// Per-command retry/backoff policy.
    pub retry: RetryConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            queue_depth: 32,
            initiator_poll_batch: 16,
            target_poll_batch: 8,
            retry: RetryConfig::default(),
        }
    }
}

/// Per-operation costs of the kernel IO stack (Figure 2): this is what the
/// `microfs` userspace design peels away. Values are calibrated so a
/// full-subscription kernel-path run spends ~76-79% of its time in the
/// kernel, matching the paper's measurement (§IV-D).
#[derive(Debug, Clone)]
pub struct KernelCosts {
    /// Trap cost of entering/leaving the kernel for one syscall.
    pub syscall: SimTime,
    /// VFS + block-layer + kernel NVMf driver work per IO request.
    pub vfs_block: SimTime,
    /// Interrupt-driven completion (context switch back to the caller).
    pub interrupt: SimTime,
    /// Per-IO time of the userspace SPDK path for comparison (polled
    /// submission + completion, no traps).
    pub spdk_submit: SimTime,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            syscall: SimTime::micros(0.6),
            vfs_block: SimTime::micros(6.0),
            interrupt: SimTime::micros(4.0),
            spdk_submit: SimTime::micros(0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edr_bandwidth() {
        let n = NetConfig::default();
        assert!((n.link_bw.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn latency_grows_with_hops() {
        let n = NetConfig::default();
        assert!(n.latency(4) > n.latency(1));
        let delta = n.latency(3).as_micros() - n.latency(2).as_micros();
        assert!((delta - 0.15).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        assert!(
            NetConfig::hdr().link_bw.as_bytes_per_sec()
                > NetConfig::edr().link_bw.as_bytes_per_sec()
        );
        assert!(
            NetConfig::edr().link_bw.as_bytes_per_sec()
                > NetConfig::tcp25g().link_bw.as_bytes_per_sec()
        );
        assert!(NetConfig::tcp25g().latency(2) > NetConfig::edr().latency(2));
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let r = RetryConfig::default();
        assert_eq!(r.backoff_ns(1), 10_000);
        assert_eq!(r.backoff_ns(2), 20_000);
        assert_eq!(r.backoff_ns(3), 40_000);
        assert_eq!(r.backoff_ns(11), 10_000_000, "clamped to ceiling");
        assert_eq!(r.backoff_ns(64), 10_000_000, "huge attempts saturate");
    }

    #[test]
    fn fabric_defaults_match_hardware_queue_count() {
        let f = FabricConfig::default();
        assert_eq!(f.queue_depth, 32, "window depth == P4800X hardware queues");
        assert!(f.initiator_poll_batch > 1 && f.target_poll_batch > 1);
        assert_eq!(f.retry.max_retries, RetryConfig::default().max_retries);
    }

    #[test]
    fn kernel_path_is_much_heavier_than_spdk() {
        let k = KernelCosts::default();
        let kernel_per_io = k.syscall + k.vfs_block + k.interrupt;
        assert!(kernel_per_io.as_secs() > 10.0 * k.spdk_submit.as_secs());
    }
}
