//! Software IO-path cost models: kernel (Figure 2) vs userspace (Figure 4).
//!
//! The paper's direct-access experiment (§IV-D) measures both a latency gap
//! and a time-in-kernel gap: the kernel path spends 76.5–79% of benchmark
//! time in the kernel, the NVMe-CR userspace path only 10%. [`IoPath`]
//! prices one IO on each stack and [`TimeSplit`] accumulates the
//! user/kernel split that the Figure 7c harness reports.

use simkit::{SimTime, Stage};

use crate::config::KernelCosts;

/// Which software stack an IO traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPath {
    /// Trap into the kernel: VFS → block layer → `nvme_rdma` (Figure 2).
    Kernel,
    /// Polled userspace SPDK initiator (Figure 4).
    Userspace,
}

/// Per-IO host CPU cost, split by privilege level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCosts {
    /// Time spent in user mode.
    pub user: SimTime,
    /// Time spent in kernel mode.
    pub kernel: SimTime,
}

impl PathCosts {
    /// Total host time for one IO.
    pub fn total(&self) -> SimTime {
        self.user + self.kernel
    }
}

impl IoPath {
    /// Cost of one IO submission + completion on this path.
    pub fn per_io(&self, k: &KernelCosts) -> PathCosts {
        match self {
            IoPath::Kernel => PathCosts {
                // A little user-mode work remains (libc, buffer mgmt).
                user: SimTime::micros(0.3),
                kernel: k.syscall + k.vfs_block + k.interrupt,
            },
            IoPath::Userspace => PathCosts {
                user: k.spdk_submit,
                kernel: SimTime::ZERO,
            },
        }
    }

    /// The per-IO host cost as an engine stage.
    pub fn stage(&self, k: &KernelCosts) -> Stage {
        Stage::Delay(self.per_io(k).total())
    }
}

/// Accumulates user/kernel time to report the paper's "% of time spent in
/// the kernel" metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeSplit {
    user: f64,
    kernel: f64,
}

impl TimeSplit {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` IOs on `path`.
    pub fn record_ios(&mut self, path: IoPath, k: &KernelCosts, n: u64) {
        let c = path.per_io(k);
        self.user += c.user.as_secs() * n as f64;
        self.kernel += c.kernel.as_secs() * n as f64;
    }

    /// Record user-mode time not attributable to IO (compute, libc).
    pub fn record_user(&mut self, t: SimTime) {
        self.user += t.as_secs();
    }

    /// Record kernel time not attributable to IO (e.g. `malloc` faults,
    /// init/finalize — the residual 10% the paper observes even for the
    /// userspace path).
    pub fn record_kernel(&mut self, t: SimTime) {
        self.kernel += t.as_secs();
    }

    /// Fraction of accounted time spent in the kernel, `0.0..=1.0`.
    pub fn kernel_fraction(&self) -> f64 {
        let total = self.user + self.kernel;
        if total <= 0.0 {
            0.0
        } else {
            self.kernel / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_path_dominated_by_kernel_time() {
        let k = KernelCosts::default();
        let mut split = TimeSplit::new();
        split.record_ios(IoPath::Kernel, &k, 1000);
        assert!(
            split.kernel_fraction() > 0.7,
            "kernel fraction {}",
            split.kernel_fraction()
        );
    }

    #[test]
    fn userspace_path_has_zero_io_kernel_time() {
        let k = KernelCosts::default();
        let c = IoPath::Userspace.per_io(&k);
        assert_eq!(c.kernel, SimTime::ZERO);
        assert!(c.total() < IoPath::Kernel.per_io(&k).total());
    }

    #[test]
    fn residual_kernel_time_accumulates() {
        let k = KernelCosts::default();
        let mut split = TimeSplit::new();
        split.record_ios(IoPath::Userspace, &k, 1000);
        // Non-IO syscalls (malloc, init) put some kernel time back.
        split.record_kernel(SimTime::micros(55.0));
        let f = split.kernel_fraction();
        assert!(f > 0.05 && f < 0.2, "fraction {f}");
    }

    #[test]
    fn empty_split_is_zero() {
        assert_eq!(TimeSplit::new().kernel_fraction(), 0.0);
    }
}
