//! Scatter-gather lists: multi-segment wire payloads.
//!
//! RDMA work requests carry a list of scatter-gather entries (SGEs); an
//! NVMf write capsule rides as two of them — the command header and the
//! data payload — so the payload is never copied into a contiguous wire
//! buffer. [`SgList`] is that list: an ordered sequence of refcounted
//! [`Bytes`] segments. Building one from existing `Bytes` is copy-free,
//! and so is delivery (the receiver gets the same refcounted segments).

use bytes::Bytes;

/// An ordered list of wire segments, delivered as one logical message.
#[derive(Debug, Clone, Default)]
pub struct SgList {
    segs: Vec<Bytes>,
}

impl SgList {
    /// An empty list.
    pub fn new() -> Self {
        SgList { segs: Vec::new() }
    }

    /// Append a segment (copy-free; empty segments are dropped).
    pub fn push(&mut self, seg: Bytes) {
        if !seg.is_empty() {
            self.segs.push(seg);
        }
    }

    /// Total logical length in bytes.
    pub fn len(&self) -> usize {
        self.segs.iter().map(Bytes::len).sum()
    }

    /// True when the list carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.segs.iter().all(Bytes::is_empty)
    }

    /// Number of scatter-gather entries.
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// The segments, in wire order.
    pub fn segments(&self) -> &[Bytes] {
        &self.segs
    }

    /// Consume into the segment vector.
    pub fn into_segments(self) -> Vec<Bytes> {
        self.segs
    }

    /// Flatten into one contiguous buffer. Zero-copy when the list has at
    /// most one segment; otherwise this is the gather copy that the
    /// two-segment capsule path exists to avoid.
    pub fn into_contiguous(mut self) -> Bytes {
        match self.segs.len() {
            0 => Bytes::new(),
            1 => self.segs.pop().expect("len checked"),
            _ => {
                let mut v = Vec::with_capacity(self.len());
                for s in &self.segs {
                    v.extend_from_slice(s);
                }
                Bytes::from(v)
            }
        }
    }
}

impl From<Bytes> for SgList {
    fn from(b: Bytes) -> Self {
        let mut sg = SgList::new();
        sg.push(b);
        sg
    }
}

impl From<Vec<Bytes>> for SgList {
    fn from(segs: Vec<Bytes>) -> Self {
        let mut sg = SgList::new();
        for s in segs {
            sg.push(s);
        }
        sg
    }
}

/// Logical-content equality, independent of segmentation.
impl PartialEq for SgList {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.segs
            .iter()
            .flat_map(|s| s.iter())
            .eq(other.segs.iter().flat_map(|s| s.iter()))
    }
}

impl Eq for SgList {}

/// Contiguous view. Only lists with at most one segment have one; callers
/// that may hold a multi-segment list must use [`SgList::segments`] or
/// [`SgList::into_contiguous`] instead.
impl std::ops::Deref for SgList {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self.segs.len() {
            0 => &[],
            1 => &self.segs[0],
            n => panic!("contiguous view of a {n}-segment SgList; gather it first"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drops_empty_segments() {
        let mut sg = SgList::new();
        sg.push(Bytes::new());
        sg.push(Bytes::from_static(b"abc"));
        assert_eq!(sg.segment_count(), 1);
        assert_eq!(sg.len(), 3);
    }

    #[test]
    fn equality_ignores_segmentation() {
        let a: SgList = vec![Bytes::from_static(b"ab"), Bytes::from_static(b"cd")].into();
        let b: SgList = Bytes::from_static(b"abcd").into();
        assert_eq!(a, b);
        assert_ne!(a, SgList::from(Bytes::from_static(b"abce")));
    }

    #[test]
    fn single_segment_contiguous_is_zero_copy() {
        let payload = Bytes::from_static(b"payload");
        let sg = SgList::from(payload.clone());
        let flat = sg.into_contiguous();
        assert_eq!(flat, payload);
    }

    #[test]
    fn multi_segment_gathers() {
        let sg: SgList = vec![Bytes::from_static(b"head"), Bytes::from_static(b"tail")].into();
        assert_eq!(&sg.into_contiguous()[..], b"headtail");
    }

    #[test]
    fn deref_works_up_to_one_segment() {
        assert_eq!(&SgList::new()[..], b"");
        assert_eq!(&SgList::from(Bytes::from_static(b"x"))[..], b"x");
    }
}
