//! RDMA queue pairs: the verbs-layer substrate under NVMf.
//!
//! The paper's data plane "can take advantage of fast Remote Direct Memory
//! Access (RDMA) enabled networks" with userspace polling instead of
//! interrupts (§III-A Principle 1). This module provides that layer as real
//! code: bounded send/receive queues, work requests with IDs, and a
//! completion queue the owner **polls** — there is no blocking wait, by
//! design. A [`QueuePair`] is connected to a peer; posting a send delivers
//! the payload into the peer's posted receive buffers and generates
//! completions on both sides, exactly the discipline an SPDK NVMf
//! initiator/target pair uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::sg::SgList;

/// Work-request identifier, echoed in the matching completion.
pub type WrId = u64;

/// Verbs-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpError {
    /// The send queue is full (caller must poll the CQ and retry).
    SendQueueFull,
    /// The peer has no posted receive for an incoming message.
    ReceiverNotReady,
    /// The queue pair is not connected.
    NotConnected,
}

impl fmt::Display for QpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpError::SendQueueFull => write!(f, "send queue full"),
            QpError::ReceiverNotReady => write!(f, "receiver not ready (RNR)"),
            QpError::NotConnected => write!(f, "queue pair not connected"),
        }
    }
}

impl std::error::Error for QpError {}

/// A work completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The work request this completes.
    pub wr_id: WrId,
    /// Send or receive side.
    pub opcode: CompletionOp,
    /// For receives: the delivered scatter-gather payload. Segments are
    /// the sender's refcounted buffers — delivery never copies.
    pub payload: Option<SgList>,
}

/// Which verb completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionOp {
    /// A posted send finished (payload is on the peer).
    Send,
    /// A posted receive was filled.
    Recv,
}

/// Shared state of one QP endpoint.
struct Endpoint {
    /// Receive buffers posted by the owner, FIFO.
    recv_queue: VecDeque<WrId>,
    /// Completions awaiting a poll.
    cq: VecDeque<Completion>,
}

/// One side of a connected RDMA queue pair.
pub struct QueuePair {
    /// Bounded send-queue depth (SPDK default-ish).
    sq_depth: usize,
    /// Sends posted but not yet completed (completions are generated at
    /// post time in this functional model, so this tracks CQ backlog).
    local: Arc<Mutex<Endpoint>>,
    peer: Arc<Mutex<Endpoint>>,
    connected: bool,
    posted_sends: u64,
    posted_recvs: u64,
}

impl QueuePair {
    /// Create a connected pair of endpoints with the given queue depths.
    pub fn connected_pair(sq_depth: usize, rq_depth: usize) -> (QueuePair, QueuePair) {
        assert!(sq_depth > 0 && rq_depth > 0);
        let a = Arc::new(Mutex::new(Endpoint {
            recv_queue: VecDeque::with_capacity(rq_depth),
            cq: VecDeque::new(),
        }));
        let b = Arc::new(Mutex::new(Endpoint {
            recv_queue: VecDeque::with_capacity(rq_depth),
            cq: VecDeque::new(),
        }));
        (
            QueuePair {
                sq_depth,
                local: Arc::clone(&a),
                peer: Arc::clone(&b),
                connected: true,
                posted_sends: 0,
                posted_recvs: 0,
            },
            QueuePair {
                sq_depth,
                local: b,
                peer: a,
                connected: true,
                posted_sends: 0,
                posted_recvs: 0,
            },
        )
    }

    /// Post a receive buffer; it will be filled by a future peer send.
    pub fn post_recv(&mut self, wr_id: WrId) {
        self.local.lock().recv_queue.push_back(wr_id);
        self.posted_recvs += 1;
    }

    /// Post a send of one or more scatter-gather segments. Consumes one of
    /// the peer's posted receives; the payload lands in the peer's CQ
    /// (segments shared by refcount, never copied) and a send completion
    /// lands in ours.
    pub fn post_send(&mut self, wr_id: WrId, payload: impl Into<SgList>) -> Result<(), QpError> {
        let payload: SgList = payload.into();
        if !self.connected {
            return Err(QpError::NotConnected);
        }
        {
            let local = self.local.lock();
            // CQ backlog models outstanding sends: polling drains it.
            let outstanding = local
                .cq
                .iter()
                .filter(|c| c.opcode == CompletionOp::Send)
                .count();
            if outstanding >= self.sq_depth {
                return Err(QpError::SendQueueFull);
            }
        }
        let recv_wr = {
            let mut peer = self.peer.lock();
            let Some(recv_wr) = peer.recv_queue.pop_front() else {
                return Err(QpError::ReceiverNotReady);
            };
            peer.cq.push_back(Completion {
                wr_id: recv_wr,
                opcode: CompletionOp::Recv,
                payload: Some(payload),
            });
            recv_wr
        };
        let _ = recv_wr;
        self.local.lock().cq.push_back(Completion {
            wr_id,
            opcode: CompletionOp::Send,
            payload: None,
        });
        self.posted_sends += 1;
        Ok(())
    }

    /// Poll up to `max` completions — never blocks (Principle 1: polling,
    /// not interrupts).
    pub fn poll_cq(&mut self, max: usize) -> Vec<Completion> {
        let mut local = self.local.lock();
        let n = max.min(local.cq.len());
        local.cq.drain(..n).collect()
    }

    /// Posted receive buffers not yet consumed.
    pub fn posted_recv_count(&self) -> usize {
        self.local.lock().recv_queue.len()
    }

    /// Send-queue slots currently free: `sq_depth` minus unpolled send
    /// completions. A pipelining initiator checks this before posting so a
    /// deep submission window degrades into a CQ drain instead of an error.
    pub fn send_slots_free(&self) -> usize {
        let local = self.local.lock();
        let outstanding = local
            .cq
            .iter()
            .filter(|c| c.opcode == CompletionOp::Send)
            .count();
        self.sq_depth.saturating_sub(outstanding)
    }

    /// Lifetime `(sends, recvs)` posted.
    pub fn counters(&self) -> (u64, u64) {
        (self.posted_sends, self.posted_recvs)
    }

    /// Tear the connection down; further sends fail.
    pub fn disconnect(&mut self) {
        self.connected = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn send_recv_roundtrip_by_polling() {
        let (mut client, mut server) = QueuePair::connected_pair(16, 16);
        server.post_recv(100);
        client.post_send(1, Bytes::from_static(b"capsule")).unwrap();
        // Server polls its CQ and finds the delivery.
        let got = server.poll_cq(8);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].wr_id, 100);
        assert_eq!(got[0].opcode, CompletionOp::Recv);
        assert_eq!(got[0].payload.as_deref(), Some(b"capsule".as_ref()));
        // Client sees its send completion.
        let got = client.poll_cq(8);
        assert_eq!(got[0].wr_id, 1);
        assert_eq!(got[0].opcode, CompletionOp::Send);
    }

    #[test]
    fn rnr_when_no_receive_posted() {
        let (mut client, _server) = QueuePair::connected_pair(16, 16);
        let err = client.post_send(1, Bytes::from_static(b"x")).unwrap_err();
        assert_eq!(err, QpError::ReceiverNotReady);
    }

    #[test]
    fn send_queue_depth_backpressure() {
        let (mut client, mut server) = QueuePair::connected_pair(2, 16);
        for i in 0..4 {
            server.post_recv(i);
        }
        client.post_send(1, Bytes::from_static(b"a")).unwrap();
        client.post_send(2, Bytes::from_static(b"b")).unwrap();
        // Two unpolled send completions = SQ full.
        assert_eq!(
            client.post_send(3, Bytes::from_static(b"c")).unwrap_err(),
            QpError::SendQueueFull
        );
        // Polling frees slots (run-to-completion style).
        client.poll_cq(8);
        client.post_send(3, Bytes::from_static(b"c")).unwrap();
    }

    #[test]
    fn send_slots_track_cq_backlog() {
        let (mut client, mut server) = QueuePair::connected_pair(2, 16);
        for i in 0..4 {
            server.post_recv(i);
        }
        assert_eq!(client.send_slots_free(), 2);
        client.post_send(1, Bytes::from_static(b"a")).unwrap();
        assert_eq!(client.send_slots_free(), 1);
        client.post_send(2, Bytes::from_static(b"b")).unwrap();
        assert_eq!(client.send_slots_free(), 0);
        client.poll_cq(8);
        assert_eq!(client.send_slots_free(), 2);
    }

    #[test]
    fn fifo_receive_matching() {
        let (mut client, mut server) = QueuePair::connected_pair(16, 16);
        server.post_recv(10);
        server.post_recv(11);
        client.post_send(1, Bytes::from_static(b"first")).unwrap();
        client.post_send(2, Bytes::from_static(b"second")).unwrap();
        let got = server.poll_cq(8);
        assert_eq!(got[0].wr_id, 10);
        assert_eq!(got[0].payload.as_deref(), Some(b"first".as_ref()));
        assert_eq!(got[1].wr_id, 11);
        assert_eq!(got[1].payload.as_deref(), Some(b"second".as_ref()));
    }

    #[test]
    fn bidirectional_traffic() {
        let (mut a, mut b) = QueuePair::connected_pair(16, 16);
        a.post_recv(500);
        b.post_recv(600);
        a.post_send(1, Bytes::from_static(b"request")).unwrap();
        let req = b.poll_cq(8);
        assert_eq!(req[0].payload.as_deref(), Some(b"request".as_ref()));
        b.post_send(2, Bytes::from_static(b"response")).unwrap();
        let resp: Vec<_> = a
            .poll_cq(8)
            .into_iter()
            .filter(|c| c.opcode == CompletionOp::Recv)
            .collect();
        assert_eq!(resp[0].wr_id, 500);
        assert_eq!(resp[0].payload.as_deref(), Some(b"response".as_ref()));
    }

    #[test]
    fn disconnect_fails_sends() {
        let (mut a, mut b) = QueuePair::connected_pair(16, 16);
        b.post_recv(1);
        a.disconnect();
        assert_eq!(
            a.post_send(1, Bytes::from_static(b"x")).unwrap_err(),
            QpError::NotConnected
        );
    }

    #[test]
    fn capsules_travel_over_queue_pairs() {
        // An NVMf exchange expressed at the verbs layer: the full wire
        // discipline of Figure 4's userspace path.
        use crate::capsule::{Capsule, Completion as NvmfCompletion, Status};
        let (mut init, mut tgt) = QueuePair::connected_pair(16, 16);
        tgt.post_recv(0);
        init.post_recv(0);
        let cmd = Capsule::write(7, 1, 4096, Bytes::from_static(b"data"));
        init.post_send(1, cmd.encode_sg()).unwrap();
        // Target polls, decodes, "executes", responds. The write payload
        // rode as its own SGE: same refcounted buffer, no wire copy.
        let wire = tgt.poll_cq(1).pop().unwrap().payload.unwrap();
        assert_eq!(wire.segment_count(), 2);
        let decoded = Capsule::decode_sg(wire).unwrap();
        assert_eq!(decoded.cid, 7);
        assert_eq!(&decoded.data[..], b"data");
        tgt.post_send(2, NvmfCompletion::ok(decoded.cid, Bytes::new()).encode())
            .unwrap();
        let resp_wire = init
            .poll_cq(8)
            .into_iter()
            .find(|c| c.opcode == CompletionOp::Recv)
            .unwrap()
            .payload
            .unwrap();
        let resp = NvmfCompletion::decode_sg(resp_wire).unwrap();
        assert_eq!(resp.cid, 7);
        assert_eq!(resp.status, Status::Success);
    }
}
