//! Functional NVMf target — the SPDK target daemon of Figure 4.
//!
//! One target fronts one SSD (the paper deploys one daemon per storage
//! node). It is multi-tenant: each connection is admitted with an explicit
//! set of namespaces it may touch, and every capsule is checked against that
//! set before reaching the device — the enforcement half of the paper's
//! namespace-granular security model (§III-F).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use ssd::{NsId, Ssd};

use crate::capsule::{Capsule, Completion, Opcode, Status};

/// Connection handle issued by [`NvmfTarget::connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(u32);

/// Target-side failures (protocol-level errors are returned as completion
/// statuses instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetError {
    /// The connection handle is not registered.
    UnknownConnection,
    /// The wire bytes did not parse as a capsule.
    Malformed(String),
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::UnknownConnection => write!(f, "unknown NVMf connection"),
            TargetError::Malformed(e) => write!(f, "malformed capsule: {e}"),
        }
    }
}

impl std::error::Error for TargetError {}

struct Connection {
    #[allow(dead_code)] // retained for diagnostics / future admin queries
    host_nqn: String,
    allowed: HashSet<NsId>,
}

/// A multi-tenant NVMf target daemon fronting one device.
pub struct NvmfTarget {
    ssd: Arc<Mutex<Ssd>>,
    connections: Mutex<HashMap<ConnId, Connection>>,
    next_conn: Mutex<u32>,
}

impl NvmfTarget {
    /// Front the given device.
    pub fn new(ssd: Arc<Mutex<Ssd>>) -> Self {
        NvmfTarget {
            ssd,
            connections: Mutex::new(HashMap::new()),
            next_conn: Mutex::new(0),
        }
    }

    /// The device behind this target (management plane use).
    pub fn device(&self) -> &Arc<Mutex<Ssd>> {
        &self.ssd
    }

    /// Admit a host, granting access to exactly `allowed` namespaces.
    pub fn connect(&self, host_nqn: &str, allowed: &[NsId]) -> ConnId {
        let mut next = self.next_conn.lock();
        let id = ConnId(*next);
        *next += 1;
        self.connections.lock().insert(
            id,
            Connection {
                host_nqn: host_nqn.to_string(),
                allowed: allowed.iter().copied().collect(),
            },
        );
        id
    }

    /// Tear down a connection.
    pub fn disconnect(&self, conn: ConnId) {
        self.connections.lock().remove(&conn);
    }

    /// Handle one wire capsule for `conn`, returning the wire completion.
    pub fn handle_wire(&self, conn: ConnId, wire: Bytes) -> Result<Bytes, TargetError> {
        let capsule = Capsule::decode(wire).map_err(|e| TargetError::Malformed(e.to_string()))?;
        Ok(self.handle(conn, &capsule)?.encode())
    }

    /// Handle one decoded capsule for `conn`.
    pub fn handle(&self, conn: ConnId, c: &Capsule) -> Result<Completion, TargetError> {
        let ns = NsId(c.nsid);
        {
            let conns = self.connections.lock();
            let Some(cstate) = conns.get(&conn) else {
                return Err(TargetError::UnknownConnection);
            };
            if c.opcode != Opcode::Connect && !cstate.allowed.contains(&ns) {
                return Ok(Completion::error(c.cid, Status::InvalidNamespace));
            }
        }
        let mut ssd = self.ssd.lock();
        let completion = match c.opcode {
            Opcode::Connect => Completion::ok(c.cid, Bytes::new()),
            Opcode::Flush => {
                ssd.flush();
                Completion::ok(c.cid, Bytes::new())
            }
            Opcode::Write => match ssd.write(ns, c.offset, &c.data) {
                Ok(()) => Completion::ok(c.cid, Bytes::new()),
                Err(_) => Completion::error(c.cid, Status::LbaOutOfRange),
            },
            Opcode::Read => {
                if c.len > (1 << 30) {
                    // Refuse absurd reads rather than allocating gigabytes.
                    Completion::error(c.cid, Status::InvalidField)
                } else {
                    match ssd.read_vec(ns, c.offset, c.len as usize) {
                        Ok(v) => Completion::ok(c.cid, Bytes::from(v)),
                        Err(_) => Completion::error(c.cid, Status::LbaOutOfRange),
                    }
                }
            }
        };
        Ok(completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::SsdConfig;

    fn target_with_two_ns() -> (NvmfTarget, NsId, NsId) {
        let mut ssd = Ssd::new(SsdConfig {
            capacity: 1 << 20,
            ..SsdConfig::default()
        });
        let a = ssd.create_namespace(256 << 10).unwrap();
        let b = ssd.create_namespace(256 << 10).unwrap();
        (NvmfTarget::new(Arc::new(Mutex::new(ssd))), a, b)
    }

    #[test]
    fn write_then_read_roundtrip_over_wire() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(1, a.0, 100, Bytes::from_static(b"dump"));
        let resp = Completion::decode(t.handle_wire(conn, w.encode()).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Success);
        let r = Capsule::read(2, a.0, 100, 4);
        let resp = Completion::decode(t.handle_wire(conn, r.encode()).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Success);
        assert_eq!(&resp.data[..], b"dump");
    }

    #[test]
    fn namespace_access_control_enforced() {
        let (t, a, b) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        // Writing the *other* job's namespace is refused.
        let w = Capsule::write(1, b.0, 0, Bytes::from_static(b"evil"));
        let resp = t.handle(conn, &w).unwrap();
        assert_eq!(resp.status, Status::InvalidNamespace);
        // And the bytes were never written.
        let conn_b = t.connect("nqn.host1", &[b]);
        let r = Capsule::read(2, b.0, 0, 4);
        let resp = t.handle(conn_b, &r).unwrap();
        assert_eq!(&resp.data[..], &[0, 0, 0, 0]);
    }

    #[test]
    fn unknown_connection_rejected() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        t.disconnect(conn);
        let w = Capsule::flush(0, a.0);
        assert_eq!(t.handle(conn, &w), Err(TargetError::UnknownConnection));
    }

    #[test]
    fn out_of_range_io_gets_error_status() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(1, a.0, (256 << 10) - 2, Bytes::from_static(b"xxxx"));
        assert_eq!(t.handle(conn, &w).unwrap().status, Status::LbaOutOfRange);
    }

    #[test]
    fn malformed_wire_bytes_rejected() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        assert!(matches!(
            t.handle_wire(conn, Bytes::from_static(&[0xde, 0xad])),
            Err(TargetError::Malformed(_))
        ));
    }

    #[test]
    fn flush_persists_volatile_data() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(1, a.0, 0, Bytes::from(vec![5u8; 512]));
        t.handle(conn, &w).unwrap();
        let f = Capsule::flush(2, a.0);
        assert_eq!(t.handle(conn, &f).unwrap().status, Status::Success);
        assert_eq!(t.device().lock().volatile_bytes(), 0);
    }
}
