//! Functional NVMf target — the SPDK target daemon of Figure 4.
//!
//! One target fronts one SSD (the paper deploys one daemon per storage
//! node). It is multi-tenant: each connection is admitted with an explicit
//! set of namespaces it may touch, and every capsule is checked against that
//! set before reaching the device — the enforcement half of the paper's
//! namespace-granular security model (§III-F).
//!
//! Connections resolve their namespaces to [`ssd::NsShard`] handles at
//! admission time, so the data plane routes each capsule straight to the
//! shard backing its namespace: two connections on different namespaces
//! never share a lock (the functional analogue of dedicated NVMe hardware
//! queues, §III-B Principle 3), while capsules on one connection retain
//! per-queue FIFO order under the shard lock.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use ssd::{NsId, NsShard, Ssd, SsdError};

use crate::capsule::{Capsule, CapsuleError, Completion, Opcode, Status};
use crate::sg::SgList;

/// Completions remembered per connection for idempotent replay. Far smaller
/// than the 65536-wide CID space, so a cached entry is evicted long before
/// its CID can be legitimately reused by a new command.
const REPLAY_CACHE_CMDS: usize = 128;

/// Connection handle issued by [`NvmfTarget::connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(u32);

/// Target-side failures (protocol-level errors are returned as completion
/// statuses instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetError {
    /// The connection handle is not registered.
    UnknownConnection,
    /// The wire bytes did not parse as a capsule.
    Malformed(String),
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::UnknownConnection => write!(f, "unknown NVMf connection"),
            TargetError::Malformed(e) => write!(f, "malformed capsule: {e}"),
        }
    }
}

impl std::error::Error for TargetError {}

struct Connection {
    #[allow(dead_code)] // retained for diagnostics / future admin queries
    host_nqn: String,
    /// Granted namespaces, pre-resolved to their shards. Capsule handling
    /// routes through this map and never touches the device's controller
    /// lock.
    shards: HashMap<NsId, Arc<NsShard>>,
    /// Recently completed *successful* mutating commands, keyed by CID, so
    /// a retransmitted command (duplicate delivery, or a retry whose
    /// original response was lost) is answered from cache instead of
    /// re-executed. Only success completions are cached: a transient error
    /// must not shadow a later retry that would succeed.
    replay: Mutex<VecDeque<(u16, Completion)>>,
}

/// A multi-tenant NVMf target daemon fronting one device.
pub struct NvmfTarget {
    ssd: Arc<Ssd>,
    connections: Mutex<HashMap<ConnId, Arc<Connection>>>,
    next_conn: Mutex<u32>,
    /// Command-capsule decode latency on the target side (reported into
    /// the fronted device's telemetry registry).
    decode_ns: Arc<telemetry::Histogram>,
    /// Capsule execution latency: decoded command → completion.
    handle_ns: Arc<telemetry::Histogram>,
    /// Command capsules rejected for a wire CRC mismatch.
    crc_errors: Arc<telemetry::Counter>,
    /// Mutating commands answered from the replay cache instead of
    /// re-executed.
    duplicates_suppressed: Arc<telemetry::Counter>,
}

impl NvmfTarget {
    /// Front the given device. Target-side `fabric.*` metrics report into
    /// the device's telemetry registry.
    pub fn new(ssd: Arc<Ssd>) -> Self {
        let t = ssd.telemetry();
        let decode_ns = t.histogram("fabric.target_decode_ns");
        let handle_ns = t.histogram("fabric.target_handle_ns");
        let crc_errors = t.counter("fabric.crc_errors");
        let duplicates_suppressed = t.counter("fabric.duplicates_suppressed");
        NvmfTarget {
            ssd,
            connections: Mutex::new(HashMap::new()),
            next_conn: Mutex::new(0),
            decode_ns,
            handle_ns,
            crc_errors,
            duplicates_suppressed,
        }
    }

    /// The device behind this target (management plane use).
    pub fn device(&self) -> &Arc<Ssd> {
        &self.ssd
    }

    /// Admit a host, granting access to exactly `allowed` namespaces.
    /// Grants for namespaces that do not exist are silently dropped (the
    /// connection then sees `InvalidNamespace` on use, same as no grant).
    pub fn connect(&self, host_nqn: &str, allowed: &[NsId]) -> ConnId {
        let shards = allowed
            .iter()
            .filter_map(|&ns| self.ssd.shard(ns).ok().map(|s| (ns, s)))
            .collect();
        let mut next = self.next_conn.lock();
        let id = ConnId(*next);
        *next += 1;
        self.connections.lock().insert(
            id,
            Arc::new(Connection {
                host_nqn: host_nqn.to_string(),
                shards,
                replay: Mutex::new(VecDeque::new()),
            }),
        );
        id
    }

    /// Tear down a connection.
    pub fn disconnect(&self, conn: ConnId) {
        self.connections.lock().remove(&conn);
    }

    /// Map a capsule decode failure to either a retryable completion (CRC
    /// mismatch: the initiator still gets an answer, carrying the echoed
    /// CID) or a hard transport error (structurally unparseable).
    fn decode_failure(&self, e: CapsuleError) -> Result<Completion, TargetError> {
        if let CapsuleError::CrcMismatch { cid, .. } = e {
            self.crc_errors.inc();
            return Ok(Completion::error(cid, Status::DataCorrupt));
        }
        Err(TargetError::Malformed(e.to_string()))
    }

    /// Handle one wire capsule for `conn`, returning the wire completion.
    pub fn handle_wire(&self, conn: ConnId, wire: Bytes) -> Result<Bytes, TargetError> {
        let capsule = match Capsule::decode(wire) {
            Ok(c) => c,
            Err(e) => return self.decode_failure(e).map(|c| c.encode()),
        };
        Ok(self.handle(conn, &capsule)?.encode())
    }

    /// Handle one scatter-gather wire capsule for `conn`, returning the
    /// scatter-gather completion. Write payloads are adopted by refcount
    /// from the wire and staged in device RAM without a copy; read
    /// payloads ride back as their own segment.
    pub fn handle_wire_sg(&self, conn: ConnId, wire: SgList) -> Result<SgList, TargetError> {
        let cstate = self.connection(conn)?;
        self.handle_wire_on(&cstate, wire)
    }

    /// One batched target-daemon poll iteration: decode, execute, and
    /// build the response for a whole CQ batch of wire capsules. The
    /// connection table lock is taken **once per batch** rather than once
    /// per capsule; execution order within the batch is the CQ's FIFO
    /// delivery order, so per-queue command ordering is preserved.
    pub fn handle_wire_sg_batch(
        &self,
        conn: ConnId,
        batch: Vec<SgList>,
    ) -> Result<Vec<SgList>, TargetError> {
        let cstate = self.connection(conn)?;
        batch
            .into_iter()
            .map(|wire| self.handle_wire_on(&cstate, wire))
            .collect()
    }

    /// Decode and execute one wire capsule against an already-resolved
    /// connection snapshot.
    fn handle_wire_on(&self, cstate: &Connection, wire: SgList) -> Result<SgList, TargetError> {
        let capsule = {
            let _t = self.decode_ns.time();
            match Capsule::decode_sg(wire) {
                Ok(c) => c,
                Err(e) => return self.decode_failure(e).map(|c| c.encode_sg()),
            }
        };
        Ok(self.handle_on(cstate, &capsule).encode_sg())
    }

    /// Snapshot the connection state, then drop the table lock: capsule
    /// execution must only ever hold the one shard lock it needs.
    fn connection(&self, conn: ConnId) -> Result<Arc<Connection>, TargetError> {
        let conns = self.connections.lock();
        conns
            .get(&conn)
            .map(Arc::clone)
            .ok_or(TargetError::UnknownConnection)
    }

    /// Handle one decoded capsule for `conn`.
    pub fn handle(&self, conn: ConnId, c: &Capsule) -> Result<Completion, TargetError> {
        let cstate = self.connection(conn)?;
        Ok(self.handle_on(&cstate, c))
    }

    /// Execute one decoded capsule against a connection snapshot.
    fn handle_on(&self, cstate: &Connection, c: &Capsule) -> Completion {
        let _t = self.handle_ns.time();
        let ns = NsId(c.nsid);
        if c.opcode == Opcode::Connect {
            return Completion::ok(c.cid, Bytes::new());
        }
        // Idempotent replay: a mutating command we already completed
        // successfully (duplicate delivery, or a retry after its response
        // was lost) is answered from cache, never re-executed.
        let mutating = matches!(c.opcode, Opcode::Write | Opcode::Flush);
        if mutating {
            let replay = cstate.replay.lock();
            if let Some((_, cached)) = replay.iter().find(|(cid, _)| *cid == c.cid) {
                self.duplicates_suppressed.inc();
                return cached.clone();
            }
        }
        let Some(shard) = cstate.shards.get(&ns) else {
            return Completion::error(c.cid, Status::InvalidNamespace);
        };
        let completion = match c.opcode {
            Opcode::Connect => unreachable!("handled above"),
            Opcode::Flush => {
                if shard.is_dead() {
                    Completion::error(c.cid, Status::ShardOffline)
                } else {
                    shard.flush();
                    Completion::ok(c.cid, Bytes::new())
                }
            }
            Opcode::Write => match shard.write_bytes(c.offset, c.data.clone()) {
                Ok(()) => Completion::ok(c.cid, Bytes::new()),
                Err(e) => Completion::error(c.cid, Self::status_for(&e)),
            },
            Opcode::Read => {
                if c.len > (1 << 30) {
                    // Refuse absurd reads rather than allocating gigabytes.
                    Completion::error(c.cid, Status::InvalidField)
                } else {
                    match shard.read_bytes(c.offset, c.len as usize) {
                        Ok(v) => Completion::ok(c.cid, v),
                        Err(e) => Completion::error(c.cid, Self::status_for(&e)),
                    }
                }
            }
        };
        if mutating && completion.status == Status::Success {
            let mut replay = cstate.replay.lock();
            if replay.len() >= REPLAY_CACHE_CMDS {
                replay.pop_front();
            }
            replay.push_back((c.cid, completion.clone()));
        }
        completion
    }

    fn status_for(e: &SsdError) -> Status {
        match e {
            SsdError::Busy(_) => Status::Busy,
            SsdError::ShardDead(_) => Status::ShardOffline,
            SsdError::Ns(_) => Status::LbaOutOfRange,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::SsdConfig;

    fn target_with_two_ns() -> (NvmfTarget, NsId, NsId) {
        // Private telemetry registry: the one-copy test asserts an exact
        // `ssd.bytes_copied` value and must not share counters with
        // concurrently running tests.
        let ssd = Ssd::with_telemetry(
            SsdConfig {
                capacity: 1 << 20,
                ..SsdConfig::default()
            },
            telemetry::Telemetry::new(),
        );
        let a = ssd.create_namespace(256 << 10).unwrap();
        let b = ssd.create_namespace(256 << 10).unwrap();
        (NvmfTarget::new(Arc::new(ssd)), a, b)
    }

    #[test]
    fn target_side_capsule_latency_is_observed() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(1, a.0, 0, Bytes::from(vec![1u8; 512]));
        t.handle_wire_sg(conn, w.encode_sg()).unwrap();
        let snap = t.device().telemetry().snapshot();
        assert_eq!(snap.histogram("fabric.target_decode_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("fabric.target_handle_ns").unwrap().count, 1);
    }

    #[test]
    fn write_then_read_roundtrip_over_wire() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(1, a.0, 100, Bytes::from_static(b"dump"));
        let resp = Completion::decode(t.handle_wire(conn, w.encode()).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Success);
        let r = Capsule::read(2, a.0, 100, 4);
        let resp = Completion::decode(t.handle_wire(conn, r.encode()).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Success);
        assert_eq!(&resp.data[..], b"dump");
    }

    #[test]
    fn sg_write_reaches_backing_store_with_one_copy() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let payload = Bytes::from(vec![0xC7u8; 8192]);
        let w = Capsule::write(1, a.0, 0, payload);
        let resp = Completion::decode_sg(t.handle_wire_sg(conn, w.encode_sg()).unwrap()).unwrap();
        assert_eq!(resp.status, Status::Success);
        t.device().flush();
        // Initiator buffer → wire → device RAM were all the same
        // refcounted allocation; the only copy was drain-to-media.
        assert_eq!(
            t.device()
                .telemetry()
                .snapshot()
                .counter("ssd.bytes_copied"),
            8192
        );
        let r = Capsule::read(2, a.0, 0, 8192);
        let resp = Completion::decode_sg(t.handle_wire_sg(conn, r.encode_sg()).unwrap()).unwrap();
        assert_eq!(&resp.data[..], &vec![0xC7u8; 8192][..]);
    }

    #[test]
    fn batched_poll_iteration_preserves_command_order() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        // A whole CQ batch in one daemon iteration: two writes then a read
        // of the second write's data — order matters.
        let batch = vec![
            Capsule::write(1, a.0, 0, Bytes::from(vec![0x11u8; 512])).encode_sg(),
            Capsule::write(2, a.0, 0, Bytes::from(vec![0x22u8; 512])).encode_sg(),
            Capsule::read(3, a.0, 0, 512).encode_sg(),
        ];
        let resps = t.handle_wire_sg_batch(conn, batch).unwrap();
        assert_eq!(resps.len(), 3);
        let decoded: Vec<Completion> = resps
            .into_iter()
            .map(|r| Completion::decode_sg(r).unwrap())
            .collect();
        // Responses come back in submission order with matching CIDs.
        assert_eq!(
            decoded.iter().map(|c| c.cid).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(decoded.iter().all(|c| c.status == Status::Success));
        // The read observed the *second* write: FIFO execution within the batch.
        assert_eq!(&decoded[2].data[..], &vec![0x22u8; 512][..]);
    }

    #[test]
    fn batch_for_unknown_connection_is_rejected_whole() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        t.disconnect(conn);
        let batch = vec![Capsule::flush(0, a.0).encode_sg()];
        assert_eq!(
            t.handle_wire_sg_batch(conn, batch),
            Err(TargetError::UnknownConnection)
        );
    }

    #[test]
    fn namespace_access_control_enforced() {
        let (t, a, b) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        // Writing the *other* job's namespace is refused.
        let w = Capsule::write(1, b.0, 0, Bytes::from_static(b"evil"));
        let resp = t.handle(conn, &w).unwrap();
        assert_eq!(resp.status, Status::InvalidNamespace);
        // And the bytes were never written.
        let conn_b = t.connect("nqn.host1", &[b]);
        let r = Capsule::read(2, b.0, 0, 4);
        let resp = t.handle(conn_b, &r).unwrap();
        assert_eq!(&resp.data[..], &[0, 0, 0, 0]);
    }

    #[test]
    fn unknown_connection_rejected() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        t.disconnect(conn);
        let w = Capsule::flush(0, a.0);
        assert_eq!(t.handle(conn, &w), Err(TargetError::UnknownConnection));
    }

    #[test]
    fn out_of_range_io_gets_error_status() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(1, a.0, (256 << 10) - 2, Bytes::from_static(b"xxxx"));
        assert_eq!(t.handle(conn, &w).unwrap().status, Status::LbaOutOfRange);
    }

    #[test]
    fn malformed_wire_bytes_rejected() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        assert!(matches!(
            t.handle_wire(conn, Bytes::from_static(&[0xde, 0xad])),
            Err(TargetError::Malformed(_))
        ));
    }

    #[test]
    fn flush_persists_volatile_data() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(1, a.0, 0, Bytes::from(vec![5u8; 512]));
        t.handle(conn, &w).unwrap();
        let f = Capsule::flush(2, a.0);
        assert_eq!(t.handle(conn, &f).unwrap().status, Status::Success);
        assert_eq!(t.device().volatile_bytes(), 0);
    }

    #[test]
    fn flush_is_namespace_scoped() {
        let (t, a, b) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a, b]);
        t.handle(
            conn,
            &Capsule::write(1, a.0, 0, Bytes::from(vec![1u8; 256])),
        )
        .unwrap();
        t.handle(
            conn,
            &Capsule::write(2, b.0, 0, Bytes::from(vec![2u8; 256])),
        )
        .unwrap();
        t.handle(conn, &Capsule::flush(3, a.0)).unwrap();
        // Only namespace a's shard drained; b's write is still volatile.
        assert_eq!(t.device().volatile_bytes(), 256);
    }

    #[test]
    fn corrupt_wire_capsule_gets_data_corrupt_completion() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(7, a.0, 0, Bytes::from(vec![3u8; 256]));
        let mut wire = bytes::BytesMut::from(&w.encode()[..]);
        let last = wire.len() - 1;
        wire[last] ^= 0xFF; // corrupt the payload in flight
        let resp = Completion::decode(t.handle_wire(conn, wire.freeze()).unwrap()).unwrap();
        assert_eq!(resp.status, Status::DataCorrupt);
        assert_eq!(resp.cid, 7, "CID still echoed so the initiator can retry");
        assert_eq!(
            t.device()
                .telemetry()
                .snapshot()
                .counter("fabric.crc_errors"),
            1
        );
        // Nothing was written.
        let r = Capsule::read(8, a.0, 0, 256);
        assert_eq!(&t.handle(conn, &r).unwrap().data[..], &vec![0u8; 256][..]);
    }

    #[test]
    fn duplicate_write_is_replayed_not_reexecuted() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        let w = Capsule::write(5, a.0, 0, Bytes::from(vec![9u8; 128]));
        assert_eq!(t.handle(conn, &w).unwrap().status, Status::Success);
        let (writes_before, ..) = t.device().ns_io_counters(a);
        // Same CID again: answered from the replay cache.
        assert_eq!(t.handle(conn, &w).unwrap().status, Status::Success);
        let (writes_after, ..) = t.device().ns_io_counters(a);
        assert_eq!(writes_after, writes_before, "no second device write");
        assert_eq!(
            t.device()
                .telemetry()
                .snapshot()
                .counter("fabric.duplicates_suppressed"),
            1
        );
    }

    #[test]
    fn failed_write_is_not_cached_for_replay() {
        let (t, a, _) = target_with_two_ns();
        let conn = t.connect("nqn.host0", &[a]);
        // Out-of-range write fails...
        let bad = Capsule::write(3, a.0, (256 << 10) - 2, Bytes::from_static(b"xxxx"));
        assert_eq!(t.handle(conn, &bad).unwrap().status, Status::LbaOutOfRange);
        // ...and a later command reusing that CID executes for real.
        let good = Capsule::write(3, a.0, 0, Bytes::from_static(b"good"));
        assert_eq!(t.handle(conn, &good).unwrap().status, Status::Success);
        let r = Capsule::read(4, a.0, 0, 4);
        assert_eq!(&t.handle(conn, &r).unwrap().data[..], b"good");
    }

    #[test]
    fn connections_on_different_namespaces_do_not_share_a_shard() {
        let (t, a, b) = target_with_two_ns();
        let conn_a = t.connect("nqn.host0", &[a]);
        let conn_b = t.connect("nqn.host1", &[b]);
        std::thread::scope(|s| {
            for (conn, ns, fill) in [(conn_a, a, 0xAAu8), (conn_b, b, 0xBBu8)] {
                let t = &t;
                s.spawn(move || {
                    for i in 0..32u64 {
                        let w =
                            Capsule::write(i as u16, ns.0, i * 1024, Bytes::from(vec![fill; 1024]));
                        assert_eq!(t.handle(conn, &w).unwrap().status, Status::Success);
                    }
                });
            }
        });
        let r = Capsule::read(99, a.0, 31 * 1024, 1024);
        assert_eq!(
            &t.handle(conn_a, &r).unwrap().data[..],
            &vec![0xAAu8; 1024][..]
        );
    }
}
