//! Fabric timing facility for the `simkit` DAGs.
//!
//! Prices RDMA transfers: per-message host CPU, propagation latency scaled
//! by switch hops, and link bandwidth shared among concurrent transfers.
//! Storage-node ingress links are the contended element in the paper's
//! disaggregated setup, so experiments install one link per storage node.

use simkit::{Dag, PipeId, Stage};

use crate::config::NetConfig;

/// Stage compiler for RDMA transfers over installed links.
#[derive(Debug, Clone)]
pub struct FabricFacility {
    cfg: NetConfig,
}

impl FabricFacility {
    /// A facility with the given network parameters.
    pub fn new(cfg: NetConfig) -> Self {
        FabricFacility { cfg }
    }

    /// The network parameters in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Install one link (e.g. a storage node's ingress) into `dag`.
    pub fn install_link(&self, dag: &mut Dag) -> PipeId {
        dag.pipe(self.cfg.link_bw)
    }

    /// Stages for one RDMA message of `bytes` crossing `hops` switches.
    pub fn message_stages(&self, link: PipeId, bytes: u64, hops: u32) -> Vec<Stage> {
        vec![
            Stage::Delay(self.cfg.per_message_cpu + self.cfg.latency(hops)),
            Stage::xfer(link, bytes),
        ]
    }

    /// Coarse stages for a pipelined sequence of messages totalling
    /// `total_bytes`, sent as `msg_size`-byte messages across `hops`
    /// switches. Per-message CPU is paid serially (the host posts work
    /// requests one at a time); the wire latency is paid once because the
    /// stream is pipelined.
    pub fn bulk_stages(
        &self,
        link: PipeId,
        total_bytes: u64,
        msg_size: u64,
        hops: u32,
    ) -> Vec<Stage> {
        assert!(msg_size > 0);
        if total_bytes == 0 {
            return Vec::new();
        }
        let n_msg = total_bytes.div_ceil(msg_size);
        vec![
            Stage::Delay(self.cfg.per_message_cpu * n_msg as f64 + self.cfg.latency(hops)),
            Stage::xfer(link, total_bytes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    #[test]
    fn single_message_latency_and_bandwidth() {
        let f = FabricFacility::new(NetConfig::default());
        let mut dag = Dag::new();
        let link = f.install_link(&mut dag);
        let t = dag.token(&[], f.message_stages(link, 1 << 20, 2));
        let r = dag.run().unwrap();
        let cfg = NetConfig::default();
        let expect = cfg.per_message_cpu + cfg.latency(2) + cfg.link_bw.time_for(1 << 20);
        assert!((r.completion(t).as_secs() - expect.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn concurrent_transfers_share_the_link() {
        let f = FabricFacility::new(NetConfig::default());
        let mut dag = Dag::new();
        let link = f.install_link(&mut dag);
        for _ in 0..4 {
            dag.token(&[], f.bulk_stages(link, 250 << 20, 1 << 20, 1));
        }
        let r = dag.run().unwrap();
        let floor = NetConfig::default().link_bw.time_for(1000 << 20);
        assert!(r.makespan() >= floor);
        assert!(r.makespan().as_secs() < floor.as_secs() * 1.05);
    }

    #[test]
    fn bulk_pays_per_message_cpu_serially() {
        let f = FabricFacility::new(NetConfig::default());
        let mut dag = Dag::new();
        let link = f.install_link(&mut dag);
        // 1024 messages of 4 KiB: CPU cost should dominate the tiny payload.
        let t = dag.token(&[], f.bulk_stages(link, 4 << 20, 4 << 10, 1));
        let r = dag.run().unwrap();
        let cpu = NetConfig::default().per_message_cpu * 1024.0;
        assert!(r.completion(t) > cpu);
        assert!(r.completion(t) < cpu + SimTime::millis(1.0));
    }

    #[test]
    fn zero_bytes_bulk_is_free() {
        let f = FabricFacility::new(NetConfig::default());
        let mut dag = Dag::new();
        let link = f.install_link(&mut dag);
        assert!(f.bulk_stages(link, 0, 4096, 1).is_empty());
    }

    #[test]
    fn separate_links_do_not_contend() {
        let f = FabricFacility::new(NetConfig::default());
        let mut dag = Dag::new();
        let l1 = f.install_link(&mut dag);
        let l2 = f.install_link(&mut dag);
        let a = dag.token(&[], f.bulk_stages(l1, 1 << 30, 1 << 20, 1));
        let b = dag.token(&[], f.bulk_stages(l2, 1 << 30, 1 << 20, 1));
        let r = dag.run().unwrap();
        let solo = NetConfig::default().link_bw.time_for(1 << 30).as_secs();
        assert!(r.completion(a).as_secs() < solo * 1.1);
        assert!(r.completion(b).as_secs() < solo * 1.1);
    }
}
