//! # nvmecr-fabric — RDMA network and NVMe-over-Fabrics transport
//!
//! The paper's data plane (Figure 4) is an SPDK NVMf initiator embedded in
//! each runtime instance talking RDMA to SPDK NVMf target daemons on the
//! storage nodes. This crate rebuilds that substrate in three layers:
//!
//! * [`capsule`] — a real binary codec for NVMf command/response capsules
//!   (opcode, NSID, SLBA, length, CID), round-trip tested. Every functional
//!   IO in the workspace is serialized through this codec, standing in for
//!   the wire format.
//! * [`qp`] — the verbs layer: bounded queue pairs with polled completion
//!   queues, the Principle-1 "polling instead of interrupts" discipline;
//! * [`target`] / [`initiator`] — a functional multi-tenant NVMf target
//!   (per-connection namespace access control, §III-F) and the client side
//!   that NVMe-CR's data plane drives. These move *real bytes* into
//!   [`ssd::Ssd`] devices.
//! * [`path`] and [`transport`] — timing models. [`path::IoPath`] prices the
//!   two software stacks the paper contrasts: the kernel path of Figure 2
//!   (syscall trap + VFS + block layer + interrupt completion) versus the
//!   polled userspace SPDK path of Figure 4. [`transport::FabricFacility`]
//!   prices the RDMA fabric itself (per-message CPU, propagation by hop
//!   count, link bandwidth) for the `simkit` DAGs.

pub mod capsule;
pub mod config;
pub mod initiator;
pub mod path;
pub mod qp;
pub mod sg;
pub mod target;
pub mod transport;

pub use capsule::{Capsule, CapsuleError, Completion, Opcode, Status};
pub use config::{FabricConfig, KernelCosts, NetConfig, RetryConfig};
pub use initiator::{
    write_mirrored_bytes, Initiator, InitiatorError, MirrorOutcome, MirroredWrite, NvmfConnection,
    Window,
};
pub use path::{IoPath, PathCosts, TimeSplit};
pub use qp::{CompletionOp, QpError, QueuePair, WrId};
pub use sg::SgList;
pub use target::{NvmfTarget, TargetError};
pub use transport::FabricFacility;
