//! NVMf command and response capsules — the wire format of the data plane.
//!
//! Every functional IO in the workspace serializes through this codec, the
//! stand-in for NVMe-oF command capsules. The layout is a compact
//! little-endian framing (not byte-identical to the spec, but carrying the
//! same fields): magic, opcode, CID, NSID, SLBA-as-byte-offset, length, and
//! an optional inline data payload for writes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use microfs::crc::{crc32, crc32_shift, crc32_update};
use std::fmt;

use crate::sg::SgList;

const CAPSULE_MAGIC: u32 = 0x4E56_4D46; // "NVMF"
                                        // Fixed fields plus a trailing CRC32 guarding header + payload. The CRC sits
                                        // at the *end* of the header so field offsets (e.g. opcode at byte 4) are
                                        // unchanged from the pre-CRC framing.
const HEADER_LEN: usize = 4 + 1 + 2 + 4 + 8 + 8 + 4;
const COMPLETION_HEADER_LEN: usize = 4 + 2 + 1 + 8 + 4;

/// NVMe command opcodes carried over the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Write `len` bytes at `offset` (data travels inline).
    Write,
    /// Read `len` bytes at `offset`.
    Read,
    /// Flush the device write buffer.
    Flush,
    /// Connect to a controller/namespace (admin).
    Connect,
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::Write => 0x01,
            Opcode::Read => 0x02,
            Opcode::Flush => 0x00,
            Opcode::Connect => 0x7F,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0x01 => Some(Opcode::Write),
            0x02 => Some(Opcode::Read),
            0x00 => Some(Opcode::Flush),
            0x7F => Some(Opcode::Connect),
            _ => None,
        }
    }
}

/// Completion status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Command completed successfully.
    Success,
    /// Invalid namespace or access denied.
    InvalidNamespace,
    /// IO out of range.
    LbaOutOfRange,
    /// Malformed command.
    InvalidField,
    /// Transient backpressure: the shard cannot service the command right
    /// now; the initiator should back off and retry.
    Busy,
    /// The backing shard is dead; retrying this path is pointless and the
    /// runtime should fail over.
    ShardOffline,
    /// The command arrived with a CRC mismatch (wire corruption).
    DataCorrupt,
}

impl Status {
    fn to_u8(self) -> u8 {
        match self {
            Status::Success => 0,
            Status::InvalidNamespace => 1,
            Status::LbaOutOfRange => 2,
            Status::InvalidField => 3,
            Status::Busy => 4,
            Status::ShardOffline => 5,
            Status::DataCorrupt => 6,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Status::Success),
            1 => Some(Status::InvalidNamespace),
            2 => Some(Status::LbaOutOfRange),
            3 => Some(Status::InvalidField),
            4 => Some(Status::Busy),
            5 => Some(Status::ShardOffline),
            6 => Some(Status::DataCorrupt),
            _ => None,
        }
    }

    /// Whether the initiator may transparently retry a command that
    /// completed with this status.
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::Busy | Status::DataCorrupt)
    }
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapsuleError {
    /// Buffer shorter than a capsule header.
    Truncated,
    /// Bad magic number.
    BadMagic(u32),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// Inline payload length does not match the header.
    PayloadMismatch { expected: u64, actual: usize },
    /// Wire CRC over header + payload does not match.
    CrcMismatch {
        cid: u16,
        expected: u32,
        actual: u32,
    },
}

impl fmt::Display for CapsuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapsuleError::Truncated => write!(f, "capsule truncated"),
            CapsuleError::BadMagic(m) => write!(f, "bad capsule magic {m:#x}"),
            CapsuleError::BadOpcode(o) => write!(f, "unknown opcode {o:#x}"),
            CapsuleError::BadStatus(s) => write!(f, "unknown status {s:#x}"),
            CapsuleError::PayloadMismatch { expected, actual } => {
                write!(
                    f,
                    "payload length {actual} does not match header {expected}"
                )
            }
            CapsuleError::CrcMismatch {
                cid,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "cid {cid}: wire crc {actual:#010x} does not match header {expected:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CapsuleError {}

/// A command capsule as sent initiator → target.
#[derive(Debug, Clone)]
pub struct Capsule {
    /// Command opcode.
    pub opcode: Opcode,
    /// Command identifier, echoed in the completion.
    pub cid: u16,
    /// Target namespace id (device-local NSID).
    pub nsid: u32,
    /// Byte offset within the namespace.
    pub offset: u64,
    /// Length of the IO in bytes.
    pub len: u64,
    /// Inline payload (writes only).
    pub data: Bytes,
    /// Cached finalized `crc32(data)`, supplied by callers that already
    /// checksummed the payload (replicated writes checksum once, then
    /// encode the same payload into two capsules). `encode_header` derives
    /// the wire CRC from it via `crc32_shift` in O(log len) instead of
    /// re-scanning the payload. Purely an encoding accelerator: it never
    /// changes wire bytes, so equality ignores it.
    payload_crc: Option<u32>,
}

impl PartialEq for Capsule {
    fn eq(&self, other: &Self) -> bool {
        self.opcode == other.opcode
            && self.cid == other.cid
            && self.nsid == other.nsid
            && self.offset == other.offset
            && self.len == other.len
            && self.data == other.data
    }
}

impl Eq for Capsule {}

impl Capsule {
    /// A write capsule carrying `data`.
    pub fn write(cid: u16, nsid: u32, offset: u64, data: Bytes) -> Self {
        let len = data.len() as u64;
        Capsule {
            opcode: Opcode::Write,
            cid,
            nsid,
            offset,
            len,
            data,
            payload_crc: None,
        }
    }

    /// A write capsule whose payload checksum `crc32(data)` the caller has
    /// already computed. Encoding reuses it instead of re-scanning the
    /// payload — on a replicated write the payload is checksummed once and
    /// encoded into two byte-identical capsules (modulo nsid/offset).
    pub fn write_precrc(cid: u16, nsid: u32, offset: u64, data: Bytes, payload_crc: u32) -> Self {
        let mut c = Self::write(cid, nsid, offset, data);
        c.payload_crc = Some(payload_crc);
        c
    }

    /// A read capsule requesting `len` bytes.
    pub fn read(cid: u16, nsid: u32, offset: u64, len: u64) -> Self {
        Capsule {
            opcode: Opcode::Read,
            cid,
            nsid,
            offset,
            len,
            data: Bytes::new(),
            payload_crc: None,
        }
    }

    /// A flush capsule.
    pub fn flush(cid: u16, nsid: u32) -> Self {
        Capsule {
            opcode: Opcode::Flush,
            cid,
            nsid,
            offset: 0,
            len: 0,
            data: Bytes::new(),
            payload_crc: None,
        }
    }

    /// A connect (admin) capsule for `nsid`.
    pub fn connect(cid: u16, nsid: u32) -> Self {
        Capsule {
            opcode: Opcode::Connect,
            cid,
            nsid,
            offset: 0,
            len: 0,
            data: Bytes::new(),
            payload_crc: None,
        }
    }

    /// The payload length this capsule's header declares: `len` bytes for a
    /// write (data travels inline), zero for everything else.
    fn declared_payload_len(&self) -> u64 {
        match self.opcode {
            Opcode::Write => self.len,
            _ => 0,
        }
    }

    fn encode_header(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN);
        buf.put_u32_le(CAPSULE_MAGIC);
        buf.put_u8(self.opcode.to_u8());
        buf.put_u16_le(self.cid);
        buf.put_u32_le(self.nsid);
        buf.put_u64_le(self.offset);
        buf.put_u64_le(self.len);
        let prefix = crc32(&buf);
        // The CRC update is affine over GF(2):
        // `crc32_update(S, data) = crc32_shift(S ^ !0, len) ^ crc32(data) ^ !0`,
        // so a caller-supplied payload checksum substitutes for re-scanning
        // the payload bytes.
        let crc = match self.payload_crc {
            Some(pc) => {
                crc32_shift(prefix ^ 0xFFFF_FFFF, self.data.len() as u64) ^ pc ^ 0xFFFF_FFFF
            }
            None => crc32_update(prefix, &self.data),
        };
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Serialize to one contiguous wire buffer (copies the payload).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.data.len());
        buf.put_slice(&self.encode_header());
        buf.put_slice(&self.data);
        buf.freeze()
    }

    /// Serialize as a scatter-gather list: `[header, payload]`. The
    /// payload segment is the capsule's own refcounted buffer — encoding
    /// a write this way copies zero payload bytes.
    pub fn encode_sg(&self) -> SgList {
        let mut sg = SgList::from(self.encode_header());
        sg.push(self.data.clone());
        sg
    }

    /// Parse the fixed header, leaving `buf` at the payload. Returns the
    /// capsule plus `(wire_crc, crc_of_header_prefix)`; payload length and
    /// CRC are validated once the payload is attached.
    fn decode_header(buf: &mut Bytes) -> Result<(Self, u32, u32), CapsuleError> {
        if buf.len() < HEADER_LEN {
            return Err(CapsuleError::Truncated);
        }
        let prefix_crc = crc32(&buf[..HEADER_LEN - 4]);
        let magic = buf.get_u32_le();
        if magic != CAPSULE_MAGIC {
            return Err(CapsuleError::BadMagic(magic));
        }
        let op = buf.get_u8();
        let opcode = Opcode::from_u8(op).ok_or(CapsuleError::BadOpcode(op))?;
        let cid = buf.get_u16_le();
        let nsid = buf.get_u32_le();
        let offset = buf.get_u64_le();
        let len = buf.get_u64_le();
        let wire_crc = buf.get_u32_le();
        Ok((
            Capsule {
                opcode,
                cid,
                nsid,
                offset,
                len,
                data: Bytes::new(),
                payload_crc: None,
            },
            wire_crc,
            prefix_crc,
        ))
    }

    fn attach_payload(
        mut self,
        data: Bytes,
        wire_crc: u32,
        prefix_crc: u32,
    ) -> Result<Self, CapsuleError> {
        // Never trust the declared length: every opcode's payload must match
        // what the header claims (zero for read/flush/connect). Checked
        // before the CRC so truncation reports as a length error.
        if data.len() as u64 != self.declared_payload_len() {
            return Err(CapsuleError::PayloadMismatch {
                expected: self.declared_payload_len(),
                actual: data.len(),
            });
        }
        let actual = crc32_update(prefix_crc, &data);
        if actual != wire_crc {
            return Err(CapsuleError::CrcMismatch {
                cid: self.cid,
                expected: wire_crc,
                actual,
            });
        }
        self.data = data;
        Ok(self)
    }

    /// Parse from contiguous wire bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, CapsuleError> {
        let (c, wire_crc, prefix_crc) = Self::decode_header(&mut buf)?;
        c.attach_payload(buf, wire_crc, prefix_crc)
    }

    /// Parse from a scatter-gather delivery without copying the payload:
    /// in the `[header, payload]` shape produced by [`Capsule::encode_sg`],
    /// the payload segment is adopted by refcount. Other segmentations
    /// fall back to a gather + contiguous decode.
    pub fn decode_sg(sg: SgList) -> Result<Self, CapsuleError> {
        let mut segs = sg.into_segments();
        if segs.len() == 2 && segs[0].len() == HEADER_LEN {
            let payload = segs.pop().expect("len checked");
            let mut header = segs.pop().expect("len checked");
            let (c, wire_crc, prefix_crc) = Self::decode_header(&mut header)?;
            return c.attach_payload(payload, wire_crc, prefix_crc);
        }
        Self::decode(SgList::from(segs).into_contiguous())
    }

    /// Total size on the wire, including inline payload.
    pub fn wire_size(&self) -> usize {
        HEADER_LEN + self.data.len()
    }
}

/// A response capsule as sent target → initiator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Echo of the command identifier.
    pub cid: u16,
    /// Outcome.
    pub status: Status,
    /// Read payload (reads only).
    pub data: Bytes,
}

impl Completion {
    /// A success completion, optionally carrying read data.
    pub fn ok(cid: u16, data: Bytes) -> Self {
        Completion {
            cid,
            status: Status::Success,
            data,
        }
    }

    /// An error completion.
    pub fn error(cid: u16, status: Status) -> Self {
        Completion {
            cid,
            status,
            data: Bytes::new(),
        }
    }

    fn encode_header(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(COMPLETION_HEADER_LEN);
        buf.put_u32_le(CAPSULE_MAGIC);
        buf.put_u16_le(self.cid);
        buf.put_u8(self.status.to_u8());
        buf.put_u64_le(self.data.len() as u64);
        let crc = crc32_update(crc32(&buf), &self.data);
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Serialize to one contiguous wire buffer (copies the payload).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(COMPLETION_HEADER_LEN + self.data.len());
        buf.put_slice(&self.encode_header());
        buf.put_slice(&self.data);
        buf.freeze()
    }

    /// Serialize as a scatter-gather list: `[header, data]`. A read
    /// completion's payload segment is the target's refcounted buffer —
    /// zero payload bytes copied.
    pub fn encode_sg(&self) -> SgList {
        let mut sg = SgList::from(self.encode_header());
        sg.push(self.data.clone());
        sg
    }

    /// Parse the fixed header, returning `(completion, payload_len,
    /// wire_crc, crc_of_header_prefix)`.
    fn decode_header(buf: &mut Bytes) -> Result<(Self, u64, u32, u32), CapsuleError> {
        if buf.len() < COMPLETION_HEADER_LEN {
            return Err(CapsuleError::Truncated);
        }
        let prefix_crc = crc32(&buf[..COMPLETION_HEADER_LEN - 4]);
        let magic = buf.get_u32_le();
        if magic != CAPSULE_MAGIC {
            return Err(CapsuleError::BadMagic(magic));
        }
        let cid = buf.get_u16_le();
        let st = buf.get_u8();
        let status = Status::from_u8(st).ok_or(CapsuleError::BadStatus(st))?;
        let len = buf.get_u64_le();
        let wire_crc = buf.get_u32_le();
        Ok((
            Completion {
                cid,
                status,
                data: Bytes::new(),
            },
            len,
            wire_crc,
            prefix_crc,
        ))
    }

    fn attach_payload(
        mut self,
        len: u64,
        data: Bytes,
        wire_crc: u32,
        prefix_crc: u32,
    ) -> Result<Self, CapsuleError> {
        if data.len() as u64 != len {
            return Err(CapsuleError::PayloadMismatch {
                expected: len,
                actual: data.len(),
            });
        }
        let actual = crc32_update(prefix_crc, &data);
        if actual != wire_crc {
            return Err(CapsuleError::CrcMismatch {
                cid: self.cid,
                expected: wire_crc,
                actual,
            });
        }
        self.data = data;
        Ok(self)
    }

    /// Parse from contiguous wire bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, CapsuleError> {
        let (c, len, wire_crc, prefix_crc) = Self::decode_header(&mut buf)?;
        c.attach_payload(len, buf, wire_crc, prefix_crc)
    }

    /// Parse from a scatter-gather delivery without copying the payload
    /// (see [`Capsule::decode_sg`]).
    pub fn decode_sg(sg: SgList) -> Result<Self, CapsuleError> {
        let mut segs = sg.into_segments();
        if segs.len() == 2 && segs[0].len() == COMPLETION_HEADER_LEN {
            let payload = segs.pop().expect("len checked");
            let mut header = segs.pop().expect("len checked");
            let (c, len, wire_crc, prefix_crc) = Self::decode_header(&mut header)?;
            return c.attach_payload(len, payload, wire_crc, prefix_crc);
        }
        Self::decode(SgList::from(segs).into_contiguous())
    }

    /// Total size on the wire, including payload.
    pub fn wire_size(&self) -> usize {
        COMPLETION_HEADER_LEN + self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_roundtrip() {
        let c = Capsule::write(7, 3, 4096, Bytes::from_static(b"checkpoint bytes"));
        let d = Capsule::decode(c.encode()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn precrc_encoding_is_byte_identical() {
        for payload in [
            Bytes::new(),
            Bytes::from_static(b"x"),
            Bytes::from(vec![0xA7u8; 4096]),
        ] {
            let plain = Capsule::write(7, 3, 4096, payload.clone());
            let pre = Capsule::write_precrc(7, 3, 4096, payload.clone(), crc32(&payload));
            assert_eq!(plain.encode(), pre.encode());
            assert_eq!(Capsule::decode(pre.encode()).unwrap(), plain);
        }
    }

    #[test]
    fn wrong_precrc_fails_wire_crc() {
        // The cached checksum genuinely feeds the wire CRC: lying about it
        // produces a capsule the decoder rejects.
        let payload = Bytes::from_static(b"checkpoint bytes");
        let bad = Capsule::write_precrc(1, 1, 0, payload.clone(), !crc32(&payload));
        assert!(matches!(
            Capsule::decode(bad.encode()),
            Err(CapsuleError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn read_and_flush_roundtrip() {
        for c in [Capsule::read(1, 2, 0, 32 << 10), Capsule::flush(2, 2)] {
            assert_eq!(Capsule::decode(c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn sg_roundtrip_is_copy_free() {
        let payload = Bytes::from(vec![0x42u8; 4096]);
        let c = Capsule::write(3, 1, 0, payload.clone());
        let sg = c.encode_sg();
        assert_eq!(sg.segment_count(), 2);
        let d = Capsule::decode_sg(sg).unwrap();
        assert_eq!(c, d);
        // Same allocation end-to-end: the decoded payload points at the
        // original buffer, not a copy.
        assert_eq!(d.data.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn sg_decode_handles_contiguous_and_odd_segmentation() {
        let c = Capsule::write(1, 1, 64, Bytes::from_static(b"abcd"));
        // Single-segment (contiguous) delivery.
        assert_eq!(Capsule::decode_sg(c.encode().into()).unwrap(), c);
        // Flush has no payload: encode_sg yields one header segment.
        let f = Capsule::flush(9, 2);
        assert_eq!(f.encode_sg().segment_count(), 1);
        assert_eq!(Capsule::decode_sg(f.encode_sg()).unwrap(), f);
    }

    #[test]
    fn sg_payload_mismatch_rejected() {
        let c = Capsule::write(1, 1, 0, Bytes::from_static(b"abcd"));
        let mut sg = crate::sg::SgList::from(c.encode_sg().segments()[0].clone());
        sg.push(Bytes::from_static(b"abc")); // one byte short
        assert!(matches!(
            Capsule::decode_sg(sg),
            Err(CapsuleError::PayloadMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn completion_sg_roundtrip() {
        let payload = Bytes::from(vec![7u8; 1024]);
        let c = Completion::ok(5, payload.clone());
        let d = Completion::decode_sg(c.encode_sg()).unwrap();
        assert_eq!(c, d);
        assert_eq!(d.data.as_ptr(), payload.as_ptr());
        let e = Completion::error(5, Status::InvalidField);
        assert_eq!(Completion::decode_sg(e.encode_sg()).unwrap(), e);
    }

    #[test]
    fn completion_roundtrip() {
        let ok = Completion::ok(9, Bytes::from_static(&[1, 2, 3]));
        assert_eq!(Completion::decode(ok.encode()).unwrap(), ok);
        let err = Completion::error(9, Status::LbaOutOfRange);
        assert_eq!(Completion::decode(err.encode()).unwrap(), err);
    }

    #[test]
    fn truncated_and_bad_magic_rejected() {
        assert_eq!(
            Capsule::decode(Bytes::from_static(&[1, 2, 3])),
            Err(CapsuleError::Truncated)
        );
        let mut bad = BytesMut::from(&Capsule::flush(0, 0).encode()[..]);
        bad[0] ^= 0xFF;
        assert!(matches!(
            Capsule::decode(bad.freeze()),
            Err(CapsuleError::BadMagic(_))
        ));
    }

    #[test]
    fn payload_mismatch_rejected() {
        let c = Capsule::write(1, 1, 0, Bytes::from_static(b"abcd"));
        let mut wire = BytesMut::from(&c.encode()[..]);
        wire.truncate(wire.len() - 1); // drop one payload byte
        assert!(matches!(
            Capsule::decode(wire.freeze()),
            Err(CapsuleError::PayloadMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn crc_detects_payload_corruption() {
        let c = Capsule::write(3, 1, 0, Bytes::from_static(b"checkpoint"));
        let mut wire = BytesMut::from(&c.encode()[..]);
        let last = wire.len() - 1;
        wire[last] ^= 0x01; // flip one payload bit
        assert!(matches!(
            Capsule::decode(wire.freeze()),
            Err(CapsuleError::CrcMismatch { cid: 3, .. })
        ));
    }

    #[test]
    fn crc_detects_header_field_corruption() {
        let c = Capsule::write(4, 1, 4096, Bytes::from_static(b"x"));
        let mut wire = BytesMut::from(&c.encode()[..]);
        wire[11] ^= 0x40; // offset field
        assert!(matches!(
            Capsule::decode(wire.freeze()),
            Err(CapsuleError::CrcMismatch { cid: 4, .. })
        ));
    }

    #[test]
    fn completion_crc_detects_corruption() {
        let c = Completion::ok(8, Bytes::from_static(b"read data"));
        let mut wire = BytesMut::from(&c.encode()[..]);
        let last = wire.len() - 1;
        wire[last] ^= 0x80;
        assert!(matches!(
            Completion::decode(wire.freeze()),
            Err(CapsuleError::CrcMismatch { cid: 8, .. })
        ));
    }

    #[test]
    fn nonwrite_capsule_with_payload_rejected() {
        // A read capsule declaring len=4096 must not be allowed to smuggle
        // inline bytes: the declared *payload* length for a read is zero.
        let r = Capsule::read(1, 1, 0, 4096);
        let mut wire = BytesMut::from(&r.encode()[..]);
        wire.put_slice(b"sneaky trailing bytes");
        assert!(matches!(
            Capsule::decode(wire.freeze()),
            Err(CapsuleError::PayloadMismatch {
                expected: 0,
                actual: 21
            })
        ));
    }

    #[test]
    fn connect_roundtrip() {
        let c = Capsule::connect(1, 7);
        assert_eq!(c.opcode, Opcode::Connect);
        assert_eq!(Capsule::decode(c.encode()).unwrap(), c);
    }

    #[test]
    fn bad_opcode_rejected() {
        let c = Capsule::flush(0, 0);
        let mut wire = BytesMut::from(&c.encode()[..]);
        wire[4] = 0x55;
        assert_eq!(
            Capsule::decode(wire.freeze()),
            Err(CapsuleError::BadOpcode(0x55))
        );
    }

    proptest! {
        #[test]
        fn prop_capsule_roundtrip(
            cid in any::<u16>(),
            nsid in any::<u32>(),
            offset in any::<u64>(),
            data in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let c = Capsule::write(cid, nsid, offset, Bytes::from(data));
            prop_assert_eq!(Capsule::decode(c.encode()).unwrap(), c);
        }

        #[test]
        fn prop_completion_roundtrip(
            cid in any::<u16>(),
            data in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let c = Completion::ok(cid, Bytes::from(data));
            prop_assert_eq!(Completion::decode(c.encode()).unwrap(), c);
        }

        /// Arbitrary garbage never panics the decoder.
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Capsule::decode(Bytes::from(bytes.clone()));
            let _ = Completion::decode(Bytes::from(bytes));
        }
    }
}
