//! Functional NVMf initiator — the SPDK client embedded in each runtime.
//!
//! "SPDK NVMf clients, embedded within the NVMe-CR runtime, are responsible
//! for communication with server daemons" (§III-D). An [`Initiator`] opens
//! [`NvmfConnection`]s to targets; each connection is bound to one namespace
//! and moves real bytes through the capsule codec, exactly as the runtime's
//! data plane will use it.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use chaos::{ChaosHandle, FaultAction, FaultSite};
use telemetry::{Counter, FlightKind, FlightRecorder, Histogram, Telemetry};

use ssd::NsId;

use crate::capsule::{Capsule, CapsuleError, Completion, Status};
use crate::config::{FabricConfig, KernelCosts};
use crate::path::IoPath;
use crate::qp::{CompletionOp, QpError, QueuePair};
use crate::sg::SgList;
use crate::target::{ConnId, NvmfTarget, TargetError};

/// Resolved telemetry handles for the initiator hot path, shared by every
/// connection an [`Initiator`] opens.
struct FabricMetrics {
    /// Full QP submit→complete latency of one capsule exchange.
    submit_ns: Arc<Histogram>,
    /// Command-capsule scatter-gather encode latency.
    capsule_encode_ns: Arc<Histogram>,
    /// Response-capsule decode latency.
    capsule_decode_ns: Arc<Histogram>,
    /// Capsule exchanges issued (writes, reads, flushes).
    io_ops: Arc<Counter>,
    /// Payload bytes moved over connections.
    io_bytes: Arc<Counter>,
    /// Payload bytes memcpy'd on the initiator side. The `Bytes`-based
    /// paths add nothing here; the slice-based convenience paths add one
    /// staging copy each.
    bytes_copied: Arc<Counter>,
    /// Modeled host-CPU ns for the polled userspace path actually taken.
    userspace_path_ns: Arc<Counter>,
    /// Modeled host-CPU ns the same IOs would have cost on the kernel
    /// path (Figure 2) — the counterfactual the paper's §IV-D contrasts.
    kernel_path_equiv_ns: Arc<Counter>,
    /// Command attempts beyond the first (retries after transient faults).
    retries: Arc<Counter>,
    /// Commands whose capsule or response never arrived within the modeled
    /// command timeout.
    timeouts: Arc<Counter>,
    /// Response capsules rejected at the initiator for a CRC mismatch.
    crc_errors: Arc<Counter>,
    /// Connection re-establishments after a reset.
    reconnects: Arc<Counter>,
    /// Modeled backoff nanoseconds charged before retries (not slept).
    backoff_ns: Arc<Counter>,
    /// Wall-clock latency of one reconnect (teardown + re-admission + QP).
    reconnect_ns: Arc<Histogram>,
    /// Black-box flight recorder: every command lifecycle event (submit,
    /// completion, retry, timeout, CRC reject, exhaustion, reconnect) is
    /// stamped with (rank, epoch, CID, retry-generation) so a dump
    /// reconstructs the causal timeline of any one command.
    flight: Arc<FlightRecorder>,
}

impl FabricMetrics {
    fn new(t: &Telemetry) -> Self {
        FabricMetrics {
            submit_ns: t.histogram("fabric.submit_ns"),
            capsule_encode_ns: t.histogram("fabric.capsule_encode_ns"),
            capsule_decode_ns: t.histogram("fabric.capsule_decode_ns"),
            io_ops: t.counter("fabric.io_ops"),
            io_bytes: t.counter("fabric.io_bytes"),
            bytes_copied: t.counter("fabric.bytes_copied"),
            userspace_path_ns: t.counter("fabric.userspace_path_ns"),
            kernel_path_equiv_ns: t.counter("fabric.kernel_path_equiv_ns"),
            retries: t.counter("fabric.retries"),
            timeouts: t.counter("fabric.timeouts"),
            crc_errors: t.counter("fabric.crc_errors"),
            reconnects: t.counter("fabric.reconnects"),
            backoff_ns: t.counter("fabric.backoff_ns"),
            reconnect_ns: t.histogram("fabric.reconnect_ns"),
            flight: t.recorder(),
        }
    }
}

/// Initiator-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitiatorError {
    /// The target returned a non-success status.
    Remote(Status),
    /// Transport-level failure.
    Transport(String),
    /// All retry attempts were consumed without a successful completion.
    Exhausted { attempts: u32, last: String },
}

impl fmt::Display for InitiatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitiatorError::Remote(s) => write!(f, "remote error: {s:?}"),
            InitiatorError::Transport(e) => write!(f, "transport error: {e}"),
            InitiatorError::Exhausted { attempts, last } => {
                write!(f, "command failed after {attempts} attempts (last: {last})")
            }
        }
    }
}

impl std::error::Error for InitiatorError {}

impl From<TargetError> for InitiatorError {
    fn from(e: TargetError) -> Self {
        InitiatorError::Transport(e.to_string())
    }
}

/// Transient outcome of one wire attempt of a command, classified for the
/// per-command retry bookkeeping in [`NvmfConnection::submit_window`].
/// Fatal failures short-circuit the window as `InitiatorError` directly.
enum AttemptError {
    /// The command or its response vanished; the modeled command timeout
    /// fired. Retry.
    Lost(&'static str),
    /// The target answered with a transient status (`Busy`, `DataCorrupt`)
    /// or the response failed CRC locally. Retry.
    Transient(Status),
    /// The connection dropped mid-command. Reconnect, then retry.
    Reset,
}

impl AttemptError {
    fn describe(&self) -> String {
        match self {
            AttemptError::Lost(what) => (*what).to_string(),
            AttemptError::Transient(s) => format!("transient remote status {s:?}"),
            AttemptError::Reset => "connection reset".to_string(),
        }
    }
}

/// One command's slot in the pipelined submission window: its capsule (the
/// CID is the matching key), how many attempts it has consumed, whether a
/// posted copy is currently awaiting a response, and its completion once
/// retired. Slots are kept in submission order so the window's results come
/// back in the order the caller issued them, even though completions are
/// matched out of order.
struct Pending {
    capsule: Capsule,
    attempts: u32,
    in_flight: bool,
    done: Option<Completion>,
    started: Instant,
    timed: bool,
}

/// What happened when the window tried to put one command on the wire.
enum PostOutcome {
    /// On the wire; a response will (eventually) match by CID.
    Posted,
    /// Injected drop: the capsule vanished before the wire. The modeled
    /// command timeout fires immediately (no response can exist).
    LostTx,
    /// The connection died under this command; every in-flight command on
    /// the old queue pair is collateral.
    Reset,
    /// The send queue is full: stop posting and drain completions first.
    Backpressure,
}

/// Flip one bit in the last byte of the last wire segment — the injected
/// stand-in for in-flight corruption. Only runs on the fault path.
fn corrupt_sg(sg: SgList) -> SgList {
    let mut segs = sg.into_segments();
    if let Some(last) = segs.last_mut() {
        if !last.is_empty() {
            let mut v = last.to_vec();
            let i = v.len() - 1;
            v[i] ^= 0x01;
            *last = Bytes::from(v);
        }
    }
    SgList::from(segs)
}

/// The client-side NVMf endpoint of one process.
pub struct Initiator {
    host_nqn: String,
    metrics: Arc<FabricMetrics>,
    chaos: ChaosHandle,
    config: FabricConfig,
}

impl Initiator {
    /// An initiator identifying as `host_nqn`, reporting into the
    /// process-global telemetry registry.
    pub fn new(host_nqn: impl Into<String>) -> Self {
        Self::with_telemetry(host_nqn, Telemetry::default())
    }

    /// An initiator reporting `fabric.*` metrics into `t`.
    pub fn with_telemetry(host_nqn: impl Into<String>, t: Telemetry) -> Self {
        Self::with_config(host_nqn, t, ChaosHandle::default(), FabricConfig::default())
    }

    /// Full constructor: telemetry registry, fault-injection hook, and
    /// data-plane tuning (submission window depth, poll batches, retry
    /// policy).
    pub fn with_config(
        host_nqn: impl Into<String>,
        t: Telemetry,
        chaos: ChaosHandle,
        config: FabricConfig,
    ) -> Self {
        Initiator {
            host_nqn: host_nqn.into(),
            metrics: Arc::new(FabricMetrics::new(&t)),
            chaos,
            config,
        }
    }

    /// This host's NQN.
    pub fn host_nqn(&self) -> &str {
        &self.host_nqn
    }

    /// Connect to `target`, binding the connection to namespace `ns`.
    /// The target admits the connection with access to exactly that
    /// namespace, and an RDMA queue pair is established for the capsule
    /// traffic. Queue depths are sized from the submission window — at
    /// least the SPDK-default ballpark of 128, and 4× `queue_depth` when
    /// the window is deeper (each windowed command can briefly hold a send
    /// slot plus a duplicate under fault injection).
    pub fn connect(&self, target: Arc<NvmfTarget>, ns: NsId) -> NvmfConnection {
        let conn = target.connect(&self.host_nqn, &[ns]);
        let qp_depth = qp_depth_for(&self.config);
        let (qp_initiator, qp_target) = QueuePair::connected_pair(qp_depth, qp_depth);
        // Price one IO on each software stack up front: every submit then
        // charges the polled-userspace cost actually taken and the
        // kernel-path counterfactual, so reports can contrast the two.
        let k = KernelCosts::default();
        let userspace_per_io_ns = (IoPath::Userspace.per_io(&k).total().as_secs() * 1e9) as u64;
        let kernel_per_io_ns = (IoPath::Kernel.per_io(&k).total().as_secs() * 1e9) as u64;
        NvmfConnection {
            target,
            conn,
            ns,
            host_nqn: self.host_nqn.clone(),
            qp_initiator,
            qp_target,
            next_cid: 0,
            next_wr: 0,
            ios: 0,
            bytes: 0,
            metrics: Arc::clone(&self.metrics),
            chaos: self.chaos.clone(),
            config: self.config.clone(),
            userspace_per_io_ns,
            kernel_per_io_ns,
        }
    }
}

/// QP send/receive depth backing a submission window of `queue_depth`.
fn qp_depth_for(config: &FabricConfig) -> usize {
    config.queue_depth.saturating_mul(4).max(128)
}

/// An established initiator→target connection bound to one namespace.
/// Capsules travel over a real [`QueuePair`]; the target daemon's polling
/// loop runs inline when a command is submitted (the functional stand-in
/// for the SPDK reactor).
pub struct NvmfConnection {
    target: Arc<NvmfTarget>,
    conn: ConnId,
    ns: NsId,
    host_nqn: String,
    qp_initiator: QueuePair,
    qp_target: QueuePair,
    next_cid: u16,
    next_wr: u64,
    ios: u64,
    bytes: u64,
    metrics: Arc<FabricMetrics>,
    chaos: ChaosHandle,
    config: FabricConfig,
    userspace_per_io_ns: u64,
    kernel_per_io_ns: u64,
}

impl NvmfConnection {
    fn cid(&mut self) -> u16 {
        let c = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        c
    }

    fn wr(&mut self) -> u64 {
        let w = self.next_wr;
        self.next_wr += 1;
        w
    }

    /// Submit one command through a single-slot window. All retry,
    /// reconnect, and replay-cache semantics live in
    /// [`NvmfConnection::submit_window`]; a lone command is simply the
    /// degenerate QD=1 case.
    fn submit(&mut self, capsule: Capsule) -> Result<Completion, InitiatorError> {
        self.submit_window(vec![capsule])
            .map(|mut v| v.pop().expect("one completion per capsule"))
    }

    /// Submit a batch of commands through the pipelined window.
    ///
    /// Up to `queue_depth` command capsules are posted before any polling;
    /// in-flight commands are tracked by CID in a pending table and their
    /// completions matched **out of order**, but results are returned in
    /// submission order. Each command individually rides the bounded
    /// exponential-backoff retry machinery: transient failures — lost
    /// capsules (modeled timeout), CRC-corrupt capsules in either
    /// direction, `Busy` backpressure, connection resets — are retried up
    /// to `retry.max_retries` times, reusing the **same CID** so the
    /// target's replay cache keeps re-execution idempotent. Resets trigger
    /// a full reconnect (re-admission + fresh queue pair) first. Backoff is
    /// modeled time, charged to `fabric.backoff_ns`. A fatal failure on
    /// any command fails the whole window.
    fn submit_window(&mut self, capsules: Vec<Capsule>) -> Result<Vec<Completion>, InitiatorError> {
        let _span = telemetry::span("fabric", "submit")
            .arg("ns", self.ns.0 as u64)
            .arg("window", capsules.len() as u64);
        let mut pending = self.begin_window(capsules);
        let result = self.drive_window(&mut pending);
        self.observe_window(&mut pending);
        result?;
        Ok(pending
            .into_iter()
            .map(|p| p.done.expect("window drained"))
            .collect())
    }

    /// Meter a batch of capsules into the window's pending table. Paired
    /// with [`NvmfConnection::window_pass`] /
    /// [`NvmfConnection::observe_window`] by callers that interleave this
    /// window with another connection's (mirrored writes).
    fn begin_window(&mut self, capsules: Vec<Capsule>) -> Vec<Pending> {
        self.metrics.io_ops.add(capsules.len() as u64);
        capsules
            .into_iter()
            .map(|capsule| Pending {
                capsule,
                attempts: 0,
                in_flight: false,
                done: None,
                started: Instant::now(),
                timed: false,
            })
            .collect()
    }

    /// Exactly one submit_ns observation per command that entered the
    /// window, success or failure — `submit_ns.count` stays equal to
    /// `io_ops` so percentiles are per-command latencies.
    fn observe_window(&self, pending: &mut [Pending]) {
        for p in pending.iter_mut().filter(|p| !p.timed) {
            Self::observe_latency(&self.metrics, p);
        }
    }

    fn observe_latency(metrics: &FabricMetrics, p: &mut Pending) {
        p.timed = true;
        metrics
            .submit_ns
            .record(p.started.elapsed().as_nanos() as u64);
    }

    /// Run the window until every pending command has retired.
    fn drive_window(&mut self, pending: &mut [Pending]) -> Result<(), InitiatorError> {
        while pending.iter().any(|p| p.done.is_none()) {
            self.window_pass(pending)?;
        }
        Ok(())
    }

    /// One pass of the submission window. Each pass makes three sweeps —
    /// post, target-daemon batch iteration, CQ drain — followed by a
    /// timeout sweep for commands whose responses are provably gone. No
    /// blocking waits anywhere (Principle 1). A pass retires at least one
    /// attempt, so [`NvmfConnection::drive_window`] loops it to completion;
    /// [`write_mirrored_bytes`] instead alternates passes on two
    /// connections so a replicated write keeps both windows full
    /// concurrently.
    fn window_pass(&mut self, pending: &mut [Pending]) -> Result<(), InitiatorError> {
        let qd = self.config.queue_depth.max(1);
        {
            // Phase 1: fill the window — post command capsules until
            // `queue_depth` are in flight or the send queue pushes back.
            let mut in_flight = pending.iter().filter(|p| p.in_flight).count();
            'post: for i in 0..pending.len() {
                if in_flight >= qd {
                    break;
                }
                if pending[i].done.is_some() || pending[i].in_flight {
                    continue;
                }
                match self.post_one(&pending[i].capsule)? {
                    PostOutcome::Posted => {
                        let p = &mut pending[i];
                        self.metrics.flight.record(
                            FlightKind::Submit,
                            p.capsule.cid as u64,
                            p.attempts as u64,
                            p.capsule.len,
                            p.capsule.offset,
                        );
                        p.in_flight = true;
                        in_flight += 1;
                    }
                    PostOutcome::LostTx => {
                        self.metrics.timeouts.inc();
                        self.metrics.flight.record(
                            FlightKind::Timeout,
                            pending[i].capsule.cid as u64,
                            pending[i].attempts as u64,
                            0,
                            0,
                        );
                        self.note_failure(
                            &mut pending[i],
                            &AttemptError::Lost("command capsule dropped"),
                        )?;
                    }
                    PostOutcome::Reset => {
                        // Charge the command that saw the reset one attempt
                        // and reconnect. Every other in-flight command died
                        // with the old queue pair through no fault of its
                        // own: it is re-posted on the fresh QP without
                        // consuming one of its attempts (the replay cache /
                        // idempotent re-execution absorbs any duplicate
                        // effect of a command that had already executed).
                        self.note_failure(&mut pending[i], &AttemptError::Reset)?;
                        self.reconnect();
                        for p in pending.iter_mut() {
                            p.in_flight = false;
                        }
                        break 'post;
                    }
                    PostOutcome::Backpressure => break 'post,
                }
            }
            // Phase 2: batched target-daemon iterations — decode, execute,
            // and respond for a whole CQ batch per poll, until the target's
            // CQ is dry. With an injected duplicate both deliveries execute
            // here and the replay cache answers the second from memory.
            loop {
                let polled = self.qp_target.poll_cq(self.config.target_poll_batch);
                if polled.is_empty() {
                    break;
                }
                let cmds: Vec<SgList> = polled
                    .into_iter()
                    .filter(|c| c.opcode == CompletionOp::Recv)
                    .filter_map(|c| c.payload)
                    .collect();
                if cmds.is_empty() {
                    continue; // the poll drained only send completions
                }
                let resps = self
                    .target
                    .handle_wire_sg_batch(self.conn, cmds)
                    .map_err(InitiatorError::from)?;
                for resp in resps {
                    let send = self.wr();
                    self.qp_target
                        .post_send(send, resp)
                        .map_err(|e| InitiatorError::Transport(e.to_string()))?;
                }
            }
            // Phase 3: drain our own CQ, matching completions to pending
            // commands by CID — arrival order does not matter.
            loop {
                let comps = self.qp_initiator.poll_cq(self.config.initiator_poll_batch);
                if comps.is_empty() {
                    break;
                }
                for c in comps {
                    if c.opcode != CompletionOp::Recv {
                        continue;
                    }
                    let Some(mut resp_wire) = c.payload else {
                        continue;
                    };
                    // Site 3: the response capsule in flight.
                    match self.chaos.decide(FaultSite::CapsuleRx) {
                        Some(FaultAction::DropCapsule) => continue,
                        Some(FaultAction::CorruptPayload) => resp_wire = corrupt_sg(resp_wire),
                        _ => {}
                    }
                    let decoded = {
                        let _t = self.metrics.capsule_decode_ns.time();
                        Completion::decode_sg(resp_wire)
                    };
                    match decoded {
                        Ok(comp) => {
                            let Some(p) = pending.iter_mut().find(|p| {
                                p.in_flight && p.done.is_none() && p.capsule.cid == comp.cid
                            }) else {
                                continue; // stale response from a faulted attempt
                            };
                            p.in_flight = false;
                            match comp.status {
                                Status::Success => {
                                    p.done = Some(comp);
                                    Self::observe_latency(&self.metrics, p);
                                    self.metrics.flight.record(
                                        FlightKind::Complete,
                                        p.capsule.cid as u64,
                                        p.attempts as u64,
                                        p.started.elapsed().as_nanos() as u64,
                                        0,
                                    );
                                }
                                s if s.is_retryable() => {
                                    self.note_failure(p, &AttemptError::Transient(s))?;
                                }
                                s => return Err(InitiatorError::Remote(s)),
                            }
                        }
                        Err(CapsuleError::CrcMismatch { cid, .. }) => {
                            // The response header still carries the CID, so
                            // the mangled response charges its own command.
                            self.metrics.crc_errors.inc();
                            self.metrics
                                .flight
                                .record(FlightKind::CrcError, cid as u64, 0, 0, 0);
                            self.metrics.flight.trip(FlightKind::CrcError, cid as u64);
                            if let Some(p) = pending
                                .iter_mut()
                                .find(|p| p.in_flight && p.done.is_none() && p.capsule.cid == cid)
                            {
                                p.in_flight = false;
                                self.note_failure(
                                    p,
                                    &AttemptError::Transient(Status::DataCorrupt),
                                )?;
                            }
                        }
                        Err(e) => return Err(InitiatorError::Transport(e.to_string())),
                    }
                }
            }
            // Phase 4: both CQs are now dry, so a command still marked
            // in-flight can never receive a response — its response was
            // dropped on the wire. The modeled command timeout fires and
            // the command re-posts on the next pass.
            for p in pending.iter_mut().filter(|p| p.in_flight) {
                p.in_flight = false;
                self.metrics.timeouts.inc();
                self.metrics.flight.record(
                    FlightKind::Timeout,
                    p.capsule.cid as u64,
                    p.attempts as u64,
                    1,
                    0,
                );
                self.note_failure(p, &AttemptError::Lost("response capsule lost"))?;
            }
        }
        Ok(())
    }

    /// Per-command retry bookkeeping, identical to the lock-step loop's:
    /// attempt `max_retries + 1` failures and the command is exhausted;
    /// otherwise charge one retry and its modeled backoff.
    fn note_failure(&self, p: &mut Pending, e: &AttemptError) -> Result<(), InitiatorError> {
        let cid = p.capsule.cid as u64;
        if p.attempts >= self.config.retry.max_retries {
            self.metrics.flight.record(
                FlightKind::RetryExhausted,
                cid,
                p.attempts as u64 + 1,
                0,
                0,
            );
            self.metrics.flight.trip(FlightKind::RetryExhausted, cid);
            return Err(InitiatorError::Exhausted {
                attempts: p.attempts + 1,
                last: e.describe(),
            });
        }
        p.attempts += 1;
        self.metrics.retries.inc();
        let backoff = self.config.retry.backoff_ns(p.attempts);
        self.metrics.backoff_ns.add(backoff);
        self.metrics
            .flight
            .record(FlightKind::Retry, cid, p.attempts as u64, backoff, 0);
        Ok(())
    }

    /// Put one command on the wire: post receive buffers on both ends,
    /// then send the command capsule. Chaos hooks sit at the two fault
    /// sites a post can hit: the connection and the command capsule in
    /// flight. Disarmed, each hook is one relaxed atomic load.
    fn post_one(&mut self, capsule: &Capsule) -> Result<PostOutcome, InitiatorError> {
        self.metrics.userspace_path_ns.add(self.userspace_per_io_ns);
        self.metrics.kernel_path_equiv_ns.add(self.kernel_per_io_ns);
        // Site 1: the connection dies under this command.
        if let Some(FaultAction::ResetConnection) = self.chaos.decide(FaultSite::ConnReset) {
            self.qp_initiator.disconnect();
            return Ok(PostOutcome::Reset);
        }
        // The capsule travels as scatter-gather segments: header in one
        // SGE, write payload (the caller's refcounted buffer) in another.
        // Nothing on the zero-fault wire path copies payload bytes.
        let mut wire = {
            let _t = self.metrics.capsule_encode_ns.time();
            capsule.encode_sg()
        };
        // Site 2: the command capsule in flight.
        let mut copies = 1usize;
        match self.chaos.decide(FaultSite::CapsuleTx) {
            Some(FaultAction::DropCapsule) => {
                // Vanished on the wire: the initiator only learns via its
                // modeled command timeout.
                return Ok(PostOutcome::LostTx);
            }
            Some(FaultAction::DuplicateCapsule) => copies = 2,
            Some(FaultAction::CorruptPayload) => wire = corrupt_sg(wire),
            _ => {}
        }
        // Check send-queue room up front so a partially posted command
        // never leaves dangling receive buffers behind.
        if self.qp_initiator.send_slots_free() < copies {
            return Ok(PostOutcome::Backpressure);
        }
        for _ in 0..copies {
            let trecv = self.wr();
            self.qp_target.post_recv(trecv);
            let irecv = self.wr();
            self.qp_initiator.post_recv(irecv);
        }
        for _ in 0..copies {
            let send = self.wr();
            match self.qp_initiator.post_send(send, wire.clone()) {
                Ok(()) => {}
                Err(QpError::NotConnected) => return Ok(PostOutcome::Reset),
                Err(QpError::SendQueueFull) => return Ok(PostOutcome::Backpressure),
                Err(e) => return Err(InitiatorError::Transport(e.to_string())),
            }
        }
        Ok(PostOutcome::Posted)
    }

    /// Tear down and re-establish the connection: re-admission at the
    /// target (fresh grant for the same namespace) and a fresh queue pair.
    /// Latency is observed on `fabric.reconnect_ns`.
    fn reconnect(&mut self) {
        let _t = self.metrics.reconnect_ns.time();
        self.metrics.reconnects.inc();
        self.metrics
            .flight
            .record(FlightKind::Reconnect, 0, 0, self.ns.0 as u64, 0);
        self.target.disconnect(self.conn);
        self.conn = self.target.connect(&self.host_nqn, &[self.ns]);
        let qp_depth = qp_depth_for(&self.config);
        let (qi, qt) = QueuePair::connected_pair(qp_depth, qp_depth);
        self.qp_initiator = qi;
        self.qp_target = qt;
    }

    /// NVMf keep-alive: a Connect (admin) capsule over the live queue
    /// pair. Rides the same retry/reconnect machinery as data commands, so
    /// a dead connection heals here instead of on the next data IO.
    pub fn keep_alive(&mut self) -> Result<(), InitiatorError> {
        let cid = self.cid();
        self.submit(Capsule::connect(cid, self.ns.0)).map(|_| ())
    }

    /// The namespace this connection is bound to.
    pub fn namespace(&self) -> NsId {
        self.ns
    }

    /// Write an owned payload at namespace-relative `offset` — the
    /// zero-copy path. The same refcounted buffer crosses initiator →
    /// wire → target → device RAM; its only copy is the device's
    /// drain-to-media.
    pub fn write_bytes(&mut self, offset: u64, data: Bytes) -> Result<(), InitiatorError> {
        let cid = self.cid();
        self.ios += 1;
        self.bytes += data.len() as u64;
        self.metrics.io_bytes.add(data.len() as u64);
        self.submit(Capsule::write(cid, self.ns.0, offset, data))
            .map(|_| ())
    }

    /// Write `data` at namespace-relative `offset` (stages one copy of
    /// the borrowed slice; prefer [`NvmfConnection::write_bytes`]).
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), InitiatorError> {
        self.metrics.bytes_copied.add(data.len() as u64);
        self.write_bytes(offset, Bytes::copy_from_slice(data))
    }

    /// Read `len` bytes at namespace-relative `offset` as an owned
    /// payload — the zero-copy path: the returned buffer is the target's
    /// read buffer, delivered by refcount.
    pub fn read_bytes(&mut self, offset: u64, len: usize) -> Result<Bytes, InitiatorError> {
        let cid = self.cid();
        let c = Capsule::read(cid, self.ns.0, offset, len as u64);
        self.ios += 1;
        self.bytes += len as u64;
        self.metrics.io_bytes.add(len as u64);
        self.submit(c).map(|r| r.data)
    }

    /// Read into a caller-provided buffer (one copy, wire → `buf`).
    pub fn read_into(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), InitiatorError> {
        let data = self.read_bytes(offset, buf.len())?;
        buf.copy_from_slice(&data);
        self.metrics.bytes_copied.add(buf.len() as u64);
        Ok(())
    }

    /// Read `len` bytes at namespace-relative `offset` into a fresh
    /// vector (one copy; prefer [`NvmfConnection::read_bytes`]).
    pub fn read(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, InitiatorError> {
        let data = self.read_bytes(offset, len)?;
        self.metrics.bytes_copied.add(data.len() as u64);
        Ok(data.to_vec())
    }

    /// Write a batch of `(offset, payload)` extents through the pipelined
    /// submission window — up to `queue_depth` commands in flight at once.
    /// The zero-copy path: each payload crosses by refcount. Extents
    /// execute in submission order on the target's per-connection queue.
    pub fn write_vectored_bytes(
        &mut self,
        writes: Vec<(u64, Bytes)>,
    ) -> Result<(), InitiatorError> {
        if writes.is_empty() {
            return Ok(());
        }
        let mut capsules = Vec::with_capacity(writes.len());
        for (offset, data) in writes {
            let cid = self.cid();
            self.ios += 1;
            self.bytes += data.len() as u64;
            self.metrics.io_bytes.add(data.len() as u64);
            capsules.push(Capsule::write(cid, self.ns.0, offset, data));
        }
        self.submit_window(capsules).map(|_| ())
    }

    /// Vectored write of `(offset, payload, crc32(payload))` extents whose
    /// checksums the caller already computed — capsule encoding reuses them
    /// (see [`Capsule::write_precrc`]) instead of re-scanning each payload.
    /// The replication path checksums every extent once for its manifest
    /// and rides this for all subsequent encodes.
    pub fn write_vectored_bytes_precrc(
        &mut self,
        writes: Vec<(u64, Bytes, u32)>,
    ) -> Result<(), InitiatorError> {
        if writes.is_empty() {
            return Ok(());
        }
        let capsules = self.precrc_capsules(writes);
        self.submit_window(capsules).map(|_| ())
    }

    /// Meter and build write capsules carrying caller-computed payload
    /// checksums.
    fn precrc_capsules(&mut self, writes: Vec<(u64, Bytes, u32)>) -> Vec<Capsule> {
        let mut capsules = Vec::with_capacity(writes.len());
        for (offset, data, crc) in writes {
            let cid = self.cid();
            self.ios += 1;
            self.bytes += data.len() as u64;
            self.metrics.io_bytes.add(data.len() as u64);
            capsules.push(Capsule::write_precrc(cid, self.ns.0, offset, data, crc));
        }
        capsules
    }

    /// Vectored write of borrowed slices (stages one copy per extent;
    /// prefer [`NvmfConnection::write_vectored_bytes`]).
    pub fn write_vectored(&mut self, writes: &[(u64, &[u8])]) -> Result<(), InitiatorError> {
        let total: u64 = writes.iter().map(|(_, d)| d.len() as u64).sum();
        self.metrics.bytes_copied.add(total);
        self.write_vectored_bytes(
            writes
                .iter()
                .map(|&(o, d)| (o, Bytes::copy_from_slice(d)))
                .collect(),
        )
    }

    /// Read a batch of `(offset, len)` extents through the pipelined
    /// window, returning owned buffers in submission order — the zero-copy
    /// path: each buffer is the target's read buffer, delivered by
    /// refcount.
    pub fn read_vectored_bytes(
        &mut self,
        reads: &[(u64, usize)],
    ) -> Result<Vec<Bytes>, InitiatorError> {
        if reads.is_empty() {
            return Ok(Vec::new());
        }
        let mut capsules = Vec::with_capacity(reads.len());
        for &(offset, len) in reads {
            let cid = self.cid();
            self.ios += 1;
            self.bytes += len as u64;
            self.metrics.io_bytes.add(len as u64);
            capsules.push(Capsule::read(cid, self.ns.0, offset, len as u64));
        }
        self.submit_window(capsules)
            .map(|comps| comps.into_iter().map(|c| c.data).collect())
    }

    /// Vectored read into caller-provided buffers (one copy per extent,
    /// wire → buffer).
    pub fn read_vectored_into(
        &mut self,
        reads: &mut [(u64, &mut [u8])],
    ) -> Result<(), InitiatorError> {
        let spec: Vec<(u64, usize)> = reads.iter().map(|(o, b)| (*o, b.len())).collect();
        let datas = self.read_vectored_bytes(&spec)?;
        let mut copied = 0u64;
        for ((_, buf), data) in reads.iter_mut().zip(datas) {
            buf.copy_from_slice(&data);
            copied += data.len() as u64;
        }
        self.metrics.bytes_copied.add(copied);
        Ok(())
    }

    /// The configured submission-window depth of this connection.
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    /// Flush the device write buffer.
    pub fn flush(&mut self) -> Result<(), InitiatorError> {
        let cid = self.cid();
        let c = Capsule::flush(cid, self.ns.0);
        self.submit(c).map(|_| ())
    }

    /// Lifetime `(ios, bytes)` issued on this connection.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.ios, self.bytes)
    }

    /// Work requests posted on the initiator-side queue pair
    /// `(sends, recvs)` — evidence the wire discipline is in use.
    pub fn qp_counters(&self) -> (u64, u64) {
        self.qp_initiator.counters()
    }

    /// Open a pre-CRC'd write window without driving it: the capsules are
    /// metered into the pending table and nothing is posted until the
    /// first [`step_window`](NvmfConnection::step_window) call.
    ///
    /// This is the seam the reactor runtime multiplexes on — one thread
    /// holds many connections' windows and steps each as its rank's state
    /// machine is scheduled, instead of parking inside the blocking
    /// [`write_vectored_bytes_precrc`] loop. The blocking paths and
    /// [`write_mirrored_bytes`] are themselves expressed over this API, so
    /// retry, reconnect, and replay-cache semantics are identical by
    /// construction.
    ///
    /// [`write_vectored_bytes_precrc`]: NvmfConnection::write_vectored_bytes_precrc
    pub fn begin_write_window(&mut self, writes: Vec<(u64, Bytes, u32)>) -> Window {
        let capsules = self.precrc_capsules(writes);
        Window {
            pending: self.begin_window(capsules),
        }
    }

    /// One non-blocking pass over an open window: post up to `queue_depth`
    /// capsules, run the target daemon batch, drain the CQ, sweep
    /// timeouts. Returns `Ok(true)` once every command has retired. A
    /// fatal error poisons the window; the caller must still
    /// [`finish_window`](NvmfConnection::finish_window) it.
    pub fn step_window(&mut self, window: &mut Window) -> Result<bool, InitiatorError> {
        if !window.is_done() {
            self.window_pass(&mut window.pending)?;
        }
        Ok(window.is_done())
    }

    /// Close out a window: record exactly one per-command latency
    /// observation for every command that entered it, success or failure.
    pub fn finish_window(&mut self, window: &mut Window) {
        self.observe_window(&mut window.pending);
    }
}

/// An in-flight submission window opened by
/// [`NvmfConnection::begin_write_window`]: the pending table of a batch of
/// commands, advanced one non-blocking pass at a time by
/// [`NvmfConnection::step_window`] on the connection that opened it.
pub struct Window {
    pending: Vec<Pending>,
}

impl Window {
    /// Whether every command in the window has retired.
    pub fn is_done(&self) -> bool {
        self.pending.iter().all(|p| p.done.is_some())
    }

    /// Commands in the window.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the window holds no commands.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// One extent of a replicated write: the same refcounted payload goes to
/// both copies, at (possibly) different namespace-relative offsets.
#[derive(Debug, Clone)]
pub struct MirroredWrite {
    /// Offset on the primary connection's namespace.
    pub primary_offset: u64,
    /// Offset on the replica connection's namespace.
    pub replica_offset: u64,
    /// The payload, shared by refcount between both capsules.
    pub data: Bytes,
    /// Finalized `crc32(data)`, computed once by the caller; both encodes
    /// and the epoch manifest reuse it.
    pub crc: u32,
}

/// Outcome of a mirrored window. The primary copy's failure is the
/// `Result` of [`write_mirrored_bytes`] itself; a replica-side failure
/// only degrades the mirror and is reported here for the caller to mark
/// the affected extents dirty.
#[derive(Debug)]
pub struct MirrorOutcome {
    /// `None`: both copies are durable. `Some(e)`: the primary copy is
    /// durable but the replica window failed with `e` — the mirror is
    /// degraded and must be re-synced before it can serve a restore.
    pub replica_error: Option<InitiatorError>,
}

/// Write a batch of extents to two connections through one shared
/// submission window: passes alternate between the primary and replica
/// windows, so both have up to `queue_depth` commands in flight
/// concurrently — replication overlaps with itself rather than running as
/// two serial rounds. Per-command retry/reconnect/replay-cache semantics
/// are unchanged: each connection's window applies its own policy.
///
/// Error asymmetry: a primary failure aborts the write (`Err`); a replica
/// failure degrades it (`Ok` with [`MirrorOutcome::replica_error`] set) —
/// checkpoint progress must not hinge on the redundant copy.
pub fn write_mirrored_bytes(
    primary: &mut NvmfConnection,
    replica: &mut NvmfConnection,
    writes: Vec<MirroredWrite>,
) -> Result<MirrorOutcome, InitiatorError> {
    if writes.is_empty() {
        return Ok(MirrorOutcome {
            replica_error: None,
        });
    }
    let _span = telemetry::span("fabric", "submit_mirrored")
        .arg("ns", primary.ns.0 as u64)
        .arg("window", writes.len() as u64);
    let mut primary_writes = Vec::with_capacity(writes.len());
    let mut replica_writes = Vec::with_capacity(writes.len());
    for w in writes {
        primary_writes.push((w.primary_offset, w.data.clone(), w.crc));
        replica_writes.push((w.replica_offset, w.data, w.crc));
    }
    let mut p_window = primary.begin_write_window(primary_writes);
    let mut r_window = replica.begin_write_window(replica_writes);
    let mut replica_error = None;
    while !p_window.is_done() || (replica_error.is_none() && !r_window.is_done()) {
        if !p_window.is_done() {
            if let Err(e) = primary.step_window(&mut p_window) {
                primary.finish_window(&mut p_window);
                replica.finish_window(&mut r_window);
                return Err(e);
            }
        }
        if replica_error.is_none() && !r_window.is_done() {
            if let Err(e) = replica.step_window(&mut r_window) {
                replica_error = Some(e);
            }
        }
    }
    primary.finish_window(&mut p_window);
    replica.finish_window(&mut r_window);
    Ok(MirrorOutcome { replica_error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::{Ssd, SsdConfig};

    /// Target + namespaces on a *private* telemetry registry, so exact
    /// counter assertions don't race with concurrently running tests.
    fn setup_with_telemetry() -> (Arc<NvmfTarget>, NsId, NsId, Telemetry) {
        let t = Telemetry::new();
        let ssd = Ssd::with_telemetry(
            SsdConfig {
                capacity: 1 << 20,
                ..SsdConfig::default()
            },
            t.clone(),
        );
        let a = ssd.create_namespace(256 << 10).unwrap();
        let b = ssd.create_namespace(256 << 10).unwrap();
        (Arc::new(NvmfTarget::new(Arc::new(ssd))), a, b, t)
    }

    fn setup() -> (Arc<NvmfTarget>, NsId, NsId) {
        let (t, a, b, _) = setup_with_telemetry();
        (t, a, b)
    }

    #[test]
    fn end_to_end_write_read() {
        let (target, a, _) = setup();
        let init = Initiator::new("nqn.2026-07.io.nvmecr:rank0");
        let mut conn = init.connect(target, a);
        conn.write(512, b"restartable state").unwrap();
        assert_eq!(conn.read(512, 17).unwrap(), b"restartable state");
        assert_eq!(conn.io_counters().0, 2);
    }

    #[test]
    fn bytes_paths_are_copy_free_end_to_end() {
        let (target, a, _, t) = setup_with_telemetry();
        let init = Initiator::with_telemetry("nqn.host", t.clone());
        let mut conn = init.connect(Arc::clone(&target), a);
        let payload = Bytes::from(vec![0x3Cu8; 16 << 10]);
        conn.write_bytes(0, payload.clone()).unwrap();
        conn.flush().unwrap();
        let copied = |name: &str| t.snapshot().counter(name);
        assert_eq!(
            copied("fabric.bytes_copied"),
            0,
            "initiator must not copy the payload"
        );
        assert_eq!(
            copied("ssd.bytes_copied"),
            payload.len() as u64,
            "exactly one copy per byte: device RAM drain to media"
        );
        let back = conn.read_bytes(0, payload.len()).unwrap();
        assert_eq!(back, payload);
        assert_eq!(
            copied("fabric.bytes_copied"),
            0,
            "read_bytes must not copy either"
        );
        // The slice paths each stage one copy and say so.
        conn.write(0, &[1u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        conn.read_into(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 100]);
        assert_eq!(copied("fabric.bytes_copied"), 200);
        // Latency histograms observed every capsule exchange.
        let snap = t.snapshot();
        let submits = snap.histogram("fabric.submit_ns").unwrap();
        assert_eq!(submits.count, snap.counter("fabric.io_ops"));
        assert!(submits.count >= 5, "write+flush+read+write+read_into");
        assert!(
            snap.counter("fabric.kernel_path_equiv_ns") > snap.counter("fabric.userspace_path_ns"),
            "modeled kernel path must cost more than the polled userspace path"
        );
    }

    #[test]
    fn stepped_windows_multiplex_many_connections_on_one_thread() {
        // The reactor seam: open a QD-deep window on each of several
        // connections and advance them round-robin from a single thread.
        // Every window completes, data is durable, and per-command latency
        // accounting matches the blocking path (one submit_ns per io_op).
        let t = Telemetry::new();
        let ssd = Ssd::with_telemetry(
            SsdConfig {
                capacity: 4 << 20,
                ..SsdConfig::default()
            },
            t.clone(),
        );
        let nss: Vec<NsId> = (0..6)
            .map(|_| ssd.create_namespace(256 << 10).unwrap())
            .collect();
        let target = Arc::new(NvmfTarget::new(Arc::new(ssd)));
        let init = Initiator::with_telemetry("nqn.host", t.clone());
        let mut conns: Vec<NvmfConnection> = nss
            .iter()
            .map(|&ns| init.connect(Arc::clone(&target), ns))
            .collect();
        let mut windows: Vec<Window> = conns
            .iter_mut()
            .enumerate()
            .map(|(i, conn)| {
                let writes: Vec<(u64, Bytes, u32)> = (0..8u64)
                    .map(|j| {
                        let data = Bytes::from(vec![(i as u8) ^ (j as u8); 4 << 10]);
                        let crc = microfs::crc::crc32(&data);
                        (j * (4 << 10), data, crc)
                    })
                    .collect();
                conn.begin_write_window(writes)
            })
            .collect();
        assert!(windows.iter().all(|w| w.len() == 8 && !w.is_empty()));
        // Round-robin: one pass per connection per loop, like a reactor
        // advancing each rank machine by one completion-sized unit.
        let mut loops = 0u32;
        while !windows.iter().all(Window::is_done) {
            for (conn, w) in conns.iter_mut().zip(windows.iter_mut()) {
                if !w.is_done() {
                    conn.step_window(w).unwrap();
                }
            }
            loops += 1;
            assert!(loops < 10_000, "stepped windows must converge");
        }
        for (conn, w) in conns.iter_mut().zip(windows.iter_mut()) {
            conn.finish_window(w);
        }
        for (i, conn) in conns.iter_mut().enumerate() {
            for j in 0..8u64 {
                let back = conn.read_bytes(j * (4 << 10), 4 << 10).unwrap();
                assert!(back.iter().all(|&b| b == (i as u8) ^ (j as u8)));
            }
        }
        let snap = t.snapshot();
        let submits = snap.histogram("fabric.submit_ns").unwrap();
        assert_eq!(
            submits.count,
            snap.counter("fabric.io_ops"),
            "stepped windows keep one latency observation per command"
        );
    }

    #[test]
    fn connection_cannot_reach_foreign_namespace() {
        let (target, a, b) = setup();
        let init = Initiator::new("nqn.host");
        let mut conn_a = init.connect(Arc::clone(&target), a);
        conn_a.write(0, b"mine").unwrap();
        // A separate connection bound to b cannot see a's data at the same
        // namespace-relative offset.
        let mut conn_b = init.connect(target, b);
        assert_eq!(conn_b.read(0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn out_of_range_surfaces_remote_error() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        let err = conn.write((256 << 10) - 1, b"spill").unwrap_err();
        assert!(matches!(err, InitiatorError::Remote(Status::LbaOutOfRange)));
    }

    #[test]
    fn flush_roundtrip() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        conn.write(0, &[1u8; 128]).unwrap();
        conn.flush().unwrap();
    }

    #[test]
    fn wire_traffic_flows_over_queue_pairs() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        conn.write(0, b"abc").unwrap();
        conn.read(0, 3).unwrap();
        let (sends, recvs) = conn.qp_counters();
        assert_eq!(sends, 2, "one capsule send per IO");
        assert_eq!(recvs, 2, "one posted response buffer per IO");
    }

    fn chaos_initiator(t: &Telemetry) -> (Initiator, ChaosHandle) {
        let chaos = ChaosHandle::new();
        let init = Initiator::with_config(
            "nqn.host",
            t.clone(),
            chaos.clone(),
            FabricConfig::default(),
        );
        (init, chaos)
    }

    #[test]
    fn corrupt_command_capsule_is_retried_to_success() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        chaos.arm(
            chaos::FaultPlan::new(1).at_op(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0),
            &t,
        );
        conn.write(0, b"survives corruption").unwrap();
        chaos.disarm();
        assert_eq!(conn.read(0, 19).unwrap(), b"survives corruption");
        let snap = t.snapshot();
        assert_eq!(snap.counter("fabric.retries"), 1);
        assert_eq!(snap.counter("fabric.crc_errors"), 1, "target saw bad CRC");
        assert!(snap.counter("chaos.injected") >= 1);
    }

    #[test]
    fn corrupt_response_capsule_is_retried_to_success() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        conn.write(0, b"payload").unwrap();
        chaos.arm(
            chaos::FaultPlan::new(2).at_op(FaultSite::CapsuleRx, FaultAction::CorruptPayload, 0),
            &t,
        );
        assert_eq!(conn.read(0, 7).unwrap(), b"payload");
        chaos.disarm();
        let snap = t.snapshot();
        assert!(snap.counter("fabric.retries") >= 1);
        assert!(
            snap.counter("fabric.crc_errors") >= 1,
            "initiator-side CRC rejection counted"
        );
    }

    #[test]
    fn dropped_command_times_out_and_retries() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        chaos.arm(
            chaos::FaultPlan::new(3).at_op(FaultSite::CapsuleTx, FaultAction::DropCapsule, 0),
            &t,
        );
        conn.write(0, b"after timeout").unwrap();
        chaos.disarm();
        assert_eq!(conn.read(0, 13).unwrap(), b"after timeout");
        let snap = t.snapshot();
        assert_eq!(snap.counter("fabric.timeouts"), 1);
        assert_eq!(snap.counter("fabric.retries"), 1);
        assert!(snap.counter("fabric.backoff_ns") >= 10_000);
    }

    #[test]
    fn connection_reset_triggers_reconnect() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        conn.write(0, b"before reset").unwrap();
        chaos.arm(
            chaos::FaultPlan::new(4).at_op(FaultSite::ConnReset, FaultAction::ResetConnection, 0),
            &t,
        );
        // The write that hits the reset reconnects and completes.
        conn.write(100, b"after reset").unwrap();
        chaos.disarm();
        assert_eq!(conn.read(0, 12).unwrap(), b"before reset");
        assert_eq!(conn.read(100, 11).unwrap(), b"after reset");
        let snap = t.snapshot();
        assert_eq!(snap.counter("fabric.reconnects"), 1);
        assert_eq!(
            snap.histogram("fabric.reconnect_ns").unwrap().count,
            1,
            "reconnect latency observed"
        );
    }

    #[test]
    fn duplicate_capsule_executes_once() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        chaos.arm(
            chaos::FaultPlan::new(5).at_op(FaultSite::CapsuleTx, FaultAction::DuplicateCapsule, 0),
            &t,
        );
        conn.write(0, b"exactly once").unwrap();
        chaos.disarm();
        assert_eq!(conn.read(0, 12).unwrap(), b"exactly once");
        let snap = t.snapshot();
        assert_eq!(
            snap.counter("fabric.duplicates_suppressed"),
            1,
            "second delivery answered from the replay cache"
        );
        // Exactly one device write executed despite two deliveries.
        assert_eq!(target.device().ns_io_counters(a).0, 1);
    }

    #[test]
    fn keep_alive_heals_dead_connection() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        conn.write(0, b"state").unwrap();
        chaos.arm(
            chaos::FaultPlan::new(6).at_op(FaultSite::ConnReset, FaultAction::ResetConnection, 0),
            &t,
        );
        conn.keep_alive().unwrap();
        chaos.disarm();
        assert_eq!(t.snapshot().counter("fabric.reconnects"), 1);
        assert_eq!(conn.read(0, 5).unwrap(), b"state");
    }

    #[test]
    fn sustained_fault_storm_exhausts_retries() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        chaos.arm(
            chaos::FaultPlan::new(7).with_rate(FaultSite::CapsuleTx, FaultAction::DropCapsule, 1.0),
            &t,
        );
        let err = conn.write(0, b"doomed").unwrap_err();
        chaos.disarm();
        assert!(
            matches!(err, InitiatorError::Exhausted { attempts: 9, .. }),
            "1 initial + 8 retries, got {err:?}"
        );
        assert_eq!(t.snapshot().counter("fabric.retries"), 8);
    }

    #[test]
    fn shard_offline_is_not_retried() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, _chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        target.device().shard(a).unwrap().kill();
        let err = conn.write(0, b"dead end").unwrap_err();
        assert!(matches!(err, InitiatorError::Remote(Status::ShardOffline)));
        assert_eq!(
            t.snapshot().counter("fabric.retries"),
            0,
            "a dead shard must fail fast so the runtime can fail over"
        );
    }

    #[test]
    fn vectored_window_roundtrips_more_extents_than_queue_depth() {
        let (target, a, _, t) = setup_with_telemetry();
        let init = Initiator::with_telemetry("nqn.host", t.clone());
        let mut conn = init.connect(Arc::clone(&target), a);
        // 100 extents > queue_depth 32: the window must refill as commands
        // retire. Each extent gets distinct content so order mix-ups show.
        let writes: Vec<(u64, Bytes)> = (0..100u64)
            .map(|i| (i * 512, Bytes::from(vec![i as u8; 512])))
            .collect();
        conn.write_vectored_bytes(writes).unwrap();
        let spec: Vec<(u64, usize)> = (0..100u64).map(|i| (i * 512, 512)).collect();
        let got = conn.read_vectored_bytes(&spec).unwrap();
        for (i, data) in got.iter().enumerate() {
            assert_eq!(&data[..], &vec![i as u8; 512][..], "extent {i}");
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("fabric.io_ops"), 200);
        assert_eq!(
            snap.histogram("fabric.submit_ns").unwrap().count,
            200,
            "one latency observation per windowed command"
        );
        assert_eq!(
            snap.counter("fabric.bytes_copied"),
            0,
            "the vectored Bytes paths stay zero-copy"
        );
        let (sends, recvs) = conn.qp_counters();
        assert_eq!(sends, 200, "one capsule send per windowed command");
        assert_eq!(recvs, 200);
    }

    #[test]
    fn window_results_stay_in_submission_order_under_faults() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        // Heavy corruption on both capsule directions: completions retire
        // out of order across retries, but results must come back in
        // submission order — including overlapping extents, where the last
        // writer in submission order must win on the device.
        chaos.arm(
            chaos::FaultPlan::new(11)
                .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.10)
                .with_rate(FaultSite::CapsuleRx, FaultAction::CorruptPayload, 0.10),
            &t,
        );
        let writes: Vec<(u64, Bytes)> = (0..64u64)
            .map(|i| (i * 256, Bytes::from(vec![(i + 1) as u8; 256])))
            .collect();
        conn.write_vectored_bytes(writes).unwrap();
        // Overwrite every extent in the same window: submission order says
        // the 0xEE pass wins.
        let overwrite: Vec<(u64, Bytes)> = (0..64u64)
            .map(|i| (i * 256, Bytes::from(vec![0xEEu8; 256])))
            .collect();
        conn.write_vectored_bytes(overwrite).unwrap();
        chaos.disarm();
        let spec: Vec<(u64, usize)> = (0..64u64).map(|i| (i * 256, 256)).collect();
        let got = conn.read_vectored_bytes(&spec).unwrap();
        for (i, data) in got.iter().enumerate() {
            assert_eq!(&data[..], &vec![0xEEu8; 256][..], "extent {i}");
        }
        let snap = t.snapshot();
        assert!(snap.counter("fabric.retries") > 0, "faults must have fired");
    }

    #[test]
    fn windowed_duplicates_execute_once() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        chaos.arm(
            chaos::FaultPlan::new(5).at_op(FaultSite::CapsuleTx, FaultAction::DuplicateCapsule, 3),
            &t,
        );
        let writes: Vec<(u64, Bytes)> = (0..16u64)
            .map(|i| (i * 128, Bytes::from(vec![i as u8; 128])))
            .collect();
        conn.write_vectored_bytes(writes).unwrap();
        chaos.disarm();
        let snap = t.snapshot();
        assert_eq!(
            snap.counter("fabric.duplicates_suppressed"),
            1,
            "the duplicated delivery was answered from the replay cache"
        );
        // Exactly one device write per extent despite the duplicate.
        assert_eq!(target.device().ns_io_counters(a).0, 16);
    }

    #[test]
    fn shallow_window_still_completes_large_batches() {
        let (target, a, _, t) = setup_with_telemetry();
        let init = Initiator::with_config(
            "nqn.host",
            t,
            ChaosHandle::default(),
            FabricConfig {
                queue_depth: 2,
                ..FabricConfig::default()
            },
        );
        let mut conn = init.connect(target, a);
        let writes: Vec<(u64, Bytes)> = (0..40u64)
            .map(|i| (i * 64, Bytes::from(vec![i as u8; 64])))
            .collect();
        conn.write_vectored_bytes(writes).unwrap();
        let spec: Vec<(u64, usize)> = (0..40u64).map(|i| (i * 64, 64)).collect();
        let got = conn.read_vectored_bytes(&spec).unwrap();
        for (i, data) in got.iter().enumerate() {
            assert_eq!(&data[..], &vec![i as u8; 64][..]);
        }
    }

    fn mirrored(writes: &[(u64, Vec<u8>)]) -> Vec<MirroredWrite> {
        writes
            .iter()
            .map(|(o, d)| MirroredWrite {
                primary_offset: *o,
                replica_offset: *o + 64, // replica homes at a different base
                data: Bytes::from(d.clone()),
                crc: microfs::crc::crc32(d),
            })
            .collect()
    }

    #[test]
    fn mirrored_write_lands_on_both_copies() {
        let (target, a, b, t) = setup_with_telemetry();
        let init = Initiator::with_telemetry("nqn.host", t.clone());
        let mut prim = init.connect(Arc::clone(&target), a);
        let mut repl = init.connect(Arc::clone(&target), b);
        let writes: Vec<(u64, Vec<u8>)> =
            (0..48u64).map(|i| (i * 512, vec![i as u8; 512])).collect();
        let out = write_mirrored_bytes(&mut prim, &mut repl, mirrored(&writes)).unwrap();
        assert!(out.replica_error.is_none());
        for (o, d) in &writes {
            assert_eq!(&prim.read_bytes(*o, d.len()).unwrap()[..], &d[..]);
            assert_eq!(&repl.read_bytes(*o + 64, d.len()).unwrap()[..], &d[..]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("fabric.io_ops"), 2 * 48 + 2 * 48);
        assert_eq!(
            snap.counter("fabric.bytes_copied"),
            0,
            "both capsule encodes share the payload by refcount"
        );
    }

    #[test]
    fn mirrored_write_overlaps_both_windows() {
        // Both connections must genuinely pipeline: with QD=32 and 64
        // extents each, the shared window drives well over 32 commands
        // before either side serializes — observable as posted sends on
        // both QPs exceeding one-window-at-a-time lockstep.
        let (target, a, b, t) = setup_with_telemetry();
        let init = Initiator::with_telemetry("nqn.host", t);
        let mut prim = init.connect(Arc::clone(&target), a);
        let mut repl = init.connect(Arc::clone(&target), b);
        let writes: Vec<(u64, Vec<u8>)> = (0..64u64).map(|i| (i * 128, vec![1u8; 128])).collect();
        write_mirrored_bytes(&mut prim, &mut repl, mirrored(&writes)).unwrap();
        assert_eq!(prim.qp_counters().0, 64);
        assert_eq!(repl.qp_counters().0, 64);
    }

    #[test]
    fn mirrored_write_degrades_on_replica_death_and_fails_on_primary_death() {
        let (target, a, b, t) = setup_with_telemetry();
        let init = Initiator::with_telemetry("nqn.host", t);
        let mut prim = init.connect(Arc::clone(&target), a);
        let mut repl = init.connect(Arc::clone(&target), b);
        let writes: Vec<(u64, Vec<u8>)> = (0..8u64).map(|i| (i * 256, vec![7u8; 256])).collect();

        // Replica shard dies: the write still succeeds, flagged degraded.
        target.device().shard(b).unwrap().kill();
        let out = write_mirrored_bytes(&mut prim, &mut repl, mirrored(&writes)).unwrap();
        assert!(matches!(
            out.replica_error,
            Some(InitiatorError::Remote(Status::ShardOffline))
        ));
        for (o, d) in &writes {
            assert_eq!(
                &prim.read_bytes(*o, d.len()).unwrap()[..],
                &d[..],
                "primary durable"
            );
        }

        // Primary shard dies: the write fails outright.
        target.device().shard(a).unwrap().kill();
        target.device().shard(b).unwrap().revive();
        let err = write_mirrored_bytes(&mut prim, &mut repl, mirrored(&writes)).unwrap_err();
        assert!(matches!(err, InitiatorError::Remote(Status::ShardOffline)));
    }

    #[test]
    fn precrc_vectored_write_roundtrips() {
        let (target, a, _, t) = setup_with_telemetry();
        let init = Initiator::with_telemetry("nqn.host", t);
        let mut conn = init.connect(target, a);
        let writes: Vec<(u64, Bytes, u32)> = (0..16u64)
            .map(|i| {
                let d = vec![i as u8; 1024];
                let crc = microfs::crc::crc32(&d);
                (i * 1024, Bytes::from(d), crc)
            })
            .collect();
        conn.write_vectored_bytes_precrc(writes).unwrap();
        for i in 0..16u64 {
            assert_eq!(
                &conn.read_bytes(i * 1024, 1024).unwrap()[..],
                &vec![i as u8; 1024][..]
            );
        }
    }

    #[test]
    fn flight_recorder_captures_command_lifecycle() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        chaos.arm(
            chaos::FaultPlan::new(3).at_op(FaultSite::CapsuleTx, FaultAction::DropCapsule, 0),
            &t,
        );
        conn.write(0, b"traced").unwrap();
        chaos.disarm();
        let events = t.recorder().events();
        let kinds: Vec<FlightKind> = events.iter().map(|e| e.kind).collect();
        // The dropped first attempt: timeout, retry, then a fresh submit
        // that completes — all under the same CID.
        assert!(kinds.contains(&FlightKind::Timeout));
        assert!(kinds.contains(&FlightKind::Retry));
        let submit = events
            .iter()
            .find(|e| e.kind == FlightKind::Submit)
            .expect("submit recorded");
        let complete = events
            .iter()
            .find(|e| e.kind == FlightKind::Complete)
            .expect("complete recorded");
        assert_eq!(submit.cid, complete.cid, "lifecycle keyed by one CID");
        assert_eq!(complete.gen, 1, "completion on the retry generation");
    }

    #[test]
    fn exhaustion_trips_the_recorder() {
        let (target, a, _, t) = setup_with_telemetry();
        let (init, chaos) = chaos_initiator(&t);
        let mut conn = init.connect(Arc::clone(&target), a);
        chaos.arm(
            chaos::FaultPlan::new(7).with_rate(FaultSite::CapsuleTx, FaultAction::DropCapsule, 1.0),
            &t,
        );
        conn.write(0, b"doomed").unwrap_err();
        chaos.disarm();
        let rec = t.recorder();
        assert!(rec.trip_count() >= 1, "exhaustion must trip the recorder");
        assert!(rec
            .events()
            .iter()
            .any(|e| e.kind == FlightKind::RetryExhausted));
    }

    #[test]
    fn many_sequential_ios_wrap_cid() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        for i in 0..70_000u64 {
            // Cheap small writes; cid is u16 and must wrap without issue.
            if i % 8192 == 0 {
                conn.write(0, &[0u8; 8]).unwrap();
            }
        }
        conn.write(0, &[9u8; 1]).unwrap();
        assert_eq!(conn.read(0, 1).unwrap(), vec![9u8]);
    }
}
