//! Functional NVMf initiator — the SPDK client embedded in each runtime.
//!
//! "SPDK NVMf clients, embedded within the NVMe-CR runtime, are responsible
//! for communication with server daemons" (§III-D). An [`Initiator`] opens
//! [`NvmfConnection`]s to targets; each connection is bound to one namespace
//! and moves real bytes through the capsule codec, exactly as the runtime's
//! data plane will use it.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use ssd::NsId;

use crate::capsule::{Capsule, Completion, Status};
use crate::qp::{CompletionOp, QueuePair};
use crate::target::{ConnId, NvmfTarget, TargetError};

/// Initiator-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitiatorError {
    /// The target returned a non-success status.
    Remote(Status),
    /// Transport-level failure.
    Transport(String),
}

impl fmt::Display for InitiatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitiatorError::Remote(s) => write!(f, "remote error: {s:?}"),
            InitiatorError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for InitiatorError {}

impl From<TargetError> for InitiatorError {
    fn from(e: TargetError) -> Self {
        InitiatorError::Transport(e.to_string())
    }
}

/// The client-side NVMf endpoint of one process.
pub struct Initiator {
    host_nqn: String,
}

impl Initiator {
    /// An initiator identifying as `host_nqn`.
    pub fn new(host_nqn: impl Into<String>) -> Self {
        Initiator {
            host_nqn: host_nqn.into(),
        }
    }

    /// This host's NQN.
    pub fn host_nqn(&self) -> &str {
        &self.host_nqn
    }

    /// Connect to `target`, binding the connection to namespace `ns`.
    /// The target admits the connection with access to exactly that
    /// namespace, and an RDMA queue pair is established for the capsule
    /// traffic (SQ/RQ depth 128, the SPDK default ballpark).
    pub fn connect(&self, target: Arc<NvmfTarget>, ns: NsId) -> NvmfConnection {
        let conn = target.connect(&self.host_nqn, &[ns]);
        let (qp_initiator, qp_target) = QueuePair::connected_pair(128, 128);
        NvmfConnection {
            target,
            conn,
            ns,
            qp_initiator,
            qp_target,
            next_cid: 0,
            next_wr: 0,
            ios: 0,
            bytes: 0,
            copied_bytes: 0,
        }
    }
}

/// An established initiator→target connection bound to one namespace.
/// Capsules travel over a real [`QueuePair`]; the target daemon's polling
/// loop runs inline when a command is submitted (the functional stand-in
/// for the SPDK reactor).
pub struct NvmfConnection {
    target: Arc<NvmfTarget>,
    conn: ConnId,
    ns: NsId,
    qp_initiator: QueuePair,
    qp_target: QueuePair,
    next_cid: u16,
    next_wr: u64,
    ios: u64,
    bytes: u64,
    /// Payload bytes memcpy'd on the initiator side. The `Bytes`-based
    /// paths ([`NvmfConnection::write_bytes`], [`NvmfConnection::read_bytes`])
    /// add nothing here; the slice-based convenience paths add one staging
    /// copy each.
    copied_bytes: u64,
}

impl NvmfConnection {
    fn cid(&mut self) -> u16 {
        let c = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        c
    }

    fn submit(&mut self, capsule: Capsule) -> Result<Completion, InitiatorError> {
        // Full wire discipline: post receives on both ends, send the
        // command capsule over the queue pair, run one target-daemon poll
        // iteration, and poll our own CQ for the response — no blocking
        // waits anywhere (Principle 1).
        let wr = self.next_wr;
        self.next_wr += 3;
        self.qp_target.post_recv(wr);
        self.qp_initiator.post_recv(wr + 1);
        // The capsule travels as scatter-gather segments: header in one
        // SGE, write payload (the caller's refcounted buffer) in another.
        // Nothing on the wire path copies payload bytes.
        self.qp_initiator
            .post_send(wr + 2, capsule.encode_sg())
            .map_err(|e| InitiatorError::Transport(e.to_string()))?;
        // Target daemon iteration: poll, decode, execute, respond.
        let cmd_wire = self
            .qp_target
            .poll_cq(4)
            .into_iter()
            .find(|c| c.opcode == CompletionOp::Recv)
            .and_then(|c| c.payload)
            .ok_or_else(|| InitiatorError::Transport("command capsule lost".into()))?;
        let resp = self.target.handle_wire_sg(self.conn, cmd_wire)?;
        self.qp_target
            .post_send(wr + 2, resp)
            .map_err(|e| InitiatorError::Transport(e.to_string()))?;
        self.qp_target.poll_cq(4); // drain the target's send completion
        let resp_wire = self
            .qp_initiator
            .poll_cq(8)
            .into_iter()
            .find(|c| c.opcode == CompletionOp::Recv)
            .and_then(|c| c.payload)
            .ok_or_else(|| InitiatorError::Transport("response capsule lost".into()))?;
        let completion = Completion::decode_sg(resp_wire)
            .map_err(|e| InitiatorError::Transport(e.to_string()))?;
        match completion.status {
            Status::Success => Ok(completion),
            s => Err(InitiatorError::Remote(s)),
        }
    }

    /// The namespace this connection is bound to.
    pub fn namespace(&self) -> NsId {
        self.ns
    }

    /// Write an owned payload at namespace-relative `offset` — the
    /// zero-copy path. The same refcounted buffer crosses initiator →
    /// wire → target → device RAM; its only copy is the device's
    /// drain-to-media.
    pub fn write_bytes(&mut self, offset: u64, data: Bytes) -> Result<(), InitiatorError> {
        let cid = self.cid();
        self.ios += 1;
        self.bytes += data.len() as u64;
        self.submit(Capsule::write(cid, self.ns.0, offset, data))
            .map(|_| ())
    }

    /// Write `data` at namespace-relative `offset` (stages one copy of
    /// the borrowed slice; prefer [`NvmfConnection::write_bytes`]).
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), InitiatorError> {
        self.copied_bytes += data.len() as u64;
        self.write_bytes(offset, Bytes::copy_from_slice(data))
    }

    /// Read `len` bytes at namespace-relative `offset` as an owned
    /// payload — the zero-copy path: the returned buffer is the target's
    /// read buffer, delivered by refcount.
    pub fn read_bytes(&mut self, offset: u64, len: usize) -> Result<Bytes, InitiatorError> {
        let cid = self.cid();
        let c = Capsule::read(cid, self.ns.0, offset, len as u64);
        self.ios += 1;
        self.bytes += len as u64;
        self.submit(c).map(|r| r.data)
    }

    /// Read into a caller-provided buffer (one copy, wire → `buf`).
    pub fn read_into(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), InitiatorError> {
        let data = self.read_bytes(offset, buf.len())?;
        buf.copy_from_slice(&data);
        self.copied_bytes += buf.len() as u64;
        Ok(())
    }

    /// Read `len` bytes at namespace-relative `offset` into a fresh
    /// vector (one copy; prefer [`NvmfConnection::read_bytes`]).
    pub fn read(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, InitiatorError> {
        let data = self.read_bytes(offset, len)?;
        self.copied_bytes += data.len() as u64;
        Ok(data.to_vec())
    }

    /// Flush the device write buffer.
    pub fn flush(&mut self) -> Result<(), InitiatorError> {
        let cid = self.cid();
        let c = Capsule::flush(cid, self.ns.0);
        self.submit(c).map(|_| ())
    }

    /// Lifetime `(ios, bytes)` issued on this connection.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.ios, self.bytes)
    }

    /// Payload bytes memcpy'd on the initiator side of this connection.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes
    }

    /// Work requests posted on the initiator-side queue pair
    /// `(sends, recvs)` — evidence the wire discipline is in use.
    pub fn qp_counters(&self) -> (u64, u64) {
        self.qp_initiator.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::{Ssd, SsdConfig};

    fn setup() -> (Arc<NvmfTarget>, NsId, NsId) {
        let ssd = Ssd::new(SsdConfig {
            capacity: 1 << 20,
            ..SsdConfig::default()
        });
        let a = ssd.create_namespace(256 << 10).unwrap();
        let b = ssd.create_namespace(256 << 10).unwrap();
        (Arc::new(NvmfTarget::new(Arc::new(ssd))), a, b)
    }

    #[test]
    fn end_to_end_write_read() {
        let (target, a, _) = setup();
        let init = Initiator::new("nqn.2026-07.io.nvmecr:rank0");
        let mut conn = init.connect(target, a);
        conn.write(512, b"restartable state").unwrap();
        assert_eq!(conn.read(512, 17).unwrap(), b"restartable state");
        assert_eq!(conn.io_counters().0, 2);
    }

    #[test]
    fn bytes_paths_are_copy_free_end_to_end() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(Arc::clone(&target), a);
        let payload = Bytes::from(vec![0x3Cu8; 16 << 10]);
        conn.write_bytes(0, payload.clone()).unwrap();
        conn.flush().unwrap();
        assert_eq!(
            conn.copied_bytes(),
            0,
            "initiator must not copy the payload"
        );
        assert_eq!(
            target.device().bytes_copied(),
            payload.len() as u64,
            "exactly one copy per byte: device RAM drain to media"
        );
        let back = conn.read_bytes(0, payload.len()).unwrap();
        assert_eq!(back, payload);
        assert_eq!(conn.copied_bytes(), 0, "read_bytes must not copy either");
        // The slice paths each stage one copy and say so.
        conn.write(0, &[1u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        conn.read_into(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 100]);
        assert_eq!(conn.copied_bytes(), 200);
    }

    #[test]
    fn connection_cannot_reach_foreign_namespace() {
        let (target, a, b) = setup();
        let init = Initiator::new("nqn.host");
        let mut conn_a = init.connect(Arc::clone(&target), a);
        conn_a.write(0, b"mine").unwrap();
        // A separate connection bound to b cannot see a's data at the same
        // namespace-relative offset.
        let mut conn_b = init.connect(target, b);
        assert_eq!(conn_b.read(0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn out_of_range_surfaces_remote_error() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        let err = conn.write((256 << 10) - 1, b"spill").unwrap_err();
        assert!(matches!(err, InitiatorError::Remote(Status::LbaOutOfRange)));
    }

    #[test]
    fn flush_roundtrip() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        conn.write(0, &[1u8; 128]).unwrap();
        conn.flush().unwrap();
    }

    #[test]
    fn wire_traffic_flows_over_queue_pairs() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        conn.write(0, b"abc").unwrap();
        conn.read(0, 3).unwrap();
        let (sends, recvs) = conn.qp_counters();
        assert_eq!(sends, 2, "one capsule send per IO");
        assert_eq!(recvs, 2, "one posted response buffer per IO");
    }

    #[test]
    fn many_sequential_ios_wrap_cid() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        for i in 0..70_000u64 {
            // Cheap small writes; cid is u16 and must wrap without issue.
            if i % 8192 == 0 {
                conn.write(0, &[0u8; 8]).unwrap();
            }
        }
        conn.write(0, &[9u8; 1]).unwrap();
        assert_eq!(conn.read(0, 1).unwrap(), vec![9u8]);
    }
}
