//! Functional NVMf initiator — the SPDK client embedded in each runtime.
//!
//! "SPDK NVMf clients, embedded within the NVMe-CR runtime, are responsible
//! for communication with server daemons" (§III-D). An [`Initiator`] opens
//! [`NvmfConnection`]s to targets; each connection is bound to one namespace
//! and moves real bytes through the capsule codec, exactly as the runtime's
//! data plane will use it.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use telemetry::{Counter, Histogram, Telemetry};

use ssd::NsId;

use crate::capsule::{Capsule, Completion, Status};
use crate::config::KernelCosts;
use crate::path::IoPath;
use crate::qp::{CompletionOp, QueuePair};
use crate::target::{ConnId, NvmfTarget, TargetError};

/// Resolved telemetry handles for the initiator hot path, shared by every
/// connection an [`Initiator`] opens.
struct FabricMetrics {
    /// Full QP submit→complete latency of one capsule exchange.
    submit_ns: Arc<Histogram>,
    /// Command-capsule scatter-gather encode latency.
    capsule_encode_ns: Arc<Histogram>,
    /// Response-capsule decode latency.
    capsule_decode_ns: Arc<Histogram>,
    /// Capsule exchanges issued (writes, reads, flushes).
    io_ops: Arc<Counter>,
    /// Payload bytes moved over connections.
    io_bytes: Arc<Counter>,
    /// Payload bytes memcpy'd on the initiator side. The `Bytes`-based
    /// paths add nothing here; the slice-based convenience paths add one
    /// staging copy each.
    bytes_copied: Arc<Counter>,
    /// Modeled host-CPU ns for the polled userspace path actually taken.
    userspace_path_ns: Arc<Counter>,
    /// Modeled host-CPU ns the same IOs would have cost on the kernel
    /// path (Figure 2) — the counterfactual the paper's §IV-D contrasts.
    kernel_path_equiv_ns: Arc<Counter>,
}

impl FabricMetrics {
    fn new(t: &Telemetry) -> Self {
        FabricMetrics {
            submit_ns: t.histogram("fabric.submit_ns"),
            capsule_encode_ns: t.histogram("fabric.capsule_encode_ns"),
            capsule_decode_ns: t.histogram("fabric.capsule_decode_ns"),
            io_ops: t.counter("fabric.io_ops"),
            io_bytes: t.counter("fabric.io_bytes"),
            bytes_copied: t.counter("fabric.bytes_copied"),
            userspace_path_ns: t.counter("fabric.userspace_path_ns"),
            kernel_path_equiv_ns: t.counter("fabric.kernel_path_equiv_ns"),
        }
    }
}

/// Initiator-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitiatorError {
    /// The target returned a non-success status.
    Remote(Status),
    /// Transport-level failure.
    Transport(String),
}

impl fmt::Display for InitiatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitiatorError::Remote(s) => write!(f, "remote error: {s:?}"),
            InitiatorError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for InitiatorError {}

impl From<TargetError> for InitiatorError {
    fn from(e: TargetError) -> Self {
        InitiatorError::Transport(e.to_string())
    }
}

/// The client-side NVMf endpoint of one process.
pub struct Initiator {
    host_nqn: String,
    metrics: Arc<FabricMetrics>,
}

impl Initiator {
    /// An initiator identifying as `host_nqn`, reporting into the
    /// process-global telemetry registry.
    pub fn new(host_nqn: impl Into<String>) -> Self {
        Self::with_telemetry(host_nqn, Telemetry::default())
    }

    /// An initiator reporting `fabric.*` metrics into `t`.
    pub fn with_telemetry(host_nqn: impl Into<String>, t: Telemetry) -> Self {
        Initiator {
            host_nqn: host_nqn.into(),
            metrics: Arc::new(FabricMetrics::new(&t)),
        }
    }

    /// This host's NQN.
    pub fn host_nqn(&self) -> &str {
        &self.host_nqn
    }

    /// Connect to `target`, binding the connection to namespace `ns`.
    /// The target admits the connection with access to exactly that
    /// namespace, and an RDMA queue pair is established for the capsule
    /// traffic (SQ/RQ depth 128, the SPDK default ballpark).
    pub fn connect(&self, target: Arc<NvmfTarget>, ns: NsId) -> NvmfConnection {
        let conn = target.connect(&self.host_nqn, &[ns]);
        let (qp_initiator, qp_target) = QueuePair::connected_pair(128, 128);
        // Price one IO on each software stack up front: every submit then
        // charges the polled-userspace cost actually taken and the
        // kernel-path counterfactual, so reports can contrast the two.
        let k = KernelCosts::default();
        let userspace_per_io_ns = (IoPath::Userspace.per_io(&k).total().as_secs() * 1e9) as u64;
        let kernel_per_io_ns = (IoPath::Kernel.per_io(&k).total().as_secs() * 1e9) as u64;
        NvmfConnection {
            target,
            conn,
            ns,
            qp_initiator,
            qp_target,
            next_cid: 0,
            next_wr: 0,
            ios: 0,
            bytes: 0,
            metrics: Arc::clone(&self.metrics),
            userspace_per_io_ns,
            kernel_per_io_ns,
        }
    }
}

/// An established initiator→target connection bound to one namespace.
/// Capsules travel over a real [`QueuePair`]; the target daemon's polling
/// loop runs inline when a command is submitted (the functional stand-in
/// for the SPDK reactor).
pub struct NvmfConnection {
    target: Arc<NvmfTarget>,
    conn: ConnId,
    ns: NsId,
    qp_initiator: QueuePair,
    qp_target: QueuePair,
    next_cid: u16,
    next_wr: u64,
    ios: u64,
    bytes: u64,
    metrics: Arc<FabricMetrics>,
    userspace_per_io_ns: u64,
    kernel_per_io_ns: u64,
}

impl NvmfConnection {
    fn cid(&mut self) -> u16 {
        let c = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        c
    }

    fn submit(&mut self, capsule: Capsule) -> Result<Completion, InitiatorError> {
        // Full wire discipline: post receives on both ends, send the
        // command capsule over the queue pair, run one target-daemon poll
        // iteration, and poll our own CQ for the response — no blocking
        // waits anywhere (Principle 1).
        let _submit_t = self.metrics.submit_ns.time();
        let _span = telemetry::span("fabric", "submit").arg("ns", self.ns.0 as u64);
        self.metrics.io_ops.inc();
        self.metrics.userspace_path_ns.add(self.userspace_per_io_ns);
        self.metrics.kernel_path_equiv_ns.add(self.kernel_per_io_ns);
        let wr = self.next_wr;
        self.next_wr += 3;
        self.qp_target.post_recv(wr);
        self.qp_initiator.post_recv(wr + 1);
        // The capsule travels as scatter-gather segments: header in one
        // SGE, write payload (the caller's refcounted buffer) in another.
        // Nothing on the wire path copies payload bytes.
        let wire = {
            let _t = self.metrics.capsule_encode_ns.time();
            capsule.encode_sg()
        };
        self.qp_initiator
            .post_send(wr + 2, wire)
            .map_err(|e| InitiatorError::Transport(e.to_string()))?;
        // Target daemon iteration: poll, decode, execute, respond.
        let cmd_wire = self
            .qp_target
            .poll_cq(4)
            .into_iter()
            .find(|c| c.opcode == CompletionOp::Recv)
            .and_then(|c| c.payload)
            .ok_or_else(|| InitiatorError::Transport("command capsule lost".into()))?;
        let resp = self.target.handle_wire_sg(self.conn, cmd_wire)?;
        self.qp_target
            .post_send(wr + 2, resp)
            .map_err(|e| InitiatorError::Transport(e.to_string()))?;
        self.qp_target.poll_cq(4); // drain the target's send completion
        let resp_wire = self
            .qp_initiator
            .poll_cq(8)
            .into_iter()
            .find(|c| c.opcode == CompletionOp::Recv)
            .and_then(|c| c.payload)
            .ok_or_else(|| InitiatorError::Transport("response capsule lost".into()))?;
        let completion = {
            let _t = self.metrics.capsule_decode_ns.time();
            Completion::decode_sg(resp_wire)
                .map_err(|e| InitiatorError::Transport(e.to_string()))?
        };
        match completion.status {
            Status::Success => Ok(completion),
            s => Err(InitiatorError::Remote(s)),
        }
    }

    /// The namespace this connection is bound to.
    pub fn namespace(&self) -> NsId {
        self.ns
    }

    /// Write an owned payload at namespace-relative `offset` — the
    /// zero-copy path. The same refcounted buffer crosses initiator →
    /// wire → target → device RAM; its only copy is the device's
    /// drain-to-media.
    pub fn write_bytes(&mut self, offset: u64, data: Bytes) -> Result<(), InitiatorError> {
        let cid = self.cid();
        self.ios += 1;
        self.bytes += data.len() as u64;
        self.metrics.io_bytes.add(data.len() as u64);
        self.submit(Capsule::write(cid, self.ns.0, offset, data))
            .map(|_| ())
    }

    /// Write `data` at namespace-relative `offset` (stages one copy of
    /// the borrowed slice; prefer [`NvmfConnection::write_bytes`]).
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), InitiatorError> {
        self.metrics.bytes_copied.add(data.len() as u64);
        self.write_bytes(offset, Bytes::copy_from_slice(data))
    }

    /// Read `len` bytes at namespace-relative `offset` as an owned
    /// payload — the zero-copy path: the returned buffer is the target's
    /// read buffer, delivered by refcount.
    pub fn read_bytes(&mut self, offset: u64, len: usize) -> Result<Bytes, InitiatorError> {
        let cid = self.cid();
        let c = Capsule::read(cid, self.ns.0, offset, len as u64);
        self.ios += 1;
        self.bytes += len as u64;
        self.metrics.io_bytes.add(len as u64);
        self.submit(c).map(|r| r.data)
    }

    /// Read into a caller-provided buffer (one copy, wire → `buf`).
    pub fn read_into(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), InitiatorError> {
        let data = self.read_bytes(offset, buf.len())?;
        buf.copy_from_slice(&data);
        self.metrics.bytes_copied.add(buf.len() as u64);
        Ok(())
    }

    /// Read `len` bytes at namespace-relative `offset` into a fresh
    /// vector (one copy; prefer [`NvmfConnection::read_bytes`]).
    pub fn read(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, InitiatorError> {
        let data = self.read_bytes(offset, len)?;
        self.metrics.bytes_copied.add(data.len() as u64);
        Ok(data.to_vec())
    }

    /// Flush the device write buffer.
    pub fn flush(&mut self) -> Result<(), InitiatorError> {
        let cid = self.cid();
        let c = Capsule::flush(cid, self.ns.0);
        self.submit(c).map(|_| ())
    }

    /// Lifetime `(ios, bytes)` issued on this connection.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.ios, self.bytes)
    }

    /// Work requests posted on the initiator-side queue pair
    /// `(sends, recvs)` — evidence the wire discipline is in use.
    pub fn qp_counters(&self) -> (u64, u64) {
        self.qp_initiator.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::{Ssd, SsdConfig};

    /// Target + namespaces on a *private* telemetry registry, so exact
    /// counter assertions don't race with concurrently running tests.
    fn setup_with_telemetry() -> (Arc<NvmfTarget>, NsId, NsId, Telemetry) {
        let t = Telemetry::new();
        let ssd = Ssd::with_telemetry(
            SsdConfig {
                capacity: 1 << 20,
                ..SsdConfig::default()
            },
            t.clone(),
        );
        let a = ssd.create_namespace(256 << 10).unwrap();
        let b = ssd.create_namespace(256 << 10).unwrap();
        (Arc::new(NvmfTarget::new(Arc::new(ssd))), a, b, t)
    }

    fn setup() -> (Arc<NvmfTarget>, NsId, NsId) {
        let (t, a, b, _) = setup_with_telemetry();
        (t, a, b)
    }

    #[test]
    fn end_to_end_write_read() {
        let (target, a, _) = setup();
        let init = Initiator::new("nqn.2026-07.io.nvmecr:rank0");
        let mut conn = init.connect(target, a);
        conn.write(512, b"restartable state").unwrap();
        assert_eq!(conn.read(512, 17).unwrap(), b"restartable state");
        assert_eq!(conn.io_counters().0, 2);
    }

    #[test]
    fn bytes_paths_are_copy_free_end_to_end() {
        let (target, a, _, t) = setup_with_telemetry();
        let init = Initiator::with_telemetry("nqn.host", t.clone());
        let mut conn = init.connect(Arc::clone(&target), a);
        let payload = Bytes::from(vec![0x3Cu8; 16 << 10]);
        conn.write_bytes(0, payload.clone()).unwrap();
        conn.flush().unwrap();
        let copied = |name: &str| t.snapshot().counter(name);
        assert_eq!(
            copied("fabric.bytes_copied"),
            0,
            "initiator must not copy the payload"
        );
        assert_eq!(
            copied("ssd.bytes_copied"),
            payload.len() as u64,
            "exactly one copy per byte: device RAM drain to media"
        );
        let back = conn.read_bytes(0, payload.len()).unwrap();
        assert_eq!(back, payload);
        assert_eq!(
            copied("fabric.bytes_copied"),
            0,
            "read_bytes must not copy either"
        );
        // The slice paths each stage one copy and say so.
        conn.write(0, &[1u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        conn.read_into(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 100]);
        assert_eq!(copied("fabric.bytes_copied"), 200);
        // Latency histograms observed every capsule exchange.
        let snap = t.snapshot();
        let submits = snap.histogram("fabric.submit_ns").unwrap();
        assert_eq!(submits.count, snap.counter("fabric.io_ops"));
        assert!(submits.count >= 5, "write+flush+read+write+read_into");
        assert!(
            snap.counter("fabric.kernel_path_equiv_ns") > snap.counter("fabric.userspace_path_ns"),
            "modeled kernel path must cost more than the polled userspace path"
        );
    }

    #[test]
    fn connection_cannot_reach_foreign_namespace() {
        let (target, a, b) = setup();
        let init = Initiator::new("nqn.host");
        let mut conn_a = init.connect(Arc::clone(&target), a);
        conn_a.write(0, b"mine").unwrap();
        // A separate connection bound to b cannot see a's data at the same
        // namespace-relative offset.
        let mut conn_b = init.connect(target, b);
        assert_eq!(conn_b.read(0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn out_of_range_surfaces_remote_error() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        let err = conn.write((256 << 10) - 1, b"spill").unwrap_err();
        assert!(matches!(err, InitiatorError::Remote(Status::LbaOutOfRange)));
    }

    #[test]
    fn flush_roundtrip() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        conn.write(0, &[1u8; 128]).unwrap();
        conn.flush().unwrap();
    }

    #[test]
    fn wire_traffic_flows_over_queue_pairs() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        conn.write(0, b"abc").unwrap();
        conn.read(0, 3).unwrap();
        let (sends, recvs) = conn.qp_counters();
        assert_eq!(sends, 2, "one capsule send per IO");
        assert_eq!(recvs, 2, "one posted response buffer per IO");
    }

    #[test]
    fn many_sequential_ios_wrap_cid() {
        let (target, a, _) = setup();
        let mut conn = Initiator::new("nqn.host").connect(target, a);
        for i in 0..70_000u64 {
            // Cheap small writes; cid is u16 and must wrap without issue.
            if i % 8192 == 0 {
                conn.write(0, &[0u8; 8]).unwrap();
            }
        }
        conn.write(0, &[9u8; 1]).unwrap();
        assert_eq!(conn.read(0, 1).unwrap(), vec![9u8]);
    }
}
