//! Apache Crail model.
//!
//! Crail shares NVMe-CR's SPDK userspace data plane ("both use SPDK for
//! NVMf support", §IV-F) but differs in two ways the paper leans on:
//!
//! * its public version "only supports a single NVMe server" (§IV-A), so
//!   the model pins placement to one server;
//! * it has "a single metadata server which becomes a bottleneck at
//!   high-concurrency" (§IV-A) and ships more metadata per operation than
//!   provenance logging, giving NVMe-CR "consistently ... up to 5-10% lower
//!   overhead for remote access" (§IV-F).

use fabric::IoPath;
use simkit::SimTime;

use crate::dagutil;
use crate::model::{MetadataOverhead, StorageModel};
use crate::scenario::Scenario;
use crate::spec::{DataPlaneSpec, PlacementPolicy};

/// The Crail comparator (single NVMf server).
pub struct CrailModel {
    spec: DataPlaneSpec,
}

impl Default for CrailModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CrailModel {
    /// Calibrated to §IV-F: 5-10% above NVMe-CR at full subscription.
    pub fn new() -> Self {
        CrailModel {
            spec: DataPlaneSpec {
                layer_efficiency: 0.97,
                request_size: 32 << 10,
                path: IoPath::Userspace,
                placement: PlacementPolicy::SingleServer,
                create_serialized: None,
                create_client: SimTime::micros(12.0),
                // Block metadata travels via RPC rather than a local log.
                write_meta_bytes: 2048,
                // Every block allocation consults the single metadata
                // server. Calibrated so the server saturates just above the
                // device rate at 28 clients, reproducing the paper's 5-10%
                // gap (Â§IV-F) and its "bottleneck at high-concurrency".
                meta_server_op: Some(SimTime::micros(450.0)),
                meta_contention_knee: u32::MAX,
                meta_chunks_on_write: true,
                meta_chunks_on_read: true,
                ..DataPlaneSpec::base("Crail")
            },
        }
    }

    /// The underlying mechanism spec.
    pub fn spec(&self) -> &DataPlaneSpec {
        &self.spec
    }

    /// Crail only runs single-server; force the scenario shape.
    fn clamp(s: &Scenario) -> Scenario {
        Scenario {
            servers: 1,
            ..s.clone()
        }
    }
}

impl StorageModel for CrailModel {
    fn name(&self) -> &'static str {
        "Crail"
    }

    fn checkpoint_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::checkpoint_makespan(&Self::clamp(s), &self.spec)
    }

    fn recovery_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::recovery_makespan(&Self::clamp(s), &self.spec)
    }

    fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64 {
        dagutil::create_rate(&Self::clamp(s), &self.spec, creates_per_proc)
    }

    fn server_loads(&self, s: &Scenario) -> Vec<f64> {
        dagutil::server_loads(&Self::clamp(s), &self.spec)
    }

    fn metadata_overhead(&self, s: &Scenario) -> MetadataOverhead {
        // Central metadata server state: per-block entries.
        let blocks = s.total_bytes().div_ceil(self.spec.request_size);
        MetadataOverhead {
            per_server_bytes: blocks * 64,
            per_runtime_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_to_raw_device_on_one_server() {
        let m = CrailModel::new();
        let s = Scenario::single_node(512 << 20);
        let eff = m.checkpoint_efficiency(&s);
        assert!(eff > 0.80, "Crail single-server efficiency {eff}");
    }

    #[test]
    fn single_server_regardless_of_scenario() {
        let m = CrailModel::new();
        let s = Scenario::weak_scaling(112);
        let loads = m.server_loads(&s);
        assert_eq!(loads.len(), 1);
    }

    #[test]
    fn metadata_rpcs_add_a_few_percent() {
        // Compare against a metadata-free version of the same spec.
        let m = CrailModel::new();
        let free = DataPlaneSpec {
            meta_server_op: None,
            write_meta_bytes: 0,
            ..m.spec.clone()
        };
        let s = Scenario {
            servers: 1,
            ..Scenario::single_node(512 << 20)
        };
        let with = m.checkpoint_makespan(&s).as_secs();
        let without = dagutil::checkpoint_makespan(&s, &free).as_secs();
        let overhead = with / without - 1.0;
        assert!(
            (0.02..0.20).contains(&overhead),
            "Crail metadata overhead should be the paper's 5-10%-ish: {overhead}"
        );
    }
}
