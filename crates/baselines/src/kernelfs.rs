//! Local kernel filesystems: ext4 and XFS (the Figure 7c comparators).
//!
//! Both trap into the kernel for every IO (Fig 2; §IV-D measures 79% and
//! 76.5% of benchmark time in the kernel for ext4 and XFS respectively).
//! They differ in allocator and journal:
//!
//! * **ext4**: 4 KiB block-bitmap allocation (per-block CPU), ordered-mode
//!   journaling (extra device bytes per write), heavier layering — the
//!   paper measures an 83% latency gap vs NVMe-CR at 512 MB;
//! * **XFS**: extent-based delayed allocation (no per-block cost), leaner
//!   journal — a 19% gap.
//!
//! These models describe a *local* SSD (`servers = 1`, no network hops);
//! [`dagutil`] still routes through a link pipe, which at EDR bandwidth
//! contributes < 2% — the paper's own local-vs-remote gap (Fig 8a).

use fabric::{IoPath, TimeSplit};
use simkit::SimTime;

use crate::dagutil;
use crate::model::{MetadataOverhead, StorageModel};
use crate::scenario::Scenario;
use crate::spec::{DataPlaneSpec, PlacementPolicy};

fn local(s: &Scenario) -> Scenario {
    Scenario {
        servers: 1,
        ..s.clone()
    }
}

/// Shared implementation for the two kernel filesystems.
macro_rules! kernel_fs_model {
    ($name:ident, $label:literal) => {
        /// See module docs.
        pub struct $name {
            spec: DataPlaneSpec,
        }

        impl $name {
            /// The underlying mechanism spec.
            pub fn spec(&self) -> &DataPlaneSpec {
                &self.spec
            }

            /// Fraction of benchmark time spent in the kernel for a run of
            /// `n_ios` IO calls plus the residual non-IO syscall time
            /// (§IV-D reports 79% / 76.5% / 10%).
            pub fn kernel_time_fraction(&self, s: &Scenario) -> f64 {
                let mut split = TimeSplit::new();
                let n_ios = s.bytes_per_proc.div_ceil(s.app_write_size);
                split.record_ios(self.spec.path, &s.kernel, n_ios);
                // Page-granular kernel work (copy-in, page cache, bio
                // assembly) regardless of allocator.
                split.record_kernel(SimTime::micros(
                    1.2 * s.bytes_per_proc.div_ceil(4096) as f64,
                ));
                // Benchmark-side user work: serializing the checkpoint
                // image into IO buffers (~10 GB/s memcpy).
                split.record_user(SimTime::secs(s.bytes_per_proc as f64 / 10e9));
                split.kernel_fraction()
            }
        }

        impl StorageModel for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn checkpoint_makespan(&self, s: &Scenario) -> SimTime {
                dagutil::checkpoint_makespan(&local(s), &self.spec)
            }

            fn recovery_makespan(&self, s: &Scenario) -> SimTime {
                dagutil::recovery_makespan(&local(s), &self.spec)
            }

            fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64 {
                dagutil::create_rate(&local(s), &self.spec, creates_per_proc)
            }

            fn server_loads(&self, s: &Scenario) -> Vec<f64> {
                dagutil::server_loads(&local(s), &self.spec)
            }

            fn metadata_overhead(&self, s: &Scenario) -> MetadataOverhead {
                let blocks = s.total_bytes().div_ceil(self.spec.request_size);
                MetadataOverhead {
                    per_server_bytes: blocks * 16 + (128 << 20), // maps + journal
                    per_runtime_bytes: 0,
                }
            }
        }
    };
}

kernel_fs_model!(Ext4Model, "ext4");
kernel_fs_model!(XfsModel, "XFS");

impl Default for Ext4Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Ext4Model {
    /// Calibrated to Fig 7c's 83% gap at 512 MB.
    pub fn new() -> Self {
        Ext4Model {
            spec: DataPlaneSpec {
                layer_efficiency: 0.55,
                request_size: 4 << 10,
                path: IoPath::Kernel,
                placement: PlacementPolicy::RoundRobin,
                create_serialized: Some(SimTime::micros(15.0)), // shared dir mutex
                create_client: SimTime::micros(30.0),
                write_meta_bytes: 52 << 10, // ordered-mode journal per 1 MiB
                alloc_per_block: SimTime::micros(0.6),
                ..DataPlaneSpec::base("ext4")
            },
        }
    }
}

impl Default for XfsModel {
    fn default() -> Self {
        Self::new()
    }
}

impl XfsModel {
    /// Calibrated to Fig 7c's 19% gap at 512 MB.
    pub fn new() -> Self {
        XfsModel {
            spec: DataPlaneSpec {
                layer_efficiency: 0.88,
                request_size: 64 << 10,
                path: IoPath::Kernel,
                placement: PlacementPolicy::RoundRobin,
                create_serialized: Some(SimTime::micros(10.0)),
                create_client: SimTime::micros(25.0),
                write_meta_bytes: 10 << 10,     // lean journal
                alloc_per_block: SimTime::ZERO, // extent/delayed allocation
                ..DataPlaneSpec::base("XFS")
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext4_is_much_slower_than_xfs() {
        let s = Scenario::single_node(512 << 20);
        let e = Ext4Model::new().checkpoint_makespan(&s).as_secs();
        let x = XfsModel::new().checkpoint_makespan(&s).as_secs();
        assert!(e > x * 1.3, "ext4 {e}s vs XFS {x}s");
    }

    #[test]
    fn gap_grows_with_checkpoint_size() {
        // §IV-D: "on increasing data size, the performance gap increases"
        // (metadata overhead is linear in file size).
        let small = Scenario::single_node(32 << 20);
        let big = Scenario::single_node(512 << 20);
        let ratio = |s: &Scenario| {
            Ext4Model::new().checkpoint_makespan(s).as_secs()
                / XfsModel::new().checkpoint_makespan(s).as_secs()
        };
        assert!(ratio(&big) >= ratio(&small) * 0.95);
    }

    #[test]
    fn kernel_time_fraction_matches_paper_ballpark() {
        let s = Scenario::single_node(512 << 20);
        let e = Ext4Model::new().kernel_time_fraction(&s);
        let x = XfsModel::new().kernel_time_fraction(&s);
        assert!((0.6..0.95).contains(&e), "ext4 kernel fraction {e}");
        assert!((0.6..0.95).contains(&x), "XFS kernel fraction {x}");
    }

    #[test]
    fn kernel_fses_never_beat_the_raw_device() {
        let s = Scenario::single_node(512 << 20);
        let floor = s.total_bytes() as f64 / s.ssd.write_bw().as_bytes_per_sec();
        assert!(XfsModel::new().checkpoint_makespan(&s).as_secs() > floor);
        assert!(Ext4Model::new().checkpoint_makespan(&s).as_secs() > floor);
    }
}
