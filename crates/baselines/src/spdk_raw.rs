//! Raw SPDK model — Figure 7c's "no filesystem at all" reference point.
//!
//! §IV-D: "Compared to SPDK, NVMe-CR has no noticeable overhead... Note
//! that SPDK alone cannot handle all the IO challenges (POSIX compliance,
//! metadata management, and private namespace)". The model is the
//! userspace path with hugeblock-sized requests and zero metadata of any
//! kind.

use fabric::IoPath;
use simkit::SimTime;

use crate::dagutil;
use crate::model::{MetadataOverhead, StorageModel};
use crate::scenario::Scenario;
use crate::spec::{DataPlaneSpec, PlacementPolicy};

/// Raw SPDK block IO (no filesystem).
pub struct SpdkRawModel {
    spec: DataPlaneSpec,
}

impl Default for SpdkRawModel {
    fn default() -> Self {
        Self::new()
    }
}

impl SpdkRawModel {
    /// Userspace path, 32 KiB requests, nothing else.
    pub fn new() -> Self {
        SpdkRawModel {
            spec: DataPlaneSpec {
                layer_efficiency: 1.0,
                request_size: 32 << 10,
                path: IoPath::Userspace,
                placement: PlacementPolicy::RoundRobin,
                create_serialized: None,
                create_client: SimTime::micros(0.5),
                write_meta_bytes: 0,
                create_device_bytes: 512, // bare block touch; no dirent/log
                ..DataPlaneSpec::base("SPDK")
            },
        }
    }

    /// The underlying mechanism spec.
    pub fn spec(&self) -> &DataPlaneSpec {
        &self.spec
    }
}

impl StorageModel for SpdkRawModel {
    fn name(&self) -> &'static str {
        "SPDK"
    }

    fn checkpoint_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::checkpoint_makespan(s, &self.spec)
    }

    fn recovery_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::recovery_makespan(s, &self.spec)
    }

    fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64 {
        dagutil::create_rate(s, &self.spec, creates_per_proc)
    }

    fn server_loads(&self, s: &Scenario) -> Vec<f64> {
        dagutil::server_loads(s, &self.spec)
    }

    fn metadata_overhead(&self, _s: &Scenario) -> MetadataOverhead {
        MetadataOverhead {
            per_server_bytes: 0,
            per_runtime_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spdk_is_the_fastest_single_node_path() {
        let s = Scenario::single_node(512 << 20);
        let spdk = SpdkRawModel::new().checkpoint_makespan(&s).as_secs();
        let xfs = crate::XfsModel::new().checkpoint_makespan(&s).as_secs();
        let ext4 = crate::Ext4Model::new().checkpoint_makespan(&s).as_secs();
        assert!(spdk < xfs && spdk < ext4);
    }

    #[test]
    fn near_hardware_floor() {
        let s = Scenario::single_node(512 << 20);
        let t = SpdkRawModel::new().checkpoint_makespan(&s).as_secs();
        let floor = s.total_bytes() as f64 / s.ssd.write_bw().as_bytes_per_sec();
        assert!(t < floor * 1.15, "SPDK {t}s vs floor {floor}s");
    }
}
