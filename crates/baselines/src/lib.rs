//! # nvmecr-baselines — models of the paper's comparator storage systems
//!
//! The evaluation (§IV) compares NVMe-CR against OrangeFS, GlusterFS,
//! Crail, ext4, XFS, raw SPDK, and (as the multi-level second tier)
//! Lustre. None of those systems can run here, but each one's *measured
//! behaviour in the paper is attributed to a specific architectural
//! mechanism*, and those mechanisms are what this crate implements:
//!
//! | System | Mechanism modelled | Paper evidence |
//! |---|---|---|
//! | OrangeFS | file striping; serialized global-namespace metadata; kernel IO path; thick software layers | Fig 1 (≤41% of peak), Fig 7b, Fig 8b, Table I (2.6 GB/node metadata) |
//! | GlusterFS | jump consistent hashing (high CoV at low concurrency \[17\]); serialized common-directory creates; decentralized data path | Fig 1 (≤84%), Fig 7b, Fig 8b, Fig 9d dip |
//! | Crail | SPDK userspace data plane but a single metadata server | §IV-F (5-10% above NVMe-CR), single-server limit |
//! | ext4/XFS | kernel path, 4 KiB blocks, journaling (ext4 heavier than XFS's extents) | Fig 7c (83% / 19% worse), %time-in-kernel |
//! | raw SPDK | userspace polled IO, no filesystem at all | Fig 7c (NVMe-CR ≈ SPDK) |
//! | Lustre | 4 servers × 12 Gbps RAID, replication, kernel path | §IV-A, Table II second tier |
//!
//! Every model implements [`model::StorageModel`], producing checkpoint and
//! recovery makespans (via `simkit` DAGs over the shared [`ssd`]/[`fabric`]
//! facilities), create-storm throughput, per-server load distributions, and
//! metadata overheads. The NVMe-CR model itself lives in the `workloads`
//! crate (it composes configuration from the functional `nvmecr` crate).
//!
//! Calibration constants are collected in [`spec::DataPlaneSpec`]
//! presets and documented inline; see DESIGN.md §3.

pub mod crail;
pub mod dagutil;
pub mod glusterfs;
pub mod jumphash;
pub mod kernelfs;
pub mod lustre;
pub mod model;
pub mod orangefs;
pub mod scenario;
pub mod spdk_raw;
pub mod spec;

pub use crail::CrailModel;
pub use glusterfs::GlusterFsModel;
pub use jumphash::{jump_consistent_hash, str_key};
pub use kernelfs::{Ext4Model, XfsModel};
pub use lustre::LustreModel;
pub use model::{MetadataOverhead, StorageModel};
pub use orangefs::OrangeFsModel;
pub use scenario::Scenario;
pub use spdk_raw::SpdkRawModel;
