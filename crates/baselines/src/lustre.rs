//! Lustre model — the reliable second tier for multi-level checkpointing.
//!
//! §IV-A: "Lustre is used as the PFS and is configured with 4 separate
//! storage servers, each using one 12 Gbps RAID controller." §III-F:
//! "Through redundancy mechanisms, such as replication, such systems can
//! guarantee that data is available even with cascading failures." The
//! model therefore uses its own 4-server RAID-bandwidth hardware, kernel
//! path, striping, and 2x replication.

use fabric::IoPath;
use simkit::{Rate, SimTime};
use ssd::SsdConfig;

use crate::dagutil;
use crate::model::{MetadataOverhead, StorageModel};
use crate::scenario::Scenario;
use crate::spec::{DataPlaneSpec, PlacementPolicy};

/// The Lustre parallel filesystem (tier 2).
pub struct LustreModel {
    spec: DataPlaneSpec,
}

impl Default for LustreModel {
    fn default() -> Self {
        Self::new()
    }
}

impl LustreModel {
    /// 4 OSS × 12 Gbps RAID, kernel path, replicated.
    pub fn new() -> Self {
        LustreModel {
            spec: DataPlaneSpec {
                layer_efficiency: 0.70,
                request_size: 1 << 20,
                path: IoPath::Kernel,
                placement: PlacementPolicy::Striped { stripe: 1 << 20 },
                create_serialized: Some(SimTime::micros(150.0)), // MDS create
                create_client: SimTime::micros(400.0),
                write_meta_bytes: 4096,
                // Per-MB RPC service at the MDS/OSTs under full-job
                // contention; calibrated so the paper's Table II run (one
                // 8.6 GB checkpoint from 448 clients) takes ~30 s.
                meta_server_op: Some(SimTime::millis(1.75)),
                replication: 2,
                ..DataPlaneSpec::base("Lustre")
            },
        }
    }

    /// Swap in Lustre's own storage hardware: 4 servers whose "SSD" is a
    /// 12 Gbps RAID controller (~1.4 GiB/s usable).
    fn lustre_scenario(s: &Scenario) -> Scenario {
        let raid = SsdConfig {
            channels: 8,
            channel_write_bw: Rate::mib_per_sec(175.0), // 8 ch ~ 1.37 GiB/s
            channel_read_bw: Rate::mib_per_sec(190.0),
            cmd_overhead: SimTime::micros(6.0), // RAID controller latency
            ..s.ssd.clone()
        };
        Scenario {
            servers: 4,
            ssd: raid,
            ..s.clone()
        }
    }

    /// The underlying mechanism spec.
    pub fn spec(&self) -> &DataPlaneSpec {
        &self.spec
    }

    /// Aggregate usable write bandwidth of the Lustre tier (for progress
    /// accounting in Table II harnesses).
    pub fn tier_write_bw(&self, s: &Scenario) -> Rate {
        let ls = Self::lustre_scenario(s);
        ls.ssd.write_bw().scale(
            f64::from(ls.servers) * self.spec.layer_efficiency / f64::from(self.spec.replication),
        )
    }
}

impl StorageModel for LustreModel {
    fn name(&self) -> &'static str {
        "Lustre"
    }

    fn checkpoint_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::checkpoint_makespan(&Self::lustre_scenario(s), &self.spec)
    }

    fn recovery_makespan(&self, s: &Scenario) -> SimTime {
        // Reads come from one replica; no replication amplification.
        let spec = DataPlaneSpec {
            replication: 1,
            ..self.spec.clone()
        };
        dagutil::recovery_makespan(&Self::lustre_scenario(s), &spec)
    }

    fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64 {
        dagutil::create_rate(&Self::lustre_scenario(s), &self.spec, creates_per_proc)
    }

    fn server_loads(&self, s: &Scenario) -> Vec<f64> {
        dagutil::server_loads(&Self::lustre_scenario(s), &self.spec)
    }

    fn metadata_overhead(&self, s: &Scenario) -> MetadataOverhead {
        let stripes = s.total_bytes().div_ceil(1 << 20);
        MetadataOverhead {
            per_server_bytes: (512 << 20) + stripes * 64 / 4,
            per_runtime_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn much_slower_than_the_nvme_tier() {
        // Table II's setting: strong scaling, one 8.6 GB checkpoint.
        let s = Scenario::strong_scaling(448);
        let lustre = LustreModel::new().checkpoint_makespan(&s).as_secs();
        // The NVMe tier moves this in ~0.5 s; Lustre takes ~30 s.
        assert!(lustre > 15.0, "Lustre checkpoint {lustre}s");
        assert!(
            lustre < 60.0,
            "Lustre checkpoint {lustre}s unreasonably slow"
        );
    }

    #[test]
    fn recovery_is_faster_than_checkpoint() {
        let s = Scenario::strong_scaling(448);
        let m = LustreModel::new();
        assert!(m.recovery_makespan(&s) < m.checkpoint_makespan(&s));
    }

    #[test]
    fn tier_bandwidth_is_replication_adjusted() {
        let s = Scenario::weak_scaling(448);
        let bw = LustreModel::new().tier_write_bw(&s).as_bytes_per_sec();
        assert!((1.0e9..3.0e9).contains(&bw), "tier bw {bw}");
    }
}
