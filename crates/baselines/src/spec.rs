//! `DataPlaneSpec` — the mechanism vocabulary all storage models share.
//!
//! Each comparator is described by which mechanisms it uses (placement
//! policy, IO path, namespace discipline, metadata shipping); the DAG
//! builder in [`crate::dagutil`] turns a spec plus a
//! [`crate::Scenario`] into a simulated makespan. Calibration constants
//! live in each model's constructor with the paper evidence cited.

use fabric::IoPath;
use simkit::SimTime;

/// How files map to storage servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementPolicy {
    /// Application-aware round-robin over servers (NVMe-CR's balancer):
    /// rank `r` → server `r mod n`.
    RoundRobin,
    /// Consistent hashing of the file name (GlusterFS).
    JumpHash,
    /// Stripe every file across all servers in `stripe`-byte units
    /// (OrangeFS/Lustre).
    Striped {
        /// Stripe unit in bytes.
        stripe: u64,
    },
    /// Everything on server 0 (Crail's single-server NVMf tier).
    SingleServer,
}

/// A storage system's mechanism configuration.
#[derive(Debug, Clone)]
pub struct DataPlaneSpec {
    /// Display name.
    pub name: &'static str,
    /// Fraction of raw device bandwidth attainable through the system's
    /// software layers ("overlay multiple software layers over POSIX
    /// filesystems which decrease the peak attainable bandwidth", §I-A).
    pub layer_efficiency: f64,
    /// Device IO unit (hugeblocks for NVMe-CR; 4 KiB for kernel FSes;
    /// stripe-sized for PFS).
    pub request_size: u64,
    /// Kernel or userspace software stack.
    pub path: IoPath,
    /// File → server mapping.
    pub placement: PlacementPolicy,
    /// Serialized cost per file create on the shared global namespace
    /// (None for private-namespace systems; §III-E).
    pub create_serialized: Option<SimTime>,
    /// Client-observed create latency (RPC, locking handshake).
    pub create_client: SimTime,
    /// Extra metadata bytes shipped over the network per application write
    /// (physical journaling: "inodes and large sized physical log
    /// records"; ~0 with metadata provenance).
    pub write_meta_bytes: u64,
    /// Per-operation service time of a centralized metadata server, if the
    /// system has one (Crail; GlusterFS lookups during recovery). The
    /// service time may grow with concurrency via
    /// [`meta_contention_knee`](Self::meta_contention_knee).
    pub meta_server_op: Option<SimTime>,
    /// Process count at which metadata-server service time has doubled
    /// (quadratic contention growth); `u32::MAX` disables growth.
    pub meta_contention_knee: u32,
    /// Host CPU per allocated device block (block-bitmap allocators pay
    /// this per 4 KiB; extent allocators effectively amortize it away).
    pub alloc_per_block: SimTime,
    /// Data replication factor (Lustre tier-2 writes).
    pub replication: u32,
    /// Whether each written chunk passes through the metadata server
    /// (Crail's block-allocation RPCs).
    pub meta_chunks_on_write: bool,
    /// Whether each read chunk passes through the metadata server
    /// (GlusterFS's recovery-time lookup storm, §IV-H).
    pub meta_chunks_on_read: bool,
    /// Whether file creates pass through the metadata server (Crail).
    pub meta_on_create: bool,
    /// Device bytes persisted per file create (directory-file append +
    /// journal/log record).
    pub create_device_bytes: u64,
    /// Per-process time spent before recovery reads can start (NVMe-CR's
    /// log replay at mount; near zero with record coalescing, §IV-I).
    pub recovery_prologue: SimTime,
}

impl DataPlaneSpec {
    /// A neutral starting point: userspace path, round-robin, no global
    /// namespace, no metadata shipping.
    pub fn base(name: &'static str) -> Self {
        DataPlaneSpec {
            name,
            layer_efficiency: 1.0,
            request_size: 32 << 10,
            path: IoPath::Userspace,
            placement: PlacementPolicy::RoundRobin,
            create_serialized: None,
            create_client: SimTime::micros(5.0),
            write_meta_bytes: 0,
            meta_server_op: None,
            meta_contention_knee: u32::MAX,
            alloc_per_block: SimTime::ZERO,
            replication: 1,
            meta_chunks_on_write: true,
            meta_chunks_on_read: true,
            meta_on_create: true,
            create_device_bytes: 4096,
            recovery_prologue: SimTime::ZERO,
        }
    }

    /// Effective metadata-server service time at a given process count.
    pub fn meta_op_at(&self, procs: u32) -> Option<SimTime> {
        self.meta_server_op.map(|t| {
            if self.meta_contention_knee == u32::MAX {
                t
            } else {
                let x = f64::from(procs) / f64::from(self.meta_contention_knee);
                t * (1.0 + x * x)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_neutral() {
        let s = DataPlaneSpec::base("x");
        assert_eq!(s.layer_efficiency, 1.0);
        assert!(s.create_serialized.is_none());
        assert_eq!(s.replication, 1);
        assert_eq!(s.meta_op_at(448), None);
    }

    #[test]
    fn meta_contention_grows_quadratically() {
        let s = DataPlaneSpec {
            meta_server_op: Some(SimTime::micros(20.0)),
            meta_contention_knee: 224,
            ..DataPlaneSpec::base("x")
        };
        let at_small = s.meta_op_at(56).unwrap();
        let at_knee = s.meta_op_at(224).unwrap();
        let at_big = s.meta_op_at(448).unwrap();
        assert!((at_knee.as_micros() - 40.0).abs() < 1e-9);
        assert!(at_small < at_knee && at_knee < at_big);
        assert!((at_big.as_micros() - 100.0).abs() < 1e-9);
    }
}
