//! The `StorageModel` trait every system (including NVMe-CR's model in the
//! `workloads` crate) implements, so experiment harnesses can sweep systems
//! uniformly.

use simkit::SimTime;

use crate::scenario::Scenario;

/// Metadata storage overhead (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataOverhead {
    /// Bytes of metadata per storage node (how OrangeFS/GlusterFS report).
    pub per_server_bytes: u64,
    /// Bytes of metadata per runtime instance (how NVMe-CR reports).
    pub per_runtime_bytes: u64,
}

/// A storage system under evaluation.
pub trait StorageModel {
    /// Display name (figure legends).
    fn name(&self) -> &'static str;

    /// Makespan of one N-N checkpoint.
    fn checkpoint_makespan(&self, s: &Scenario) -> SimTime;

    /// Makespan of one N-N recovery (every process reads its file back).
    fn recovery_makespan(&self, s: &Scenario) -> SimTime;

    /// Aggregate file-create throughput (creates/second, Figure 8b).
    fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64;

    /// Bytes of checkpoint data landing on each server (Figure 7b input).
    fn server_loads(&self, s: &Scenario) -> Vec<f64>;

    /// Metadata storage overhead (Table I).
    fn metadata_overhead(&self, s: &Scenario) -> MetadataOverhead;

    /// Checkpoint efficiency: achieved bandwidth over hardware peak
    /// (Figure 9 definition).
    fn checkpoint_efficiency(&self, s: &Scenario) -> f64 {
        let t = self.checkpoint_makespan(s);
        if t == SimTime::ZERO {
            return 1.0;
        }
        (s.total_bytes() as f64 / t.as_secs() / s.hw_peak_write().as_bytes_per_sec())
            .clamp(0.0, 1.0)
    }

    /// Recovery efficiency.
    fn recovery_efficiency(&self, s: &Scenario) -> f64 {
        let t = self.recovery_makespan(s);
        if t == SimTime::ZERO {
            return 1.0;
        }
        (s.total_bytes() as f64 / t.as_secs() / s.hw_peak_read().as_bytes_per_sec()).clamp(0.0, 1.0)
    }

    /// Load-imbalance coefficient of variation (Figure 7b).
    fn load_cov(&self, s: &Scenario) -> f64 {
        simkit::stats::coefficient_of_variation(&self.server_loads(s))
    }
}
