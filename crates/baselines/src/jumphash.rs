//! Jump consistent hash — Lamping & Veach, the paper's reference \[17\].
//!
//! GlusterFS's elastic-hash distribution is modelled with this algorithm;
//! reference \[17\] is also the paper's citation for *why* consistent hashing
//! shows "high standard deviation of load under low concurrency" (Figure 1
//! and Figure 7b), which is exactly the behaviour the Figure 7b harness
//! measures from this implementation.

/// Map `key` to a bucket in `0..num_buckets` (Lamping & Veach, 2014).
pub fn jump_consistent_hash(key: u64, num_buckets: u32) -> u32 {
    assert!(num_buckets > 0);
    let mut k = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(num_buckets) {
        b = j;
        k = k.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let shifted = ((k >> 33) + 1) as f64;
        j = (((b + 1) as f64) * ((1i64 << 31) as f64) / shifted) as i64;
    }
    b as u32
}

/// FNV-1a hash of a string key (file names → u64 keys).
pub fn str_key(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats::coefficient_of_variation;

    #[test]
    fn stays_in_range_and_is_deterministic() {
        for key in [0u64, 1, 42, u64::MAX] {
            for buckets in [1u32, 2, 8, 100] {
                let b = jump_consistent_hash(key, buckets);
                assert!(b < buckets);
                assert_eq!(b, jump_consistent_hash(key, buckets));
            }
        }
    }

    #[test]
    fn monotone_consistency_property() {
        // The defining property: growing the bucket count only moves keys
        // *into the new bucket*, never between old buckets.
        for key in 0..2000u64 {
            let small = jump_consistent_hash(key, 7);
            let big = jump_consistent_hash(key, 8);
            assert!(big == small || big == 7, "key {key}: {small} -> {big}");
        }
    }

    #[test]
    fn roughly_uniform_at_high_key_counts() {
        let mut counts = [0u64; 8];
        for key in 0..80_000u64 {
            counts[jump_consistent_hash(key, 8) as usize] += 1;
        }
        let loads: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        assert!(coefficient_of_variation(&loads) < 0.02);
    }

    #[test]
    fn high_cov_at_low_key_counts() {
        // The paper's low-concurrency imbalance: few files over 8 servers.
        let loads_for = |n: u64| {
            let mut counts = [0f64; 8];
            for i in 0..n {
                let key = str_key(&format!("/ckpt/rank_{i}.dat"));
                counts[jump_consistent_hash(key, 8) as usize] += 1.0;
            }
            coefficient_of_variation(&counts)
        };
        let few = loads_for(28);
        let many = loads_for(448);
        assert!(
            few > many,
            "CoV must fall with concurrency: {few} vs {many}"
        );
        assert!(
            few > 0.2,
            "28 files over 8 servers should be visibly imbalanced"
        );
    }

    #[test]
    fn str_key_distinguishes_names() {
        assert_ne!(str_key("/a"), str_key("/b"));
        assert_eq!(str_key("/a"), str_key("/a"));
    }
}
