//! OrangeFS model.
//!
//! Mechanisms (paper evidence in parentheses):
//! * file data **striped** across all servers in 64 KiB units — good
//!   balance at low concurrency (Fig 7b);
//! * **kernel** IO path over POSIX filesystems (Fig 7c argument, §I-A);
//! * thick layering caps attainable bandwidth well below hardware — the
//!   paper measures at best **41% of peak** (Fig 1), which calibrates
//!   `layer_efficiency`;
//! * a **global namespace** whose creates serialize under distributed
//!   locking (Fig 8b: 18x fewer creates/s than NVMe-CR at 448), and
//!   per-write metadata updates that serialize at the metadata service and
//!   collapse efficiency at 448 processes ("unable to handle the metadata
//!   burden", §IV-H);
//! * heavy on-server metadata: "it needs to store both file metadata and
//!   striping information" (Table I: ~2.6 GB per storage node).

use fabric::IoPath;
use simkit::SimTime;

use crate::dagutil;
use crate::model::{MetadataOverhead, StorageModel};
use crate::scenario::Scenario;
use crate::spec::{DataPlaneSpec, PlacementPolicy};

/// The OrangeFS comparator.
pub struct OrangeFsModel {
    spec: DataPlaneSpec,
}

impl Default for OrangeFsModel {
    fn default() -> Self {
        Self::new()
    }
}

impl OrangeFsModel {
    /// Calibrated to the paper's measurements (see module docs).
    pub fn new() -> Self {
        OrangeFsModel {
            spec: DataPlaneSpec {
                layer_efficiency: 0.46,
                request_size: 64 << 10,
                path: IoPath::Kernel,
                placement: PlacementPolicy::Striped { stripe: 64 << 10 },
                // Distributed-locking create (Fig 8b: ~18x below NVMe-CR).
                create_serialized: Some(SimTime::micros(30.0)),
                create_client: SimTime::micros(250.0),
                // Physical metadata shipped per write (inode + stripe map
                // updates).
                write_meta_bytes: 16 << 10,
                // Serialized per-chunk metadata updates on the write path
                // only; recovery is metadata-light (§IV-H: "during
                // recovery, however, they perform much better").
                meta_server_op: Some(SimTime::micros(40.0)),
                meta_contention_knee: 224,
                meta_on_create: false,
                alloc_per_block: SimTime::micros(0.3),
                ..DataPlaneSpec::base("OrangeFS")
            },
        }
    }

    /// The underlying mechanism spec (for harness introspection).
    pub fn spec(&self) -> &DataPlaneSpec {
        &self.spec
    }
}

impl StorageModel for OrangeFsModel {
    fn name(&self) -> &'static str {
        "OrangeFS"
    }

    fn checkpoint_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::checkpoint_makespan(s, &self.spec)
    }

    fn recovery_makespan(&self, s: &Scenario) -> SimTime {
        let spec = DataPlaneSpec {
            meta_chunks_on_read: false,
            ..self.spec.clone()
        };
        dagutil::recovery_makespan(s, &spec)
    }

    fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64 {
        dagutil::create_rate(s, &self.spec, creates_per_proc)
    }

    fn server_loads(&self, s: &Scenario) -> Vec<f64> {
        dagutil::server_loads(s, &self.spec)
    }

    fn metadata_overhead(&self, s: &Scenario) -> MetadataOverhead {
        // Per-file inode + per-stripe bookkeeping, plus the metadata
        // database / journal region each server pre-provisions. The fixed
        // region dominates, matching Table I's ~2.6 GB per node.
        let stripes_per_file = s.bytes_per_proc.div_ceil(64 << 10);
        let per_file = 4096 + stripes_per_file * 256;
        let fixed_per_server: u64 = 2_560 << 20;
        MetadataOverhead {
            per_server_bytes: fixed_per_server
                + u64::from(s.procs) * per_file / u64::from(s.servers),
            per_runtime_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_efficiency_is_capped_near_41_percent() {
        let m = OrangeFsModel::new();
        // Mid-scale weak scaling: the paper's best case for OrangeFS.
        let eff = m.checkpoint_efficiency(&Scenario::weak_scaling(112));
        assert!(
            (0.30..0.48).contains(&eff),
            "OrangeFS peak efficiency {eff}"
        );
    }

    #[test]
    fn efficiency_collapses_at_448() {
        let m = OrangeFsModel::new();
        let mid = m.checkpoint_efficiency(&Scenario::weak_scaling(112));
        let big = m.checkpoint_efficiency(&Scenario::weak_scaling(448));
        assert!(
            big < mid,
            "metadata burden must bite at 448: {mid} -> {big}"
        );
    }

    #[test]
    fn recovery_is_much_better_than_checkpoint() {
        let m = OrangeFsModel::new();
        let s = Scenario::weak_scaling(448);
        let ckpt = m.checkpoint_efficiency(&s);
        let rec = m.recovery_efficiency(&s);
        assert!(rec > ckpt * 1.3, "recovery {rec} vs checkpoint {ckpt}");
    }

    #[test]
    fn striping_balances_load_well() {
        let m = OrangeFsModel::new();
        assert!(m.load_cov(&Scenario::weak_scaling(28)) < 0.05);
    }

    #[test]
    fn metadata_overhead_matches_table1_scale() {
        let m = OrangeFsModel::new();
        let o = m.metadata_overhead(&Scenario::weak_scaling(448));
        let gb = o.per_server_bytes as f64 / 1e9;
        assert!((2.0..3.5).contains(&gb), "per-server metadata {gb} GB");
    }
}
