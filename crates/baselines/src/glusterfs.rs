//! GlusterFS model.
//!
//! Mechanisms:
//! * **jump consistent hashing** distributes whole files — high load CoV at
//!   low concurrency (Fig 1 note, Fig 7b, paper reference \[17\]);
//! * decentralized data path with moderate layering — peaks near **84% of
//!   hardware** (Fig 1);
//! * creates serialize on the **common directory file** ("both must add
//!   file entries to a single common directory file which effectively
//!   serializes file creates", §IV-G; Fig 8b: ~7x below NVMe-CR at 448);
//! * recovery reads funnel lookups through the metadata service, which
//!   degrades under the 448-process influx (Fig 9d dip, §IV-H) — modelled
//!   as quadratically growing per-lookup service time past a contention
//!   knee;
//! * near-zero per-server metadata: "it uses consistent hashing which
//!   requires little metadata" (Table I: 3.5 MB per node).

use fabric::IoPath;
use simkit::SimTime;

use crate::dagutil;
use crate::model::{MetadataOverhead, StorageModel};
use crate::scenario::Scenario;
use crate::spec::{DataPlaneSpec, PlacementPolicy};

/// The GlusterFS comparator.
pub struct GlusterFsModel {
    spec: DataPlaneSpec,
}

impl Default for GlusterFsModel {
    fn default() -> Self {
        Self::new()
    }
}

impl GlusterFsModel {
    /// Calibrated to the paper's measurements (see module docs).
    pub fn new() -> Self {
        GlusterFsModel {
            spec: DataPlaneSpec {
                layer_efficiency: 0.97,
                request_size: 32 << 10,
                path: IoPath::Kernel,
                placement: PlacementPolicy::JumpHash,
                // Common-directory-file serialization (Fig 8b).
                create_serialized: Some(SimTime::micros(12.0)),
                create_client: SimTime::micros(120.0),
                write_meta_bytes: 512,
                // Lookup service; contention past ~224 concurrent clients
                // produces the 448-process recovery dip of Fig 9d.
                meta_server_op: Some(SimTime::micros(18.0)),
                meta_contention_knee: 224,
                meta_chunks_on_write: false,
                meta_chunks_on_read: true,
                meta_on_create: false,
                ..DataPlaneSpec::base("GlusterFS")
            },
        }
    }

    /// The underlying mechanism spec.
    pub fn spec(&self) -> &DataPlaneSpec {
        &self.spec
    }
}

impl StorageModel for GlusterFsModel {
    fn name(&self) -> &'static str {
        "GlusterFS"
    }

    fn checkpoint_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::checkpoint_makespan(s, &self.spec)
    }

    fn recovery_makespan(&self, s: &Scenario) -> SimTime {
        dagutil::recovery_makespan(s, &self.spec)
    }

    fn create_rate(&self, s: &Scenario, creates_per_proc: u32) -> f64 {
        dagutil::create_rate(s, &self.spec, creates_per_proc)
    }

    fn server_loads(&self, s: &Scenario) -> Vec<f64> {
        dagutil::server_loads(s, &self.spec)
    }

    fn metadata_overhead(&self, s: &Scenario) -> MetadataOverhead {
        // Elastic hashing keeps almost nothing per file: extended
        // attributes plus a small fixed layout volume (Table I: 3.5 MB).
        MetadataOverhead {
            per_server_bytes: (3 << 20) + u64::from(s.procs) * 512 / u64::from(s.servers),
            per_runtime_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_efficiency_near_84_percent() {
        let m = GlusterFsModel::new();
        let eff = m.checkpoint_efficiency(&Scenario::weak_scaling(224));
        assert!(
            (0.70..0.90).contains(&eff),
            "GlusterFS peak efficiency {eff}"
        );
    }

    #[test]
    fn low_concurrency_suffers_from_hash_imbalance() {
        let m = GlusterFsModel::new();
        let small = m.checkpoint_efficiency(&Scenario::weak_scaling(28));
        let big = m.checkpoint_efficiency(&Scenario::weak_scaling(224));
        assert!(
            small < big * 0.93,
            "imbalance must hurt at 28 procs: {small} vs {big}"
        );
        assert!(m.load_cov(&Scenario::weak_scaling(28)) > 0.15);
        assert!(m.load_cov(&Scenario::weak_scaling(448)) < m.load_cov(&Scenario::weak_scaling(28)));
    }

    #[test]
    fn recovery_dips_at_448() {
        let m = GlusterFsModel::new();
        let mid = m.recovery_efficiency(&Scenario::weak_scaling(224));
        let big = m.recovery_efficiency(&Scenario::weak_scaling(448));
        assert!(
            big < mid * 0.92,
            "metadata influx must dent recovery at 448: {mid} -> {big}"
        );
    }

    #[test]
    fn metadata_overhead_is_tiny() {
        let m = GlusterFsModel::new();
        let o = m.metadata_overhead(&Scenario::weak_scaling(448));
        let mb = o.per_server_bytes as f64 / 1e6;
        assert!((2.0..6.0).contains(&mb), "per-server metadata {mb} MB");
    }
}
