//! Experiment scenarios: the workload and hardware parameters every model
//! consumes.

use fabric::{KernelCosts, NetConfig};
use simkit::Rate;
use ssd::SsdConfig;

/// One checkpoint/recovery experiment configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Application processes.
    pub procs: u32,
    /// Checkpoint bytes written by each process (N-N pattern: one file per
    /// process per checkpoint).
    pub bytes_per_proc: u64,
    /// Storage SSDs/servers available.
    pub servers: u32,
    /// Application `write()` granularity (CoMD dumps through buffered IO;
    /// we model 1 MiB flushes).
    pub app_write_size: u64,
    /// Queue depth per process for pipelined device IO.
    pub qd: u32,
    /// Device calibration.
    pub ssd: SsdConfig,
    /// Network calibration.
    pub net: NetConfig,
    /// Software-stack calibration.
    pub kernel: KernelCosts,
    /// Seed for name hashing / randomized placement.
    pub seed: u64,
}

impl Scenario {
    /// Base scenario on the paper's testbed: 8 storage servers, EDR IB.
    pub fn new(procs: u32, bytes_per_proc: u64) -> Self {
        Scenario {
            procs,
            bytes_per_proc,
            servers: 8,
            app_write_size: 1 << 20,
            qd: 32,
            ssd: SsdConfig::default(),
            net: NetConfig::default(),
            kernel: KernelCosts::default(),
            seed: 0x5eed,
        }
    }

    /// Weak scaling (§IV-H): fixed 156.25 MiB per process per checkpoint
    /// (so 448 procs × 10 checkpoints ≈ 700 GB total, matching the paper).
    pub fn weak_scaling(procs: u32) -> Self {
        Scenario::new(procs, 156 << 20)
    }

    /// Strong scaling (§IV-H): fixed ~8.6 GB per checkpoint split across
    /// all processes (86 GB over 10 checkpoints).
    pub fn strong_scaling(procs: u32) -> Self {
        let total_per_ckpt: u64 = 8_600_000_000;
        Scenario::new(procs, total_per_ckpt / u64::from(procs))
    }

    /// Single-node full subscription (§IV-D / §IV-B): 28 processes, one
    /// local SSD.
    pub fn single_node(bytes_per_proc: u64) -> Self {
        Scenario {
            servers: 1,
            ..Scenario::new(28, bytes_per_proc)
        }
    }

    /// Total bytes moved by one checkpoint.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.procs) * self.bytes_per_proc
    }

    /// Peak aggregate hardware write bandwidth (the Figure 9 efficiency
    /// denominator: "we use the aggregate SSD bandwidth as the hardware
    /// peak").
    pub fn hw_peak_write(&self) -> Rate {
        self.ssd.write_bw().scale(f64::from(self.servers))
    }

    /// Peak aggregate hardware read bandwidth.
    pub fn hw_peak_read(&self) -> Rate {
        self.ssd.read_bw().scale(f64::from(self.servers))
    }

    /// The N-N checkpoint file name of one rank.
    pub fn file_name(&self, rank: u32) -> String {
        format!("/ckpt/rank_{rank:05}.dat")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_totals_match_paper() {
        let s = Scenario::weak_scaling(448);
        let ten_ckpts = s.total_bytes() * 10;
        // ~700 GB.
        assert!((650e9..750e9).contains(&(ten_ckpts as f64)), "{ten_ckpts}");
    }

    #[test]
    fn strong_scaling_totals_match_paper() {
        for procs in [56u32, 112, 224, 448] {
            let s = Scenario::strong_scaling(procs);
            let ten = s.total_bytes() * 10;
            assert!((84e9..88e9).contains(&(ten as f64)), "procs {procs}: {ten}");
        }
    }

    #[test]
    fn hw_peak_scales_with_servers() {
        let s = Scenario::weak_scaling(448);
        let single = Scenario::single_node(512 << 20);
        assert!(
            (s.hw_peak_write().as_bytes_per_sec() / single.hw_peak_write().as_bytes_per_sec()
                - 8.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn file_names_are_unique() {
        let s = Scenario::weak_scaling(448);
        assert_ne!(s.file_name(0), s.file_name(1));
    }
}
