//! DAG construction shared by all storage models.
//!
//! Turns a [`Scenario`] + [`DataPlaneSpec`] into `simkit` DAGs for the
//! three measurement kinds the evaluation uses: bulk checkpoint writes,
//! bulk recovery reads, and file-create storms.

use fabric::FabricFacility;
use simkit::{Dag, Rate, SimTime, Stage};
use ssd::{IoKind, SsdConfig, SsdFacility};

use crate::jumphash::{jump_consistent_hash, str_key};
use crate::scenario::Scenario;
use crate::spec::{DataPlaneSpec, PlacementPolicy};

/// Per-process bytes landing on each server under the spec's placement.
pub fn distribute(s: &Scenario, spec: &DataPlaneSpec) -> Vec<Vec<u64>> {
    let n = s.servers as usize;
    let mut out = vec![vec![0u64; n]; s.procs as usize];
    for p in 0..s.procs {
        let row = &mut out[p as usize];
        match spec.placement {
            PlacementPolicy::RoundRobin => row[(p as usize) % n] += s.bytes_per_proc,
            PlacementPolicy::SingleServer => row[0] += s.bytes_per_proc,
            PlacementPolicy::JumpHash => {
                let key = str_key(&s.file_name(p)).wrapping_add(s.seed);
                row[jump_consistent_hash(key, s.servers) as usize] += s.bytes_per_proc;
            }
            PlacementPolicy::Striped { stripe } => {
                let stripes = s.bytes_per_proc.div_ceil(stripe);
                let base = stripes / u64::from(s.servers);
                let rem = (stripes % u64::from(s.servers)) as usize;
                let start = jump_consistent_hash(str_key(&s.file_name(p)), s.servers) as usize;
                for (i, slot) in row.iter_mut().enumerate() {
                    let extra = ((i + n - start) % n < rem) as u64;
                    *slot += (base + extra) * stripe;
                }
            }
        }
    }
    out
}

/// Aggregate bytes per server (the Figure 7b load distribution).
pub fn server_loads(s: &Scenario, spec: &DataPlaneSpec) -> Vec<f64> {
    let per_proc = distribute(s, spec);
    let mut loads = vec![0f64; s.servers as usize];
    for row in per_proc {
        for (srv, b) in row.into_iter().enumerate() {
            loads[srv] += b as f64;
        }
    }
    loads
}

fn scaled_ssd(s: &Scenario, spec: &DataPlaneSpec) -> SsdConfig {
    SsdConfig {
        channel_write_bw: s.ssd.channel_write_bw.scale(spec.layer_efficiency),
        channel_read_bw: s.ssd.channel_read_bw.scale(spec.layer_efficiency),
        ..s.ssd.clone()
    }
}

struct Facilities {
    ssds: Vec<SsdFacility>,
    links: Vec<simkit::PipeId>,
    global_ns: Option<simkit::ResId>,
    meta: Option<simkit::ResId>,
    fabric: FabricFacility,
}

fn install(dag: &mut Dag, s: &Scenario, spec: &DataPlaneSpec) -> Facilities {
    let cfg = scaled_ssd(s, spec);
    let fabric = FabricFacility::new(s.net.clone());
    let mut ssds = Vec::with_capacity(s.servers as usize);
    let mut links = Vec::with_capacity(s.servers as usize);
    for _ in 0..s.servers {
        ssds.push(SsdFacility::install(dag, &cfg));
        links.push(fabric.install_link(dag));
    }
    Facilities {
        ssds,
        links,
        global_ns: spec.create_serialized.map(|_| dag.resource()),
        meta: spec.meta_op_at(s.procs).map(|_| dag.resource()),
        fabric,
    }
}

/// One checkpoint's makespan: every process creates its file (global
/// namespace and/or metadata server costs apply), then streams its bytes
/// to its server(s).
pub fn checkpoint_makespan(s: &Scenario, spec: &DataPlaneSpec) -> SimTime {
    transfer_makespan(s, spec, IoKind::Write, true)
}

/// One recovery's makespan: every process opens and reads its file back.
pub fn recovery_makespan(s: &Scenario, spec: &DataPlaneSpec) -> SimTime {
    transfer_makespan(s, spec, IoKind::Read, false)
}

/// Chunk granularity for pipelining fabric and device phases. Real
/// transfers overlap the network and the SSD; modelling a file as one
/// monolithic transfer would serialize the two phases (store-and-forward),
/// so each (process, server) stream is split into up to this many chunks
/// wired as a two-stage pipeline.
const PIPELINE_CHUNKS: u64 = 16;

fn transfer_makespan(s: &Scenario, spec: &DataPlaneSpec, kind: IoKind, creating: bool) -> SimTime {
    let mut dag = Dag::new();
    let f = install(&mut dag, s, spec);
    let per_proc = distribute(s, spec);
    let per_io = spec.path.per_io(&s.kernel).total();
    let meta_op = f.meta.and_then(|_| spec.meta_op_at(s.procs));
    let meta_gates =
        (creating && spec.meta_chunks_on_write) || (!creating && spec.meta_chunks_on_read);
    for row in per_proc.iter() {
        // Metadata prologue: create (or open) the process's file.
        let mut meta_stages: Vec<Stage> = Vec::new();
        if creating {
            if let (Some(res), Some(hold)) = (f.global_ns, spec.create_serialized) {
                meta_stages.push(Stage::Seize { res, hold });
            }
        }
        if !creating || spec.meta_on_create {
            if let (Some(res), Some(hold)) = (f.meta, meta_op) {
                meta_stages.push(Stage::Seize { res, hold });
            }
        }
        if !creating && spec.recovery_prologue > SimTime::ZERO {
            meta_stages.push(Stage::Delay(spec.recovery_prologue));
        }
        meta_stages.push(Stage::Delay(spec.create_client));
        // Host CPU: per-app-write path cost + per-block allocator cost.
        let total_bytes: u64 = row.iter().sum();
        let n_app_writes = total_bytes.div_ceil(s.app_write_size);
        let n_blocks = total_bytes.div_ceil(spec.request_size);
        let host = per_io * n_app_writes as f64 + spec.alloc_per_block * n_blocks as f64;
        meta_stages.push(Stage::Delay(host));
        let prologue = dag.token(&[], meta_stages);
        // Data streams to each server holding part of the file, each a
        // fabric→device two-stage chunk pipeline.
        for (srv, &bytes) in row.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let meta_bytes = if creating {
                spec.write_meta_bytes * bytes.div_ceil(s.app_write_size)
            } else {
                0
            };
            let payload = (bytes + meta_bytes) * u64::from(spec.replication);
            let n_chunks = PIPELINE_CHUNKS
                .min(payload.div_ceil(s.app_write_size))
                .max(1);
            let chunk = payload / n_chunks;
            let last_chunk = payload - chunk * (n_chunks - 1);
            let mut prev_fabric = prologue;
            let mut prev_ssd: Option<simkit::TokenId> = None;
            for c in 0..n_chunks {
                let bytes_c = if c == n_chunks - 1 { last_chunk } else { chunk };
                let fab = dag.token(
                    &[prev_fabric],
                    f.fabric
                        .bulk_stages(f.links[srv], bytes_c, s.app_write_size, 4),
                );
                prev_fabric = fab;
                let mut stages = Vec::new();
                if meta_gates {
                    if let (Some(res), Some(hold)) = (f.meta, meta_op) {
                        stages.push(Stage::Seize {
                            res,
                            hold: hold * bytes_c.div_ceil(s.app_write_size) as f64,
                        });
                    }
                }
                stages.extend(f.ssds[srv].bulk_stages(kind, bytes_c, spec.request_size, s.qd));
                let deps: Vec<simkit::TokenId> = std::iter::once(fab).chain(prev_ssd).collect();
                prev_ssd = Some(dag.token(&deps, stages));
            }
        }
    }
    dag.run().expect("transfer DAG cannot deadlock").makespan()
}

/// Create-storm throughput (Figure 8b): every process creates
/// `creates_per_proc` empty files back-to-back; returns aggregate
/// creates per second.
pub fn create_rate(s: &Scenario, spec: &DataPlaneSpec, creates_per_proc: u32) -> f64 {
    assert!(creates_per_proc > 0);
    let mut dag = Dag::new();
    let f = install(&mut dag, s, spec);
    let per_io = spec.path.per_io(&s.kernel).total();
    let meta_op = f.meta.and_then(|_| spec.meta_op_at(s.procs));
    for p in 0..s.procs {
        let srv = match spec.placement {
            PlacementPolicy::SingleServer => 0usize,
            PlacementPolicy::JumpHash => {
                jump_consistent_hash(str_key(&s.file_name(p)), s.servers) as usize
            }
            _ => (p as usize) % s.servers as usize,
        };
        let mut prev: Option<simkit::TokenId> = None;
        for _ in 0..creates_per_proc {
            let mut stages: Vec<Stage> = Vec::new();
            if let (Some(res), Some(hold)) = (f.global_ns, spec.create_serialized) {
                stages.push(Stage::Seize { res, hold });
            }
            if spec.meta_on_create {
                if let (Some(res), Some(hold)) = (f.meta, meta_op) {
                    stages.push(Stage::Seize { res, hold });
                }
            }
            stages.push(Stage::Delay(spec.create_client + per_io));
            // The durable metadata append: a small device write (dirent +
            // log record for NVMe-CR; journal for the others).
            stages.extend(
                f.fabric
                    .message_stages(f.links[srv], spec.create_device_bytes, 4),
            );
            stages.extend(f.ssds[srv].request_stages(IoKind::Write, spec.create_device_bytes));
            let deps: Vec<simkit::TokenId> = prev.into_iter().collect();
            prev = Some(dag.token(&deps, stages));
        }
    }
    let makespan = dag.run().expect("create DAG cannot deadlock").makespan();
    f64::from(s.procs) * f64::from(creates_per_proc) / makespan.as_secs()
}

/// Convenience: efficiency of a checkpoint under this spec.
pub fn checkpoint_efficiency(s: &Scenario, spec: &DataPlaneSpec) -> f64 {
    let t = checkpoint_makespan(s, spec);
    nvmecr_efficiency(s.total_bytes(), t, s.hw_peak_write())
}

/// Convenience: efficiency of a recovery under this spec.
pub fn recovery_efficiency(s: &Scenario, spec: &DataPlaneSpec) -> f64 {
    let t = recovery_makespan(s, spec);
    nvmecr_efficiency(s.total_bytes(), t, s.hw_peak_read())
}

fn nvmecr_efficiency(bytes: u64, t: SimTime, peak: Rate) -> f64 {
    if t == SimTime::ZERO {
        return 1.0;
    }
    (bytes as f64 / t.as_secs() / peak.as_bytes_per_sec()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats::coefficient_of_variation;

    #[test]
    fn round_robin_distribution_is_exact() {
        let s = Scenario::weak_scaling(64);
        let spec = DataPlaneSpec::base("rr");
        let loads = server_loads(&s, &spec);
        assert_eq!(coefficient_of_variation(&loads), 0.0);
    }

    #[test]
    fn jump_hash_is_imbalanced_at_low_concurrency() {
        let s = Scenario::weak_scaling(28);
        let spec = DataPlaneSpec {
            placement: PlacementPolicy::JumpHash,
            ..DataPlaneSpec::base("jh")
        };
        let cov = coefficient_of_variation(&server_loads(&s, &spec));
        assert!(
            cov > 0.15,
            "jump hash at 28 files should be imbalanced, cov={cov}"
        );
    }

    #[test]
    fn striping_is_nearly_balanced() {
        let s = Scenario::weak_scaling(28);
        let spec = DataPlaneSpec {
            placement: PlacementPolicy::Striped { stripe: 64 << 10 },
            ..DataPlaneSpec::base("st")
        };
        let cov = coefficient_of_variation(&server_loads(&s, &spec));
        assert!(cov < 0.01, "striping should balance, cov={cov}");
    }

    #[test]
    fn neutral_spec_approaches_hardware_peak() {
        let s = Scenario::weak_scaling(112);
        let spec = DataPlaneSpec::base("ideal");
        let eff = checkpoint_efficiency(&s, &spec);
        assert!(eff > 0.85, "neutral spec efficiency {eff}");
    }

    #[test]
    fn layer_efficiency_caps_throughput() {
        let s = Scenario::weak_scaling(112);
        let spec = DataPlaneSpec {
            layer_efficiency: 0.5,
            ..DataPlaneSpec::base("capped")
        };
        let eff = checkpoint_efficiency(&s, &spec);
        assert!(eff < 0.55 && eff > 0.35, "eff {eff}");
    }

    #[test]
    fn serialized_creates_hurt_at_scale() {
        let base = DataPlaneSpec::base("x");
        let locked = DataPlaneSpec {
            create_serialized: Some(SimTime::millis(10.0)),
            ..DataPlaneSpec::base("locked")
        };
        let small = Scenario::strong_scaling(56);
        let big = Scenario::strong_scaling(448);
        let penalty_small = checkpoint_makespan(&small, &locked).as_secs()
            / checkpoint_makespan(&small, &base).as_secs();
        let penalty_big = checkpoint_makespan(&big, &locked).as_secs()
            / checkpoint_makespan(&big, &base).as_secs();
        assert!(
            penalty_big > penalty_small * 1.5,
            "serialization must bite harder at 448 procs: {penalty_small} vs {penalty_big}"
        );
    }

    #[test]
    fn create_rate_scales_without_serialization_but_not_with() {
        let free = DataPlaneSpec::base("free");
        let locked = DataPlaneSpec {
            create_serialized: Some(SimTime::micros(50.0)),
            ..DataPlaneSpec::base("locked")
        };
        let r_free_small = create_rate(&Scenario::weak_scaling(28), &free, 10);
        let r_free_big = create_rate(&Scenario::weak_scaling(448), &free, 10);
        let r_locked_small = create_rate(&Scenario::weak_scaling(28), &locked, 10);
        let r_locked_big = create_rate(&Scenario::weak_scaling(448), &locked, 10);
        assert!(
            r_free_big > r_free_small * 4.0,
            "{r_free_small} -> {r_free_big}"
        );
        // Serialized: flat (within 30%).
        assert!(
            (r_locked_big / r_locked_small) < 1.5,
            "{r_locked_small} -> {r_locked_big}"
        );
    }

    #[test]
    fn recovery_reads_use_read_bandwidth() {
        let s = Scenario::weak_scaling(112);
        let spec = DataPlaneSpec::base("r");
        let eff = recovery_efficiency(&s, &spec);
        assert!(eff > 0.85, "recovery efficiency {eff}");
    }

    #[test]
    fn replication_doubles_the_device_work() {
        let s = Scenario::weak_scaling(112);
        let spec1 = DataPlaneSpec::base("r1");
        let spec2 = DataPlaneSpec {
            replication: 2,
            ..DataPlaneSpec::base("r2")
        };
        let t1 = checkpoint_makespan(&s, &spec1);
        let t2 = checkpoint_makespan(&s, &spec2);
        let ratio = t2.as_secs() / t1.as_secs();
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }
}

#[cfg(test)]
mod calibration_dump {
    use super::*;
    use crate::model::StorageModel;

    #[test]
    #[ignore]
    fn dump() {
        let neutral = DataPlaneSpec::base("neutral");
        for procs in [28u32, 112, 224, 448] {
            let s = Scenario::weak_scaling(procs);
            let t = checkpoint_makespan(&s, &neutral);
            let e = checkpoint_efficiency(&s, &neutral);
            let er = recovery_efficiency(&s, &neutral);
            println!("neutral procs={procs} t={t} eff={e:.3} rec_eff={er:.3}");
        }
        let sn = Scenario::single_node(512 << 20);
        for (name, m) in [
            (
                "spdk",
                Box::new(crate::SpdkRawModel::new()) as Box<dyn StorageModel>,
            ),
            ("ext4", Box::new(crate::Ext4Model::new())),
            ("xfs", Box::new(crate::XfsModel::new())),
            ("crail", Box::new(crate::CrailModel::new())),
        ] {
            println!("{name} single-node t={}", m.checkpoint_makespan(&sn));
        }
        for (name, m) in [
            (
                "orangefs",
                Box::new(crate::OrangeFsModel::new()) as Box<dyn StorageModel>,
            ),
            ("glusterfs", Box::new(crate::GlusterFsModel::new())),
        ] {
            for procs in [28u32, 112, 224, 448] {
                let s = Scenario::weak_scaling(procs);
                println!(
                    "{name} procs={procs} ckpt_eff={:.3} rec_eff={:.3} cov={:.3}",
                    m.checkpoint_efficiency(&s),
                    m.recovery_efficiency(&s),
                    m.load_cov(&s)
                );
            }
        }
    }
}
