//! Deterministic data-path fault injection.
//!
//! The chaos subsystem lets tests and benchmarks inject faults at the *real*
//! byte path — NVMf capsules on the wire, SSD shard I/O, capacitor-backed
//! drains, WAL appends — instead of simulating failures out-of-band. The
//! design mirrors the telemetry layer:
//!
//! - A [`ChaosHandle`] is threaded through configs (fabric, ssd, microfs,
//!   core). Cloning is cheap (one `Arc`).
//! - When no plan is armed, [`ChaosHandle::decide`] is a single relaxed
//!   atomic load returning `None` — the production path pays essentially
//!   nothing.
//! - When a [`FaultPlan`] is armed, every decision is a pure function of
//!   `(plan seed, fault site, per-site operation index)`, so a run with the
//!   same seed and same operation order injects exactly the same faults.
//!   There is no global RNG state to race on.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use telemetry::{Counter, FlightKind, FlightRecorder, Telemetry};

/// A location in the data path where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Command capsule leaving the initiator (before `post_send`).
    CapsuleTx,
    /// Response capsule arriving at the initiator (after `poll_cq`).
    CapsuleRx,
    /// Connection-level failure observed by the initiator for one command.
    ConnReset,
    /// SSD shard servicing a read/write.
    ShardIo,
    /// Capacitor-backed flush during a simulated power failure.
    CapacitorFlush,
    /// microfs WAL appending a freshly encoded record.
    WalAppend,
    /// Latent media corruption surfacing on an SSD shard read (bit rot on a
    /// checkpoint copy; exercises the scrub/read-repair path).
    ReplicaBitRot,
}

impl FaultSite {
    /// Stable per-site stream id mixed into the decision hash so two sites
    /// with the same op index never share a decision.
    fn stream(self) -> u64 {
        match self {
            FaultSite::CapsuleTx => 0x01,
            FaultSite::CapsuleRx => 0x02,
            FaultSite::ConnReset => 0x03,
            FaultSite::ShardIo => 0x04,
            FaultSite::CapacitorFlush => 0x05,
            FaultSite::WalAppend => 0x06,
            FaultSite::ReplicaBitRot => 0x07,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CapsuleTx => "capsule_tx",
            FaultSite::CapsuleRx => "capsule_rx",
            FaultSite::ConnReset => "conn_reset",
            FaultSite::ShardIo => "shard_io",
            FaultSite::CapacitorFlush => "capacitor_flush",
            FaultSite::WalAppend => "wal_append",
            FaultSite::ReplicaBitRot => "replica_bit_rot",
        }
    }

    /// Stable wire code carried in flight-recorder events, so a dump can
    /// name the injected site without re-running the plan.
    pub fn code(self) -> u64 {
        self.stream()
    }

    /// Decode a wire code back into a site.
    pub fn from_code(code: u64) -> Option<FaultSite> {
        Some(match code {
            0x01 => FaultSite::CapsuleTx,
            0x02 => FaultSite::CapsuleRx,
            0x03 => FaultSite::ConnReset,
            0x04 => FaultSite::ShardIo,
            0x05 => FaultSite::CapacitorFlush,
            0x06 => FaultSite::WalAppend,
            0x07 => FaultSite::ReplicaBitRot,
            _ => return None,
        })
    }
}

/// What to do when a fault fires at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Drop the capsule: it never reaches the peer (command or response lost).
    DropCapsule,
    /// Deliver the capsule twice (exercises idempotent replay on the target).
    DuplicateCapsule,
    /// Flip bits in the encoded payload (exercises wire CRC).
    CorruptPayload,
    /// Tear the connection down mid-command (exercises reconnect).
    ResetConnection,
    /// Shard returns a transient busy error (exercises retry/backoff).
    ShardBusy,
    /// Shard dies permanently (exercises failover to the partner domain).
    KillShard,
    /// Power cut mid-drain: the capacitor flushes only `drain_writes` staged
    /// writes before the lights go out; the rest are lost.
    PowerCut { drain_writes: u32 },
    /// Torn WAL append: only the first `keep_bytes` of the record hit the
    /// device before the failure (exercises CRC-framed scan truncation).
    TornWrite { keep_bytes: u32 },
}

/// A durability-relevant operation counted by the crash-universe mode.
///
/// Unlike [`FaultSite`] (which keys *independent per-site* decision
/// streams), crash ops share **one global, cross-site counter** so that
/// "crash at op *k*" names a unique point in the execution, whatever mix
/// of WAL appends, block writes and manifest commits precedes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrashOp {
    /// microfs WAL appending a freshly encoded record.
    WalAppend,
    /// One block-device write element reaching the NVMf data plane.
    BlockWrite,
    /// One mirrored write element (primary + replica copies).
    MirrorWrite,
    /// Epoch manifest body landing in the manifest region.
    ManifestBody,
    /// Epoch commit record landing in the manifest region (the point of
    /// no return for an epoch).
    CommitRecord,
    /// Discard/trim of freed blocks on the mirror.
    Discard,
}

/// Number of distinct [`CrashOp`] kinds (array index space).
pub const CRASH_OP_KINDS: usize = 6;

impl CrashOp {
    /// All kinds, in stable code order.
    pub const ALL: [CrashOp; CRASH_OP_KINDS] = [
        CrashOp::WalAppend,
        CrashOp::BlockWrite,
        CrashOp::MirrorWrite,
        CrashOp::ManifestBody,
        CrashOp::CommitRecord,
        CrashOp::Discard,
    ];

    /// Stable wire code carried in flight-recorder events (1-based).
    pub fn code(self) -> u64 {
        match self {
            CrashOp::WalAppend => 1,
            CrashOp::BlockWrite => 2,
            CrashOp::MirrorWrite => 3,
            CrashOp::ManifestBody => 4,
            CrashOp::CommitRecord => 5,
            CrashOp::Discard => 6,
        }
    }

    /// Decode a wire code back into an op kind.
    pub fn from_code(code: u64) -> Option<CrashOp> {
        Some(match code {
            1 => CrashOp::WalAppend,
            2 => CrashOp::BlockWrite,
            3 => CrashOp::MirrorWrite,
            4 => CrashOp::ManifestBody,
            5 => CrashOp::CommitRecord,
            6 => CrashOp::Discard,
            _ => return None,
        })
    }

    /// Snake-case name used in dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            CrashOp::WalAppend => "wal_append",
            CrashOp::BlockWrite => "block_write",
            CrashOp::MirrorWrite => "mirror_write",
            CrashOp::ManifestBody => "manifest_body",
            CrashOp::CommitRecord => "commit_record",
            CrashOp::Discard => "discard",
        }
    }

    fn index(self) -> usize {
        (self.code() - 1) as usize
    }
}

/// A recovery-path operation counted by the **nested** crash plane.
///
/// Where [`CrashOp`] enumerates the durability ops of the *running*
/// workload, `RecoveryOp` enumerates the replay/rescan ops of *recovery
/// itself*: after an outer `crash_at_op(k)` kills the stack and recovery
/// begins, `crash_in_recovery(j)` kills the j-th of these — proving the
/// recovery paths are themselves restartable. Like crash ops, recovery
/// ops share one global cross-site counter so "crash recovery at op j"
/// names a unique point whatever mix of scans and replays precedes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecoveryOp {
    /// microfs mount: superblock decode + latest-snapshot load.
    SnapshotLoad,
    /// microfs mount: WAL region scan (CRC-framed record walk).
    LogScan,
    /// microfs replay: one WAL record applied to the in-memory tree.
    ReplayApply,
    /// nvmecr recovery: manifest-slot scan of the replica tail region.
    ManifestScan,
    /// `Mirror::rescan`: one chunk of the primary re-read for CRC audit.
    RescanChunk,
    /// `materialize_chain`: one delta-epoch chain step resolved.
    ChainMaterialize,
    /// Replica restore: one CRC-verified extent copied back.
    RestoreExtent,
}

/// Number of distinct [`RecoveryOp`] kinds (array index space).
pub const RECOVERY_OP_KINDS: usize = 7;

impl RecoveryOp {
    /// All kinds, in stable code order.
    pub const ALL: [RecoveryOp; RECOVERY_OP_KINDS] = [
        RecoveryOp::SnapshotLoad,
        RecoveryOp::LogScan,
        RecoveryOp::ReplayApply,
        RecoveryOp::ManifestScan,
        RecoveryOp::RescanChunk,
        RecoveryOp::ChainMaterialize,
        RecoveryOp::RestoreExtent,
    ];

    /// Stable wire code carried in flight-recorder events (1-based).
    pub fn code(self) -> u64 {
        match self {
            RecoveryOp::SnapshotLoad => 1,
            RecoveryOp::LogScan => 2,
            RecoveryOp::ReplayApply => 3,
            RecoveryOp::ManifestScan => 4,
            RecoveryOp::RescanChunk => 5,
            RecoveryOp::ChainMaterialize => 6,
            RecoveryOp::RestoreExtent => 7,
        }
    }

    /// Decode a wire code back into an op kind.
    pub fn from_code(code: u64) -> Option<RecoveryOp> {
        Some(match code {
            1 => RecoveryOp::SnapshotLoad,
            2 => RecoveryOp::LogScan,
            3 => RecoveryOp::ReplayApply,
            4 => RecoveryOp::ManifestScan,
            5 => RecoveryOp::RescanChunk,
            6 => RecoveryOp::ChainMaterialize,
            7 => RecoveryOp::RestoreExtent,
            _ => return None,
        })
    }

    /// Snake-case name used in dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryOp::SnapshotLoad => "snapshot_load",
            RecoveryOp::LogScan => "log_scan",
            RecoveryOp::ReplayApply => "replay_apply",
            RecoveryOp::ManifestScan => "manifest_scan",
            RecoveryOp::RescanChunk => "rescan_chunk",
            RecoveryOp::ChainMaterialize => "chain_materialize",
            RecoveryOp::RestoreExtent => "restore_extent",
        }
    }

    fn index(self) -> usize {
        (self.code() - 1) as usize
    }
}

/// One injection rule: a site, an action, and when it fires.
///
/// `rate` fires probabilistically (deterministically hashed per op index);
/// `at_ops` fires at exact per-site operation indices. Both may be set.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub site: FaultSite,
    pub action: FaultAction,
    pub rate: f64,
    pub at_ops: Vec<u64>,
}

/// A seeded, declarative schedule of faults.
///
/// Two plans with the same seed and specs make identical decisions for the
/// same sequence of per-site operations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Fire `action` at `site` with probability `rate` per operation.
    pub fn with_rate(mut self, site: FaultSite, action: FaultAction, rate: f64) -> Self {
        self.specs.push(FaultSpec {
            site,
            action,
            rate,
            at_ops: Vec::new(),
        });
        self
    }

    /// Fire `action` exactly at per-site operation index `op`.
    pub fn at_op(mut self, site: FaultSite, action: FaultAction, op: u64) -> Self {
        self.specs.push(FaultSpec {
            site,
            action,
            rate: 0.0,
            at_ops: vec![op],
        });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// SplitMix64: tiny, high-quality 64-bit mixer. Used as a stateless hash so
/// decisions are pure functions of (seed, site, op) — no shared RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a decision hash to [0, 1).
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

struct ArmedState {
    plan: Option<FaultPlan>,
    /// Per-site operation counters; reset on every `arm`.
    counters: HashMap<FaultSite, u64>,
    injected: Option<Arc<Counter>>,
    /// Flight recorder of the armed telemetry registry: every injected
    /// fault records a `fault_injected` event and trips the recorder.
    recorder: Option<Arc<FlightRecorder>>,
}

/// How the crash-universe counter treats each durability op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashMode {
    /// Enumerate: count every op, never fire.
    Count,
    /// Fire at exactly global op index `k`; every op at index >= `k`
    /// fails too ("dead universe" — after the crash nothing persists).
    CrashAt(u64),
}

struct CrashState {
    mode: CrashMode,
    /// Next global op index to hand out (also the running total).
    next_op: u64,
    /// Ops seen per [`CrashOp`] kind, indexed by `code() - 1`.
    per_kind: [u64; CRASH_OP_KINDS],
    /// Global op index at which the crash fired (`CrashAt` only).
    fired: Option<u64>,
    /// Flight recorder of the armed telemetry registry: the crash point
    /// records a `crash_point` event and trips the recorder.
    recorder: Option<Arc<FlightRecorder>>,
}

/// Snapshot of the crash-universe counters, taken by [`ChaosHandle::crash_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Total durability ops counted (the size of the crash universe).
    pub total: u64,
    /// Ops per [`CrashOp`] kind, indexed by `code() - 1`.
    pub per_kind: [u64; CRASH_OP_KINDS],
    /// Global op index at which the crash fired, if it did.
    pub fired: Option<u64>,
}

impl CrashReport {
    /// Ops counted for one kind.
    pub fn kind(&self, op: CrashOp) -> u64 {
        self.per_kind[op.index()]
    }
}

/// How the nested recovery plane treats each recovery op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecoveryMode {
    /// Enumerate: count every op, never fire.
    Count,
    /// Fire at exactly nested op index `j` — but only during the *first*
    /// recovery attempt. Ops at index >= `j` in attempt 1 fail too (the
    /// recovery process is dead); attempts 2+ run clean, modelling the
    /// supervisor restarting recovery after its crash.
    CrashAt(u64),
}

struct RecoveryState {
    mode: RecoveryMode,
    /// Next nested op index to hand out (also the running total).
    next_op: u64,
    /// Ops seen per [`RecoveryOp`] kind, indexed by `code() - 1`.
    per_kind: [u64; RECOVERY_OP_KINDS],
    /// Nested op index at which the crash fired (`CrashAt` only).
    fired: Option<u64>,
    /// Recovery attempt in progress (1-based; bumped by
    /// [`ChaosHandle::begin_recovery_attempt`]).
    attempt: u64,
    /// Flight recorder of the armed telemetry registry: the nested crash
    /// records a `recovery_crash_point` event and trips the recorder.
    recorder: Option<Arc<FlightRecorder>>,
}

/// Snapshot of the nested recovery-plane counters, taken by
/// [`ChaosHandle::recovery_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Total recovery ops counted (the size of the nested universe).
    pub total: u64,
    /// Ops per [`RecoveryOp`] kind, indexed by `code() - 1`.
    pub per_kind: [u64; RECOVERY_OP_KINDS],
    /// Nested op index at which the crash fired, if it did.
    pub fired: Option<u64>,
    /// Recovery attempts begun since arming.
    pub attempts: u64,
}

impl RecoveryReport {
    /// Ops counted for one kind.
    pub fn kind(&self, op: RecoveryOp) -> u64 {
        self.per_kind[op.index()]
    }
}

struct Inner {
    armed: AtomicBool,
    state: Mutex<ArmedState>,
    crash_armed: AtomicBool,
    crash: Mutex<CrashState>,
    recovery_armed: AtomicBool,
    recovery: Mutex<RecoveryState>,
}

/// Cheap, cloneable hook handle threaded through layer configs.
///
/// Disabled (the default): `decide` is one relaxed atomic load. Armed: each
/// call takes a short lock to bump the per-site op counter and evaluates the
/// plan deterministically.
#[derive(Clone)]
pub struct ChaosHandle {
    inner: Arc<Inner>,
}

impl Default for ChaosHandle {
    fn default() -> Self {
        ChaosHandle {
            inner: Arc::new(Inner {
                armed: AtomicBool::new(false),
                state: Mutex::new(ArmedState {
                    plan: None,
                    counters: HashMap::new(),
                    injected: None,
                    recorder: None,
                }),
                crash_armed: AtomicBool::new(false),
                crash: Mutex::new(CrashState {
                    mode: CrashMode::Count,
                    next_op: 0,
                    per_kind: [0; CRASH_OP_KINDS],
                    fired: None,
                    recorder: None,
                }),
                recovery_armed: AtomicBool::new(false),
                recovery: Mutex::new(RecoveryState {
                    mode: RecoveryMode::Count,
                    next_op: 0,
                    per_kind: [0; RECOVERY_OP_KINDS],
                    fired: None,
                    attempt: 1,
                    recorder: None,
                }),
            }),
        }
    }
}

impl fmt::Debug for ChaosHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosHandle")
            .field("armed", &self.inner.armed.load(Ordering::Relaxed))
            .finish()
    }
}

impl ChaosHandle {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `plan`. Per-site op counters restart from zero, so arming the same
    /// plan twice replays the same fault sequence. Injected faults are counted
    /// on `telemetry`'s `chaos.injected` counter.
    pub fn arm(&self, plan: FaultPlan, telemetry: &Telemetry) {
        let mut st = self.inner.state.lock();
        st.counters.clear();
        st.injected = Some(telemetry.counter("chaos.injected"));
        st.recorder = Some(telemetry.recorder());
        st.plan = Some(plan);
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Disarm: subsequent `decide` calls return `None` after one atomic load.
    pub fn disarm(&self) {
        self.inner.armed.store(false, Ordering::Release);
        let mut st = self.inner.state.lock();
        st.plan = None;
        st.counters.clear();
        st.injected = None;
        st.recorder = None;
    }

    pub fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed)
    }

    /// Ask whether a fault fires for the next operation at `site`.
    ///
    /// Every call while armed consumes one per-site op index, whether or not
    /// a fault fires, which is what makes runs reproducible: the decision for
    /// op `n` does not depend on how many faults fired before it.
    pub fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        if !self.inner.armed.load(Ordering::Relaxed) {
            return None;
        }
        let mut st = self.inner.state.lock();
        let n = {
            let ctr = st.counters.entry(site).or_insert(0);
            let n = *ctr;
            *ctr += 1;
            n
        };
        let plan = st.plan.as_ref()?;
        let mut hit = None;
        for (idx, spec) in plan.specs.iter().enumerate() {
            if spec.site != site {
                continue;
            }
            if spec.at_ops.contains(&n) {
                hit = Some(spec.action);
                break;
            }
            if spec.rate > 0.0 {
                // Mix the spec index in so two rate specs on one site draw
                // independent coins for the same op.
                let h = splitmix64(
                    plan.seed
                        ^ site.stream().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (idx as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
                        ^ n.wrapping_mul(0xCA5A_8268_85B6_B2D1),
                );
                if unit(h) < spec.rate {
                    hit = Some(spec.action);
                    break;
                }
            }
        }
        if hit.is_some() {
            if let Some(c) = &st.injected {
                c.inc();
            }
            if let Some(r) = &st.recorder {
                let r = Arc::clone(r);
                // Record and trip outside the plan lock: the dump path
                // reads metrics and touches the filesystem.
                drop(st);
                r.record(FlightKind::FaultInjected, 0, 0, site.code(), n);
                r.trip(FlightKind::FaultInjected, site.code());
            }
        }
        hit
    }

    /// Arm the crash-universe counter in *count* mode: every durability op
    /// consumes one global index, nothing ever fires. Used to enumerate
    /// the universe before exploring it.
    pub fn arm_crash_count(&self) {
        let mut st = self.inner.crash.lock();
        st.mode = CrashMode::Count;
        st.next_op = 0;
        st.per_kind = [0; CRASH_OP_KINDS];
        st.fired = None;
        st.recorder = None;
        self.inner.crash_armed.store(true, Ordering::Release);
    }

    /// Arm the crash-universe counter to kill the stack at exactly global
    /// durability-op index `k`: the op at index `k` records a
    /// [`FlightKind::CrashPoint`] event, trips `telemetry`'s flight
    /// recorder, and fails; every op at index >= `k` fails too (after a
    /// crash, nothing persists — the universe is dead).
    pub fn crash_at_op(&self, k: u64, telemetry: &Telemetry) {
        let mut st = self.inner.crash.lock();
        st.mode = CrashMode::CrashAt(k);
        st.next_op = 0;
        st.per_kind = [0; CRASH_OP_KINDS];
        st.fired = None;
        st.recorder = Some(telemetry.recorder());
        self.inner.crash_armed.store(true, Ordering::Release);
    }

    /// Disarm the crash-universe counter, leaving the counters readable
    /// via [`ChaosHandle::crash_report`] until the next arm.
    pub fn disarm_crash(&self) {
        self.inner.crash_armed.store(false, Ordering::Release);
        let mut st = self.inner.crash.lock();
        st.recorder = None;
    }

    /// Whether a crash-universe mode is armed.
    pub fn is_crash_armed(&self) -> bool {
        self.inner.crash_armed.load(Ordering::Relaxed)
    }

    /// Consume one global durability-op index for `op` and report whether
    /// the stack dies here.
    ///
    /// Disarmed (the default) this is a single relaxed atomic load
    /// returning `false`. Armed, every call consumes exactly one index in
    /// execution order, which is what makes a crash point reproducible
    /// from `(workload, k)` alone.
    pub fn crash_fire(&self, op: CrashOp) -> bool {
        if !self.inner.crash_armed.load(Ordering::Relaxed) {
            return false;
        }
        let mut st = self.inner.crash.lock();
        let n = st.next_op;
        st.next_op += 1;
        st.per_kind[op.index()] += 1;
        match st.mode {
            CrashMode::Count => false,
            CrashMode::CrashAt(k) => {
                if n < k {
                    false
                } else {
                    if n == k {
                        st.fired = Some(n);
                        if let Some(r) = st.recorder.take() {
                            // Record and trip outside the lock: the dump
                            // path reads metrics and touches the
                            // filesystem.
                            drop(st);
                            r.record(FlightKind::CrashPoint, 0, 0, op.code(), n);
                            r.trip(FlightKind::CrashPoint, op.code());
                        }
                    }
                    true
                }
            }
        }
    }

    /// Snapshot the crash-universe counters.
    pub fn crash_report(&self) -> CrashReport {
        let st = self.inner.crash.lock();
        CrashReport {
            total: st.next_op,
            per_kind: st.per_kind,
            fired: st.fired,
        }
    }

    /// Arm the nested recovery plane in *count* mode: every recovery op
    /// consumes one nested index, nothing ever fires. Used to enumerate
    /// the nested universe of one recovery before exploring it.
    pub fn arm_recovery_count(&self) {
        let mut st = self.inner.recovery.lock();
        st.mode = RecoveryMode::Count;
        st.next_op = 0;
        st.per_kind = [0; RECOVERY_OP_KINDS];
        st.fired = None;
        st.attempt = 1;
        st.recorder = None;
        self.inner.recovery_armed.store(true, Ordering::Release);
    }

    /// Arm the nested recovery plane to kill the **first** recovery
    /// attempt at exactly nested op index `j`: that op records a
    /// [`FlightKind::RecoveryCrashPoint`] event, trips `telemetry`'s
    /// flight recorder, and fails; every recovery op after it in the same
    /// attempt fails too (the recovering process is dead). Attempts begun
    /// after [`ChaosHandle::begin_recovery_attempt`] run clean, modelling
    /// a supervisor restarting recovery after its crash.
    pub fn crash_in_recovery(&self, j: u64, telemetry: &Telemetry) {
        let mut st = self.inner.recovery.lock();
        st.mode = RecoveryMode::CrashAt(j);
        st.next_op = 0;
        st.per_kind = [0; RECOVERY_OP_KINDS];
        st.fired = None;
        st.attempt = 1;
        st.recorder = Some(telemetry.recorder());
        self.inner.recovery_armed.store(true, Ordering::Release);
    }

    /// Mark the start of a fresh recovery attempt. The first attempt is
    /// implicit at arm time; each call bumps the attempt number, so after
    /// a nested crash the *next* attempt's ops run clean.
    pub fn begin_recovery_attempt(&self) {
        if !self.inner.recovery_armed.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.inner.recovery.lock();
        st.attempt += 1;
    }

    /// Disarm the nested recovery plane, leaving the counters readable
    /// via [`ChaosHandle::recovery_report`] until the next arm.
    pub fn disarm_recovery(&self) {
        self.inner.recovery_armed.store(false, Ordering::Release);
        let mut st = self.inner.recovery.lock();
        st.recorder = None;
    }

    /// Whether a nested recovery mode is armed.
    pub fn is_recovery_armed(&self) -> bool {
        self.inner.recovery_armed.load(Ordering::Relaxed)
    }

    /// Consume one nested recovery-op index for `op` and report whether
    /// the recovering process dies here.
    ///
    /// Disarmed (the default) this is a single relaxed atomic load
    /// returning `false`. Armed, every call consumes exactly one index in
    /// execution order; in `CrashAt(j)` mode the op at index `j` of the
    /// first attempt fires (and the rest of that attempt stays dead),
    /// while later attempts never fire.
    pub fn recovery_fire(&self, op: RecoveryOp) -> bool {
        if !self.inner.recovery_armed.load(Ordering::Relaxed) {
            return false;
        }
        let mut st = self.inner.recovery.lock();
        let n = st.next_op;
        st.next_op += 1;
        st.per_kind[op.index()] += 1;
        match st.mode {
            RecoveryMode::Count => false,
            RecoveryMode::CrashAt(j) => {
                if st.attempt > 1 || n < j {
                    false
                } else {
                    if n == j {
                        st.fired = Some(n);
                        if let Some(r) = st.recorder.take() {
                            // Record and trip outside the lock: the dump
                            // path reads metrics and touches the
                            // filesystem.
                            drop(st);
                            r.record(FlightKind::RecoveryCrashPoint, 0, 0, op.code(), n);
                            r.trip(FlightKind::RecoveryCrashPoint, op.code());
                        }
                    }
                    true
                }
            }
        }
    }

    /// Snapshot the nested recovery-plane counters.
    pub fn recovery_report(&self) -> RecoveryReport {
        let st = self.inner.recovery.lock();
        RecoveryReport {
            total: st.next_op,
            per_kind: st.per_kind,
            fired: st.fired,
            attempts: st.attempt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(h: &ChaosHandle, site: FaultSite, n: usize) -> Vec<Option<FaultAction>> {
        (0..n).map(|_| h.decide(site)).collect()
    }

    #[test]
    fn disarmed_handle_is_silent() {
        let h = ChaosHandle::new();
        assert!(!h.is_armed());
        for _ in 0..100 {
            assert_eq!(h.decide(FaultSite::CapsuleTx), None);
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let t = Telemetry::new();
        let plan = FaultPlan::new(42)
            .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.05)
            .with_rate(FaultSite::ShardIo, FaultAction::ShardBusy, 0.02);

        let h1 = ChaosHandle::new();
        h1.arm(plan.clone(), &t);
        let a = collect(&h1, FaultSite::CapsuleTx, 2000);
        let b = collect(&h1, FaultSite::ShardIo, 2000);

        let h2 = ChaosHandle::new();
        h2.arm(plan, &t);
        let a2 = collect(&h2, FaultSite::CapsuleTx, 2000);
        let b2 = collect(&h2, FaultSite::ShardIo, 2000);

        assert_eq!(a, a2);
        assert_eq!(b, b2);
        // And the rate actually fires somewhere in 2000 ops at 5%.
        assert!(a.iter().any(|d| d.is_some()));
    }

    #[test]
    fn different_seeds_diverge() {
        let t = Telemetry::new();
        let h1 = ChaosHandle::new();
        h1.arm(
            FaultPlan::new(1).with_rate(FaultSite::CapsuleRx, FaultAction::DropCapsule, 0.1),
            &t,
        );
        let h2 = ChaosHandle::new();
        h2.arm(
            FaultPlan::new(2).with_rate(FaultSite::CapsuleRx, FaultAction::DropCapsule, 0.1),
            &t,
        );
        let a = collect(&h1, FaultSite::CapsuleRx, 1000);
        let b = collect(&h2, FaultSite::CapsuleRx, 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn at_op_fires_exactly_once() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.arm(
            FaultPlan::new(7).at_op(
                FaultSite::WalAppend,
                FaultAction::TornWrite { keep_bytes: 3 },
                5,
            ),
            &t,
        );
        let hits: Vec<usize> = collect(&h, FaultSite::WalAppend, 20)
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|_| i))
            .collect();
        assert_eq!(hits, vec![5]);
        assert_eq!(
            h.decide(FaultSite::WalAppend),
            None,
            "op counter moved past the scheduled index"
        );
    }

    #[test]
    fn rearm_resets_op_counters() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        let plan = FaultPlan::new(9).at_op(FaultSite::ConnReset, FaultAction::ResetConnection, 0);
        h.arm(plan.clone(), &t);
        assert!(h.decide(FaultSite::ConnReset).is_some());
        assert!(h.decide(FaultSite::ConnReset).is_none());
        h.arm(plan, &t);
        assert!(
            h.decide(FaultSite::ConnReset).is_some(),
            "counters restart on arm"
        );
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always_fires() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.arm(
            FaultPlan::new(3).with_rate(FaultSite::ShardIo, FaultAction::KillShard, 0.0),
            &t,
        );
        assert!(collect(&h, FaultSite::ShardIo, 500)
            .iter()
            .all(|d| d.is_none()));

        h.arm(
            FaultPlan::new(3).with_rate(FaultSite::ShardIo, FaultAction::KillShard, 1.0),
            &t,
        );
        assert!(collect(&h, FaultSite::ShardIo, 500)
            .iter()
            .all(|d| d.is_some()));
    }

    #[test]
    fn injected_counter_tracks_hits() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.arm(
            FaultPlan::new(11).with_rate(FaultSite::CapsuleTx, FaultAction::DropCapsule, 1.0),
            &t,
        );
        for _ in 0..17 {
            h.decide(FaultSite::CapsuleTx);
        }
        assert_eq!(t.counter("chaos.injected").get(), 17);
    }

    #[test]
    fn site_codes_roundtrip() {
        for site in [
            FaultSite::CapsuleTx,
            FaultSite::CapsuleRx,
            FaultSite::ConnReset,
            FaultSite::ShardIo,
            FaultSite::CapacitorFlush,
            FaultSite::WalAppend,
            FaultSite::ReplicaBitRot,
        ] {
            assert_eq!(FaultSite::from_code(site.code()), Some(site));
        }
        assert_eq!(FaultSite::from_code(0), None);
        assert_eq!(FaultSite::from_code(0xFF), None);
    }

    #[test]
    fn injection_records_and_trips_the_flight_recorder() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.arm(
            FaultPlan::new(13).at_op(FaultSite::ShardIo, FaultAction::KillShard, 2),
            &t,
        );
        for _ in 0..5 {
            h.decide(FaultSite::ShardIo);
        }
        let r = t.recorder();
        assert_eq!(r.trip_count(), 1);
        let events = r.events();
        let inj = events
            .iter()
            .find(|e| e.kind == FlightKind::FaultInjected)
            .expect("fault_injected event");
        assert_eq!(inj.a, FaultSite::ShardIo.code());
        assert_eq!(inj.b, 2, "fired at per-site op index 2");
        assert!(events.iter().any(|e| e.kind == FlightKind::Trip));
    }

    #[test]
    fn sites_have_independent_streams() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.arm(
            FaultPlan::new(5)
                .with_rate(FaultSite::CapsuleTx, FaultAction::DropCapsule, 0.3)
                .with_rate(FaultSite::CapsuleRx, FaultAction::DropCapsule, 0.3),
            &t,
        );
        let a = collect(&h, FaultSite::CapsuleTx, 200);
        let b = collect(&h, FaultSite::CapsuleRx, 200);
        assert_ne!(a, b, "distinct sites must not share a decision stream");
    }

    #[test]
    fn crash_disarmed_is_silent_and_free() {
        let h = ChaosHandle::new();
        assert!(!h.is_crash_armed());
        for op in CrashOp::ALL {
            assert!(!h.crash_fire(op));
        }
        assert_eq!(h.crash_report().total, 0, "disarmed ops are not counted");
    }

    #[test]
    fn crash_count_mode_counts_and_never_fires() {
        let h = ChaosHandle::new();
        h.arm_crash_count();
        for _ in 0..3 {
            for op in CrashOp::ALL {
                assert!(!h.crash_fire(op));
            }
        }
        h.disarm_crash();
        let report = h.crash_report();
        assert_eq!(report.total, 18);
        for op in CrashOp::ALL {
            assert_eq!(report.kind(op), 3);
        }
        assert_eq!(report.fired, None);
    }

    #[test]
    fn crash_at_op_fires_once_then_universe_stays_dead() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.crash_at_op(4, &t);
        let verdicts: Vec<bool> = (0..8).map(|_| h.crash_fire(CrashOp::BlockWrite)).collect();
        assert_eq!(
            verdicts,
            vec![false, false, false, false, true, true, true, true],
            "ops before k survive, op k and everything after die"
        );
        assert_eq!(h.crash_report().fired, Some(4));

        let r = t.recorder();
        assert_eq!(r.trip_count(), 1, "only op k trips, not the dead tail");
        let events = r.events();
        let cp = events
            .iter()
            .find(|e| e.kind == FlightKind::CrashPoint)
            .expect("crash_point event");
        assert_eq!(cp.a, CrashOp::BlockWrite.code());
        assert_eq!(cp.b, 4, "fired at global op index 4");
    }

    #[test]
    fn crash_counter_is_global_across_kinds() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.crash_at_op(2, &t);
        assert!(!h.crash_fire(CrashOp::WalAppend));
        assert!(!h.crash_fire(CrashOp::BlockWrite));
        assert!(
            h.crash_fire(CrashOp::CommitRecord),
            "third op overall dies regardless of kind"
        );
        let report = h.crash_report();
        assert_eq!(report.kind(CrashOp::WalAppend), 1);
        assert_eq!(report.kind(CrashOp::BlockWrite), 1);
        assert_eq!(report.kind(CrashOp::CommitRecord), 1);
    }

    #[test]
    fn crash_rearm_resets_the_universe() {
        let h = ChaosHandle::new();
        h.arm_crash_count();
        for _ in 0..7 {
            h.crash_fire(CrashOp::WalAppend);
        }
        h.arm_crash_count();
        assert_eq!(h.crash_report().total, 0, "counters restart on arm");
    }

    #[test]
    fn crash_op_codes_roundtrip() {
        for op in CrashOp::ALL {
            assert_eq!(CrashOp::from_code(op.code()), Some(op));
            assert!(!op.name().is_empty());
        }
        assert_eq!(CrashOp::from_code(0), None);
        assert_eq!(CrashOp::from_code(7), None);
    }

    #[test]
    fn crash_mode_is_independent_of_fault_plans() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.arm_crash_count();
        h.arm(
            FaultPlan::new(21).at_op(FaultSite::ShardIo, FaultAction::ShardBusy, 0),
            &t,
        );
        assert!(h.decide(FaultSite::ShardIo).is_some());
        assert!(!h.crash_fire(CrashOp::BlockWrite));
        h.disarm();
        assert!(h.is_crash_armed(), "fault disarm leaves crash mode armed");
        assert_eq!(h.crash_report().total, 1);
    }

    #[test]
    fn recovery_disarmed_is_silent_and_free() {
        let h = ChaosHandle::new();
        assert!(!h.is_recovery_armed());
        for op in RecoveryOp::ALL {
            assert!(!h.recovery_fire(op));
        }
        assert_eq!(h.recovery_report().total, 0, "disarmed ops not counted");
    }

    #[test]
    fn recovery_count_mode_counts_and_never_fires() {
        let h = ChaosHandle::new();
        h.arm_recovery_count();
        for _ in 0..2 {
            for op in RecoveryOp::ALL {
                assert!(!h.recovery_fire(op));
            }
        }
        h.disarm_recovery();
        let report = h.recovery_report();
        assert_eq!(report.total, 14);
        for op in RecoveryOp::ALL {
            assert_eq!(report.kind(op), 2);
        }
        assert_eq!(report.fired, None);
    }

    #[test]
    fn crash_in_recovery_kills_first_attempt_only() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.crash_in_recovery(3, &t);
        let first: Vec<bool> = (0..6)
            .map(|_| h.recovery_fire(RecoveryOp::ReplayApply))
            .collect();
        assert_eq!(
            first,
            vec![false, false, false, true, true, true],
            "ops before j survive, op j and the rest of attempt 1 die"
        );
        assert_eq!(h.recovery_report().fired, Some(3));

        h.begin_recovery_attempt();
        let second: Vec<bool> = (0..6)
            .map(|_| h.recovery_fire(RecoveryOp::ReplayApply))
            .collect();
        assert!(second.iter().all(|&f| !f), "attempt 2 runs clean");
        assert_eq!(h.recovery_report().attempts, 2);

        let r = t.recorder();
        assert_eq!(r.trip_count(), 1, "only nested op j trips");
        let events = r.events();
        let cp = events
            .iter()
            .find(|e| e.kind == FlightKind::RecoveryCrashPoint)
            .expect("recovery_crash_point event");
        assert_eq!(cp.a, RecoveryOp::ReplayApply.code());
        assert_eq!(cp.b, 3, "fired at nested op index 3");
    }

    #[test]
    fn recovery_counter_is_global_across_kinds() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.crash_in_recovery(2, &t);
        assert!(!h.recovery_fire(RecoveryOp::SnapshotLoad));
        assert!(!h.recovery_fire(RecoveryOp::LogScan));
        assert!(
            h.recovery_fire(RecoveryOp::RescanChunk),
            "third recovery op overall dies regardless of kind"
        );
        let report = h.recovery_report();
        assert_eq!(report.kind(RecoveryOp::SnapshotLoad), 1);
        assert_eq!(report.kind(RecoveryOp::LogScan), 1);
        assert_eq!(report.kind(RecoveryOp::RescanChunk), 1);
    }

    #[test]
    fn recovery_plane_is_independent_of_outer_crash_plane() {
        let t = Telemetry::new();
        let h = ChaosHandle::new();
        h.crash_at_op(0, &t);
        h.arm_recovery_count();
        assert!(h.crash_fire(CrashOp::WalAppend), "outer plane fires");
        assert!(
            !h.recovery_fire(RecoveryOp::ReplayApply),
            "nested count mode never fires"
        );
        h.disarm_crash();
        assert!(h.is_recovery_armed(), "outer disarm leaves nested armed");
        assert_eq!(h.recovery_report().total, 1);
    }

    #[test]
    fn recovery_op_codes_roundtrip() {
        for op in RecoveryOp::ALL {
            assert_eq!(RecoveryOp::from_code(op.code()), Some(op));
            assert!(!op.name().is_empty());
        }
        assert_eq!(RecoveryOp::from_code(0), None);
        assert_eq!(RecoveryOp::from_code(8), None);
    }

    #[test]
    fn begin_recovery_attempt_requires_armed_plane() {
        let h = ChaosHandle::new();
        h.begin_recovery_attempt();
        h.arm_recovery_count();
        assert_eq!(h.recovery_report().attempts, 1, "disarmed bump ignored");
    }

    #[test]
    fn plan_builder_equality() {
        let p1 = FaultPlan::new(1)
            .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.01)
            .at_op(
                FaultSite::WalAppend,
                FaultAction::TornWrite { keep_bytes: 8 },
                2,
            );
        let p2 = FaultPlan::new(1)
            .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, 0.01)
            .at_op(
                FaultSite::WalAppend,
                FaultAction::TornWrite { keep_bytes: 8 },
                2,
            );
        assert_eq!(p1, p2);
        assert!(!p1.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}
