//! Sparse byte store backing a simulated device.
//!
//! Devices in this workspace are hundreds of gigabytes; experiments touch a
//! tiny, scattered fraction of that. `SparseStore` materializes 64 KiB pages
//! on first write and reads zeroes elsewhere, so a "750 GiB SSD" costs only
//! as much memory as the bytes actually written.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 16;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT; // 64 KiB

/// A sparse, zero-initialized byte array of fixed logical size.
#[derive(Debug, Clone, Default)]
pub struct SparseStore {
    pages: HashMap<u64, Box<[u8]>>,
    size: u64,
}

impl SparseStore {
    /// A store of `size` logical bytes, all zero.
    pub fn new(size: u64) -> Self {
        SparseStore {
            pages: HashMap::new(),
            size,
        }
    }

    /// Logical size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes of memory actually materialized.
    pub fn resident_bytes(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Write `data` at `offset`. Panics if the range exceeds the store —
    /// range checks belong to the namespace layer, which validates user IO
    /// before it reaches the store.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        assert!(
            offset
                .checked_add(data.len() as u64)
                .is_some_and(|e| e <= self.size),
            "write out of range: offset {offset} len {} size {}",
            data.len(),
            self.size
        );
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page_idx = abs >> PAGE_SHIFT;
            let in_page = (abs & (PAGE_SIZE as u64 - 1)) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - pos);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice());
            page[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    /// Read into `buf` from `offset`. Unwritten ranges read as zero.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        assert!(
            offset
                .checked_add(buf.len() as u64)
                .is_some_and(|e| e <= self.size),
            "read out of range: offset {offset} len {} size {}",
            buf.len(),
            self.size
        );
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let page_idx = abs >> PAGE_SHIFT;
            let in_page = (abs & (PAGE_SIZE as u64 - 1)) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - pos);
            match self.pages.get(&page_idx) {
                Some(page) => buf[pos..pos + n].copy_from_slice(&page[in_page..in_page + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    /// Read `len` bytes at `offset` into a fresh vector.
    ///
    /// Single-pass materialization: resident pages are appended directly
    /// and holes extend the vector with zeroes — no zero-fill of the whole
    /// buffer followed by a second overwrite pass like `read` into a
    /// caller-zeroed vector would cost.
    pub fn read_vec(&self, offset: u64, len: usize) -> Vec<u8> {
        assert!(
            offset
                .checked_add(len as u64)
                .is_some_and(|e| e <= self.size),
            "read out of range: offset {offset} len {len} size {}",
            self.size
        );
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            let abs = offset + v.len() as u64;
            let page_idx = abs >> PAGE_SHIFT;
            let in_page = (abs & (PAGE_SIZE as u64 - 1)) as usize;
            let n = (PAGE_SIZE - in_page).min(len - v.len());
            match self.pages.get(&page_idx) {
                Some(page) => v.extend_from_slice(&page[in_page..in_page + n]),
                None => v.resize(v.len() + n, 0),
            }
        }
        v
    }

    /// Discard all contents (used to model media loss in fault tests).
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = SparseStore::new(1 << 20);
        assert_eq!(s.read_vec(12345, 64), vec![0u8; 64]);
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn write_read_roundtrip_within_page() {
        let mut s = SparseStore::new(1 << 20);
        s.write(100, b"hello nvme");
        assert_eq!(s.read_vec(100, 10), b"hello nvme");
        // Neighbouring bytes stay zero.
        assert_eq!(s.read_vec(95, 5), vec![0u8; 5]);
    }

    #[test]
    fn write_spanning_page_boundary() {
        let mut s = SparseStore::new(1 << 20);
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        s.write(PAGE_SIZE as u64 - 17, &data);
        assert_eq!(s.read_vec(PAGE_SIZE as u64 - 17, data.len()), data);
    }

    #[test]
    fn sparse_residency() {
        let mut s = SparseStore::new(1 << 40); // "1 TiB" device
        s.write(1 << 39, &[1u8; 10]);
        assert_eq!(s.resident_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut s = SparseStore::new(100);
        s.write(96, &[0u8; 8]);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = SparseStore::new(4096);
        s.write(0, &[0xAA; 16]);
        s.write(4, &[0xBB; 4]);
        let v = s.read_vec(0, 16);
        assert_eq!(&v[0..4], &[0xAA; 4]);
        assert_eq!(&v[4..8], &[0xBB; 4]);
        assert_eq!(&v[8..16], &[0xAA; 8]);
    }

    proptest! {
        /// The store behaves exactly like a flat zero-initialized buffer for
        /// arbitrary interleaved writes.
        #[test]
        fn prop_matches_flat_buffer(
            writes in proptest::collection::vec(
                (0u64..300_000, proptest::collection::vec(any::<u8>(), 1..4096)),
                1..32,
            )
        ) {
            let size = 400_000u64;
            let mut model = vec![0u8; size as usize];
            let mut s = SparseStore::new(size);
            for (off, data) in &writes {
                let off = *off;
                s.write(off, data);
                model[off as usize..off as usize + data.len()].copy_from_slice(data);
            }
            // Compare a few windows including page boundaries.
            for start in [0u64, 65_530, 131_000, 250_000] {
                let len = 10_000.min(size - start) as usize;
                prop_assert_eq!(s.read_vec(start, len), &model[start as usize..start as usize + len]);
            }
        }
    }
}
