//! # nvmecr-ssd — NVMe SSD substrate
//!
//! A software model of the Intel P4800X-class NVMe SSDs the paper deploys in
//! its storage rack. The model has two halves that the rest of the workspace
//! uses together:
//!
//! 1. **A functional device** ([`device::Ssd`]) holding *real bytes* in a
//!    sparse page store, partitioned into NVMe **namespaces**
//!    ([`namespace::NamespaceSet`]), with a **device-RAM write buffer** whose
//!    power-loss behaviour (capacitor-backed flush vs. data loss) is
//!    explicit. microfs recovery tests run against these real bytes.
//!
//! 2. **A timing facility** ([`model::SsdFacility`]) that compiles IO
//!    requests into [`simkit`] stages: a serialized command processor
//!    (`Seize`), a bounded staging-RAM admission pool (`Acquire`/`Release`),
//!    and a flash-channel array (`Xfer` on a shared pipe whose per-request
//!    rate cap reflects how many channels a request of a given size can
//!    stripe across — the mechanism behind the paper's *hugeblock*
//!    observation that large requests reach full device bandwidth even from
//!    a single client, §III-E).
//!
//! The default [`config::SsdConfig`] is calibrated to the paper's testbed
//! (P4800X: ~2.4 GB/s writes, 32 hardware queues, 4 KiB hardware blocks).

pub mod backing;
pub mod config;
pub mod device;
pub mod model;
pub mod namespace;

pub use backing::SparseStore;
pub use config::SsdConfig;
pub use device::{NsShard, PowerFailure, Ssd, SsdError};
pub use model::{IoKind, SsdFacility};
pub use namespace::{NamespaceSet, NsError, NsId};
