//! Device geometry and latency calibration.

use chaos::ChaosHandle;
use simkit::{Rate, SimTime};

/// Geometry and timing parameters of one simulated NVMe SSD.
///
/// Defaults approximate the Intel Optane P4800X used in the paper's storage
/// rack (§IV-A): ~2.4 GB/s of write bandwidth delivered by a channel array,
/// 32 hardware queue pairs, 4 KiB hardware blocks, and a power-loss-protected
/// device RAM write buffer.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Number of internal flash/media channels.
    pub channels: u32,
    /// Per-channel sustained write bandwidth.
    pub channel_write_bw: Rate,
    /// Per-channel sustained read bandwidth.
    pub channel_read_bw: Rate,
    /// Hardware block size — the unit the controller splits requests into
    /// and stripes across channels (4 KiB on the P4800X).
    pub hw_block: u64,
    /// Number of hardware submission/completion queue pairs the controller
    /// exposes (the paper notes 32 for the P4800X, §III-A Principle 3).
    pub hw_queues: u32,
    /// Controller time to fetch/decode/complete one NVMe command; this cost
    /// is serialized at the command processor and is what penalizes small
    /// block sizes in Figure 7a.
    pub cmd_overhead: SimTime,
    /// Controller staging SRAM available for in-flight request payloads.
    /// Requests hold staging for their duration; very large requests exhaust
    /// it and serialize, which is what penalizes oversized hugeblocks.
    pub staging_ram: u64,
    /// Power-loss-protected device RAM write buffer (§III-D "Data
    /// Durability"). Writes land here at full speed and survive power
    /// failure via capacitor flush when `capacitor` is true.
    pub device_ram: u64,
    /// Whether enhanced power-loss data protection (capacitors) is present.
    pub capacitor: bool,
    /// Fault-injection hook shared by every shard of the device. Disarmed
    /// by default: the data path pays one relaxed atomic load per IO.
    pub chaos: ChaosHandle,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            capacity: 750 << 30, // 750 GiB (P4800X SKU)
            channels: 16,
            channel_write_bw: Rate::mib_per_sec(150.0), // 16 ch -> 2.34 GiB/s
            channel_read_bw: Rate::mib_per_sec(165.0),  // 16 ch -> 2.58 GiB/s
            hw_block: 4 << 10,
            hw_queues: 32,
            cmd_overhead: SimTime::micros(1.75),
            staging_ram: 24 << 20,
            device_ram: 2 << 30,
            capacitor: true,
            chaos: ChaosHandle::default(),
        }
    }
}

impl SsdConfig {
    /// Aggregate write bandwidth of the channel array.
    pub fn write_bw(&self) -> Rate {
        self.channel_write_bw.scale(f64::from(self.channels))
    }

    /// Aggregate read bandwidth of the channel array.
    pub fn read_bw(&self) -> Rate {
        self.channel_read_bw.scale(f64::from(self.channels))
    }

    /// How many channels a request of `bytes` can stripe across: one per
    /// hardware block, bounded by the channel count. This is why a 4 KiB
    /// request is limited to a single channel's bandwidth while a 32 KiB+
    /// hugeblock approaches the full array (§III-E "Hugeblocks").
    pub fn channels_for(&self, bytes: u64) -> u32 {
        let blocks = bytes.div_ceil(self.hw_block).max(1);
        blocks.min(u64::from(self.channels)) as u32
    }

    /// Maximum service rate for a single request of `bytes` (write path).
    pub fn write_rate_for(&self, bytes: u64) -> Rate {
        self.channel_write_bw
            .scale(f64::from(self.channels_for(bytes)))
    }

    /// Maximum service rate for a single request of `bytes` (read path).
    pub fn read_rate_for(&self, bytes: u64) -> Rate {
        self.channel_read_bw
            .scale(f64::from(self.channels_for(bytes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_p4800x_ballpark() {
        let c = SsdConfig::default();
        let bw = c.write_bw().as_bytes_per_sec();
        assert!((2.2e9..2.6e9).contains(&bw), "write bw {bw}");
        assert_eq!(c.hw_queues, 32);
        assert_eq!(c.hw_block, 4096);
    }

    #[test]
    fn channel_striping_scales_with_request_size() {
        let c = SsdConfig::default();
        assert_eq!(c.channels_for(1), 1);
        assert_eq!(c.channels_for(4096), 1);
        assert_eq!(c.channels_for(8192), 2);
        assert_eq!(c.channels_for(32 << 10), 8);
        assert_eq!(c.channels_for(64 << 10), 16);
        assert_eq!(c.channels_for(1 << 20), 16); // capped at channel count
    }

    #[test]
    fn single_small_request_is_channel_bound() {
        let c = SsdConfig::default();
        let r4k = c.write_rate_for(4096).as_bytes_per_sec();
        let r64k = c.write_rate_for(64 << 10).as_bytes_per_sec();
        assert!((r64k / r4k - 16.0).abs() < 1e-9);
    }
}
