//! Timing facility: compiles device IO into [`simkit`] stages.
//!
//! The facility installs three contended elements per device into a
//! [`Dag`]:
//!
//! * a **command processor** (`Seize`): every NVMe command costs
//!   [`SsdConfig::cmd_overhead`] of serialized controller time — the cost
//!   that makes 4 KiB blocks 7% slower than 32 KiB hugeblocks in Fig. 7a;
//! * a **staging-RAM pool** (`Acquire`/`Release`): in-flight request
//!   payloads occupy controller SRAM, bounding useful pipelining;
//! * **write and read channel arrays** (`Xfer` pipes): aggregate bandwidth
//!   equals channels × per-channel rate; a single request's rate is capped
//!   by how many channels it stripes across ([`SsdConfig::channels_for`]).
//!
//! Requests larger than [`SsdConfig::qos_threshold`] incur media-level
//! write amplification ([`SsdConfig::amplified`]) — the calibrated stand-in
//! for the controller-internal buffering/QoS effects that make oversized
//! hugeblocks *increase* "the waiting time for each hardware IO queue"
//! (§IV-B). This term is what gives Figure 7a its right-hand rise; it is
//! calibrated against the paper's own measurement, and its provenance is
//! recorded in DESIGN.md.

use simkit::{Dag, PipeId, PoolId, Rate, ResId, Stage};

use crate::config::SsdConfig;

/// Direction of a device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Host-to-device (checkpoint dump path).
    Write,
    /// Device-to-host (restart path).
    Read,
}

impl SsdConfig {
    /// Request size above which media-level write amplification applies.
    pub fn qos_threshold(&self) -> u64 {
        32 << 10
    }

    /// Effective media bytes for a request of `bytes`: above the QoS
    /// threshold, each doubling adds 8% of amplification.
    pub fn amplified(&self, bytes: u64) -> u64 {
        let thr = self.qos_threshold();
        if bytes <= thr {
            return bytes;
        }
        let doublings = (bytes as f64 / thr as f64).log2();
        (bytes as f64 * (1.0 + 0.08 * doublings)).round() as u64
    }
}

/// One device's contended elements, installed in a [`Dag`].
#[derive(Debug, Clone, Copy)]
pub struct SsdFacility {
    controller: ResId,
    staging: PoolId,
    write_pipe: PipeId,
    read_pipe: PipeId,
    cmd_overhead: simkit::SimTime,
    staging_ram: u64,
    hw_block: u64,
    channels: u32,
    channel_write_bw: Rate,
    channel_read_bw: Rate,
    qos_threshold: u64,
}

impl SsdFacility {
    /// Install one device into `dag`.
    pub fn install(dag: &mut Dag, config: &SsdConfig) -> Self {
        SsdFacility {
            controller: dag.resource(),
            staging: dag.pool(config.staging_ram),
            write_pipe: dag.pipe(config.write_bw()),
            read_pipe: dag.pipe(config.read_bw()),
            cmd_overhead: config.cmd_overhead,
            staging_ram: config.staging_ram,
            hw_block: config.hw_block,
            channels: config.channels,
            channel_write_bw: config.channel_write_bw,
            channel_read_bw: config.channel_read_bw,
            qos_threshold: config.qos_threshold(),
        }
    }

    /// The serialized command processor (for utilization queries).
    pub fn controller(&self) -> ResId {
        self.controller
    }

    /// The write channel array pipe.
    pub fn write_pipe(&self) -> PipeId {
        self.write_pipe
    }

    /// The read channel array pipe.
    pub fn read_pipe(&self) -> PipeId {
        self.read_pipe
    }

    fn pipe_for(&self, kind: IoKind) -> PipeId {
        match kind {
            IoKind::Write => self.write_pipe,
            IoKind::Read => self.read_pipe,
        }
    }

    fn channel_rate(&self, kind: IoKind) -> Rate {
        match kind {
            IoKind::Write => self.channel_write_bw,
            IoKind::Read => self.channel_read_bw,
        }
    }

    fn rate_for(&self, kind: IoKind, bytes: u64) -> Rate {
        let blocks = bytes.div_ceil(self.hw_block).max(1);
        let ch = blocks.min(u64::from(self.channels)) as u32;
        self.channel_rate(kind).scale(f64::from(ch))
    }

    fn array_rate(&self, kind: IoKind) -> Rate {
        self.channel_rate(kind).scale(f64::from(self.channels))
    }

    fn amplified(&self, bytes: u64) -> u64 {
        if bytes <= self.qos_threshold {
            return bytes;
        }
        let doublings = (bytes as f64 / self.qos_threshold as f64).log2();
        (bytes as f64 * (1.0 + 0.08 * doublings)).round() as u64
    }

    /// Stages for one device request of `bytes` (a single NVMe command).
    /// Latency-exact: holds staging for its payload, pays one command
    /// overhead, and stripes across as many channels as its size allows.
    pub fn request_stages(&self, kind: IoKind, bytes: u64) -> Vec<Stage> {
        let media = match kind {
            IoKind::Write => self.amplified(bytes),
            IoKind::Read => bytes,
        };
        let hold = bytes.min(self.staging_ram);
        vec![
            Stage::Acquire {
                pool: self.staging,
                n: hold,
            },
            Stage::Seize {
                res: self.controller,
                hold: self.cmd_overhead,
            },
            Stage::Xfer {
                pipe: self.pipe_for(kind),
                bytes: media,
                cap: Some(self.rate_for(kind, bytes)),
            },
            Stage::Release {
                pool: self.staging,
                n: hold,
            },
        ]
    }

    /// Coarse stages for a pipelined sequence of `total_bytes / request_size`
    /// commands issued from one hardware queue at queue depth `qd`, as a
    /// single token. Used at cluster scale where per-command tokens would be
    /// prohibitive. Staging is not modelled here (valid while
    /// `request_size × qd ≤ staging_ram`, which holds for every bulk
    /// workload in the evaluation).
    pub fn bulk_stages(
        &self,
        kind: IoKind,
        total_bytes: u64,
        request_size: u64,
        qd: u32,
    ) -> Vec<Stage> {
        assert!(request_size > 0 && qd > 0);
        if total_bytes == 0 {
            return Vec::new();
        }
        let n_req = total_bytes.div_ceil(request_size);
        let media = match kind {
            IoKind::Write => {
                // Amplify per full request plus the final partial request.
                let full = total_bytes / request_size;
                let rem = total_bytes % request_size;
                full * self.amplified(request_size) + self.amplified(rem)
            }
            IoKind::Read => total_bytes,
        };
        // A window of `qd` in-flight requests can stripe across
        // qd × channels_for(request_size) channels, up to the full array.
        let single = self.rate_for(kind, request_size);
        let cap = single.scale(f64::from(qd)).min(self.array_rate(kind));
        vec![
            Stage::Seize {
                res: self.controller,
                hold: self.cmd_overhead * n_req as f64,
            },
            Stage::Xfer {
                pipe: self.pipe_for(kind),
                bytes: media,
                cap: Some(cap),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn facility() -> (Dag, SsdFacility) {
        let mut dag = Dag::new();
        let f = SsdFacility::install(&mut dag, &SsdConfig::default());
        (dag, f)
    }

    #[test]
    fn single_4k_write_is_channel_bound() {
        let (mut dag, f) = facility();
        let t = dag.token(&[], f.request_stages(IoKind::Write, 4096));
        let r = dag.run().unwrap();
        let expect = SsdConfig::default().cmd_overhead
            + SsdConfig::default().channel_write_bw.time_for(4096);
        assert!(
            (r.completion(t).as_secs() - expect.as_secs()).abs() < 1e-9,
            "got {} expected {}",
            r.completion(t),
            expect
        );
    }

    #[test]
    fn single_hugeblock_write_uses_many_channels() {
        let (mut dag, f) = facility();
        let t = dag.token(&[], f.request_stages(IoKind::Write, 32 << 10));
        let r = dag.run().unwrap();
        // 32 KiB stripes over 8 channels: ~8x the single-channel rate.
        let cfg = SsdConfig::default();
        let transfer = cfg.channel_write_bw.scale(8.0).time_for(32 << 10);
        let expect = cfg.cmd_overhead + transfer;
        assert!((r.completion(t).as_secs() - expect.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn bulk_write_saturates_the_array() {
        // 28 concurrent bulk writers, 32 MiB each at 32 KiB requests:
        // makespan ~= total / array bandwidth (plus command time).
        let (mut dag, f) = facility();
        for _ in 0..28 {
            dag.token(&[], f.bulk_stages(IoKind::Write, 32 << 20, 32 << 10, 32));
        }
        let r = dag.run().unwrap();
        let cfg = SsdConfig::default();
        let floor = cfg.write_bw().time_for(28 * (32 << 20));
        let t = r.makespan().as_secs();
        assert!(t >= floor.as_secs(), "faster than hardware: {t}");
        assert!(
            t < floor.as_secs() * 1.10,
            "too much overhead: {t} vs {}",
            floor.as_secs()
        );
    }

    #[test]
    fn small_requests_pay_more_command_overhead() {
        let time_for = |req: u64| {
            let (mut dag, f) = facility();
            for _ in 0..28 {
                dag.token(&[], f.bulk_stages(IoKind::Write, 64 << 20, req, 32));
            }
            dag.run().unwrap().makespan().as_secs()
        };
        let t4k = time_for(4 << 10);
        let t32k = time_for(32 << 10);
        assert!(
            t4k > t32k * 1.03,
            "4K ({t4k}) should be noticeably slower than 32K ({t32k})"
        );
    }

    #[test]
    fn oversized_requests_pay_amplification() {
        let cfg = SsdConfig::default();
        assert_eq!(cfg.amplified(4 << 10), 4 << 10);
        assert_eq!(cfg.amplified(32 << 10), 32 << 10);
        let m1 = cfg.amplified(1 << 20) as f64 / (1 << 20) as f64;
        assert!((m1 - 1.4).abs() < 0.01, "1 MiB amp {m1}"); // 5 doublings x 8%
        let time_for = |req: u64| {
            let (mut dag, f) = facility();
            for _ in 0..28 {
                dag.token(&[], f.bulk_stages(IoKind::Write, 64 << 20, req, 32));
            }
            dag.run().unwrap().makespan().as_secs()
        };
        assert!(time_for(1 << 20) > time_for(32 << 10) * 1.2);
    }

    #[test]
    fn reads_and_writes_use_separate_pipes() {
        let (mut dag, f) = facility();
        let w = dag.token(&[], f.bulk_stages(IoKind::Write, 256 << 20, 32 << 10, 32));
        let r = dag.token(&[], f.bulk_stages(IoKind::Read, 256 << 20, 32 << 10, 32));
        let res = dag.run().unwrap();
        let cfg = SsdConfig::default();
        // Each path runs near its own full bandwidth, not halved. The
        // coarse model serializes command time before the transfer, so
        // allow that overhead on top of the hardware floor.
        let wfloor = cfg.write_bw().time_for(256 << 20).as_secs();
        let rfloor = cfg.read_bw().time_for(256 << 20).as_secs();
        assert!(res.completion(w).as_secs() < wfloor * 1.3);
        assert!(res.completion(r).as_secs() < rfloor * 1.3);
        assert!(res.completion(w).as_secs() >= wfloor);
        assert!(res.completion(r).as_secs() >= rfloor);
    }

    #[test]
    fn staging_bounds_inflight_payload() {
        // Requests of half the staging RAM: only two can be in flight, so
        // four requests from four queues serialize into two waves — the
        // first wave completes strictly before the second. Without the
        // staging bound all four share the array and complete together.
        let run_with_staging = |staging_ram: u64| {
            let cfg = SsdConfig {
                staging_ram,
                ..SsdConfig::default()
            };
            let mut dag = Dag::new();
            let f = SsdFacility::install(&mut dag, &cfg);
            let ids: Vec<_> = (0..4)
                .map(|_| dag.token(&[], f.request_stages(IoKind::Write, 1 << 20)))
                .collect();
            let r = dag.run().unwrap();
            ids.iter().map(|&t| r.completion(t)).collect::<Vec<_>>()
        };
        let limited = run_with_staging(2 << 20);
        let spread =
            limited.iter().max().unwrap().as_secs() - limited.iter().min().unwrap().as_secs();
        assert!(
            spread > 1e-3,
            "staging limit should stagger completions by a wave"
        );
        let unlimited = run_with_staging(24 << 20);
        let spread_u =
            unlimited.iter().max().unwrap().as_secs() - unlimited.iter().min().unwrap().as_secs();
        // Only the microsecond-scale command staggering remains.
        assert!(
            spread_u < 1e-4,
            "unbounded staging should complete near-together, spread {spread_u}"
        );
    }

    #[test]
    fn bulk_zero_bytes_is_empty() {
        let (_dag, f) = facility();
        assert!(f.bulk_stages(IoKind::Write, 0, 32 << 10, 32).is_empty());
    }

    #[test]
    fn bulk_partial_tail_request_counted() {
        let (mut dag, f) = facility();
        // 100 KiB at 32 KiB requests = 4 commands (3 full + 1 partial).
        let t = dag.token(&[], f.bulk_stages(IoKind::Write, 100 << 10, 32 << 10, 1));
        let r = dag.run().unwrap();
        let cfg = SsdConfig::default();
        let cmd = cfg.cmd_overhead * 4.0;
        assert!(r.completion(t) > cmd);
        assert!(
            r.completion(t)
                < cmd + cfg.write_rate_for(32 << 10).time_for(100 << 10) + SimTime::micros(50.0)
        );
    }
}
