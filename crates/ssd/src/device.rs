//! The functional device: namespaces + backing bytes + device-RAM buffer.
//!
//! NVMe-CR "writes data directly to internal device-level RAM ... In the
//! event of power failure, device capacitors will safely flush volatile data
//! to non-volatile flash memory" (§III-D). This module makes that behaviour
//! testable: writes land in a bounded volatile buffer, draining FIFO to the
//! persistent store; [`Ssd::power_failure`] either capacitor-flushes or
//! discards what is still volatile, and recovery tests observe the
//! difference in real bytes.

use std::collections::VecDeque;
use std::fmt;

use crate::backing::SparseStore;
use crate::config::SsdConfig;
use crate::namespace::{NamespaceSet, NsError, NsId};

/// IO or management failure on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// Namespace-layer failure (unknown NSID, bounds, space).
    Ns(NsError),
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::Ns(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SsdError {}

impl From<NsError> for SsdError {
    fn from(e: NsError) -> Self {
        SsdError::Ns(e)
    }
}

/// Outcome of a power-failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerFailure {
    /// Bytes that were still volatile and were saved by the capacitor flush.
    pub flushed_bytes: u64,
    /// Bytes that were still volatile and were lost (no capacitor).
    pub lost_bytes: u64,
}

struct PendingWrite {
    dev_offset: u64,
    data: Vec<u8>,
}

/// One simulated NVMe SSD.
pub struct Ssd {
    config: SsdConfig,
    store: SparseStore,
    namespaces: NamespaceSet,
    /// FIFO of writes still in device RAM (not yet on media).
    volatile: VecDeque<PendingWrite>,
    volatile_bytes: u64,
    writes: u64,
    reads: u64,
    bytes_written: u64,
    bytes_read: u64,
    /// Per-namespace `(writes, reads, bytes_written, bytes_read)` — the
    /// SMART-style per-tenant accounting a shared array needs (§III-F).
    ns_counters: std::collections::BTreeMap<NsId, (u64, u64, u64, u64)>,
}

impl Ssd {
    /// A fresh device.
    pub fn new(config: SsdConfig) -> Self {
        let store = SparseStore::new(config.capacity);
        let namespaces = NamespaceSet::new(config.capacity);
        Ssd {
            config,
            store,
            namespaces,
            volatile: VecDeque::new(),
            volatile_bytes: 0,
            writes: 0,
            reads: 0,
            bytes_written: 0,
            bytes_read: 0,
            ns_counters: std::collections::BTreeMap::new(),
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Namespace table (for management planes).
    pub fn namespaces(&self) -> &NamespaceSet {
        &self.namespaces
    }

    /// Create a namespace of `size` bytes.
    pub fn create_namespace(&mut self, size: u64) -> Result<NsId, SsdError> {
        Ok(self.namespaces.create(size)?)
    }

    /// Delete a namespace. Its data remains on media but becomes
    /// unreachable, as with a real NSID delete.
    pub fn delete_namespace(&mut self, ns: NsId) -> Result<(), SsdError> {
        Ok(self.namespaces.delete(ns)?)
    }

    /// Write through a namespace. Data lands in device RAM first; the
    /// buffer drains FIFO to media when it exceeds the configured size.
    pub fn write(&mut self, ns: NsId, offset: u64, data: &[u8]) -> Result<(), SsdError> {
        let dev_offset = self.namespaces.translate(ns, offset, data.len() as u64)?;
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        {
            let c = self.ns_counters.entry(ns).or_default();
            c.0 += 1;
            c.2 += data.len() as u64;
        }
        self.volatile_bytes += data.len() as u64;
        self.volatile.push_back(PendingWrite {
            dev_offset,
            data: data.to_vec(),
        });
        while self.volatile_bytes > self.config.device_ram {
            let Some(w) = self.volatile.pop_front() else { break };
            self.volatile_bytes -= w.data.len() as u64;
            self.store.write(w.dev_offset, &w.data);
        }
        Ok(())
    }

    /// Read through a namespace, observing volatile (read-your-writes) data.
    pub fn read(&mut self, ns: NsId, offset: u64, buf: &mut [u8]) -> Result<(), SsdError> {
        let dev_offset = self.namespaces.translate(ns, offset, buf.len() as u64)?;
        self.reads += 1;
        self.bytes_read += buf.len() as u64;
        {
            let c = self.ns_counters.entry(ns).or_default();
            c.1 += 1;
            c.3 += buf.len() as u64;
        }
        self.store.read(dev_offset, buf);
        // Overlay pending writes in FIFO order so later writes win.
        let start = dev_offset;
        let end = dev_offset + buf.len() as u64;
        for w in &self.volatile {
            let wstart = w.dev_offset;
            let wend = w.dev_offset + w.data.len() as u64;
            let lo = start.max(wstart);
            let hi = end.min(wend);
            if lo < hi {
                let src = (lo - wstart) as usize..(hi - wstart) as usize;
                let dst = (lo - start) as usize..(hi - start) as usize;
                buf[dst].copy_from_slice(&w.data[src]);
            }
        }
        Ok(())
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_vec(&mut self, ns: NsId, offset: u64, len: usize) -> Result<Vec<u8>, SsdError> {
        let mut v = vec![0u8; len];
        self.read(ns, offset, &mut v)?;
        Ok(v)
    }

    /// Drain all volatile data to media (an explicit device flush).
    pub fn flush(&mut self) {
        while let Some(w) = self.volatile.pop_front() {
            self.store.write(w.dev_offset, &w.data);
        }
        self.volatile_bytes = 0;
    }

    /// Bytes currently held only in device RAM.
    pub fn volatile_bytes(&self) -> u64 {
        self.volatile_bytes
    }

    /// Simulate a power failure. With enhanced power-loss protection
    /// (capacitors), volatile data flushes to media; without, it is lost.
    pub fn power_failure(&mut self) -> PowerFailure {
        let pending = self.volatile_bytes;
        if self.config.capacitor {
            self.flush();
            PowerFailure {
                flushed_bytes: pending,
                lost_bytes: 0,
            }
        } else {
            self.volatile.clear();
            self.volatile_bytes = 0;
            PowerFailure {
                flushed_bytes: 0,
                lost_bytes: pending,
            }
        }
    }

    /// Lifetime IO counters: `(writes, reads, bytes_written, bytes_read)`.
    pub fn io_counters(&self) -> (u64, u64, u64, u64) {
        (self.writes, self.reads, self.bytes_written, self.bytes_read)
    }

    /// Per-namespace IO counters `(writes, reads, bytes_written,
    /// bytes_read)` — zero for namespaces that never saw IO.
    pub fn ns_io_counters(&self, ns: NsId) -> (u64, u64, u64, u64) {
        self.ns_counters.get(&ns).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ssd(capacitor: bool) -> Ssd {
        let config = SsdConfig {
            capacity: 1 << 20,
            device_ram: 4096,
            capacitor,
            ..SsdConfig::default()
        };
        Ssd::new(config)
    }

    #[test]
    fn write_read_roundtrip_through_namespace() {
        let mut ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 1000, b"checkpoint-data").unwrap();
        assert_eq!(ssd.read_vec(ns, 1000, 15).unwrap(), b"checkpoint-data");
    }

    #[test]
    fn read_your_writes_from_device_ram() {
        let mut ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[7u8; 100]).unwrap();
        assert!(ssd.volatile_bytes() > 0, "write should still be volatile");
        assert_eq!(ssd.read_vec(ns, 0, 100).unwrap(), vec![7u8; 100]);
    }

    #[test]
    fn later_volatile_write_wins_on_overlap() {
        let mut ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[1u8; 64]).unwrap();
        ssd.write(ns, 32, &[2u8; 64]).unwrap();
        let v = ssd.read_vec(ns, 0, 96).unwrap();
        assert_eq!(&v[..32], &[1u8; 32]);
        assert_eq!(&v[32..96], &[2u8; 64]);
    }

    #[test]
    fn capacitor_saves_volatile_data_on_power_failure() {
        let mut ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[9u8; 2048]).unwrap();
        let pf = ssd.power_failure();
        assert_eq!(pf.flushed_bytes, 2048);
        assert_eq!(pf.lost_bytes, 0);
        assert_eq!(ssd.read_vec(ns, 0, 2048).unwrap(), vec![9u8; 2048]);
    }

    #[test]
    fn no_capacitor_loses_volatile_data() {
        let mut ssd = small_ssd(false);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[9u8; 2048]).unwrap();
        let pf = ssd.power_failure();
        assert_eq!(pf.lost_bytes, 2048);
        // The data is gone: reads return zeroes.
        assert_eq!(ssd.read_vec(ns, 0, 2048).unwrap(), vec![0u8; 2048]);
    }

    #[test]
    fn buffer_drains_fifo_when_over_capacity() {
        let mut ssd = small_ssd(false);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        // device_ram is 4096; write 3 x 2048. The first write must have
        // drained to media and thus survives power loss.
        ssd.write(ns, 0, &[1u8; 2048]).unwrap();
        ssd.write(ns, 2048, &[2u8; 2048]).unwrap();
        ssd.write(ns, 4096, &[3u8; 2048]).unwrap();
        assert!(ssd.volatile_bytes() <= 4096);
        ssd.power_failure();
        assert_eq!(ssd.read_vec(ns, 0, 2048).unwrap(), vec![1u8; 2048]);
    }

    #[test]
    fn namespaces_do_not_alias() {
        let mut ssd = small_ssd(true);
        let a = ssd.create_namespace(4096).unwrap();
        let b = ssd.create_namespace(4096).unwrap();
        ssd.write(a, 0, &[0xAA; 4096]).unwrap();
        ssd.write(b, 0, &[0xBB; 4096]).unwrap();
        ssd.flush();
        assert_eq!(ssd.read_vec(a, 0, 4096).unwrap(), vec![0xAA; 4096]);
        assert_eq!(ssd.read_vec(b, 0, 4096).unwrap(), vec![0xBB; 4096]);
    }

    #[test]
    fn io_counters_accumulate() {
        let mut ssd = small_ssd(true);
        let ns = ssd.create_namespace(4096).unwrap();
        ssd.write(ns, 0, &[0u8; 100]).unwrap();
        let _ = ssd.read_vec(ns, 0, 50).unwrap();
        assert_eq!(ssd.io_counters(), (1, 1, 100, 50));
    }

    #[test]
    fn per_namespace_accounting_separates_tenants() {
        let mut ssd = small_ssd(true);
        let a = ssd.create_namespace(8192).unwrap();
        let b = ssd.create_namespace(8192).unwrap();
        ssd.write(a, 0, &[0u8; 100]).unwrap();
        ssd.write(a, 100, &[0u8; 50]).unwrap();
        let _ = ssd.read_vec(b, 0, 64).unwrap();
        assert_eq!(ssd.ns_io_counters(a), (2, 0, 150, 0));
        assert_eq!(ssd.ns_io_counters(b), (0, 1, 0, 64));
        let c = ssd.create_namespace(64).unwrap();
        assert_eq!(ssd.ns_io_counters(c), (0, 0, 0, 0));
    }

    #[test]
    fn out_of_range_io_is_rejected() {
        let mut ssd = small_ssd(true);
        let ns = ssd.create_namespace(100).unwrap();
        assert!(ssd.write(ns, 90, &[0u8; 20]).is_err());
        let mut buf = [0u8; 20];
        assert!(ssd.read(ns, 90, &mut buf).is_err());
    }
}
