//! The functional device: namespaces + backing bytes + device-RAM buffer.
//!
//! NVMe-CR "writes data directly to internal device-level RAM ... In the
//! event of power failure, device capacitors will safely flush volatile data
//! to non-volatile flash memory" (§III-D). This module makes that behaviour
//! testable: writes land in a bounded volatile buffer, draining FIFO to the
//! persistent store; [`Ssd::power_failure`] either capacitor-flushes or
//! discards what is still volatile, and recovery tests observe the
//! difference in real bytes.
//!
//! # Concurrency model
//!
//! The device is **sharded by namespace**, mirroring how NVMe hardware
//! queues give each attached microfs instance an independent command path
//! (§III-B, Principle 3). Each namespace owns an [`NsShard`]: its own
//! backing pages, its own staging-RAM FIFO, and its own lock. IO on
//! different namespaces never contends; IO on one namespace is serialized
//! by the shard lock, preserving per-queue FIFO semantics. A separate,
//! narrow controller lock guards only the admin plane (the namespace
//! table and the shard map) and is never held across data IO.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use chaos::{ChaosHandle, FaultAction, FaultSite};
use parking_lot::Mutex;
use telemetry::{Counter, FlightKind, FlightRecorder, Gauge, Histogram, Telemetry};

use crate::backing::SparseStore;
use crate::config::SsdConfig;
use crate::namespace::{NamespaceSet, NsError, NsId};

/// Resolved telemetry handles for the device's hot path. All shards of
/// one [`Ssd`] share these, so per-metric registry lookups happen once at
/// device construction, never per IO.
struct SsdMetrics {
    /// Write-payload bytes memcpy'd by the device. On the zero-copy path
    /// every payload byte is copied exactly once: at drain, into the
    /// backing store. The slice-based [`NsShard::write`] adds one more
    /// copy (slice → staging `Bytes`), also counted here.
    bytes_copied: Arc<Counter>,
    /// Cumulative nanoseconds IO threads spent *blocked* acquiring shard
    /// locks — the direct observable for cross-rank contention.
    lock_wait_ns: Arc<Counter>,
    /// Bytes saved by capacitor-backed flush on power failure.
    capacitor_flush_bytes: Arc<Counter>,
    /// Latency of one staged write draining to media.
    drain_ns: Arc<Histogram>,
    /// Shard write-path latency (stage + any forced drains).
    write_ns: Arc<Histogram>,
    /// Shard read-path latency (media read + volatile overlay).
    read_ns: Arc<Histogram>,
    /// Writes currently staged in device RAM across all shards.
    queue_depth: Arc<Gauge>,
    /// Bytes currently staged in device RAM across all shards.
    ram_occupancy: Arc<Gauge>,
    /// Flight recorder: shard health transitions (busy, kill, dead-IO)
    /// land here so a dump shows *why* a command above saw ShardOffline.
    flight: Arc<FlightRecorder>,
}

impl SsdMetrics {
    fn new(t: &Telemetry) -> Self {
        SsdMetrics {
            bytes_copied: t.counter("ssd.bytes_copied"),
            lock_wait_ns: t.counter("ssd.lock_wait_ns"),
            capacitor_flush_bytes: t.counter("ssd.capacitor_flush_bytes"),
            drain_ns: t.histogram("ssd.drain_ns"),
            write_ns: t.histogram("ssd.write_ns"),
            read_ns: t.histogram("ssd.read_ns"),
            queue_depth: t.gauge("ssd.queue_depth"),
            ram_occupancy: t.gauge("ssd.ram_occupancy_bytes"),
            flight: t.recorder(),
        }
    }
}

/// IO or management failure on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// Namespace-layer failure (unknown NSID, bounds, space).
    Ns(NsError),
    /// Transient backpressure: the shard cannot take the IO right now.
    /// Retry after backoff.
    Busy(NsId),
    /// The shard is dead (injected hardware failure); no retry on this
    /// path will succeed.
    ShardDead(NsId),
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::Ns(e) => write!(f, "{e}"),
            SsdError::Busy(ns) => write!(f, "namespace {ns:?} busy, retry later"),
            SsdError::ShardDead(ns) => write!(f, "namespace {ns:?} shard is dead"),
        }
    }
}

impl std::error::Error for SsdError {}

impl From<NsError> for SsdError {
    fn from(e: NsError) -> Self {
        SsdError::Ns(e)
    }
}

/// Outcome of a power-failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerFailure {
    /// Bytes that were still volatile and were saved by the capacitor flush.
    pub flushed_bytes: u64,
    /// Bytes that were still volatile and were lost (no capacitor).
    pub lost_bytes: u64,
}

/// A write staged in device RAM. The payload is a refcounted [`Bytes`]:
/// enqueueing one is copy-free; the single copy happens at drain time,
/// into the backing store.
struct PendingWrite {
    ns_offset: u64,
    data: Bytes,
}

/// Everything a shard's lock protects: the namespace's backing pages, its
/// staging-RAM FIFO, and its IO accounting.
struct ShardData {
    store: SparseStore,
    /// FIFO of writes still in this queue's device RAM (not yet on media).
    volatile: VecDeque<PendingWrite>,
    volatile_bytes: u64,
    writes: u64,
    reads: u64,
    bytes_written: u64,
    bytes_read: u64,
}

impl ShardData {
    fn drain_one(&mut self, m: &SsdMetrics) -> bool {
        let Some(w) = self.volatile.pop_front() else {
            return false;
        };
        let len = w.data.len() as u64;
        self.volatile_bytes -= len;
        {
            let _t = m.drain_ns.time();
            self.store.write(w.ns_offset, &w.data);
        }
        m.bytes_copied.add(len);
        m.queue_depth.add(-1);
        m.ram_occupancy.add(-(len as i64));
        true
    }

    fn flush(&mut self, m: &SsdMetrics) {
        while self.drain_one(m) {}
    }
}

/// One namespace's independently lockable slice of the device: the
/// functional analogue of a dedicated NVMe hardware queue plus the flash
/// behind one namespace. All offsets are namespace-relative.
pub struct NsShard {
    ns: NsId,
    size: u64,
    /// Per-queue staging-RAM budget (the namespace's share of device RAM).
    ram_budget: u64,
    capacitor: bool,
    data: Mutex<ShardData>,
    /// Telemetry handles shared with the owning device (lock-wait time is
    /// charged to `ssd.lock_wait_ns`, the cross-rank contention
    /// observable).
    metrics: Arc<SsdMetrics>,
    /// Fault-injection hook shared with the owning device's config.
    chaos: ChaosHandle,
    /// Set by an injected [`FaultAction::KillShard`] (or [`NsShard::kill`]):
    /// every subsequent IO fails with [`SsdError::ShardDead`] until revived.
    dead: AtomicBool,
}

impl NsShard {
    fn new(
        ns: NsId,
        size: u64,
        ram_budget: u64,
        capacitor: bool,
        metrics: Arc<SsdMetrics>,
        chaos: ChaosHandle,
    ) -> Self {
        NsShard {
            ns,
            size,
            ram_budget,
            capacitor,
            data: Mutex::new(ShardData {
                store: SparseStore::new(size),
                volatile: VecDeque::new(),
                volatile_bytes: 0,
                writes: 0,
                reads: 0,
                bytes_written: 0,
                bytes_read: 0,
            }),
            metrics,
            chaos,
            dead: AtomicBool::new(false),
        }
    }

    /// The namespace this shard backs.
    pub fn namespace(&self) -> NsId {
        self.ns
    }

    /// Namespace size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Acquire the shard lock, charging any blocked time to the
    /// contention counter. Uncontended acquisitions cost one `try_lock`.
    fn lock_data(&self) -> parking_lot::MutexGuard<'_, ShardData> {
        if let Some(g) = self.data.try_lock() {
            return g;
        }
        let t = Instant::now();
        let g = self.data.lock();
        self.metrics.lock_wait_ns.add(t.elapsed().as_nanos() as u64);
        g
    }

    /// Gate every data-plane IO on shard health and injected faults.
    /// Disarmed chaos costs one relaxed atomic load here.
    fn fault_check(&self) -> Result<(), SsdError> {
        if self.dead.load(Ordering::Relaxed) {
            self.metrics
                .flight
                .record(FlightKind::ShardDead, 0, 0, self.ns.0 as u64, 0);
            return Err(SsdError::ShardDead(self.ns));
        }
        match self.chaos.decide(FaultSite::ShardIo) {
            Some(FaultAction::ShardBusy) => {
                self.metrics
                    .flight
                    .record(FlightKind::ShardBusy, 0, 0, self.ns.0 as u64, 0);
                Err(SsdError::Busy(self.ns))
            }
            Some(FaultAction::KillShard) => {
                self.kill();
                self.metrics
                    .flight
                    .record(FlightKind::ShardKill, 0, 0, self.ns.0 as u64, 0);
                Err(SsdError::ShardDead(self.ns))
            }
            _ => Ok(()),
        }
    }

    /// Mark the shard dead: all IO fails with [`SsdError::ShardDead`]. The
    /// data is unreachable, as with a failed drive; the runtime's failover
    /// path must re-home the namespace, not retry.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
    }

    /// Bring a killed shard back (tests only — real failover replaces the
    /// namespace instead).
    pub fn revive(&self) {
        self.dead.store(false, Ordering::Relaxed);
    }

    /// Whether the shard has been declared dead.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), SsdError> {
        match offset.checked_add(len) {
            Some(end) if end <= self.size => Ok(()),
            _ => Err(SsdError::Ns(NsError::OutOfRange {
                ns: self.ns,
                offset,
                len,
                size: self.size,
            })),
        }
    }

    /// Zero-copy write: `data` is staged by reference in device RAM; the
    /// payload is copied exactly once, at drain time, into the backing
    /// store.
    pub fn write_bytes(&self, offset: u64, data: Bytes) -> Result<(), SsdError> {
        self.fault_check()?;
        self.check(offset, data.len() as u64)?;
        let _t = self.metrics.write_ns.time();
        let mut d = self.lock_data();
        d.writes += 1;
        d.bytes_written += data.len() as u64;
        d.volatile_bytes += data.len() as u64;
        self.metrics.queue_depth.add(1);
        self.metrics.ram_occupancy.add(data.len() as i64);
        d.volatile.push_back(PendingWrite {
            ns_offset: offset,
            data,
        });
        while d.volatile_bytes > self.ram_budget {
            if !d.drain_one(&self.metrics) {
                break;
            }
        }
        Ok(())
    }

    /// Slice write: stages a copy of `data` (one extra copy vs.
    /// [`NsShard::write_bytes`], counted in `ssd.bytes_copied`).
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<(), SsdError> {
        self.check(offset, data.len() as u64)?;
        let staged = Bytes::copy_from_slice(data);
        self.metrics.bytes_copied.add(staged.len() as u64);
        self.write_bytes(offset, staged)
    }

    /// Overlay pending (still-volatile) writes onto `buf`, which holds the
    /// media contents of `[offset, offset + buf.len())`. FIFO order so
    /// later writes win — the shared read-your-writes step of every read
    /// path.
    fn overlay_volatile(d: &ShardData, offset: u64, buf: &mut [u8]) {
        let start = offset;
        let end = offset + buf.len() as u64;
        for w in &d.volatile {
            let wstart = w.ns_offset;
            let wend = w.ns_offset + w.data.len() as u64;
            let lo = start.max(wstart);
            let hi = end.min(wend);
            if lo < hi {
                let src = (lo - wstart) as usize..(hi - wstart) as usize;
                let dst = (lo - start) as usize..(hi - start) as usize;
                buf[dst].copy_from_slice(&w.data[src]);
            }
        }
    }

    /// Latent media corruption: when an armed plan fires
    /// [`FaultAction::CorruptPayload`] at [`FaultSite::ReplicaBitRot`], one
    /// bit inside the read range flips **in the backing store** before the
    /// read is served. Unlike a wire-level corruption the damage is
    /// persistent — every later read of the byte sees it too — which is
    /// exactly what a scrub/read-repair pass must detect and heal.
    fn bit_rot_check(&self, d: &mut ShardData, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(FaultAction::CorruptPayload) = self.chaos.decide(FaultSite::ReplicaBitRot) {
            let target = offset + len / 2;
            let mut b = [0u8; 1];
            d.store.read(target, &mut b);
            b[0] ^= 0x01;
            d.store.write(target, &b);
            telemetry::instant("ssd", "bit_rot", &[("ns_offset", target)]);
        }
    }

    /// Read into `buf`, observing volatile (read-your-writes) data.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<(), SsdError> {
        self.fault_check()?;
        self.check(offset, buf.len() as u64)?;
        let _t = self.metrics.read_ns.time();
        let mut d = self.lock_data();
        d.reads += 1;
        d.bytes_read += buf.len() as u64;
        self.bit_rot_check(&mut d, offset, buf.len() as u64);
        d.store.read(offset, buf);
        Self::overlay_volatile(&d, offset, buf);
        Ok(())
    }

    /// Read `len` bytes into a fresh vector. Unlike [`NsShard::read`] into
    /// a caller-zeroed buffer, the vector is materialized in one pass by
    /// the backing store (resident pages appended, holes zero-extended) —
    /// no zero-fill-then-overwrite double touch.
    pub fn read_vec(&self, offset: u64, len: usize) -> Result<Vec<u8>, SsdError> {
        self.fault_check()?;
        self.check(offset, len as u64)?;
        let _t = self.metrics.read_ns.time();
        let mut d = self.lock_data();
        d.reads += 1;
        d.bytes_read += len as u64;
        self.bit_rot_check(&mut d, offset, len as u64);
        let mut v = d.store.read_vec(offset, len);
        Self::overlay_volatile(&d, offset, &mut v);
        Ok(v)
    }

    /// Read `len` bytes as an owned [`Bytes`] payload — the vector from
    /// [`NsShard::read_vec`] handed over without a copy.
    pub fn read_bytes(&self, offset: u64, len: usize) -> Result<Bytes, SsdError> {
        self.read_vec(offset, len).map(Bytes::from)
    }

    /// Drain this shard's volatile data to media.
    pub fn flush(&self) {
        self.lock_data().flush(&self.metrics);
    }

    /// Bytes currently held only in this shard's device RAM.
    pub fn volatile_bytes(&self) -> u64 {
        self.lock_data().volatile_bytes
    }

    /// This shard's `(writes, reads, bytes_written, bytes_read)`.
    pub fn io_counters(&self) -> (u64, u64, u64, u64) {
        let d = self.lock_data();
        (d.writes, d.reads, d.bytes_written, d.bytes_read)
    }

    fn power_failure(&self) -> PowerFailure {
        let mut d = self.lock_data();
        let pending = d.volatile_bytes;
        if self.capacitor {
            // An injected PowerCut interrupts the capacitor flush itself:
            // only the first `drain_writes` staged writes reach media, the
            // rest are lost despite power-loss protection (§III-D's failure
            // mode when the capacitor budget is undersized).
            if let Some(FaultAction::PowerCut { drain_writes }) =
                self.chaos.decide(FaultSite::CapacitorFlush)
            {
                for _ in 0..drain_writes {
                    if !d.drain_one(&self.metrics) {
                        break;
                    }
                }
                let drained = pending - d.volatile_bytes;
                let lost = d.volatile_bytes;
                let dropped = d.volatile.len() as i64;
                d.volatile.clear();
                d.volatile_bytes = 0;
                self.metrics.queue_depth.add(-dropped);
                self.metrics.ram_occupancy.add(-(lost as i64));
                self.metrics.capacitor_flush_bytes.add(drained);
                telemetry::instant(
                    "ssd",
                    "capacitor_flush_interrupted",
                    &[("flushed", drained), ("lost", lost)],
                );
                return PowerFailure {
                    flushed_bytes: drained,
                    lost_bytes: lost,
                };
            }
            d.flush(&self.metrics);
            self.metrics.capacitor_flush_bytes.add(pending);
            telemetry::instant("ssd", "capacitor_flush", &[("bytes", pending)]);
            PowerFailure {
                flushed_bytes: pending,
                lost_bytes: 0,
            }
        } else {
            let dropped = d.volatile.len() as i64;
            d.volatile.clear();
            d.volatile_bytes = 0;
            self.metrics.queue_depth.add(-dropped);
            self.metrics.ram_occupancy.add(-(pending as i64));
            telemetry::instant("ssd", "power_loss_drop", &[("bytes", pending)]);
            PowerFailure {
                flushed_bytes: 0,
                lost_bytes: pending,
            }
        }
    }
}

/// The admin plane: namespace table, shard map, and accounting carried
/// over from deleted namespaces. Guarded by the controller lock, which is
/// never held across data-plane IO.
struct Controller {
    namespaces: NamespaceSet,
    shards: HashMap<NsId, Arc<NsShard>>,
    /// Aggregate `(writes, reads, bytes_written, bytes_read)` of deleted
    /// namespaces, so device-lifetime counters never go backwards.
    retired: (u64, u64, u64, u64),
}

/// One simulated NVMe SSD, safe to share (`&self` API): per-namespace
/// shards carry the data plane; a narrow controller lock carries the
/// admin plane.
pub struct Ssd {
    config: SsdConfig,
    ctrl: Mutex<Controller>,
    telemetry: Telemetry,
    metrics: Arc<SsdMetrics>,
}

impl Ssd {
    /// A fresh device reporting into the process-global telemetry
    /// registry.
    pub fn new(config: SsdConfig) -> Self {
        Self::with_telemetry(config, Telemetry::default())
    }

    /// A fresh device reporting into `t`. Tests that assert exact
    /// `ssd.*` counter values pass a private `Telemetry::new()` so
    /// concurrently running tests never share metrics.
    pub fn with_telemetry(config: SsdConfig, t: Telemetry) -> Self {
        let namespaces = NamespaceSet::new(config.capacity);
        let metrics = Arc::new(SsdMetrics::new(&t));
        Ssd {
            config,
            ctrl: Mutex::new(Controller {
                namespaces,
                shards: HashMap::new(),
                retired: (0, 0, 0, 0),
            }),
            telemetry: t,
            metrics,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The telemetry registry this device reports into (`ssd.*` metrics).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshot of the namespace table (for management planes).
    pub fn namespaces(&self) -> NamespaceSet {
        self.ctrl.lock().namespaces.clone()
    }

    /// Create a namespace of `size` bytes, spinning up its shard.
    pub fn create_namespace(&self, size: u64) -> Result<NsId, SsdError> {
        let mut ctrl = self.ctrl.lock();
        let ns = ctrl.namespaces.create(size)?;
        let shard = Arc::new(NsShard::new(
            ns,
            size,
            self.config.device_ram,
            self.config.capacitor,
            Arc::clone(&self.metrics),
            self.config.chaos.clone(),
        ));
        ctrl.shards.insert(ns, shard);
        Ok(ns)
    }

    /// Delete a namespace. Its shard (and data) becomes unreachable, as
    /// with a real NSID delete; its lifetime counters fold into the
    /// device totals.
    pub fn delete_namespace(&self, ns: NsId) -> Result<(), SsdError> {
        let mut ctrl = self.ctrl.lock();
        ctrl.namespaces.delete(ns)?;
        if let Some(shard) = ctrl.shards.remove(&ns) {
            // IO counters fold into the device totals; `ssd.*` telemetry
            // is registry-lifetime and needs no carry-over.
            let (w, r, bw, br) = shard.io_counters();
            ctrl.retired.0 += w;
            ctrl.retired.1 += r;
            ctrl.retired.2 += bw;
            ctrl.retired.3 += br;
        }
        Ok(())
    }

    /// The shard backing one namespace. Data-plane users (the NVMf
    /// target) resolve shards once per connection and then bypass the
    /// controller lock entirely.
    pub fn shard(&self, ns: NsId) -> Result<Arc<NsShard>, SsdError> {
        self.ctrl
            .lock()
            .shards
            .get(&ns)
            .cloned()
            .ok_or(SsdError::Ns(NsError::UnknownNamespace(ns)))
    }

    fn all_shards(&self) -> Vec<Arc<NsShard>> {
        self.ctrl.lock().shards.values().cloned().collect()
    }

    /// Write through a namespace. Data lands in the shard's device RAM
    /// first; the buffer drains FIFO to media when it exceeds the
    /// configured size.
    pub fn write(&self, ns: NsId, offset: u64, data: &[u8]) -> Result<(), SsdError> {
        self.shard(ns)?.write(offset, data)
    }

    /// Zero-copy write through a namespace (see [`NsShard::write_bytes`]).
    pub fn write_bytes(&self, ns: NsId, offset: u64, data: Bytes) -> Result<(), SsdError> {
        self.shard(ns)?.write_bytes(offset, data)
    }

    /// Read through a namespace, observing volatile (read-your-writes)
    /// data.
    pub fn read(&self, ns: NsId, offset: u64, buf: &mut [u8]) -> Result<(), SsdError> {
        self.shard(ns)?.read(offset, buf)
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_vec(&self, ns: NsId, offset: u64, len: usize) -> Result<Vec<u8>, SsdError> {
        self.shard(ns)?.read_vec(offset, len)
    }

    /// Drain all volatile data on every shard (a device-wide flush).
    pub fn flush(&self) {
        for shard in self.all_shards() {
            shard.flush();
        }
    }

    /// Bytes currently held only in device RAM, across all shards.
    pub fn volatile_bytes(&self) -> u64 {
        self.all_shards().iter().map(|s| s.volatile_bytes()).sum()
    }

    /// Simulate a power failure. With enhanced power-loss protection
    /// (capacitors), volatile data flushes to media; without, it is lost.
    pub fn power_failure(&self) -> PowerFailure {
        let mut total = PowerFailure {
            flushed_bytes: 0,
            lost_bytes: 0,
        };
        for shard in self.all_shards() {
            let pf = shard.power_failure();
            total.flushed_bytes += pf.flushed_bytes;
            total.lost_bytes += pf.lost_bytes;
        }
        total
    }

    /// Lifetime IO counters: `(writes, reads, bytes_written, bytes_read)`,
    /// including traffic of since-deleted namespaces.
    pub fn io_counters(&self) -> (u64, u64, u64, u64) {
        let retired = self.ctrl.lock().retired;
        let mut t = retired;
        for shard in self.all_shards() {
            let (w, r, bw, br) = shard.io_counters();
            t.0 += w;
            t.1 += r;
            t.2 += bw;
            t.3 += br;
        }
        t
    }

    /// Per-namespace IO counters `(writes, reads, bytes_written,
    /// bytes_read)` — zero for namespaces that never saw IO.
    pub fn ns_io_counters(&self, ns: NsId) -> (u64, u64, u64, u64) {
        self.shard(ns).map(|s| s.io_counters()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small device with a *private* telemetry registry: `cargo test`
    /// runs tests concurrently in one process, so exact-value assertions
    /// on `ssd.*` metrics must not share the global registry.
    fn small_ssd(capacitor: bool) -> Ssd {
        let config = SsdConfig {
            capacity: 1 << 20,
            device_ram: 4096,
            capacitor,
            ..SsdConfig::default()
        };
        Ssd::with_telemetry(config, Telemetry::new())
    }

    fn ssd_counter(ssd: &Ssd, name: &str) -> u64 {
        ssd.telemetry().snapshot().counter(name)
    }

    #[test]
    fn write_read_roundtrip_through_namespace() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 1000, b"checkpoint-data").unwrap();
        assert_eq!(ssd.read_vec(ns, 1000, 15).unwrap(), b"checkpoint-data");
    }

    #[test]
    fn read_your_writes_from_device_ram() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[7u8; 100]).unwrap();
        assert!(ssd.volatile_bytes() > 0, "write should still be volatile");
        assert_eq!(ssd.read_vec(ns, 0, 100).unwrap(), vec![7u8; 100]);
    }

    #[test]
    fn later_volatile_write_wins_on_overlap() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[1u8; 64]).unwrap();
        ssd.write(ns, 32, &[2u8; 64]).unwrap();
        let v = ssd.read_vec(ns, 0, 96).unwrap();
        assert_eq!(&v[..32], &[1u8; 32]);
        assert_eq!(&v[32..96], &[2u8; 64]);
    }

    #[test]
    fn capacitor_saves_volatile_data_on_power_failure() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[9u8; 2048]).unwrap();
        let pf = ssd.power_failure();
        assert_eq!(pf.flushed_bytes, 2048);
        assert_eq!(pf.lost_bytes, 0);
        assert_eq!(ssd.read_vec(ns, 0, 2048).unwrap(), vec![9u8; 2048]);
    }

    #[test]
    fn no_capacitor_loses_volatile_data() {
        let ssd = small_ssd(false);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[9u8; 2048]).unwrap();
        let pf = ssd.power_failure();
        assert_eq!(pf.lost_bytes, 2048);
        // The data is gone: reads return zeroes.
        assert_eq!(ssd.read_vec(ns, 0, 2048).unwrap(), vec![0u8; 2048]);
    }

    #[test]
    fn buffer_drains_fifo_when_over_capacity() {
        let ssd = small_ssd(false);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        // device_ram is 4096; write 3 x 2048. The first write must have
        // drained to media and thus survives power loss.
        ssd.write(ns, 0, &[1u8; 2048]).unwrap();
        ssd.write(ns, 2048, &[2u8; 2048]).unwrap();
        ssd.write(ns, 4096, &[3u8; 2048]).unwrap();
        assert!(ssd.volatile_bytes() <= 4096);
        ssd.power_failure();
        assert_eq!(ssd.read_vec(ns, 0, 2048).unwrap(), vec![1u8; 2048]);
    }

    #[test]
    fn namespaces_do_not_alias() {
        let ssd = small_ssd(true);
        let a = ssd.create_namespace(4096).unwrap();
        let b = ssd.create_namespace(4096).unwrap();
        ssd.write(a, 0, &[0xAA; 4096]).unwrap();
        ssd.write(b, 0, &[0xBB; 4096]).unwrap();
        ssd.flush();
        assert_eq!(ssd.read_vec(a, 0, 4096).unwrap(), vec![0xAA; 4096]);
        assert_eq!(ssd.read_vec(b, 0, 4096).unwrap(), vec![0xBB; 4096]);
    }

    #[test]
    fn io_counters_accumulate() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(4096).unwrap();
        ssd.write(ns, 0, &[0u8; 100]).unwrap();
        let _ = ssd.read_vec(ns, 0, 50).unwrap();
        assert_eq!(ssd.io_counters(), (1, 1, 100, 50));
    }

    #[test]
    fn per_namespace_accounting_separates_tenants() {
        let ssd = small_ssd(true);
        let a = ssd.create_namespace(8192).unwrap();
        let b = ssd.create_namespace(8192).unwrap();
        ssd.write(a, 0, &[0u8; 100]).unwrap();
        ssd.write(a, 100, &[0u8; 50]).unwrap();
        let _ = ssd.read_vec(b, 0, 64).unwrap();
        assert_eq!(ssd.ns_io_counters(a), (2, 0, 150, 0));
        assert_eq!(ssd.ns_io_counters(b), (0, 1, 0, 64));
        let c = ssd.create_namespace(64).unwrap();
        assert_eq!(ssd.ns_io_counters(c), (0, 0, 0, 0));
    }

    #[test]
    fn out_of_range_io_is_rejected() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(100).unwrap();
        assert!(ssd.write(ns, 90, &[0u8; 20]).is_err());
        let mut buf = [0u8; 20];
        assert!(ssd.read(ns, 90, &mut buf).is_err());
    }

    #[test]
    fn counters_survive_namespace_delete() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(4096).unwrap();
        ssd.write(ns, 0, &[0u8; 128]).unwrap();
        ssd.flush();
        ssd.delete_namespace(ns).unwrap();
        let (w, _, bw, _) = ssd.io_counters();
        assert_eq!((w, bw), (1, 128));
        assert!(ssd_counter(&ssd, "ssd.bytes_copied") >= 128);
    }

    #[test]
    fn zero_copy_write_copies_once_at_drain() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        let payload = Bytes::from(vec![0x5Au8; 8192]);
        ssd.write_bytes(ns, 0, payload).unwrap();
        // 8 KiB exceeds the 4 KiB RAM budget, so the write has fully
        // drained: exactly one copy per byte, into the backing store.
        assert_eq!(ssd_counter(&ssd, "ssd.bytes_copied"), 8192);
        assert_eq!(ssd.read_vec(ns, 0, 8192).unwrap(), vec![0x5Au8; 8192]);
        // The slice path costs one extra staging copy.
        let before = ssd_counter(&ssd, "ssd.bytes_copied");
        ssd.write(ns, 0, &[1u8; 64]).unwrap();
        ssd.flush();
        assert_eq!(ssd_counter(&ssd, "ssd.bytes_copied") - before, 128);
    }

    #[test]
    fn telemetry_tracks_occupancy_drains_and_capacitor_flush() {
        let ssd = small_ssd(true);
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[7u8; 1024]).unwrap();
        let snap = ssd.telemetry().snapshot();
        // The 1 KiB write fits the 4 KiB budget: still staged.
        assert_eq!(snap.gauge("ssd.queue_depth").value, 1);
        assert_eq!(snap.gauge("ssd.ram_occupancy_bytes").value, 1024);
        assert_eq!(snap.histogram("ssd.write_ns").unwrap().count, 1);

        let pf = ssd.power_failure();
        assert_eq!(pf.flushed_bytes, 1024);
        let snap = ssd.telemetry().snapshot();
        assert_eq!(snap.counter("ssd.capacitor_flush_bytes"), 1024);
        assert_eq!(snap.gauge("ssd.queue_depth").value, 0);
        assert_eq!(snap.gauge("ssd.ram_occupancy_bytes").value, 0);
        assert_eq!(snap.gauge("ssd.ram_occupancy_bytes").peak, 1024);
        // Drain latency was observed for the flushed write.
        assert_eq!(snap.histogram("ssd.drain_ns").unwrap().count, 1);
    }

    #[test]
    fn injected_busy_is_transient_kill_is_permanent() {
        let chaos = ChaosHandle::new();
        let config = SsdConfig {
            capacity: 1 << 20,
            device_ram: 4096,
            chaos: chaos.clone(),
            ..SsdConfig::default()
        };
        let ssd = Ssd::with_telemetry(config, Telemetry::new());
        let ns = ssd.create_namespace(64 << 10).unwrap();
        let t = Telemetry::new();

        chaos.arm(
            chaos::FaultPlan::new(1).at_op(FaultSite::ShardIo, FaultAction::ShardBusy, 0),
            &t,
        );
        assert!(matches!(
            ssd.write(ns, 0, &[1u8; 64]),
            Err(SsdError::Busy(_))
        ));
        // Busy is transient: the next attempt succeeds.
        ssd.write(ns, 0, &[1u8; 64]).unwrap();

        chaos.arm(
            chaos::FaultPlan::new(1).at_op(FaultSite::ShardIo, FaultAction::KillShard, 0),
            &t,
        );
        assert!(matches!(
            ssd.write(ns, 0, &[2u8; 64]),
            Err(SsdError::ShardDead(_))
        ));
        chaos.disarm();
        // Dead is permanent, even with chaos disarmed, until revived.
        assert!(matches!(
            ssd.read_vec(ns, 0, 64),
            Err(SsdError::ShardDead(_))
        ));
        let shard = ssd.shard(ns).unwrap();
        assert!(shard.is_dead());
        shard.revive();
        assert_eq!(ssd.read_vec(ns, 0, 64).unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn power_cut_interrupts_capacitor_flush() {
        let chaos = ChaosHandle::new();
        let config = SsdConfig {
            capacity: 1 << 20,
            device_ram: 1 << 20, // large budget: nothing drains early
            capacitor: true,
            chaos: chaos.clone(),
            ..SsdConfig::default()
        };
        let ssd = Ssd::with_telemetry(config, Telemetry::new());
        let ns = ssd.create_namespace(64 << 10).unwrap();
        for i in 0..4u64 {
            ssd.write(ns, i * 1024, &[i as u8 + 1; 1024]).unwrap();
        }
        assert_eq!(ssd.volatile_bytes(), 4096);

        let t = Telemetry::new();
        chaos.arm(
            chaos::FaultPlan::new(2).at_op(
                FaultSite::CapacitorFlush,
                FaultAction::PowerCut { drain_writes: 2 },
                0,
            ),
            &t,
        );
        let pf = ssd.power_failure();
        assert_eq!(pf.flushed_bytes, 2048, "capacitor drained only 2 writes");
        assert_eq!(pf.lost_bytes, 2048, "the rest died with the power");
        chaos.disarm();
        // FIFO drain order: the first two writes survived, the rest read 0.
        assert_eq!(ssd.read_vec(ns, 0, 1024).unwrap(), vec![1u8; 1024]);
        assert_eq!(ssd.read_vec(ns, 1024, 1024).unwrap(), vec![2u8; 1024]);
        assert_eq!(ssd.read_vec(ns, 2048, 1024).unwrap(), vec![0u8; 1024]);
        assert_eq!(ssd.read_vec(ns, 3072, 1024).unwrap(), vec![0u8; 1024]);
    }

    #[test]
    fn injected_bit_rot_is_persistent_and_repairable() {
        let chaos = ChaosHandle::new();
        let config = SsdConfig {
            capacity: 1 << 20,
            device_ram: 4096,
            chaos: chaos.clone(),
            ..SsdConfig::default()
        };
        let ssd = Ssd::with_telemetry(config, Telemetry::new());
        let ns = ssd.create_namespace(64 << 10).unwrap();
        ssd.write(ns, 0, &[0x55u8; 8192]).unwrap();
        ssd.flush();

        let t = Telemetry::new();
        chaos.arm(
            chaos::FaultPlan::new(3).at_op(
                FaultSite::ReplicaBitRot,
                FaultAction::CorruptPayload,
                0,
            ),
            &t,
        );
        // The faulted read itself observes the flip (offset + len/2, low bit).
        let v = ssd.read_vec(ns, 0, 8192).unwrap();
        assert_eq!(v[4096], 0x54, "one bit flipped inside the read range");
        assert_eq!(v.iter().filter(|&&b| b != 0x55).count(), 1);
        chaos.disarm();
        // Latent: the corruption lives on media, not on the wire.
        let v = ssd.read_vec(ns, 0, 8192).unwrap();
        assert_eq!(v[4096], 0x54);
        // A rewrite (read-repair) heals it.
        ssd.write(ns, 4096, &[0x55u8]).unwrap();
        ssd.flush();
        assert_eq!(ssd.read_vec(ns, 0, 8192).unwrap(), vec![0x55u8; 8192]);
    }

    #[test]
    fn shards_are_independently_usable_across_threads() {
        let ssd = std::sync::Arc::new(small_ssd(true));
        let a = ssd.create_namespace(64 << 10).unwrap();
        let b = ssd.create_namespace(64 << 10).unwrap();
        std::thread::scope(|s| {
            for (ns, fill) in [(a, 0xAAu8), (b, 0xBBu8)] {
                let ssd = std::sync::Arc::clone(&ssd);
                s.spawn(move || {
                    let shard = ssd.shard(ns).unwrap();
                    for i in 0..64u64 {
                        shard.write(i * 512, &[fill; 512]).unwrap();
                    }
                    shard.flush();
                });
            }
        });
        assert_eq!(ssd.read_vec(a, 0, 512).unwrap(), vec![0xAAu8; 512]);
        assert_eq!(ssd.read_vec(b, 63 * 512, 512).unwrap(), vec![0xBBu8; 512]);
    }
}
