//! NVMe namespaces: the isolation granule of the paper's security model.
//!
//! §III-F "Security Model": *"All SSDs are divided into at least two
//! namespaces. The job scheduler assigns storage to jobs at the granularity
//! of an NVMe namespace... relying on the isolation property of namespaces
//! to maintain security."*
//!
//! `NamespaceSet` manages contiguous LBA ranges on one device: creation from
//! free space (first-fit), deletion back to free space with coalescing, and
//! translation of namespace-relative offsets to device offsets with strict
//! bounds enforcement — a namespace can never read or write another's bytes.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one namespace on one device (NSID in NVMe terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NsId(pub u32);

/// Namespace-management failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsError {
    /// Not enough contiguous free space for the requested size.
    NoSpace { requested: u64, largest_free: u64 },
    /// Unknown namespace id.
    UnknownNamespace(NsId),
    /// IO outside the namespace's range.
    OutOfRange {
        ns: NsId,
        offset: u64,
        len: u64,
        size: u64,
    },
    /// Device has hit its namespace-count limit.
    TooManyNamespaces { limit: u32 },
}

impl fmt::Display for NsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsError::NoSpace { requested, largest_free } => write!(
                f,
                "no contiguous space for namespace of {requested} bytes (largest free extent: {largest_free})"
            ),
            NsError::UnknownNamespace(id) => write!(f, "unknown namespace {id:?}"),
            NsError::OutOfRange { ns, offset, len, size } => write!(
                f,
                "IO [{offset}, {}) exceeds namespace {ns:?} of size {size}",
                offset + len
            ),
            NsError::TooManyNamespaces { limit } => {
                write!(f, "device supports at most {limit} namespaces")
            }
        }
    }
}

impl std::error::Error for NsError {}

#[derive(Debug, Clone)]
struct Extent {
    start: u64,
    size: u64,
}

/// Namespace table for one device.
#[derive(Debug, Clone)]
pub struct NamespaceSet {
    capacity: u64,
    /// Namespace-count limit (NVMe devices support a bounded NSID table;
    /// the paper notes the count is limited but bandwidth is the practical
    /// sharing limit, §III-F).
    limit: u32,
    next_id: u32,
    active: BTreeMap<NsId, Extent>,
    /// Free extents keyed by start offset, kept coalesced.
    free: BTreeMap<u64, u64>,
}

impl NamespaceSet {
    /// An empty table over `capacity` bytes with the NVMe-typical limit of
    /// 128 namespaces.
    pub fn new(capacity: u64) -> Self {
        Self::with_limit(capacity, 128)
    }

    /// An empty table with an explicit namespace-count limit.
    pub fn with_limit(capacity: u64, limit: u32) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        NamespaceSet {
            capacity,
            limit,
            next_id: 1,
            active: BTreeMap::new(),
            free,
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of active namespaces.
    pub fn count(&self) -> usize {
        self.active.len()
    }

    /// Total unallocated bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// Size of one namespace.
    pub fn size_of(&self, ns: NsId) -> Result<u64, NsError> {
        self.active
            .get(&ns)
            .map(|e| e.size)
            .ok_or(NsError::UnknownNamespace(ns))
    }

    /// Create a namespace of `size` bytes from free space (first-fit), as
    /// the scheduler does when a job requests storage and no free namespace
    /// exists ("new ones are created from unused SSD space", §III-F).
    pub fn create(&mut self, size: u64) -> Result<NsId, NsError> {
        assert!(size > 0, "namespace size must be positive");
        if self.active.len() as u32 >= self.limit {
            return Err(NsError::TooManyNamespaces { limit: self.limit });
        }
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= size)
            .map(|(&start, &len)| (start, len));
        let Some((start, len)) = slot else {
            let largest = self.free.values().copied().max().unwrap_or(0);
            return Err(NsError::NoSpace {
                requested: size,
                largest_free: largest,
            });
        };
        self.free.remove(&start);
        if len > size {
            self.free.insert(start + size, len - size);
        }
        let id = NsId(self.next_id);
        self.next_id += 1;
        self.active.insert(id, Extent { start, size });
        Ok(id)
    }

    /// Delete a namespace, returning its extent to free space (coalescing
    /// with neighbours).
    pub fn delete(&mut self, ns: NsId) -> Result<(), NsError> {
        let ext = self
            .active
            .remove(&ns)
            .ok_or(NsError::UnknownNamespace(ns))?;
        let mut start = ext.start;
        let mut size = ext.size;
        // Coalesce with the preceding free extent.
        if let Some((&pstart, &plen)) = self.free.range(..start).next_back() {
            if pstart + plen == start {
                self.free.remove(&pstart);
                start = pstart;
                size += plen;
            }
        }
        // Coalesce with the following free extent.
        if let Some(&nlen) = self.free.get(&(start + size)) {
            self.free.remove(&(start + size));
            size += nlen;
        }
        self.free.insert(start, size);
        Ok(())
    }

    /// Translate a namespace-relative IO to a device offset, enforcing
    /// isolation.
    pub fn translate(&self, ns: NsId, offset: u64, len: u64) -> Result<u64, NsError> {
        let ext = self.active.get(&ns).ok_or(NsError::UnknownNamespace(ns))?;
        let end = offset.checked_add(len);
        match end {
            Some(e) if e <= ext.size => Ok(ext.start + offset),
            _ => Err(NsError::OutOfRange {
                ns,
                offset,
                len,
                size: ext.size,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn create_and_translate() {
        let mut t = NamespaceSet::new(1000);
        let a = t.create(400).unwrap();
        let b = t.create(400).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.translate(a, 0, 10).unwrap(), 0);
        assert_eq!(t.translate(b, 0, 10).unwrap(), 400);
        assert_eq!(t.free_bytes(), 200);
    }

    #[test]
    fn isolation_is_enforced() {
        let mut t = NamespaceSet::new(1000);
        let a = t.create(100).unwrap();
        // Reaching one byte past the end is rejected.
        assert!(matches!(
            t.translate(a, 99, 2),
            Err(NsError::OutOfRange { .. })
        ));
        assert!(t.translate(a, 99, 1).is_ok());
        // Offset arithmetic overflow is rejected, not wrapped.
        assert!(t.translate(a, u64::MAX, 2).is_err());
    }

    #[test]
    fn delete_coalesces_free_space() {
        let mut t = NamespaceSet::new(300);
        let a = t.create(100).unwrap();
        let b = t.create(100).unwrap();
        let c = t.create(100).unwrap();
        assert!(t.create(1).is_err());
        // Free the middle, then the first: extents must coalesce so a
        // 200-byte namespace fits again.
        t.delete(b).unwrap();
        t.delete(a).unwrap();
        let d = t.create(200).unwrap();
        assert_eq!(t.translate(d, 0, 1).unwrap(), 0);
        t.delete(c).unwrap();
        t.delete(d).unwrap();
        assert_eq!(t.free_bytes(), 300);
        // Fully coalesced: one extent covering the device.
        let e = t.create(300).unwrap();
        assert_eq!(t.translate(e, 0, 300).unwrap(), 0);
    }

    #[test]
    fn namespace_limit() {
        let mut t = NamespaceSet::with_limit(1000, 2);
        t.create(10).unwrap();
        t.create(10).unwrap();
        assert!(matches!(
            t.create(10),
            Err(NsError::TooManyNamespaces { limit: 2 })
        ));
    }

    #[test]
    fn no_space_reports_largest_extent() {
        let mut t = NamespaceSet::new(100);
        let _a = t.create(60).unwrap();
        match t.create(50) {
            Err(NsError::NoSpace { largest_free, .. }) => assert_eq!(largest_free, 40),
            other => panic!("unexpected: {other:?}"),
        }
    }

    proptest! {
        /// Active extents never overlap and, with free space, always tile
        /// the device exactly.
        #[test]
        fn prop_extents_partition_device(
            ops in proptest::collection::vec((1u64..200, any::<bool>()), 1..60)
        ) {
            let mut t = NamespaceSet::new(4096);
            let mut live: Vec<NsId> = Vec::new();
            for (size, del) in ops {
                if del && !live.is_empty() {
                    let id = live.remove(live.len() / 2);
                    t.delete(id).unwrap();
                } else if let Ok(id) = t.create(size) {
                    live.push(id);
                }
                // Check the partition invariant.
                let mut extents: Vec<(u64, u64)> = live
                    .iter()
                    .map(|&id| {
                        let sz = t.size_of(id).unwrap();
                        (t.translate(id, 0, 0).unwrap(), sz)
                    })
                    .collect();
                for (&fs, &fl) in t.free.iter() {
                    extents.push((fs, fl));
                }
                extents.sort_unstable();
                let mut cursor = 0;
                for (s, l) in extents {
                    prop_assert_eq!(s, cursor, "gap or overlap at {}", cursor);
                    cursor = s + l;
                }
                prop_assert_eq!(cursor, 4096);
            }
        }
    }
}
