//! Cluster topology: racks, nodes, and switch-hop distances.
//!
//! The model is a two-level fat tree: nodes attach to their rack's top-of-
//! rack (ToR) switch, and ToR switches attach to a spine. Hop distances are
//! therefore 0 (same node), 2 (same rack), or 4 (cross-rack) — enough
//! structure for the storage balancer's "fewest hops away" greedy placement
//! and for failure-domain derivation, which both key off rack sharing.

/// Identifier of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a rack (also its power distribution unit in the default
/// one-PDU-per-rack wiring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u32);

/// Identifier of a pod (a group of racks under one aggregation switch in
/// the three-level fat tree; racks outside any pod attach directly to the
/// spine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PodId(pub u32);

/// Role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Runs application ranks; `cores` of them per node.
    Compute {
        /// Application processes the node can host.
        cores: u32,
    },
    /// Hosts NVMe SSDs behind an NVMf target daemon.
    Storage {
        /// SSDs attached to the node.
        ssds: u32,
    },
}

#[derive(Debug, Clone)]
struct Node {
    rack: RackId,
    kind: NodeKind,
}

/// An immutable cluster description.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    racks: u32,
    /// Pod of each rack (None: the rack's ToR uplinks straight to the
    /// spine, the two-level default).
    rack_pods: Vec<Option<PodId>>,
}

/// Incremental [`Topology`] construction.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    racks: u32,
    rack_pods: Vec<Option<PodId>>,
}

impl TopologyBuilder {
    /// Add a rack of `n` identical nodes; returns its id.
    pub fn rack(&mut self, n: u32, kind: NodeKind) -> RackId {
        self.rack_in_pod(n, kind, None)
    }

    /// Add a rack inside a pod (three-level fat tree); returns its id.
    pub fn rack_in_pod(&mut self, n: u32, kind: NodeKind, pod: Option<PodId>) -> RackId {
        let rack = RackId(self.racks);
        self.racks += 1;
        self.rack_pods.push(pod);
        for _ in 0..n {
            self.nodes.push(Node { rack, kind });
        }
        rack
    }

    /// Finish construction.
    pub fn build(self) -> Topology {
        assert!(!self.nodes.is_empty(), "topology needs at least one node");
        Topology {
            nodes: self.nodes,
            racks: self.racks,
            rack_pods: self.rack_pods,
        }
    }
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The paper's evaluation cluster (§IV-A): one compute rack of 16
    /// nodes × 28 cores and one storage rack of 8 nodes × 1 SSD.
    pub fn paper_testbed() -> Topology {
        let mut b = Topology::builder();
        b.rack(16, NodeKind::Compute { cores: 28 });
        b.rack(8, NodeKind::Storage { ssds: 1 });
        b.build()
    }

    /// A larger synthetic cluster for scaling studies: `compute_racks` ×
    /// `nodes_per_rack` compute nodes and `storage_racks` × `nodes_per_rack`
    /// storage nodes.
    pub fn synthetic(
        compute_racks: u32,
        storage_racks: u32,
        nodes_per_rack: u32,
        cores: u32,
    ) -> Topology {
        let mut b = Topology::builder();
        for _ in 0..compute_racks {
            b.rack(nodes_per_rack, NodeKind::Compute { cores });
        }
        for _ in 0..storage_racks {
            b.rack(nodes_per_rack, NodeKind::Storage { ssds: 1 });
        }
        b.build()
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total rack count.
    pub fn rack_count(&self) -> u32 {
        self.racks
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The rack a node lives in.
    pub fn rack_of(&self, n: NodeId) -> RackId {
        self.nodes[n.0 as usize].rack
    }

    /// The node's role.
    pub fn kind_of(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0 as usize].kind
    }

    /// All compute nodes.
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| matches!(self.kind_of(n), NodeKind::Compute { .. }))
            .collect()
    }

    /// All storage nodes.
    pub fn storage_nodes(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| matches!(self.kind_of(n), NodeKind::Storage { .. }))
            .collect()
    }

    /// Cores on a compute node (0 for storage nodes).
    pub fn cores_of(&self, n: NodeId) -> u32 {
        match self.kind_of(n) {
            NodeKind::Compute { cores } => cores,
            NodeKind::Storage { .. } => 0,
        }
    }

    /// Total application ranks the cluster can host.
    pub fn total_cores(&self) -> u32 {
        self.nodes().map(|n| self.cores_of(n)).sum()
    }

    /// The pod a rack belongs to, if the topology is three-level.
    pub fn pod_of(&self, r: RackId) -> Option<PodId> {
        self.rack_pods[r.0 as usize]
    }

    /// Switch hops between two nodes: 0 same node, 2 same rack (via the
    /// ToR), 4 same pod (via the aggregation switch), 6 cross-pod (via
    /// the spine). In the two-level default every cross-rack pair is 4.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            0
        } else if self.rack_of(a) == self.rack_of(b) {
            2
        } else {
            self.rack_hops(self.rack_of(a), self.rack_of(b))
        }
    }

    /// Hops between two racks: 0 same rack; 4 same pod (or two-level
    /// tree); 6 across pods.
    pub fn rack_hops(&self, a: RackId, b: RackId) -> u32 {
        if a == b {
            return 0;
        }
        match (self.pod_of(a), self.pod_of(b)) {
            (Some(pa), Some(pb)) if pa == pb => 4,
            (Some(_), Some(_)) => 6,
            // Mixed or two-level wiring: one spine crossing.
            _ => 4,
        }
    }

    /// A three-level fat tree: `pods` pods, each holding `compute_racks`
    /// compute racks and `storage_racks` storage racks of `nodes_per_rack`
    /// nodes (compute nodes carry `cores`, storage nodes one SSD).
    pub fn fat_tree(
        pods: u32,
        compute_racks: u32,
        storage_racks: u32,
        nodes_per_rack: u32,
        cores: u32,
    ) -> Topology {
        assert!(pods > 0);
        let mut b = Topology::builder();
        for p in 0..pods {
            for _ in 0..compute_racks {
                b.rack_in_pod(nodes_per_rack, NodeKind::Compute { cores }, Some(PodId(p)));
            }
            for _ in 0..storage_racks {
                b.rack_in_pod(
                    nodes_per_rack,
                    NodeKind::Storage { ssds: 1 },
                    Some(PodId(p)),
                );
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.node_count(), 24);
        assert_eq!(t.rack_count(), 2);
        assert_eq!(t.compute_nodes().len(), 16);
        assert_eq!(t.storage_nodes().len(), 8);
        assert_eq!(t.total_cores(), 448);
    }

    #[test]
    fn hop_distances() {
        let t = Topology::paper_testbed();
        let c = t.compute_nodes();
        let s = t.storage_nodes();
        assert_eq!(t.hops(c[0], c[0]), 0);
        assert_eq!(t.hops(c[0], c[1]), 2); // same rack
        assert_eq!(t.hops(c[0], s[0]), 4); // cross rack
        assert_eq!(t.rack_hops(t.rack_of(c[0]), t.rack_of(s[0])), 4);
    }

    #[test]
    fn synthetic_builder() {
        let t = Topology::synthetic(4, 2, 8, 32);
        assert_eq!(t.rack_count(), 6);
        assert_eq!(t.compute_nodes().len(), 32);
        assert_eq!(t.storage_nodes().len(), 16);
        assert_eq!(t.total_cores(), 32 * 32);
    }

    #[test]
    fn storage_nodes_have_no_cores() {
        let t = Topology::paper_testbed();
        for n in t.storage_nodes() {
            assert_eq!(t.cores_of(n), 0);
            assert!(matches!(t.kind_of(n), NodeKind::Storage { ssds: 1 }));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_topology_rejected() {
        let _ = Topology::builder().build();
    }

    #[test]
    fn fat_tree_hop_hierarchy() {
        // 2 pods x (1 compute rack + 1 storage rack) x 2 nodes.
        let t = Topology::fat_tree(2, 1, 1, 2, 28);
        assert_eq!(t.rack_count(), 4);
        let c = t.compute_nodes();
        let s = t.storage_nodes();
        // Same rack: 2 hops.
        assert_eq!(t.hops(c[0], c[1]), 2);
        // Same pod, different rack: 4 hops (compute rack 0 + storage rack
        // 1 are both pod 0).
        assert_eq!(t.hops(c[0], s[0]), 4);
        // Cross-pod: 6 hops.
        assert_eq!(t.hops(c[0], s[2]), 6);
        assert_eq!(t.pod_of(t.rack_of(c[0])), Some(PodId(0)));
        assert_eq!(t.pod_of(t.rack_of(c[2])), Some(PodId(1)));
    }

    #[test]
    fn two_level_topologies_are_unchanged() {
        let t = Topology::paper_testbed();
        let c = t.compute_nodes();
        let s = t.storage_nodes();
        assert_eq!(t.hops(c[0], s[0]), 4);
        assert_eq!(t.pod_of(t.rack_of(c[0])), None);
    }

    #[test]
    fn fat_tree_partner_selection_prefers_same_pod() {
        // The scheduler's greedy hop-sorted storage choice should pick the
        // same-pod storage rack first.
        use crate::failure::FailureDomains;
        let t = Topology::fat_tree(2, 1, 1, 4, 28);
        let fd = FailureDomains::derive(&t);
        // Compute rack of pod 0 is domain 0; its storage racks are domain
        // 1 (pod 0) and domain 3 (pod 1). Partner list must start with the
        // 4-hop same-pod domains before the 6-hop cross-pod ones.
        let partners = fd.partners_of(crate::failure::DomainId(0));
        let hops: Vec<u32> = partners
            .iter()
            .map(|d| t.rack_hops(RackId(0), RackId(d.0)))
            .collect();
        for w in hops.windows(2) {
            assert!(w[0] <= w[1], "partners must be hop-sorted: {hops:?}");
        }
        assert_eq!(hops[0], 4);
        assert_eq!(*hops.last().unwrap(), 6);
    }
}
