//! Failure domains and partner-domain selection.
//!
//! §III-F: *"we identify the failure domains for each node by using the
//! network topology. Nodes which share hardware are placed in the same
//! domain... Next, we create partner failure domains, such that nodes in
//! both partners are in separate failure domains. For each failure domain,
//! we create a list of partner domains sorted by the number of switch hops
//! between them."*
//!
//! In the default wiring a rack and its PDU coincide, so a failure domain
//! is a rack; the abstraction still carries its own id type because the
//! balancer's correctness argument ("checkpoint data lives in a different
//! failure domain than the process") is about domains, not racks.

use crate::topology::{NodeId, RackId, Topology};

/// Identifier of a failure domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

/// Failure-domain map derived from a topology.
#[derive(Debug, Clone)]
pub struct FailureDomains {
    /// domain of each node, indexed by node id.
    node_domain: Vec<DomainId>,
    /// partner lists: for each domain, the other domains sorted by hop
    /// distance (closest first), ties broken by domain id for determinism.
    partners: Vec<Vec<DomainId>>,
}

impl FailureDomains {
    /// Derive domains from `topo`: nodes sharing a rack/PDU share a domain.
    pub fn derive(topo: &Topology) -> Self {
        let node_domain = topo
            .nodes()
            .map(|n| DomainId(topo.rack_of(n).0))
            .collect::<Vec<_>>();
        let n_domains = topo.rack_count();
        let mut partners = Vec::with_capacity(n_domains as usize);
        for d in 0..n_domains {
            let mut others: Vec<DomainId> =
                (0..n_domains).filter(|&o| o != d).map(DomainId).collect();
            others.sort_by_key(|&o| (topo.rack_hops(RackId(d), RackId(o.0)), o.0));
            partners.push(others);
        }
        FailureDomains {
            node_domain,
            partners,
        }
    }

    /// The domain of one node.
    pub fn domain_of(&self, n: NodeId) -> DomainId {
        self.node_domain[n.0 as usize]
    }

    /// Number of domains.
    pub fn domain_count(&self) -> usize {
        self.partners.len()
    }

    /// Partner domains of `d`, closest first. Every entry is a *different*
    /// domain, so data placed on a partner always survives the loss of `d`.
    pub fn partners_of(&self, d: DomainId) -> &[DomainId] {
        &self.partners[d.0 as usize]
    }

    /// Whether two nodes are in separate failure domains.
    pub fn separated(&self, a: NodeId, b: NodeId) -> bool {
        self.domain_of(a) != self.domain_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rack_sharing_means_domain_sharing() {
        let topo = Topology::paper_testbed();
        let fd = FailureDomains::derive(&topo);
        let c = topo.compute_nodes();
        let s = topo.storage_nodes();
        assert_eq!(fd.domain_of(c[0]), fd.domain_of(c[15]));
        assert_eq!(fd.domain_of(s[0]), fd.domain_of(s[7]));
        assert!(fd.separated(c[0], s[0]));
    }

    #[test]
    fn partners_never_include_self() {
        let topo = Topology::synthetic(3, 3, 4, 28);
        let fd = FailureDomains::derive(&topo);
        for d in 0..fd.domain_count() as u32 {
            let d = DomainId(d);
            assert!(!fd.partners_of(d).contains(&d));
            assert_eq!(fd.partners_of(d).len(), fd.domain_count() - 1);
        }
    }

    #[test]
    fn partners_sorted_by_hops_then_id() {
        // All cross-rack pairs are 4 hops in the two-level tree, so the
        // order degenerates to domain id — still deterministic.
        let topo = Topology::synthetic(2, 2, 4, 28);
        let fd = FailureDomains::derive(&topo);
        let p = fd.partners_of(DomainId(2));
        assert_eq!(p, &[DomainId(0), DomainId(1), DomainId(3)]);
    }

    proptest! {
        /// Partner lists are a permutation of "all other domains" for any
        /// cluster shape.
        #[test]
        fn prop_partner_lists_complete(cr in 1u32..5, sr in 1u32..5, npr in 1u32..6) {
            let topo = Topology::synthetic(cr, sr, npr, 4);
            let fd = FailureDomains::derive(&topo);
            let n = fd.domain_count() as u32;
            for d in 0..n {
                let mut p: Vec<u32> = fd.partners_of(DomainId(d)).iter().map(|x| x.0).collect();
                p.sort_unstable();
                let expected: Vec<u32> = (0..n).filter(|&o| o != d).collect();
                prop_assert_eq!(p, expected);
            }
        }
    }
}
