//! Slurm-like job scheduler with NVMe-namespace generic resources.
//!
//! §III-F: *"The job scheduler assigns storage to jobs at the granularity of
//! an NVMe namespace... by using Slurm's generic resources plugin, we were
//! able to support this design on our cluster easily."* and *"Storage
//! devices for a job are allocated on the closest (fewest hops away)
//! available partner domain."*
//!
//! The scheduler owns compute-node occupancy and per-SSD namespace slots.
//! It places ranks block-wise onto compute nodes and grants storage from
//! partner failure domains in hop order. Partitioning of each granted
//! namespace among ranks is the storage balancer's job (in the `nvmecr`
//! crate), not the scheduler's.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::failure::{DomainId, FailureDomains};
use crate::topology::{NodeId, NodeKind, Topology};

/// Identifier of a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

/// What a job asks for.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Total application ranks.
    pub procs: u32,
    /// Ranks per compute node (the paper runs full-subscription: 28).
    pub procs_per_node: u32,
    /// Checkpoint storage devices requested. The paper sizes this so the
    /// process:SSD ratio falls in 56–112 (§III-F).
    pub storage_devices: u32,
}

impl JobRequest {
    /// A full-subscription request on 28-core nodes with the paper's
    /// recommended process:SSD ratio (~112 at the top end, at least 1).
    pub fn full_subscription(procs: u32) -> Self {
        JobRequest {
            procs,
            procs_per_node: 28,
            storage_devices: procs.div_ceil(112).max(1),
        }
    }
}

/// One granted storage device share: a namespace slot on an SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageGrant {
    /// The storage node hosting the SSD.
    pub node: NodeId,
    /// Which SSD on that node.
    pub ssd: u32,
    /// Namespace slot index on that SSD (unique per concurrent job).
    pub slot: u32,
}

/// A satisfied allocation.
#[derive(Debug, Clone)]
pub struct JobAllocation {
    /// The job's id.
    pub id: JobId,
    /// Rank → compute node placement (index = rank).
    pub rank_nodes: Vec<NodeId>,
    /// Granted storage shares, in balancer-visible order.
    pub storage: Vec<StorageGrant>,
}

impl JobAllocation {
    /// Compute nodes used, deduplicated in rank order.
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for &n in &self.rank_nodes {
            if seen.insert(n) {
                out.push(n);
            }
        }
        out
    }
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// Not enough idle compute nodes.
    NotEnoughCompute { needed: u32, available: u32 },
    /// Not enough free namespace slots on partner-domain storage.
    NotEnoughStorage { needed: u32, available: u32 },
    /// Request is malformed (zero procs, zero per-node, ...).
    BadRequest(String),
    /// Unknown job id on release.
    UnknownJob(JobId),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::NotEnoughCompute { needed, available } => {
                write!(f, "need {needed} compute nodes, {available} available")
            }
            SchedulerError::NotEnoughStorage { needed, available } => {
                write!(f, "need {needed} storage namespaces, {available} available")
            }
            SchedulerError::BadRequest(e) => write!(f, "bad request: {e}"),
            SchedulerError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
        }
    }
}

impl std::error::Error for SchedulerError {}

struct SsdState {
    /// Free namespace slots (the gres counter).
    free_slots: u32,
    next_slot: u32,
}

/// The cluster scheduler.
pub struct Scheduler {
    topo: Topology,
    domains: FailureDomains,
    busy_compute: BTreeSet<NodeId>,
    /// (storage node, ssd index) → slot state.
    ssds: BTreeMap<(NodeId, u32), SsdState>,
    jobs: BTreeMap<JobId, JobAllocation>,
    /// FIFO backlog of jobs waiting for resources.
    pending: std::collections::VecDeque<(JobId, JobRequest)>,
    next_job: u32,
}

impl Scheduler {
    /// A scheduler over `topo` with `namespaces_per_ssd` gres slots per SSD.
    pub fn new(topo: Topology, namespaces_per_ssd: u32) -> Self {
        let domains = FailureDomains::derive(&topo);
        let mut ssds = BTreeMap::new();
        for n in topo.storage_nodes() {
            if let NodeKind::Storage { ssds: count } = topo.kind_of(n) {
                for s in 0..count {
                    ssds.insert(
                        (n, s),
                        SsdState {
                            free_slots: namespaces_per_ssd,
                            next_slot: 0,
                        },
                    );
                }
            }
        }
        Scheduler {
            topo,
            domains,
            busy_compute: BTreeSet::new(),
            ssds,
            jobs: BTreeMap::new(),
            pending: std::collections::VecDeque::new(),
            next_job: 0,
        }
    }

    /// The topology being scheduled.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The failure-domain map.
    pub fn domains(&self) -> &FailureDomains {
        &self.domains
    }

    /// Idle compute node count.
    pub fn free_compute_nodes(&self) -> u32 {
        (self.topo.compute_nodes().len() - self.busy_compute.len()) as u32
    }

    /// Total free namespace slots.
    pub fn free_storage_slots(&self) -> u32 {
        self.ssds.values().map(|s| s.free_slots).sum()
    }

    /// Allocate a job or explain why not.
    pub fn submit(&mut self, req: &JobRequest) -> Result<JobAllocation, SchedulerError> {
        if req.procs == 0 || req.procs_per_node == 0 {
            return Err(SchedulerError::BadRequest(
                "procs and procs_per_node must be positive".into(),
            ));
        }
        if req.storage_devices == 0 {
            return Err(SchedulerError::BadRequest(
                "checkpointing jobs must request at least one storage device".into(),
            ));
        }
        let nodes_needed = req.procs.div_ceil(req.procs_per_node);
        // 1. Compute nodes: first-fit over idle nodes in id order (racks are
        // contiguous, so this packs rack-by-rack like Slurm's default).
        let free: Vec<NodeId> = self
            .topo
            .compute_nodes()
            .into_iter()
            .filter(|n| !self.busy_compute.contains(n))
            .collect();
        if (free.len() as u32) < nodes_needed {
            return Err(SchedulerError::NotEnoughCompute {
                needed: nodes_needed,
                available: free.len() as u32,
            });
        }
        let chosen: Vec<NodeId> = free[..nodes_needed as usize].to_vec();
        // 2. Job failure domains and partner ordering.
        let job_domains: BTreeSet<DomainId> =
            chosen.iter().map(|&n| self.domains.domain_of(n)).collect();
        // Candidate storage devices: on partner domains only (never sharing
        // a failure domain with any compute node of the job), ordered by
        // minimum hop distance to the job's nodes, then node id.
        let mut candidates: Vec<(u32, NodeId, u32)> = self
            .ssds
            .iter()
            .filter(|((node, _), st)| {
                st.free_slots > 0 && !job_domains.contains(&self.domains.domain_of(*node))
            })
            .map(|((node, ssd), _)| {
                let hops = chosen
                    .iter()
                    .map(|&c| self.topo.hops(c, *node))
                    .min()
                    .unwrap_or(u32::MAX);
                (hops, *node, *ssd)
            })
            .collect();
        candidates.sort_unstable_by_key(|&(h, n, s)| (h, n, s));
        if (candidates.len() as u32) < req.storage_devices {
            return Err(SchedulerError::NotEnoughStorage {
                needed: req.storage_devices,
                available: candidates.len() as u32,
            });
        }
        // 3. Commit.
        let mut storage = Vec::with_capacity(req.storage_devices as usize);
        for &(_, node, ssd) in candidates.iter().take(req.storage_devices as usize) {
            let st = self.ssds.get_mut(&(node, ssd)).expect("candidate exists");
            st.free_slots -= 1;
            let slot = st.next_slot;
            st.next_slot += 1;
            storage.push(StorageGrant { node, ssd, slot });
        }
        for &n in &chosen {
            self.busy_compute.insert(n);
        }
        let mut rank_nodes = Vec::with_capacity(req.procs as usize);
        'outer: for &n in &chosen {
            for _ in 0..req.procs_per_node {
                rank_nodes.push(n);
                if rank_nodes.len() as u32 == req.procs {
                    break 'outer;
                }
            }
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        let alloc = JobAllocation {
            id,
            rank_nodes,
            storage,
        };
        self.jobs.insert(id, alloc.clone());
        Ok(alloc)
    }

    /// Release a completed job's resources.
    pub fn release(&mut self, id: JobId) -> Result<(), SchedulerError> {
        let alloc = self
            .jobs
            .remove(&id)
            .ok_or(SchedulerError::UnknownJob(id))?;
        for n in alloc.compute_nodes() {
            self.busy_compute.remove(&n);
        }
        for g in &alloc.storage {
            if let Some(st) = self.ssds.get_mut(&(g.node, g.ssd)) {
                st.free_slots += 1;
            }
        }
        Ok(())
    }

    /// Submit with queueing: if resources are unavailable the request
    /// joins a FIFO backlog and is admitted by a later
    /// [`drain_backlog`](Self::drain_backlog). Returns the ticket id and,
    /// if it ran immediately, the allocation.
    pub fn submit_or_queue(
        &mut self,
        req: &JobRequest,
    ) -> Result<(JobId, Option<JobAllocation>), SchedulerError> {
        // Strict FIFO: a non-empty backlog means new arrivals queue behind
        // it even if they would fit right now (no backfill).
        if self.pending.is_empty() {
            match self.submit(req) {
                Ok(alloc) => return Ok((alloc.id, Some(alloc))),
                Err(SchedulerError::NotEnoughCompute { .. })
                | Err(SchedulerError::NotEnoughStorage { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        let ticket = JobId(self.next_job);
        self.next_job += 1;
        self.pending.push_back((ticket, req.clone()));
        Ok((ticket, None))
    }

    /// Jobs waiting in the backlog.
    pub fn backlog_len(&self) -> usize {
        self.pending.len()
    }

    /// Admit queued jobs in FIFO order while resources allow (callers
    /// typically invoke this after each [`release`](Self::release)).
    /// Returns the admitted `(ticket, allocation)` pairs; the allocation
    /// carries the scheduler-assigned job id, which replaces the ticket.
    pub fn drain_backlog(&mut self) -> Vec<(JobId, JobAllocation)> {
        let mut admitted = Vec::new();
        while let Some((ticket, req)) = self.pending.front().cloned() {
            match self.submit(&req) {
                Ok(alloc) => {
                    self.pending.pop_front();
                    admitted.push((ticket, alloc));
                }
                Err(_) => break, // strict FIFO: head-of-line blocks
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sched() -> Scheduler {
        Scheduler::new(Topology::paper_testbed(), 4)
    }

    #[test]
    fn full_subscription_448() {
        let mut s = sched();
        let alloc = s.submit(&JobRequest::full_subscription(448)).unwrap();
        assert_eq!(alloc.rank_nodes.len(), 448);
        assert_eq!(alloc.compute_nodes().len(), 16);
        assert_eq!(alloc.storage.len(), 4); // 448 / 112
        assert_eq!(s.free_compute_nodes(), 0);
    }

    #[test]
    fn storage_always_on_partner_domains() {
        let mut s = sched();
        let alloc = s.submit(&JobRequest::full_subscription(112)).unwrap();
        let fd = FailureDomains::derive(&Topology::paper_testbed());
        for g in &alloc.storage {
            for &r in &alloc.rank_nodes {
                assert!(
                    fd.separated(r, g.node),
                    "grant {:?} shares a failure domain with rank node {:?}",
                    g,
                    r
                );
            }
        }
    }

    #[test]
    fn gres_slots_deplete_and_release() {
        let mut s = Scheduler::new(Topology::paper_testbed(), 1);
        // 8 SSDs x 1 slot each.
        assert_eq!(s.free_storage_slots(), 8);
        let a = s
            .submit(&JobRequest {
                procs: 28,
                procs_per_node: 28,
                storage_devices: 8,
            })
            .unwrap();
        assert_eq!(s.free_storage_slots(), 0);
        // A second job cannot get storage.
        let err = s
            .submit(&JobRequest {
                procs: 28,
                procs_per_node: 28,
                storage_devices: 1,
            })
            .unwrap_err();
        assert!(matches!(err, SchedulerError::NotEnoughStorage { .. }));
        s.release(a.id).unwrap();
        assert_eq!(s.free_storage_slots(), 8);
    }

    #[test]
    fn concurrent_jobs_get_distinct_slots() {
        let mut s = Scheduler::new(Topology::paper_testbed(), 4);
        let a = s
            .submit(&JobRequest {
                procs: 28,
                procs_per_node: 28,
                storage_devices: 8,
            })
            .unwrap();
        let b = s
            .submit(&JobRequest {
                procs: 28,
                procs_per_node: 28,
                storage_devices: 8,
            })
            .unwrap();
        for ga in &a.storage {
            for gb in &b.storage {
                assert!(
                    (ga.node, ga.ssd, ga.slot) != (gb.node, gb.ssd, gb.slot),
                    "slot double-granted"
                );
            }
        }
    }

    #[test]
    fn compute_exhaustion_reported() {
        let mut s = sched();
        s.submit(&JobRequest::full_subscription(448)).unwrap();
        let err = s.submit(&JobRequest::full_subscription(28)).unwrap_err();
        assert!(matches!(err, SchedulerError::NotEnoughCompute { .. }));
    }

    #[test]
    fn backlog_admits_fifo_after_release() {
        let mut s = sched();
        let first = s.submit(&JobRequest::full_subscription(448)).unwrap();
        // Cluster full: two more jobs queue up.
        let (t1, a1) = s
            .submit_or_queue(&JobRequest::full_subscription(224))
            .unwrap();
        let (t2, a2) = s
            .submit_or_queue(&JobRequest::full_subscription(224))
            .unwrap();
        assert!(a1.is_none() && a2.is_none());
        assert_eq!(s.backlog_len(), 2);
        assert!(s.drain_backlog().is_empty(), "nothing freed yet");
        // Releasing the big job admits both queued jobs, in order.
        s.release(first.id).unwrap();
        let admitted = s.drain_backlog();
        assert_eq!(admitted.len(), 2);
        assert_eq!(admitted[0].0, t1);
        assert_eq!(admitted[1].0, t2);
        assert_eq!(s.backlog_len(), 0);
    }

    #[test]
    fn head_of_line_blocks_strictly() {
        let mut s = sched();
        let big = s.submit(&JobRequest::full_subscription(224)).unwrap();
        let small = s.submit(&JobRequest::full_subscription(112)).unwrap();
        // A cluster-sized job queues first, a tiny one second.
        let (_huge, none) = s
            .submit_or_queue(&JobRequest::full_subscription(448))
            .unwrap();
        assert!(none.is_none());
        let (_tiny, none) = s
            .submit_or_queue(&JobRequest::full_subscription(28))
            .unwrap();
        assert!(none.is_none());
        // Freeing only 112 ranks is not enough for the 448-rank head; the
        // tiny job would fit but must wait (strict FIFO, no backfill).
        s.release(small.id).unwrap();
        assert!(s.drain_backlog().is_empty());
        assert_eq!(s.backlog_len(), 2);
        // Freeing the rest admits the head; the tiny job now waits on
        // the huge one it queued behind.
        s.release(big.id).unwrap();
        let admitted = s.drain_backlog();
        assert_eq!(admitted.len(), 1);
        assert_eq!(s.backlog_len(), 1);
        s.release(admitted[0].1.id).unwrap();
        assert_eq!(s.drain_backlog().len(), 1);
        assert_eq!(s.backlog_len(), 0);
    }

    #[test]
    fn bad_requests_rejected() {
        let mut s = sched();
        assert!(matches!(
            s.submit(&JobRequest {
                procs: 0,
                procs_per_node: 28,
                storage_devices: 1
            }),
            Err(SchedulerError::BadRequest(_))
        ));
        assert!(matches!(
            s.submit(&JobRequest {
                procs: 28,
                procs_per_node: 28,
                storage_devices: 0
            }),
            Err(SchedulerError::BadRequest(_))
        ));
        assert!(matches!(
            s.release(JobId(99)),
            Err(SchedulerError::UnknownJob(_))
        ));
    }

    proptest! {
        /// For arbitrary job mixes, granted slots are never double-booked
        /// and release restores every counter.
        #[test]
        fn prop_slot_accounting(sizes in proptest::collection::vec(1u32..448, 1..6)) {
            let mut s = Scheduler::new(Topology::paper_testbed(), 8);
            let slots0 = s.free_storage_slots();
            let compute0 = s.free_compute_nodes();
            let mut live = Vec::new();
            for procs in sizes {
                if let Ok(a) = s.submit(&JobRequest::full_subscription(procs)) {
                    live.push(a);
                }
            }
            // No slot appears twice across live jobs.
            let mut seen = std::collections::HashSet::new();
            for a in &live {
                for g in &a.storage {
                    prop_assert!(seen.insert((g.node, g.ssd, g.slot)));
                }
            }
            for a in live {
                s.release(a.id).unwrap();
            }
            prop_assert_eq!(s.free_storage_slots(), slots0);
            prop_assert_eq!(s.free_compute_nodes(), compute0);
        }
    }
}
