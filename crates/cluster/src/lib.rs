//! # nvmecr-cluster — cluster substrate
//!
//! Everything NVMe-CR assumes from the machine room, rebuilt as software:
//!
//! * [`topology`] — racks, power distribution units, compute and storage
//!   nodes, and switch-hop distances (the input to the storage balancer's
//!   greedy placement, §III-F).
//! * [`failure`] — failure-domain derivation ("nodes which share hardware
//!   are placed in the same domain") and partner-domain lists sorted by hop
//!   count.
//! * [`scheduler`] — a Slurm-like job scheduler with *generic resources*:
//!   storage is handed to jobs at NVMe-namespace granularity, as the paper
//!   does with Slurm's gres plugin (§III-F "Security Model").
//! * [`mpi`] — the thin slice of MPI the runtime actually uses:
//!   communicator construction, `split` (to build `MPI_COMM_CR`), and
//!   functional collectives with log-tree cost models. Coordination happens
//!   only at init, exactly as in the paper (§III-C).
//! * [`faults`] — MTBF-driven fault injection, including correlated
//!   (cascading) rack failures for the multi-level checkpointing
//!   evaluation (§IV-I).
//!
//! The default [`topology::Topology::paper_testbed`] reproduces the
//! evaluation cluster: one 16-node compute rack (28 cores each) and one
//! 8-node storage rack (one SSD each) on EDR InfiniBand.

pub mod failure;
pub mod faults;
pub mod mpi;
pub mod scheduler;
pub mod topology;

pub use failure::{DomainId, FailureDomains};
pub use faults::{lower_to_plan, FaultEvent, FaultInjector, FaultKind};
pub use mpi::{Comm, CommWorld};
pub use scheduler::{JobAllocation, JobId, JobRequest, Scheduler, SchedulerError, StorageGrant};
pub use topology::{NodeId, NodeKind, PodId, RackId, Topology};
